#include "querc/qworker.h"

namespace querc::core {

void QWorker::Deploy(std::shared_ptr<const Classifier> classifier) {
  classifiers_[classifier->task_name()] = std::move(classifier);
}

bool QWorker::Undeploy(const std::string& task_name) {
  return classifiers_.erase(task_name) > 0;
}

ProcessedQuery QWorker::Process(const workload::LabeledQuery& query) {
  ProcessedQuery out;
  out.query = query;
  for (const auto& [task, classifier] : classifiers_) {
    out.predictions[task] = classifier->Predict(query);
  }
  ++processed_count_;

  window_.push_back(query);
  while (window_.size() > options_.window_size) window_.pop_front();

  if (options_.forward_to_database && database_) database_(query);
  if (training_) training_(out);
  return out;
}

std::vector<ProcessedQuery> QWorker::ProcessBatch(
    const workload::Workload& batch) {
  std::vector<ProcessedQuery> out;
  out.reserve(batch.size());
  for (const auto& q : batch) out.push_back(Process(q));
  return out;
}

}  // namespace querc::core
