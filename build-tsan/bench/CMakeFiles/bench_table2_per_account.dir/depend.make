# Empty dependencies file for bench_table2_per_account.
# This may be replaced when dependencies are built.
