#include "engine/advisor.h"

#include <gtest/gtest.h>

#include "engine/index.h"
#include "workload/tpch_gen.h"

namespace querc::engine {
namespace {

class AdvisorTest : public ::testing::Test {
 protected:
  AdvisorTest() : catalog_(TpchCatalog()), model_(&catalog_) {
    workload::TpchGenerator::Options options;
    options.instances_per_template = 6;
    workload::TpchGenerator gen(options);
    for (const auto& q : gen.Generate()) texts_.push_back(q.text);
  }

  Catalog catalog_;
  CostModel model_;
  std::vector<std::string> texts_;
};

TEST(IndexTest, ToStringAndEquality) {
  Index a{"lineitem", {"l_shipdate"}};
  Index b{"lineitem", {"l_shipdate"}};
  Index c{"lineitem", {"l_quantity"}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "lineitem(l_shipdate)");
  Index multi{"t", {"a", "b"}};
  EXPECT_EQ(multi.ToString(), "t(a,b)");
  IndexConfig config = {a, c};
  EXPECT_TRUE(ContainsIndex(config, b));
  EXPECT_FALSE(ContainsIndex(config, {"orders", {"o_orderdate"}}));
  EXPECT_EQ(ConfigToString({a, c}),
            "{lineitem(l_shipdate), lineitem(l_quantity)}");
}

TEST_F(AdvisorTest, BudgetBelowStartupYieldsNothing) {
  AdvisorOptions options;
  options.budget_minutes = 2.0;
  TuningAdvisor advisor(&model_, options);
  AdvisorResult result = advisor.Recommend(texts_);
  EXPECT_TRUE(result.config.empty());
  EXPECT_EQ(result.whatif_calls_used, 0);
}

TEST_F(AdvisorTest, LargeBudgetRefinesAndDropsBadIndex) {
  AdvisorOptions options;
  options.budget_minutes = 30.0;
  TuningAdvisor advisor(&model_, options);
  AdvisorResult result = advisor.Recommend(texts_);
  ASSERT_FALSE(result.config.empty());
  EXPECT_TRUE(result.completed_refinement);
  // The misestimation-prone Q18 index must not survive refinement.
  EXPECT_FALSE(ContainsIndex(result.config, {"lineitem", {"l_quantity"}}))
      << ConfigToString(result.config);
  // The genuinely useful date index must.
  EXPECT_TRUE(ContainsIndex(result.config, {"lineitem", {"l_shipdate"}}))
      << ConfigToString(result.config);
  // And the refined config must actually help.
  WorkloadRuntime base = RunWorkload(model_, texts_, {});
  WorkloadRuntime tuned = RunWorkload(model_, texts_, result.config);
  EXPECT_LT(tuned.total_seconds, base.total_seconds);
}

TEST_F(AdvisorTest, RecommendationQualityImprovesWithBudget) {
  auto runtime_at = [&](double minutes) {
    AdvisorOptions options;
    options.budget_minutes = minutes;
    TuningAdvisor advisor(&model_, options);
    return RunWorkload(model_, texts_, advisor.Recommend(texts_).config)
        .total_seconds;
  };
  double small = runtime_at(3.0);
  double large = runtime_at(30.0);
  EXPECT_LE(large, small);
}

TEST_F(AdvisorTest, CallsNeverExceedBudget) {
  AdvisorOptions options;
  options.budget_minutes = 3.1;
  TuningAdvisor advisor(&model_, options);
  AdvisorResult result = advisor.Recommend(texts_);
  double budget_calls = (options.budget_minutes - options.startup_minutes) *
                        options.whatif_calls_per_minute;
  EXPECT_LE(static_cast<double>(result.whatif_calls_used),
            budget_calls + texts_.size());
}

TEST_F(AdvisorTest, SmallInputConvergesFast) {
  // A handful of queries must reach a refined recommendation within the
  // 3-minute budget where the full workload cannot — the Figure 3 lever.
  std::vector<std::string> summary(texts_.begin(), texts_.begin() + 22);
  AdvisorOptions options;
  options.budget_minutes = 3.0;
  TuningAdvisor advisor(&model_, options);
  AdvisorResult on_summary = advisor.Recommend(summary);
  EXPECT_TRUE(on_summary.completed_refinement);

  // With vastly more queries, same budget: no refinement.
  std::vector<std::string> big;
  for (int rep = 0; rep < 8; ++rep) {
    big.insert(big.end(), texts_.begin(), texts_.end());
  }
  workload::TpchGenerator::Options many;
  many.instances_per_template = 40;
  many.seed = 321;
  for (const auto& q : workload::TpchGenerator(many).Generate()) {
    big.push_back(q.text);
  }
  AdvisorResult on_full = advisor.Recommend(big);
  EXPECT_FALSE(on_full.completed_refinement);
}

TEST_F(AdvisorTest, DedupCompressesRepeatedTexts) {
  std::vector<std::string> repeated;
  for (int i = 0; i < 50; ++i) repeated.push_back(texts_[0]);
  AdvisorOptions options;
  options.budget_minutes = 10.0;
  TuningAdvisor advisor(&model_, options);
  AdvisorResult result = advisor.Recommend(repeated);
  // Log records 50 -> 1 compression.
  bool found = false;
  for (const auto& line : result.log) {
    found |= line.find("50 queries, 1 distinct") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(AdvisorTest, MaxIndexCapRespected) {
  AdvisorOptions options;
  options.budget_minutes = 60.0;
  options.max_indexes = 2;
  TuningAdvisor advisor(&model_, options);
  AdvisorResult result = advisor.Recommend(texts_);
  EXPECT_LE(result.config.size(), 2u);
}

TEST_F(AdvisorTest, EmptyWorkloadGivesEmptyConfig) {
  AdvisorOptions options;
  options.budget_minutes = 10.0;
  TuningAdvisor advisor(&model_, options);
  AdvisorResult result = advisor.Recommend({});
  EXPECT_TRUE(result.config.empty());
}

TEST_F(AdvisorTest, DeterministicAcrossRuns) {
  AdvisorOptions options;
  options.budget_minutes = 5.0;
  TuningAdvisor advisor(&model_, options);
  AdvisorResult a = advisor.Recommend(texts_);
  AdvisorResult b = advisor.Recommend(texts_);
  EXPECT_EQ(ConfigToString(a.config), ConfigToString(b.config));
  EXPECT_EQ(a.whatif_calls_used, b.whatif_calls_used);
}

}  // namespace
}  // namespace querc::engine
