#include "workload/tpch_gen.h"

#include <array>

#include "util/string_util.h"

namespace querc::workload {

using util::StrFormat;

namespace {

constexpr std::array<const char*, 5> kSegments = {
    "BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"};

constexpr std::array<const char*, 5> kRegions = {"AFRICA", "AMERICA", "ASIA",
                                                 "EUROPE", "MIDDLE EAST"};

constexpr std::array<const char*, 25> kNations = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",       "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",        "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",       "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",        "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

constexpr std::array<const char*, 6> kTypeSyllable1 = {
    "STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"};
constexpr std::array<const char*, 5> kTypeSyllable2 = {
    "ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"};
constexpr std::array<const char*, 5> kTypeSyllable3 = {"TIN", "NICKEL",
                                                       "BRASS", "STEEL",
                                                       "COPPER"};

constexpr std::array<const char*, 5> kContainerSize = {"SM", "LG", "MED",
                                                       "JUMBO", "WRAP"};
constexpr std::array<const char*, 8> kContainerType = {
    "CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"};

constexpr std::array<const char*, 7> kShipModes = {
    "REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};

constexpr std::array<const char*, 16> kColors = {
    "almond", "antique", "aquamarine", "azure",  "beige",  "bisque",
    "black",  "blanched", "blue",      "blush",  "brown",  "burlywood",
    "chiffon", "chocolate", "coral",   "cornflower"};

constexpr std::array<const char*, 5> kPriorities = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};

template <typename Array>
const char* Pick(const Array& values, util::Rng& rng) {
  return values[static_cast<size_t>(rng.NextUint64(values.size()))];
}

std::string Brand(util::Rng& rng) {
  return StrFormat("Brand#%d%d", static_cast<int>(rng.UniformInt(1, 5)),
                   static_cast<int>(rng.UniformInt(1, 5)));
}

std::string Type(util::Rng& rng) {
  return StrFormat("%s %s %s", Pick(kTypeSyllable1, rng),
                   Pick(kTypeSyllable2, rng), Pick(kTypeSyllable3, rng));
}

std::string Container(util::Rng& rng) {
  return StrFormat("%s %s", Pick(kContainerSize, rng),
                   Pick(kContainerType, rng));
}

/// Random date 'YYYY-01-01' plus a uniform month offset within the TPC-H
/// population window.
std::string DateIn(util::Rng& rng, int year_lo, int year_hi) {
  int year = static_cast<int>(rng.UniformInt(year_lo, year_hi));
  int month = static_cast<int>(rng.UniformInt(1, 12));
  int day = static_cast<int>(rng.UniformInt(1, 28));
  return FormatDate(DaysFromCivil(year, month, day));
}

std::string FirstOfMonth(util::Rng& rng, int year_lo, int year_hi) {
  int year = static_cast<int>(rng.UniformInt(year_lo, year_hi));
  int month = static_cast<int>(rng.UniformInt(1, 12));
  return FormatDate(DaysFromCivil(year, month, 1));
}

std::string PlusMonths(const std::string& iso, int months) {
  int y = std::stoi(iso.substr(0, 4));
  int m = std::stoi(iso.substr(5, 2));
  int d = std::stoi(iso.substr(8, 2));
  int total = (y * 12 + (m - 1)) + months;
  return FormatDate(DaysFromCivil(total / 12, total % 12 + 1, d));
}

std::string PlusDays(const std::string& iso, int days) {
  int y = std::stoi(iso.substr(0, 4));
  int m = std::stoi(iso.substr(5, 2));
  int d = std::stoi(iso.substr(8, 2));
  return FormatDate(DaysFromCivil(y, m, d) + days);
}

}  // namespace

int64_t DaysFromCivil(int y, int m, int d) {
  // Howard Hinnant's civil-from-days inverse.
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  *year = static_cast<int>(y + (*month <= 2));
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return StrFormat("%04d-%02d-%02d", y, m, d);
}

std::string TpchGenerator::Instantiate(int q, util::Rng& rng) {
  switch (q) {
    case 1: {
      int delta = static_cast<int>(rng.UniformInt(60, 120));
      std::string cutoff = PlusDays("1998-12-01", -delta);
      return StrFormat(
          "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
          "SUM(l_extendedprice) AS sum_base_price, "
          "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
          "SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS "
          "sum_charge, AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS "
          "avg_price, AVG(l_discount) AS avg_disc, COUNT(*) AS count_order "
          "FROM lineitem WHERE l_shipdate <= '%s' "
          "GROUP BY l_returnflag, l_linestatus "
          "ORDER BY l_returnflag, l_linestatus",
          cutoff.c_str());
    }
    case 2: {
      int size = static_cast<int>(rng.UniformInt(1, 50));
      const char* syl3 = Pick(kTypeSyllable3, rng);
      const char* region = Pick(kRegions, rng);
      return StrFormat(
          "SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, "
          "s_phone, s_comment FROM part, supplier, partsupp, nation, region "
          "WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND "
          "p_size = %d AND p_type LIKE '%%%s' AND s_nationkey = n_nationkey "
          "AND n_regionkey = r_regionkey AND r_name = '%s' AND "
          "ps_supplycost = (SELECT MIN(ps_supplycost) FROM partsupp, "
          "supplier, nation, region WHERE p_partkey = ps_partkey AND "
          "s_suppkey = ps_suppkey AND s_nationkey = n_nationkey AND "
          "n_regionkey = r_regionkey AND r_name = '%s') "
          "ORDER BY s_acctbal DESC, n_name, s_name, p_partkey",
          size, syl3, region, region);
    }
    case 3: {
      const char* segment = Pick(kSegments, rng);
      std::string date = DateIn(rng, 1995, 1995);
      return StrFormat(
          "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS "
          "revenue, o_orderdate, o_shippriority FROM customer, orders, "
          "lineitem WHERE c_mktsegment = '%s' AND c_custkey = o_custkey AND "
          "l_orderkey = o_orderkey AND o_orderdate < '%s' AND l_shipdate > "
          "'%s' GROUP BY l_orderkey, o_orderdate, o_shippriority "
          "ORDER BY revenue DESC, o_orderdate",
          segment, date.c_str(), date.c_str());
    }
    case 4: {
      std::string date = FirstOfMonth(rng, 1993, 1997);
      std::string hi = PlusMonths(date, 3);
      return StrFormat(
          "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders "
          "WHERE o_orderdate >= '%s' AND o_orderdate < '%s' AND EXISTS "
          "(SELECT * FROM lineitem WHERE l_orderkey = o_orderkey AND "
          "l_commitdate < l_receiptdate) GROUP BY o_orderpriority "
          "ORDER BY o_orderpriority",
          date.c_str(), hi.c_str());
    }
    case 5: {
      const char* region = Pick(kRegions, rng);
      std::string date = FormatDate(
          DaysFromCivil(static_cast<int>(rng.UniformInt(1993, 1997)), 1, 1));
      std::string hi = PlusMonths(date, 12);
      return StrFormat(
          "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
          "FROM customer, orders, lineitem, supplier, nation, region WHERE "
          "c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = "
          "s_suppkey AND c_nationkey = s_nationkey AND s_nationkey = "
          "n_nationkey AND n_regionkey = r_regionkey AND r_name = '%s' AND "
          "o_orderdate >= '%s' AND o_orderdate < '%s' GROUP BY n_name "
          "ORDER BY revenue DESC",
          region, date.c_str(), hi.c_str());
    }
    case 6: {
      std::string date = FormatDate(
          DaysFromCivil(static_cast<int>(rng.UniformInt(1993, 1997)), 1, 1));
      std::string hi = PlusMonths(date, 12);
      double discount = 0.02 + 0.01 * static_cast<double>(rng.UniformInt(0, 7));
      int quantity = static_cast<int>(rng.UniformInt(24, 25));
      return StrFormat(
          "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
          "WHERE l_shipdate >= '%s' AND l_shipdate < '%s' AND l_discount "
          "BETWEEN %.2f AND %.2f AND l_quantity < %d",
          date.c_str(), hi.c_str(), discount - 0.01, discount + 0.01,
          quantity);
    }
    case 7: {
      const char* n1 = Pick(kNations, rng);
      const char* n2 = Pick(kNations, rng);
      return StrFormat(
          "SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue "
          "FROM (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, "
          "l_shipdate AS l_year, l_extendedprice * (1 - l_discount) AS "
          "volume FROM supplier, lineitem, orders, customer, nation n1, "
          "nation n2 WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey "
          "AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey AND "
          "c_nationkey = n2.n_nationkey AND n1.n_name = '%s' AND n2.n_name = "
          "'%s' AND l_shipdate BETWEEN '1995-01-01' AND '1996-12-31') AS "
          "shipping GROUP BY supp_nation, cust_nation, l_year "
          "ORDER BY supp_nation, cust_nation, l_year",
          n1, n2);
    }
    case 8: {
      const char* nation = Pick(kNations, rng);
      const char* region = Pick(kRegions, rng);
      std::string type = Type(rng);
      return StrFormat(
          "SELECT o_year, SUM(volume) AS mkt_share FROM (SELECT o_orderdate "
          "AS o_year, l_extendedprice * (1 - l_discount) AS volume, "
          "n2.n_name AS nation FROM part, supplier, lineitem, orders, "
          "customer, nation n1, nation n2, region WHERE p_partkey = "
          "l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey "
          "AND o_custkey = c_custkey AND c_nationkey = n1.n_nationkey AND "
          "n1.n_regionkey = r_regionkey AND r_name = '%s' AND s_nationkey = "
          "n2.n_nationkey AND o_orderdate BETWEEN '1995-01-01' AND "
          "'1996-12-31' AND p_type = '%s' AND n2.n_name = '%s') AS "
          "all_nations GROUP BY o_year ORDER BY o_year",
          region, type.c_str(), nation);
    }
    case 9: {
      const char* color = Pick(kColors, rng);
      return StrFormat(
          "SELECT nation, o_year, SUM(amount) AS sum_profit FROM (SELECT "
          "n_name AS nation, o_orderdate AS o_year, l_extendedprice * (1 - "
          "l_discount) - ps_supplycost * l_quantity AS amount FROM part, "
          "supplier, lineitem, partsupp, orders, nation WHERE s_suppkey = "
          "l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey "
          "AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND "
          "s_nationkey = n_nationkey AND p_name LIKE '%%%s%%') AS profit "
          "GROUP BY nation, o_year ORDER BY nation, o_year DESC",
          color);
    }
    case 10: {
      std::string date = FirstOfMonth(rng, 1993, 1994);
      std::string hi = PlusMonths(date, 3);
      return StrFormat(
          "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) "
          "AS revenue, c_acctbal, n_name, c_address, c_phone, c_comment FROM "
          "customer, orders, lineitem, nation WHERE c_custkey = o_custkey "
          "AND l_orderkey = o_orderkey AND o_orderdate >= '%s' AND "
          "o_orderdate < '%s' AND l_returnflag = 'R' AND c_nationkey = "
          "n_nationkey GROUP BY c_custkey, c_name, c_acctbal, c_phone, "
          "n_name, c_address, c_comment ORDER BY revenue DESC",
          date.c_str(), hi.c_str());
    }
    case 11: {
      const char* nation = Pick(kNations, rng);
      return StrFormat(
          "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value "
          "FROM partsupp, supplier, nation WHERE ps_suppkey = s_suppkey AND "
          "s_nationkey = n_nationkey AND n_name = '%s' GROUP BY ps_partkey "
          "HAVING SUM(ps_supplycost * ps_availqty) > (SELECT "
          "SUM(ps_supplycost * ps_availqty) * 0.0001 FROM partsupp, "
          "supplier, nation WHERE ps_suppkey = s_suppkey AND s_nationkey = "
          "n_nationkey AND n_name = '%s') ORDER BY value DESC",
          nation, nation);
    }
    case 12: {
      const char* m1 = Pick(kShipModes, rng);
      const char* m2 = Pick(kShipModes, rng);
      std::string date = FormatDate(
          DaysFromCivil(static_cast<int>(rng.UniformInt(1993, 1997)), 1, 1));
      std::string hi = PlusMonths(date, 12);
      return StrFormat(
          "SELECT l_shipmode, SUM(CASE WHEN o_orderpriority = '1-URGENT' OR "
          "o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, "
          "SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority "
          "<> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count FROM orders, "
          "lineitem WHERE o_orderkey = l_orderkey AND l_shipmode IN ('%s', "
          "'%s') AND l_commitdate < l_receiptdate AND l_shipdate < "
          "l_commitdate AND l_receiptdate >= '%s' AND l_receiptdate < '%s' "
          "GROUP BY l_shipmode ORDER BY l_shipmode",
          m1, m2, date.c_str(), hi.c_str());
    }
    case 13: {
      const char* w1 = rng.Bernoulli(0.5) ? "special" : "pending";
      const char* w2 = rng.Bernoulli(0.5) ? "packages" : "requests";
      return StrFormat(
          "SELECT c_count, COUNT(*) AS custdist FROM (SELECT c_custkey, "
          "COUNT(o_orderkey) AS c_count FROM customer LEFT OUTER JOIN orders "
          "ON c_custkey = o_custkey AND o_comment NOT LIKE '%%%s%%%s%%' "
          "GROUP BY c_custkey) AS c_orders GROUP BY c_count "
          "ORDER BY custdist DESC, c_count DESC",
          w1, w2);
    }
    case 14: {
      std::string date = FirstOfMonth(rng, 1993, 1997);
      std::string hi = PlusMonths(date, 1);
      return StrFormat(
          "SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%%' THEN "
          "l_extendedprice * (1 - l_discount) ELSE 0 END) / "
          "SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue FROM "
          "lineitem, part WHERE l_partkey = p_partkey AND l_shipdate >= "
          "'%s' AND l_shipdate < '%s'",
          date.c_str(), hi.c_str());
    }
    case 15: {
      std::string date = FirstOfMonth(rng, 1993, 1997);
      std::string hi = PlusMonths(date, 3);
      return StrFormat(
          "SELECT s_suppkey, s_name, s_address, s_phone, total_revenue FROM "
          "supplier, (SELECT l_suppkey AS supplier_no, SUM(l_extendedprice * "
          "(1 - l_discount)) AS total_revenue FROM lineitem WHERE l_shipdate "
          ">= '%s' AND l_shipdate < '%s' GROUP BY l_suppkey) AS revenue "
          "WHERE s_suppkey = supplier_no ORDER BY s_suppkey",
          date.c_str(), hi.c_str());
    }
    case 16: {
      std::string brand = Brand(rng);
      const char* syl1 = Pick(kTypeSyllable1, rng);
      int s1 = static_cast<int>(rng.UniformInt(1, 10));
      int s2 = static_cast<int>(rng.UniformInt(11, 20));
      int s3 = static_cast<int>(rng.UniformInt(21, 30));
      int s4 = static_cast<int>(rng.UniformInt(31, 40));
      return StrFormat(
          "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS "
          "supplier_cnt FROM partsupp, part WHERE p_partkey = ps_partkey AND "
          "p_brand <> '%s' AND p_type NOT LIKE '%s%%' AND p_size IN (%d, %d, "
          "%d, %d) AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier "
          "WHERE s_comment LIKE '%%Customer%%Complaints%%') GROUP BY "
          "p_brand, p_type, p_size ORDER BY supplier_cnt DESC, p_brand, "
          "p_type, p_size",
          brand.c_str(), syl1, s1, s2, s3, s4);
    }
    case 17: {
      std::string brand = Brand(rng);
      std::string container = Container(rng);
      return StrFormat(
          "SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly FROM lineitem, "
          "part WHERE p_partkey = l_partkey AND p_brand = '%s' AND "
          "p_container = '%s' AND l_quantity < (SELECT 0.2 * AVG(l_quantity) "
          "FROM lineitem WHERE l_partkey = p_partkey)",
          brand.c_str(), container.c_str());
    }
    case 18: {
      int quantity = static_cast<int>(rng.UniformInt(312, 315));
      return StrFormat(
          "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, "
          "SUM(l_quantity) FROM customer, orders, lineitem WHERE o_orderkey "
          "IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING "
          "SUM(l_quantity) > %d) AND c_custkey = o_custkey AND o_orderkey = "
          "l_orderkey GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, "
          "o_totalprice ORDER BY o_totalprice DESC, o_orderdate",
          quantity);
    }
    case 19: {
      std::string b1 = Brand(rng);
      std::string b2 = Brand(rng);
      std::string b3 = Brand(rng);
      int q1 = static_cast<int>(rng.UniformInt(1, 10));
      int q2 = static_cast<int>(rng.UniformInt(10, 20));
      int q3 = static_cast<int>(rng.UniformInt(20, 30));
      return StrFormat(
          "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM "
          "lineitem, part WHERE (p_partkey = l_partkey AND p_brand = '%s' "
          "AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') AND "
          "l_quantity >= %d AND l_quantity <= %d AND p_size BETWEEN 1 AND 5 "
          "AND l_shipmode IN ('AIR', 'AIR REG') AND l_shipinstruct = "
          "'DELIVER IN PERSON') OR (p_partkey = l_partkey AND p_brand = "
          "'%s' AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED "
          "PACK') AND l_quantity >= %d AND l_quantity <= %d AND p_size "
          "BETWEEN 1 AND 10 AND l_shipmode IN ('AIR', 'AIR REG') AND "
          "l_shipinstruct = 'DELIVER IN PERSON') OR (p_partkey = l_partkey "
          "AND p_brand = '%s' AND p_container IN ('LG CASE', 'LG BOX', 'LG "
          "PACK', 'LG PKG') AND l_quantity >= %d AND l_quantity <= %d AND "
          "p_size BETWEEN 1 AND 15 AND l_shipmode IN ('AIR', 'AIR REG') AND "
          "l_shipinstruct = 'DELIVER IN PERSON')",
          b1.c_str(), q1, q1 + 10, b2.c_str(), q2, q2 + 10, b3.c_str(), q3,
          q3 + 10);
    }
    case 20: {
      const char* color = Pick(kColors, rng);
      const char* nation = Pick(kNations, rng);
      std::string date = FormatDate(
          DaysFromCivil(static_cast<int>(rng.UniformInt(1993, 1997)), 1, 1));
      std::string hi = PlusMonths(date, 12);
      return StrFormat(
          "SELECT s_name, s_address FROM supplier, nation WHERE s_suppkey IN "
          "(SELECT ps_suppkey FROM partsupp WHERE ps_partkey IN (SELECT "
          "p_partkey FROM part WHERE p_name LIKE '%s%%') AND ps_availqty > "
          "(SELECT 0.5 * SUM(l_quantity) FROM lineitem WHERE l_partkey = "
          "ps_partkey AND l_suppkey = ps_suppkey AND l_shipdate >= '%s' AND "
          "l_shipdate < '%s')) AND s_nationkey = n_nationkey AND n_name = "
          "'%s' ORDER BY s_name",
          color, date.c_str(), hi.c_str(), nation);
    }
    case 21: {
      const char* nation = Pick(kNations, rng);
      return StrFormat(
          "SELECT s_name, COUNT(*) AS numwait FROM supplier, lineitem l1, "
          "orders, nation WHERE s_suppkey = l1.l_suppkey AND o_orderkey = "
          "l1.l_orderkey AND o_orderstatus = 'F' AND l1.l_receiptdate > "
          "l1.l_commitdate AND EXISTS (SELECT * FROM lineitem l2 WHERE "
          "l2.l_orderkey = l1.l_orderkey AND l2.l_suppkey <> l1.l_suppkey) "
          "AND NOT EXISTS (SELECT * FROM lineitem l3 WHERE l3.l_orderkey = "
          "l1.l_orderkey AND l3.l_suppkey <> l1.l_suppkey AND "
          "l3.l_receiptdate > l3.l_commitdate) AND s_nationkey = n_nationkey "
          "AND n_name = '%s' GROUP BY s_name ORDER BY numwait DESC, s_name",
          nation);
    }
    case 22: {
      int c1 = static_cast<int>(rng.UniformInt(10, 34));
      int c2 = static_cast<int>(rng.UniformInt(10, 34));
      int c3 = static_cast<int>(rng.UniformInt(10, 34));
      int c4 = static_cast<int>(rng.UniformInt(10, 34));
      int c5 = static_cast<int>(rng.UniformInt(10, 34));
      int c6 = static_cast<int>(rng.UniformInt(10, 34));
      int c7 = static_cast<int>(rng.UniformInt(10, 34));
      return StrFormat(
          "SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS "
          "totacctbal FROM (SELECT SUBSTRING(c_phone, 1, 2) AS cntrycode, "
          "c_acctbal FROM customer WHERE SUBSTRING(c_phone, 1, 2) IN ('%d', "
          "'%d', '%d', '%d', '%d', '%d', '%d') AND c_acctbal > (SELECT "
          "AVG(c_acctbal) FROM customer WHERE c_acctbal > 0.00 AND "
          "SUBSTRING(c_phone, 1, 2) IN ('%d', '%d', '%d', '%d', '%d', '%d', "
          "'%d')) AND NOT EXISTS (SELECT * FROM orders WHERE o_custkey = "
          "c_custkey)) AS custsale GROUP BY cntrycode ORDER BY cntrycode",
          c1, c2, c3, c4, c5, c6, c7, c1, c2, c3, c4, c5, c6, c7);
    }
    default:
      return "";
  }
}

Workload TpchGenerator::Generate() const {
  util::Rng rng(options_.seed);
  Workload workload;
  int64_t clock = DaysFromCivil(2018, 6, 1) * 86400;
  // Template-major order, matching Figure 4's x-axis where all instances of
  // a template are adjacent (Q18 occupies positions ~640-680).
  for (int q = 1; q <= kNumTemplates; ++q) {
    for (int sweep = 0; sweep < options_.instances_per_template; ++sweep) {
      LabeledQuery query;
      query.text = Instantiate(q, rng);
      query.dialect = sql::Dialect::kSqlServer;
      query.timestamp = clock;
      query.user = options_.user;
      query.account = options_.account;
      query.cluster = "tpch_cluster";
      query.template_id = q;
      clock += static_cast<int64_t>(rng.UniformInt(1, 30));
      workload.Add(std::move(query));
    }
  }
  return workload;
}

}  // namespace querc::workload
