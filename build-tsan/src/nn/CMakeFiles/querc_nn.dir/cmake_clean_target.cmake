file(REMOVE_RECURSE
  "libquerc_nn.a"
)
