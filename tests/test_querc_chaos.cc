#include "querc/chaos.h"

#include <gtest/gtest.h>

#include "util/failpoint.h"

namespace querc::core {
namespace {

TEST(ChaosSoakTest, SmallSoakDegradesGracefully) {
  ChaosOptions options;
  options.num_shards = 2;
  options.warmup_queries = 40;
  options.fault_queries = 120;
  options.recovery_queries = 200;
  options.sink_failure_rate = 0.2;
  options.classifier_outage = true;
  options.max_in_flight = 4;
  options.shed_burst_every = 30;
  options.breaker_open_ms = 10.0;

  ChaosReport report = RunChaosSoak(options);
  // The drill's contract: faults actually tripped breakers, the service
  // shed instead of queueing unboundedly, nothing was silently dropped,
  // and every breaker re-closed once the faults cleared.
  EXPECT_GT(report.breakers_tripped, 0u);
  EXPECT_TRUE(report.breakers_reclosed);
  EXPECT_GE(report.recovery_ms, 0.0);
  EXPECT_EQ(report.silent_drops, 0u);
  EXPECT_GT(report.shed, 0u);
  EXPECT_GT(report.sink_errors, 0u);
  EXPECT_EQ(report.submitted, report.returned);
  EXPECT_TRUE(report.ok());

  // The soak cleans up after itself: no failpoint left armed.
  EXPECT_FALSE(util::Failpoints::AnyArmed());

  // The report is consumable as JSON by the bench/CI tooling.
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"recovery_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_fault_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"shed_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST(ChaosSoakTest, SameSeedSameAccounting) {
  ChaosOptions options;
  options.num_shards = 1;
  options.warmup_queries = 20;
  options.fault_queries = 60;
  options.recovery_queries = 100;
  options.max_in_flight = 4;
  options.shed_burst_every = 20;
  options.breaker_open_ms = 5.0;
  options.seed = 7;

  ChaosReport a = RunChaosSoak(options);
  ChaosReport b = RunChaosSoak(options);
  // Latencies, recovery time, and the number of recovery-phase queries
  // are wall-clock-dependent, but the fault schedule and the admission
  // arithmetic (bursts of 3x the bound against a drained pool) are
  // deterministic: same seed, same shed count, nothing lost either run.
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_GT(a.shed, 0u);
  EXPECT_EQ(a.silent_drops, 0u);
  EXPECT_EQ(b.silent_drops, 0u);
}

NoisyNeighborOptions SmallDrill() {
  NoisyNeighborOptions options;
  options.num_shards = 2;
  options.num_victims = 3;
  options.overload_factor = 10.0;
  options.warmup_rounds = 5;
  options.flood_rounds = 10;
  options.recovery_rounds = 200;
  options.breaker_open_ms = 10.0;
  return options;
}

TEST(NoisyNeighborTest, IsolationContractHolds) {
  NoisyNeighborReport report = RunNoisyNeighborDrill(SmallDrill());
  // Victims inside their quota are never shed — the guaranteed-minimum
  // share absorbs the aggressor's flood, not the victims' traffic.
  EXPECT_EQ(report.victim_shed, 0u);
  // The aggressor pays for its own overload, at least proportionally.
  EXPECT_GE(report.aggressor_shed_rate, report.overload_fraction - 1e-9);
  EXPECT_GT(report.overload_fraction, 0.5);
  EXPECT_GT(report.aggressor_shed, 0u);
  // Only the aggressor's per-tenant sink breakers trip, and they heal.
  EXPECT_GT(report.aggressor_breakers_tripped, 0u);
  EXPECT_EQ(report.victim_breakers_tripped, 0u);
  EXPECT_TRUE(report.breakers_reclosed);
  // Shed provenance: quota and fairness both engaged during the flood.
  EXPECT_GT(report.shed_quota, 0u);
  EXPECT_GT(report.shed_fairness, 0u);
  // Nothing lost, victim tail bounded, and every shed has a counter +
  // controller + journal twin per account.
  EXPECT_EQ(report.silent_drops, 0u);
  EXPECT_LE(report.victim_p99_flood_ms, report.victim_p99_bound_ms);
  EXPECT_TRUE(report.sheds_reconciled);
  EXPECT_GT(report.tenant_breakers, 0u);
  EXPECT_TRUE(report.ok());

  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"aggressor_shed_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"sheds_reconciled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST(NoisyNeighborTest, SameSeedSameShedSchedule) {
  NoisyNeighborOptions options = SmallDrill();
  options.seed = 7;
  NoisyNeighborReport a = RunNoisyNeighborDrill(options);
  NoisyNeighborReport b = RunNoisyNeighborDrill(options);
  // Quota refill and fairness run on the fake clock, so the entire shed
  // schedule (counts per class and per reason) replays exactly.
  EXPECT_EQ(a.aggressor_shed, b.aggressor_shed);
  EXPECT_EQ(a.victim_shed, b.victim_shed);
  EXPECT_EQ(a.shed_quota, b.shed_quota);
  EXPECT_EQ(a.shed_fairness, b.shed_fairness);
  EXPECT_EQ(a.shed_global, b.shed_global);
  EXPECT_GT(a.aggressor_shed, 0u);
}

}  // namespace
}  // namespace querc::core
