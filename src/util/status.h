#ifndef QUERC_UTIL_STATUS_H_
#define QUERC_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace querc::util {

/// Error codes used across the library. Modeled on the RocksDB/absl Status
/// idiom: library code reports failures through `Status` / `StatusOr`
/// return values instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIoError,
  kCorruption,
  kUnavailable,        ///< transient: a dependency is down (retryable)
  kResourceExhausted,  ///< load shedding / quota: try again later
  kDeadlineExceeded,   ///< a latency budget expired before completion
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error result. The OK status carries no
/// message and no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace querc::util

/// Propagates a non-OK Status from the evaluated expression to the caller.
#define QUERC_RETURN_IF_ERROR(expr)                       \
  do {                                                    \
    ::querc::util::Status _querc_status = (expr);         \
    if (!_querc_status.ok()) return _querc_status;        \
  } while (0)

#endif  // QUERC_UTIL_STATUS_H_
