#ifndef QUERC_ML_KNN_H_
#define QUERC_ML_KNN_H_

#include <string>
#include <vector>

#include "ml/dataset.h"

namespace querc::ml {

/// Brute-force k-nearest-neighbor classifier (Euclidean). Simple, exact;
/// used as an alternative labeler and by the query recommender.
class KnnClassifier : public VectorClassifier {
 public:
  struct Options {
    int k = 5;
  };

  explicit KnnClassifier(const Options& options) : options_(options) {}

  void Fit(const Dataset& data) override;
  int Predict(const nn::Vec& v) const override;
  std::string name() const override { return "knn"; }

  /// Indices of the k nearest training points, nearest first.
  std::vector<size_t> Neighbors(const nn::Vec& v, int k) const;

 private:
  Options options_;
  Dataset train_;
  int num_classes_ = 0;
};

}  // namespace querc::ml

#endif  // QUERC_ML_KNN_H_
