#ifndef QUERC_UTIL_LOGGING_H_
#define QUERC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace querc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// When enabled, every record is prefixed with an ISO-8601 UTC timestamp
/// at millisecond resolution (e.g. "2026-08-06T12:34:56.789Z "). Off by
/// default to keep example/CLI output stable.
void SetLogTimestamps(bool enabled);

/// When enabled, every record carries the emitting thread's id
/// ("[tid 140213...] ") — useful when QWorkerPool shards interleave.
void SetLogThreadIds(bool enabled);

namespace internal_logging {

/// Stream-style log-line builder. The whole record (prefix + message +
/// newline) is emitted by ONE fwrite to stderr followed by a flush, so
/// records from concurrent threads — e.g. QWorkerPool shards — never
/// interleave mid-line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace querc::util

#define QUERC_LOG(level)                                            \
  ::querc::util::internal_logging::LogMessage(                      \
      ::querc::util::LogLevel::k##level, __FILE__, __LINE__)

#endif  // QUERC_UTIL_LOGGING_H_
