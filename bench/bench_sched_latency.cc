// Scheduling-latency benchmark for the laned ThreadPool (DESIGN.md §17):
// an open-loop interactive probe stream measures submit→start latency on
// a small pool while a feeder keeps the batch lane flooded with sleepy
// tasks. Three phases: unloaded (no flood), lanes ON (interactive probes
// vs batch flood — the scheduler's whole point), lanes OFF baseline
// (probes ride the SAME lane as the flood, i.e. the old single-FIFO
// behavior) — exported to BENCH_sched.json.
//
// With --smoke the run is truncated for CI and the process fails unless
// the scheduling CONTRACT holds: lanes-on interactive p99 under the
// flood stays within max(10x unloaded p99, 20 ms), the lanes-off
// baseline violates that same bound (the flood really is heavy enough to
// matter), no probe is lost, and the flood makes progress (batch is
// starvation-bounded, not starved out). The flood tasks *sleep* rather
// than spin, so queueing delay dominates and the contract is robust
// under sanitizer slowdowns; the stricter perf gate — lanes-off p99 at
// least 2x the lanes-on p99 — runs only when --no-perf-gate is absent,
// matching bench_tenant_fairness (tools/verify_matrix.sh passes
// --no-perf-gate for sanitizer configs).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/lane.h"
#include "util/thread_pool.h"
#include "util/topology.h"

namespace querc::bench {
namespace {

using querc::util::Lane;
using querc::util::ThreadPool;

// Two workers keep the pool easy to saturate; the flood depth then sets
// the FIFO backlog a same-lane probe must wait out (~depth/2 ms).
constexpr size_t kPoolThreads = 2;
constexpr double kFloodTaskMs = 1.0;

double Percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

struct PhaseResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t samples = 0;        // probes that actually ran
  size_t flood_started = 0;  // flood tasks that ran during the phase
};

/// Runs one probe phase: `probes` tasks submitted on `probe_lane` at
/// `spacing_ms` intervals, each recording its own submit→start latency.
/// With `flood_depth` > 0 a feeder keeps that many sleep(1ms) tasks
/// outstanding on the batch lane for the whole phase.
PhaseResult RunPhase(ThreadPool& pool, Lane probe_lane, size_t probes,
                     double spacing_ms, size_t flood_depth) {
  std::atomic<bool> stop{false};
  std::atomic<size_t> in_flight{0};
  std::atomic<size_t> flood_started{0};
  std::thread feeder;
  if (flood_depth > 0) {
    feeder = util::SpawnThread("sched-feeder", [&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (in_flight.load(std::memory_order_relaxed) >= flood_depth) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        in_flight.fetch_add(1, std::memory_order_relaxed);
        pool.Submit(Lane::kBatch, [&] {
          flood_started.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<int64_t>(kFloodTaskMs * 1000.0)));
          in_flight.fetch_sub(1, std::memory_order_relaxed);
        });
      }
    });
    // Let the flood build to full depth before probing starts.
    while (in_flight.load(std::memory_order_relaxed) < flood_depth) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  // Preallocated per-probe slots: each probe writes only its own index,
  // and `done` (acq_rel) publishes the writes to the main thread.
  std::vector<double> latency_ms(probes, -1.0);
  std::atomic<size_t> done{0};
  for (size_t i = 0; i < probes; ++i) {
    int64_t submitted_us = pool.NowUs();
    pool.Submit(probe_lane, [&pool, &latency_ms, &done, i, submitted_us] {
      latency_ms[i] =
          static_cast<double>(pool.NowUs() - submitted_us) / 1000.0;
      done.fetch_add(1, std::memory_order_acq_rel);
    });
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<int64_t>(spacing_ms * 1000.0)));
  }
  while (done.load(std::memory_order_acquire) < probes) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  PhaseResult result;
  result.flood_started = flood_started.load(std::memory_order_relaxed);
  if (flood_depth > 0) {
    stop.store(true, std::memory_order_relaxed);
    feeder.join();
    pool.WaitIdle();  // drain the residual flood before the next phase
  }
  std::vector<double> samples;
  samples.reserve(probes);
  for (double ms : latency_ms) {
    if (ms >= 0.0) samples.push_back(ms);
  }
  result.samples = samples.size();
  result.p50_ms = Percentile(samples, 0.50);
  result.p99_ms = Percentile(samples, 0.99);
  return result;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool perf_gate = true;
  const char* out_path = "BENCH_sched.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-perf-gate") == 0) {
      perf_gate = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_sched_latency [--smoke] [--no-perf-gate] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  ThreadPool::Options pool_options;
  pool_options.num_threads = kPoolThreads;
  ThreadPool pool(pool_options);

  const size_t flood_depth = smoke ? 128 : 256;
  const size_t on_probes = smoke ? 150 : 400;
  // Same-lane probes each wait out the whole FIFO backlog, so fewer of
  // them keep the phase (and CI) bounded.
  const size_t off_probes = smoke ? 40 : 80;
  const double spacing_ms = 2.0;

  std::printf("=== sched latency: %zu-thread pool, batch flood depth %zu "
              "(%.1f ms sleep tasks), %zu/%zu probes at %.1f ms spacing "
              "===\n",
              pool.num_threads(), flood_depth, kFloodTaskMs, on_probes,
              off_probes, spacing_ms);

  PhaseResult unloaded =
      RunPhase(pool, Lane::kInteractive, on_probes, spacing_ms, 0);
  PhaseResult lanes_on =
      RunPhase(pool, Lane::kInteractive, on_probes, spacing_ms, flood_depth);
  PhaseResult lanes_off =
      RunPhase(pool, Lane::kBatch, off_probes, spacing_ms, flood_depth);

  const double bound_ms = std::max(10.0 * unloaded.p99_ms, 20.0);
  std::printf("  unloaded:  p50 %.3f ms, p99 %.3f ms (%zu probes)\n",
              unloaded.p50_ms, unloaded.p99_ms, unloaded.samples);
  std::printf("  lanes ON:  p50 %.3f ms, p99 %.3f ms (%zu probes, %zu "
              "flood tasks ran)\n",
              lanes_on.p50_ms, lanes_on.p99_ms, lanes_on.samples,
              lanes_on.flood_started);
  std::printf("  lanes OFF: p50 %.3f ms, p99 %.3f ms (%zu probes, %zu "
              "flood tasks ran)\n",
              lanes_off.p50_ms, lanes_off.p99_ms, lanes_off.samples,
              lanes_off.flood_started);
  std::printf("  contract bound: %.3f ms\n", bound_ms);

  if (!smoke) {
    // Latency-vs-depth curves for BENCH_sched.json: how the interactive
    // tail holds (lanes on) or collapses (lanes off) as the batch
    // backlog deepens.
    for (size_t depth : {size_t{32}, size_t{96}, size_t{192}}) {
      PhaseResult on = RunPhase(pool, Lane::kInteractive, 120, spacing_ms,
                                depth);
      PhaseResult off = RunPhase(pool, Lane::kBatch, 30, spacing_ms, depth);
      std::printf("  depth %3zu: interactive p99 %.3f ms | same-lane p99 "
                  "%.3f ms\n",
                  depth, on.p99_ms, off.p99_ms);
      obs::Labels on_labels = {{"depth", std::to_string(depth)},
                               {"lanes", "on"}};
      obs::Labels off_labels = {{"depth", std::to_string(depth)},
                                {"lanes", "off"}};
      auto& registry = obs::MetricsRegistry::Global();
      registry
          .GetGauge("bench_sched_curve_p99_ms", on_labels,
                    "Probe p99 vs batch-flood depth, lanes on/off")
          .Set(on.p99_ms);
      registry.GetGauge("bench_sched_curve_p99_ms", off_labels, "")
          .Set(off.p99_ms);
    }
  }

  auto& registry = obs::MetricsRegistry::Global();
  auto set = [&registry](const std::string& name, const obs::Labels& labels,
                         const std::string& help, double value) {
    registry.GetGauge(name, labels, help).Set(value);
  };
  set("bench_sched_p99_ms", {{"phase", "unloaded"}},
      "Probe submit-to-start p99 per phase, ms", unloaded.p99_ms);
  set("bench_sched_p99_ms", {{"phase", "loaded_lanes_on"}}, "",
      lanes_on.p99_ms);
  set("bench_sched_p99_ms", {{"phase", "loaded_lanes_off"}}, "",
      lanes_off.p99_ms);
  set("bench_sched_bound_ms", {},
      "Contract bound: max(10x unloaded p99, 20 ms)", bound_ms);
  set("bench_sched_flood_tasks", {},
      "Batch flood tasks completed while interactive probes ran",
      static_cast<double>(lanes_on.flood_started));

  // Contract (every config, sanitizers included): the lanes keep the
  // interactive tail bounded, the same flood breaks the same-lane
  // baseline, nothing is lost, and the batch lane still made progress.
  bool contract_ok =
      unloaded.samples == on_probes && lanes_on.samples == on_probes &&
      lanes_off.samples == off_probes && lanes_on.p99_ms <= bound_ms &&
      lanes_off.p99_ms > bound_ms && lanes_on.flood_started > 0;
  set("bench_sched_contract_ok", {},
      "1 when the lane-scheduling contract held", contract_ok ? 1.0 : 0.0);

  std::string json = obs::ExportJson(registry, "bench_");
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  if (!contract_ok) {
    std::fprintf(stderr,
                 "FAIL: scheduling contract (lanes_on p99 %.3f ms vs bound "
                 "%.3f ms, lanes_off p99 %.3f ms, probes %zu/%zu/%zu, "
                 "flood %zu)\n",
                 lanes_on.p99_ms, bound_ms, lanes_off.p99_ms,
                 unloaded.samples, lanes_on.samples, lanes_off.samples,
                 lanes_on.flood_started);
    return 1;
  }
  if (perf_gate) {
    // Plain-config perf gate: the lanes must buy a real multiple, not
    // just squeak under the bound.
    if (lanes_off.p99_ms < 2.0 * lanes_on.p99_ms) {
      std::fprintf(stderr,
                   "FAIL: lanes-off p99 %.3f ms not at least 2x lanes-on "
                   "p99 %.3f ms\n",
                   lanes_off.p99_ms, lanes_on.p99_ms);
      return 1;
    }
  }
  if (smoke) std::printf("smoke OK\n");
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main(int argc, char** argv) { return querc::bench::Main(argc, argv); }
