file(REMOVE_RECURSE
  "CMakeFiles/test_integration_service.dir/test_integration_service.cc.o"
  "CMakeFiles/test_integration_service.dir/test_integration_service.cc.o.d"
  "test_integration_service"
  "test_integration_service.pdb"
  "test_integration_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
