#include "sql/normalizer.h"

#include "util/string_util.h"

namespace querc::sql {

std::vector<std::string> Normalize(const TokenList& tokens,
                                   const NormalizeOptions& options) {
  std::vector<std::string> words;
  words.reserve(tokens.size());
  for (const Token& t : tokens) {
    switch (t.type) {
      case TokenType::kComment:
        if (!options.strip_comments) words.push_back(t.text);
        break;
      case TokenType::kNumber:
        words.push_back(options.fold_literals ? kNumberPlaceholder : t.text);
        break;
      case TokenType::kString:
        words.push_back(options.fold_literals ? kStringPlaceholder : t.text);
        break;
      case TokenType::kParameter:
        words.push_back(options.fold_parameters ? kParamPlaceholder : t.text);
        break;
      case TokenType::kIdentifier:
      case TokenType::kQuotedIdentifier:
        words.push_back(options.lowercase_identifiers ? util::ToLower(t.text)
                                                      : t.text);
        break;
      case TokenType::kKeyword:
      case TokenType::kOperator:
      case TokenType::kPunct:
        words.push_back(t.text);
        break;
      case TokenType::kEnd:
        break;
    }
  }
  return words;
}

std::string NormalizedText(const TokenList& tokens,
                           const NormalizeOptions& options) {
  return util::Join(Normalize(tokens, options), " ");
}

}  // namespace querc::sql
