# Empty dependencies file for querc_ml.
# This may be replaced when dependencies are built.
