# Empty dependencies file for bench_ablation_dimension.
# This may be replaced when dependencies are built.
