# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/usr/bin/cmake" "-E" "env" "/root/repo/build-tsan/tools/querc" "generate" "--kind" "snowflake" "--accounts" "2" "--queries" "120" "--users" "3" "--out" "/root/repo/build-tsan/tools/cli_test_wl.csv")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_train "/root/repo/build-tsan/tools/querc" "train" "--embedder" "dbow" "--workload" "/root/repo/build-tsan/tools/cli_test_wl.csv" "--model" "/root/repo/build-tsan/tools/cli_test_m.bin" "--epochs" "3")
set_tests_properties(cli_train PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build-tsan/tools/querc" "info" "--model" "/root/repo/build-tsan/tools/cli_test_m.bin")
set_tests_properties(cli_info PROPERTIES  DEPENDS "cli_train" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_summarize "/root/repo/build-tsan/tools/querc" "summarize" "--model" "/root/repo/build-tsan/tools/cli_test_m.bin" "--workload" "/root/repo/build-tsan/tools/cli_test_wl.csv" "--k" "4")
set_tests_properties(cli_summarize PROPERTIES  DEPENDS "cli_train" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_label "/root/repo/build-tsan/tools/querc" "label" "--model" "/root/repo/build-tsan/tools/cli_test_m.bin" "--history" "/root/repo/build-tsan/tools/cli_test_wl.csv" "--batch" "/root/repo/build-tsan/tools/cli_test_wl.csv" "--task" "account")
set_tests_properties(cli_label PROPERTIES  DEPENDS "cli_train" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate_tpch "/root/repo/build-tsan/tools/querc" "generate" "--kind" "tpch" "--instances" "3" "--out" "/root/repo/build-tsan/tools/cli_test_tpch.csv")
set_tests_properties(cli_generate_tpch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tune "/root/repo/build-tsan/tools/querc" "tune" "--workload" "/root/repo/build-tsan/tools/cli_test_tpch.csv" "--budget" "8" "--merge")
set_tests_properties(cli_tune PROPERTIES  DEPENDS "cli_generate_tpch" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_command "/root/repo/build-tsan/tools/querc" "frobnicate")
set_tests_properties(cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explain "/root/repo/build-tsan/tools/querc" "explain" "--workload" "/root/repo/build-tsan/tools/cli_test_tpch.csv" "--indexes" "lineitem:l_shipdate" "--limit" "2")
set_tests_properties(cli_explain PROPERTIES  DEPENDS "cli_generate_tpch" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_drift "/root/repo/build-tsan/tools/querc" "drift" "--model" "/root/repo/build-tsan/tools/cli_test_m.bin" "--reference" "/root/repo/build-tsan/tools/cli_test_wl.csv" "--recent" "/root/repo/build-tsan/tools/cli_test_wl.csv")
set_tests_properties(cli_drift PROPERTIES  DEPENDS "cli_train" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;33;add_test;/root/repo/tools/CMakeLists.txt;0;")
