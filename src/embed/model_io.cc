#include "embed/model_io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "embed/doc2vec.h"
#include "embed/feature_embedder.h"
#include "embed/lstm_autoencoder.h"
#include "embed/tfidf_embedder.h"
#include "nn/serialize.h"

namespace querc::embed {

namespace {
// Must match the classes' private magic numbers (checked by tests).
constexpr uint64_t kDoc2VecMagic = 0x51444f4332564532ULL;    // "QDOC2VE2"
constexpr uint64_t kDoc2VecMagicV1 = 0x51444f4332564543ULL;  // "QDOC2VEC"
constexpr uint64_t kLstmMagic = 0x514c53544d414532ULL;       // "QLSTMAE2"
constexpr uint64_t kTfidfMagic = 0x5154464944463031ULL;      // "QTFIDF01"
constexpr uint64_t kFeatureMagic = 0x5146454154454d31ULL;    // "QFEATEM1"
}  // namespace

util::Status SaveEmbedder(const Embedder& embedder, std::ostream& out) {
  if (const auto* d2v = dynamic_cast<const Doc2VecEmbedder*>(&embedder)) {
    return d2v->Save(out);
  }
  if (const auto* lstm =
          dynamic_cast<const LstmAutoencoderEmbedder*>(&embedder)) {
    return lstm->Save(out);
  }
  if (const auto* tfidf = dynamic_cast<const TfidfEmbedder*>(&embedder)) {
    return tfidf->Save(out);
  }
  if (const auto* feat = dynamic_cast<const FeatureEmbedder*>(&embedder)) {
    return feat->Save(out);
  }
  return util::Status::Unimplemented(
      "no persistence for embedder type: " + embedder.name());
}

util::Status SaveEmbedderFile(const Embedder& embedder,
                              const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return util::Status::IoError("cannot open " + path);
  return SaveEmbedder(embedder, f);
}

util::StatusOr<std::unique_ptr<Embedder>> LoadEmbedder(std::istream& in) {
  uint64_t magic = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, magic));
  in.seekg(-static_cast<std::streamoff>(sizeof(magic)), std::ios::cur);
  if (!in) return util::Status::IoError("stream not seekable");
  if (magic == kDoc2VecMagic) {
    auto loaded = Doc2VecEmbedder::Load(in);
    if (!loaded.ok()) return loaded.status();
    return std::unique_ptr<Embedder>(
        std::make_unique<Doc2VecEmbedder>(std::move(loaded).value()));
  }
  if (magic == kLstmMagic) {
    auto loaded = LstmAutoencoderEmbedder::Load(in);
    if (!loaded.ok()) return loaded.status();
    return std::unique_ptr<Embedder>(std::make_unique<LstmAutoencoderEmbedder>(
        std::move(loaded).value()));
  }
  if (magic == kTfidfMagic) {
    auto loaded = TfidfEmbedder::Load(in);
    if (!loaded.ok()) return loaded.status();
    return std::unique_ptr<Embedder>(
        std::make_unique<TfidfEmbedder>(std::move(loaded).value()));
  }
  if (magic == kFeatureMagic) {
    auto loaded = FeatureEmbedder::Load(in);
    if (!loaded.ok()) return loaded.status();
    return std::unique_ptr<Embedder>(
        std::make_unique<FeatureEmbedder>(std::move(loaded).value()));
  }
  if (magic == kDoc2VecMagicV1) {
    return util::Status::Corruption(
        "doc2vec: v1 model file lacks min_learning_rate; retrain and re-save");
  }
  return util::Status::Corruption("unknown embedder model magic");
}

util::StatusOr<std::unique_ptr<Embedder>> LoadEmbedderFile(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return util::Status::IoError("cannot open " + path);
  return LoadEmbedder(f);
}

}  // namespace querc::embed
