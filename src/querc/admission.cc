#include "querc/admission.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/flight_recorder.h"

namespace querc::core {

namespace {

/// Floor for fair-share weights: a zero or negative configured weight
/// still participates (minimally) instead of poisoning the water-filling
/// arithmetic.
constexpr double kMinWeight = 1e-6;

util::ConcurrentAggregator::Options ShedAggregatorOptions(
    size_t max_tenants) {
  util::ConcurrentAggregator::Options options;
  options.capacity = std::max<size_t>(max_tenants, 16);
  options.shards = 4;
  return options;
}

obs::Counter& TenantEvictionsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_tenant_states_evicted_total", {},
      "Per-tenant admission states displaced by the max_tenants bound");
  return counter;
}

}  // namespace

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQuota:
      return "quota";
    case ShedReason::kFairness:
      return "fairness";
    case ShedReason::kGlobal:
      return "global";
  }
  return "global";
}

TenantAdmissionController::TenantAdmissionController(
    const TenantAdmissionOptions& options)
    : options_(options),
      sheds_by_account_(ShedAggregatorOptions(options.max_tenants)) {
  if (options_.max_tenants == 0) options_.max_tenants = 1;
}

int64_t TenantAdmissionController::NowUs() const {
  return options_.clock ? options_.clock() : SteadyNowMicros();
}

TenantAdmissionController::TenantState&
TenantAdmissionController::StateForLocked(const std::string& account,
                                          int64_t now_us) {
  auto it = tenants_.find(account);
  if (it != tenants_.end()) {
    it->second.last_active_us = now_us;
    return it->second;
  }
  if (tenants_.size() >= options_.max_tenants) {
    // Evict the least-recently-active idle tenant. A tenant with work in
    // flight is never evicted (its Release must still balance the gauge),
    // and neither is one touched at this very timestamp — AdmitBatch
    // resolves several states under one `now_us` and holds pointers to
    // them. If nothing qualifies the soft bound overshoots instead.
    auto victim = tenants_.end();
    for (auto cand = tenants_.begin(); cand != tenants_.end(); ++cand) {
      if (cand->second.in_flight != 0) continue;
      if (cand->second.last_active_us >= now_us) continue;
      if (victim == tenants_.end() ||
          cand->second.last_active_us < victim->second.last_active_us) {
        victim = cand;
      }
    }
    if (victim != tenants_.end()) {
      if (victim->second.in_flight_gauge != nullptr) {
        victim->second.in_flight_gauge->Set(0.0);
      }
      tenants_.erase(victim);
      evicted_tenants_.fetch_add(1, std::memory_order_relaxed);
      TenantEvictionsCounter().Increment();
    }
  }
  TenantState& state = tenants_[account];
  auto quota = options_.tenants.find(account);
  state.quota =
      quota != options_.tenants.end() ? quota->second : options_.default_quota;
  state.tokens = state.quota.burst;  // buckets start full (allow the burst)
  state.last_refill_us = now_us;
  state.last_active_us = now_us;
  return state;
}

void TenantAdmissionController::RefillLocked(TenantState& state,
                                             int64_t now_us) {
  if (state.quota.burst <= 0.0) return;  // unlimited: no bucket to fill
  int64_t elapsed_us = now_us - state.last_refill_us;
  if (elapsed_us <= 0) return;
  state.tokens = std::min(
      state.quota.burst,
      state.tokens + state.quota.rate_per_sec * 1e-6 *
                         static_cast<double>(elapsed_us));
  state.last_refill_us = now_us;
}

void TenantAdmissionController::ShedLocked(const std::string& account,
                                           TenantState& state,
                                           ShedReason reason) {
  size_t r = static_cast<size_t>(reason);
  ++state.sheds[r];
  shed_totals_[r].fetch_add(1, std::memory_order_relaxed);
  if (state.shed_counters[r] == nullptr) {
    state.shed_counters[r] = &obs::MetricsRegistry::Global().GetCounter(
        "querc_shed_total",
        {{"account", account},
         {"policy", options_.policy_label},
         {"reason", ShedReasonName(reason)}},
        "Queries shed at pool admission, per shed policy");
  }
  state.shed_counters[r]->Increment();
  sheds_by_account_.Record(account, 1, 1);
  // The journal event carries the ACCOUNT as its label (truncated to the
  // event's 24 chars) and the reason in the detail byte, so a drill can
  // reconcile per-account shed counts straight from the journal.
  obs::FlightRecorder::Global().RecordInstant(
      obs::EventKind::kShed, account.c_str(), static_cast<uint8_t>(reason));
}

void TenantAdmissionController::AdmitLocked(const std::string& account,
                                            TenantState& state, size_t n,
                                            int64_t now_us) {
  state.admitted += n;
  state.in_flight += n;
  state.last_active_us = now_us;
  if (state.in_flight_gauge == nullptr) {
    state.in_flight_gauge = &obs::MetricsRegistry::Global().GetGauge(
        "querc_tenant_in_flight", {{"account", account}},
        "Queries currently admitted and in flight, per account");
  }
  state.in_flight_gauge->Set(static_cast<double>(state.in_flight));
}

size_t TenantAdmissionController::AllocateFair(std::vector<Group*>& groups,
                                               size_t capacity) {
  size_t granted_total = 0;
  std::vector<Group*> active;
  active.reserve(groups.size());
  for (Group* g : groups) {
    if (g->quota_ok > g->granted) active.push_back(g);
  }
  while (capacity > 0 && !active.empty()) {
    if (capacity <= active.size()) {
      // Scarcer than one slot per tenant: deal single slots in batch
      // arrival order — the guaranteed minimum degenerates to strict
      // round-robin.
      for (Group* g : active) {
        if (capacity == 0) break;
        ++g->granted;
        ++granted_total;
        --capacity;
      }
      break;
    }
    // Guaranteed minimum first: one slot per active tenant...
    for (Group* g : active) {
      ++g->granted;
      ++granted_total;
      --capacity;
    }
    // ...then split this round's remaining capacity by weight, capped by
    // each tenant's remaining demand and the capacity left.
    double weight_sum = 0.0;
    for (Group* g : active) {
      if (g->quota_ok > g->granted) {
        weight_sum += std::max(g->state->quota.weight, kMinWeight);
      }
    }
    if (weight_sum > 0.0 && capacity > 0) {
      size_t round_capacity = capacity;
      for (Group* g : active) {
        if (g->quota_ok <= g->granted) continue;
        double w = std::max(g->state->quota.weight, kMinWeight);
        size_t share = static_cast<size_t>(
            static_cast<double>(round_capacity) * w / weight_sum);
        size_t take = std::min(
            {share, g->quota_ok - g->granted, capacity});
        g->granted += take;
        granted_total += take;
        capacity -= take;
      }
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [](const Group* g) {
                                  return g->granted >= g->quota_ok;
                                }),
                 active.end());
  }
  return granted_total;
}

std::vector<AdmitDecision> TenantAdmissionController::AdmitBatch(
    const workload::Workload& batch, size_t capacity) {
  std::vector<AdmitDecision> out(batch.size());
  if (batch.empty()) return out;
  const int64_t now_us = NowUs();
  util::MutexLock lock(&mu_);
  // Group batch positions per account, preserving arrival order within
  // each tenant's pending queue (windowed tasks depend on it).
  std::vector<Group> groups;
  std::map<std::string, size_t> group_of;
  for (size_t i = 0; i < batch.size(); ++i) {
    auto [it, fresh] = group_of.emplace(batch[i].account, groups.size());
    if (fresh) {
      Group g;
      g.account = batch[i].account;
      groups.push_back(std::move(g));
    }
    groups[it->second].indices.push_back(i);
  }
  // Resolve states after grouping: groups hold stable pointers only once
  // no more map insertions happen.
  for (Group& g : groups) g.state = &StateForLocked(g.account, now_us);
  // Stage 1 — quota: each tenant's head-of-queue prefix survives its
  // token bucket; the tail is shed (reason=quota).
  for (Group& g : groups) {
    RefillLocked(*g.state, now_us);
    size_t demand = g.indices.size();
    if (g.state->quota.burst <= 0.0) {
      g.quota_ok = demand;
    } else {
      size_t allowed =
          std::min(demand, static_cast<size_t>(g.state->tokens));
      g.state->tokens -= static_cast<double>(allowed);
      g.quota_ok = allowed;
      g.over_quota = allowed < demand;
    }
    for (size_t j = g.quota_ok; j < demand; ++j) {
      out[g.indices[j]] = {false, ShedReason::kQuota};
      ShedLocked(g.account, *g.state, ShedReason::kQuota);
    }
  }
  // Stage 2 — fairness: when the surviving demand still exceeds the free
  // global capacity, water-fill it. Under-quota tenants are served with
  // the full capacity FIRST; over-quota tenants (the ones their own
  // bucket already clipped this batch) split only what is left — the
  // guaranteed-minimum ordering.
  size_t total_ok = 0;
  for (const Group& g : groups) total_ok += g.quota_ok;
  if (total_ok <= capacity) {
    for (Group& g : groups) g.granted = g.quota_ok;
  } else {
    std::vector<Group*> under;
    std::vector<Group*> over;
    for (Group& g : groups) (g.over_quota ? over : under).push_back(&g);
    size_t left = capacity;
    left -= AllocateFair(under, left);
    AllocateFair(over, left);
    for (Group& g : groups) {
      for (size_t j = g.granted; j < g.quota_ok; ++j) {
        out[g.indices[j]] = {false, ShedReason::kFairness};
        ShedLocked(g.account, *g.state, ShedReason::kFairness);
      }
    }
  }
  for (Group& g : groups) {
    if (g.granted > 0) AdmitLocked(g.account, *g.state, g.granted, now_us);
  }
  return out;
}

AdmitDecision TenantAdmissionController::AdmitOne(
    const workload::LabeledQuery& query) {
  const int64_t now_us = NowUs();
  util::MutexLock lock(&mu_);
  TenantState& state = StateForLocked(query.account, now_us);
  RefillLocked(state, now_us);
  if (state.quota.burst > 0.0) {
    if (state.tokens < 1.0) {
      ShedLocked(query.account, state, ShedReason::kQuota);
      return {false, ShedReason::kQuota};
    }
    state.tokens -= 1.0;
  }
  AdmitLocked(query.account, state, 1, now_us);
  return {true, ShedReason::kGlobal};
}

void TenantAdmissionController::Release(const std::string& account,
                                        size_t n) {
  if (n == 0) return;
  util::MutexLock lock(&mu_);
  auto it = tenants_.find(account);
  if (it == tenants_.end()) return;
  TenantState& state = it->second;
  state.in_flight -= std::min(state.in_flight, n);
  if (state.in_flight_gauge != nullptr) {
    state.in_flight_gauge->Set(static_cast<double>(state.in_flight));
  }
}

void TenantAdmissionController::OnGlobalShed(const std::string& account) {
  const int64_t now_us = NowUs();
  util::MutexLock lock(&mu_);
  TenantState& state = StateForLocked(account, now_us);
  if (state.in_flight > 0) {
    --state.in_flight;
    if (state.admitted > 0) --state.admitted;
    if (state.in_flight_gauge != nullptr) {
      state.in_flight_gauge->Set(static_cast<double>(state.in_flight));
    }
  }
  ShedLocked(account, state, ShedReason::kGlobal);
}

std::vector<TenantAdmissionStats> TenantAdmissionController::Stats() const {
  std::vector<TenantAdmissionStats> out;
  util::MutexLock lock(&mu_);
  out.reserve(tenants_.size());
  for (const auto& [account, state] : tenants_) {
    TenantAdmissionStats row;
    row.account = account;
    row.tokens = state.tokens;
    row.weight = state.quota.weight;
    row.in_flight = state.in_flight;
    row.admitted = state.admitted;
    row.shed_quota = state.sheds[static_cast<size_t>(ShedReason::kQuota)];
    row.shed_fairness =
        state.sheds[static_cast<size_t>(ShedReason::kFairness)];
    row.shed_global = state.sheds[static_cast<size_t>(ShedReason::kGlobal)];
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<util::AggregateEntry> TenantAdmissionController::TopSheds(
    size_t n) const {
  return sheds_by_account_.Top(n);
}

size_t TenantAdmissionController::tracked_tenants() const {
  util::MutexLock lock(&mu_);
  return tenants_.size();
}

TenantBreakerMap::TenantBreakerMap(Options options)
    : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
}

std::shared_ptr<CircuitBreaker> TenantBreakerMap::GetOrCreate(
    const std::string& account) {
  static obs::Counter& evictions = obs::MetricsRegistry::Global().GetCounter(
      "querc_tenant_breakers_evicted_total", {},
      "Per-tenant circuit breakers displaced by the bounded breaker map");
  util::MutexLock lock(&mu_);
  auto it = breakers_.find(account);
  if (it != breakers_.end()) {
    ++it->second.uses;
    return it->second.breaker;
  }
  if (breakers_.size() >= options_.capacity) {
    // Evict-least: the least-used breaker goes, but a closed one goes
    // before any open/half-open one — an open breaker is live evidence
    // of a tenant's failing dependency and evicting it would amnesty the
    // fault.
    auto victim = breakers_.end();
    bool victim_closed = false;
    for (auto cand = breakers_.begin(); cand != breakers_.end(); ++cand) {
      bool closed =
          cand->second.breaker->state() == CircuitBreaker::State::kClosed;
      if (victim == breakers_.end() || (closed && !victim_closed) ||
          (closed == victim_closed &&
           cand->second.uses < victim->second.uses)) {
        victim = cand;
        victim_closed = closed;
      }
    }
    breakers_.erase(victim);
    evicted_.fetch_add(1, std::memory_order_relaxed);
    evictions.Increment();
  }
  Entry& entry = breakers_[account];
  entry.breaker = std::make_shared<CircuitBreaker>(
      options_.name_prefix + ":" + account, options_.breaker);
  entry.uses = 1;
  return entry.breaker;
}

std::vector<std::pair<std::string, CircuitBreaker::State>>
TenantBreakerMap::States() const {
  util::MutexLock lock(&mu_);
  std::vector<std::pair<std::string, CircuitBreaker::State>> out;
  out.reserve(breakers_.size());
  for (const auto& [account, entry] : breakers_) {
    out.emplace_back(entry.breaker->name(), entry.breaker->state());
  }
  return out;
}

size_t TenantBreakerMap::size() const {
  util::MutexLock lock(&mu_);
  return breakers_.size();
}

}  // namespace querc::core
