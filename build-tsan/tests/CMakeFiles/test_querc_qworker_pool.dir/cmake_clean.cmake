file(REMOVE_RECURSE
  "CMakeFiles/test_querc_qworker_pool.dir/test_querc_qworker_pool.cc.o"
  "CMakeFiles/test_querc_qworker_pool.dir/test_querc_qworker_pool.cc.o.d"
  "test_querc_qworker_pool"
  "test_querc_qworker_pool.pdb"
  "test_querc_qworker_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_querc_qworker_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
