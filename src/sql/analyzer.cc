#include "sql/analyzer.h"

#include <algorithm>

#include "util/string_util.h"

namespace querc::sql {

namespace {

/// Clauses tracked during the scan.
enum class Clause {
  kNone,
  kSelect,
  kFrom,
  kWhere,
  kGroupBy,
  kHaving,
  kOrderBy,
};

bool IsAggregate(const std::string& kw) {
  return kw == "SUM" || kw == "AVG" || kw == "MIN" || kw == "MAX" ||
         kw == "COUNT";
}

/// Recursive analyzer over tokens[begin, end).
class AnalyzerImpl {
 public:
  AnalyzerImpl(const TokenList& tokens, size_t begin, size_t end)
      : tokens_(tokens), begin_(begin), end_(end) {}

  QueryShape Run() {
    QueryShape shape;
    shape.token_count = end_ - begin_;
    Clause clause = Clause::kNone;
    size_t i = begin_;
    while (i < end_) {
      const Token& t = tokens_[i];
      // Subquery: '(' directly followed by SELECT.
      if (t.IsPunct('(') && i + 1 < end_ &&
          tokens_[i + 1].IsKeyword("SELECT")) {
        size_t close = FindMatchingParen(i);
        AnalyzerImpl sub(tokens_, i + 1, close);
        // Check the token before '(' for IN / EXISTS to classify the
        // predicate; the column (for IN) sits before that.
        RecordSubqueryPredicate(shape, i);
        shape.subqueries.push_back(sub.Run());
        i = close < end_ ? close + 1 : end_;
        continue;
      }
      if (t.type == TokenType::kKeyword) {
        const std::string& kw = t.text;
        if (kw == "SELECT") {
          clause = Clause::kSelect;
          shape.is_select = true;
          ++i;
          continue;
        }
        if (kw == "FROM") {
          clause = Clause::kFrom;
          i = ParseFromClause(shape, i + 1);
          clause = ClauseAt(i);
          continue;
        }
        if (kw == "WHERE") {
          clause = Clause::kWhere;
          i = ParsePredicates(shape, i + 1, /*is_having=*/false);
          clause = ClauseAt(i);
          continue;
        }
        if (kw == "GROUP" && NextIsKeyword(i, "BY")) {
          clause = Clause::kGroupBy;
          i = ParseColumnList(shape.group_by_columns, i + 2);
          clause = ClauseAt(i);
          continue;
        }
        if (kw == "ORDER" && NextIsKeyword(i, "BY")) {
          clause = Clause::kOrderBy;
          i = ParseColumnList(shape.order_by_columns, i + 2);
          clause = ClauseAt(i);
          continue;
        }
        if (kw == "HAVING") {
          shape.has_having = true;
          i = ParsePredicates(shape, i + 1, /*is_having=*/true);
          clause = ClauseAt(i);
          continue;
        }
        if (kw == "DISTINCT") {
          shape.has_distinct = true;
          ++i;
          continue;
        }
        if (kw == "LIMIT" || kw == "TOP" || kw == "FETCH") {
          shape.has_limit_or_top = true;
          ++i;
          continue;
        }
        if (kw == "UNION" || kw == "INTERSECT" || kw == "EXCEPT") {
          ++shape.set_operation_count;
          ++i;
          continue;
        }
        if (IsAggregate(kw) && i + 1 < end_ && tokens_[i + 1].IsPunct('(')) {
          shape.aggregate_functions.push_back(kw);
          ++i;
          continue;
        }
      }
      if (clause == Clause::kSelect && IsIdentifier(t)) {
        // Collect selected column references (qualified or bare).
        auto [qual, col, next] = ParseColumnRef(i);
        if (!col.empty()) {
          shape.select_columns.push_back(col);
          i = next;
          continue;
        }
      }
      if (clause == Clause::kSelect && t.IsOperator("*")) {
        if (shape.select_columns.empty() ||
            shape.select_columns.back() != "*") {
          shape.select_columns.push_back("*");
        }
      }
      ++i;
    }
    return shape;
  }

 private:
  static bool IsIdentifier(const Token& t) {
    return t.type == TokenType::kIdentifier ||
           t.type == TokenType::kQuotedIdentifier;
  }

  bool NextIsKeyword(size_t i, const char* kw) const {
    return i + 1 < end_ && tokens_[i + 1].IsKeyword(kw);
  }

  /// Returns the clause implied by the token at `i` (used after clause
  /// sub-parsers hand control back).
  Clause ClauseAt(size_t i) const {
    if (i >= end_) return Clause::kNone;
    return Clause::kNone;
  }

  size_t FindMatchingParen(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < end_; ++i) {
      if (tokens_[i].IsPunct('(')) ++depth;
      if (tokens_[i].IsPunct(')')) {
        if (--depth == 0) return i;
      }
    }
    return end_;
  }

  /// When a subquery starts at '(' index `open`, classify the preceding
  /// tokens as IN / NOT IN / EXISTS and record a predicate.
  void RecordSubqueryPredicate(QueryShape& shape, size_t open) const {
    if (open == begin_) return;
    const Token& prev = tokens_[open - 1];
    if (prev.IsKeyword("EXISTS")) {
      Predicate p;
      p.op = "EXISTS_SUBQUERY";
      shape.filters.push_back(std::move(p));
      return;
    }
    if (prev.IsKeyword("IN")) {
      Predicate p;
      p.op = "IN_SUBQUERY";
      // Column reference sits before IN (and possibly NOT).
      size_t j = open - 2;
      if (j > begin_ && tokens_[j].IsKeyword("NOT")) --j;
      if (j >= begin_ && IsIdentifier(tokens_[j])) {
        p.column = util::ToLower(tokens_[j].text);
        if (j >= begin_ + 2 && tokens_[j - 1].IsOperator(".") &&
            IsIdentifier(tokens_[j - 2])) {
          p.qualifier = util::ToLower(tokens_[j - 2].text);
        }
      }
      shape.filters.push_back(std::move(p));
    }
  }

  /// Parses `FROM table [AS] alias, table ... [JOIN table ON ...]`.
  /// Returns the index of the first token past the clause.
  size_t ParseFromClause(QueryShape& shape, size_t i) {
    bool expect_table = true;
    while (i < end_) {
      const Token& t = tokens_[i];
      if (t.type == TokenType::kKeyword) {
        const std::string& kw = t.text;
        if (kw == "WHERE" || kw == "GROUP" || kw == "ORDER" ||
            kw == "HAVING" || kw == "LIMIT" || kw == "UNION" ||
            kw == "INTERSECT" || kw == "EXCEPT" || kw == "FETCH") {
          return i;
        }
        if (kw == "JOIN") {
          expect_table = true;
          ++i;
          continue;
        }
        if (kw == "ON") {
          i = ParsePredicates(shape, i + 1, /*is_having=*/false,
                              /*stop_in_from=*/true);
          continue;
        }
        // INNER/LEFT/RIGHT/FULL/OUTER/CROSS/NATURAL/AS/USING — skip.
        ++i;
        continue;
      }
      if (t.IsPunct('(')) {
        // Derived table: handled by the main loop's subquery path only when
        // it owns the tokens; here, skip balanced parens (subquery will be
        // picked up when scanning resumes if it starts with SELECT).
        if (i + 1 < end_ && tokens_[i + 1].IsKeyword("SELECT")) {
          return i;  // hand back to the main loop to record the subquery
        }
        i = FindMatchingParen(i) + 1;
        continue;
      }
      if (t.IsPunct(',')) {
        expect_table = true;
        ++i;
        continue;
      }
      if (IsIdentifier(t)) {
        std::string name = util::ToLower(t.text);
        if (expect_table) {
          shape.tables.push_back(name);
          expect_table = false;
        } else {
          // Alias for the most recent table.
          if (!shape.tables.empty()) {
            shape.alias_to_table[name] = shape.tables.back();
          }
        }
        ++i;
        continue;
      }
      if (t.IsPunct(';')) return i;
      ++i;
    }
    return i;
  }

  /// Parses a column reference at `i`: `[qual .] name`. Returns
  /// {qualifier, column, next_index}; column empty if no ref begins at `i`.
  std::tuple<std::string, std::string, size_t> ParseColumnRef(size_t i) const {
    if (i >= end_ || !IsIdentifier(tokens_[i])) return {"", "", i};
    std::string first = util::ToLower(tokens_[i].text);
    if (i + 2 < end_ && tokens_[i + 1].IsOperator(".") &&
        IsIdentifier(tokens_[i + 2])) {
      return {first, util::ToLower(tokens_[i + 2].text), i + 3};
    }
    return {"", first, i + 1};
  }

  /// Scans predicate-bearing clause tokens (WHERE / ON / HAVING), recording
  /// filters and equi-joins. Returns index of the token that terminates the
  /// clause (a clause keyword or end).
  size_t ParsePredicates(QueryShape& shape, size_t i, bool is_having,
                         bool stop_in_from = false) {
    while (i < end_) {
      const Token& t = tokens_[i];
      if (t.type == TokenType::kKeyword) {
        const std::string& kw = t.text;
        if (kw == "GROUP" || kw == "ORDER" || kw == "HAVING" ||
            kw == "LIMIT" || kw == "UNION" || kw == "INTERSECT" ||
            kw == "EXCEPT" || kw == "FETCH" || kw == "WHERE") {
          return i;
        }
        if (stop_in_from && (kw == "JOIN" || kw == "INNER" || kw == "LEFT" ||
                             kw == "RIGHT" || kw == "FULL" || kw == "CROSS" ||
                             kw == "OUTER")) {
          return i;
        }
        if (IsAggregate(kw) && i + 1 < end_ && tokens_[i + 1].IsPunct('(')) {
          if (is_having) {
            shape.aggregate_functions.push_back(kw);
            // Record `AGG(col) op literal` as a HAVING predicate — the
            // pattern behind the TPC-H Q18 cardinality misestimation the
            // cost model reproduces.
            size_t close = FindMatchingParen(i + 1);
            std::string agg_col;
            for (size_t k = i + 2; k < close; ++k) {
              if (IsIdentifier(tokens_[k])) {
                agg_col = util::ToLower(tokens_[k].text);
                break;
              }
            }
            if (!agg_col.empty() && close + 1 < end_ &&
                tokens_[close + 1].type == TokenType::kOperator) {
              const std::string& cmp = tokens_[close + 1].text;
              if (cmp == "=" || cmp == "<" || cmp == ">" || cmp == "<=" ||
                  cmp == ">=") {
                Predicate p;
                p.op = "HAVING_" + cmp;
                p.column = agg_col;
                if (close + 2 < end_ &&
                    tokens_[close + 2].type == TokenType::kNumber) {
                  p.literals.push_back(tokens_[close + 2].text);
                }
                shape.filters.push_back(std::move(p));
              }
            }
            i = close < end_ ? close + 1 : end_;
            continue;
          }
          ++i;
          continue;
        }
      }
      if (t.IsPunct('(') && i + 1 < end_ &&
          tokens_[i + 1].IsKeyword("SELECT")) {
        return i;  // main loop records the subquery
      }
      if (IsIdentifier(t)) {
        size_t consumed = TryParsePredicate(shape, i, is_having);
        if (consumed > i) {
          i = consumed;
          continue;
        }
      }
      if (t.IsPunct(';')) return i;
      ++i;
    }
    return i;
  }

  /// Attempts to parse one predicate starting at the column reference at
  /// `i`. Returns the index after the predicate, or `i` if no pattern
  /// matches.
  size_t TryParsePredicate(QueryShape& shape, size_t i, bool is_having) {
    auto [qual, col, after_ref] = ParseColumnRef(i);
    if (col.empty() || after_ref >= end_) return i;
    const Token& op_tok = tokens_[after_ref];

    // IS [NOT] NULL
    if (op_tok.IsKeyword("IS")) {
      size_t j = after_ref + 1;
      bool negated = false;
      if (j < end_ && tokens_[j].IsKeyword("NOT")) {
        negated = true;
        ++j;
      }
      if (j < end_ && tokens_[j].IsKeyword("NULL")) {
        Predicate p;
        p.op = negated ? "IS NOT NULL" : "IS NULL";
        p.qualifier = qual;
        p.column = col;
        if (!is_having) shape.filters.push_back(std::move(p));
        return j + 1;
      }
      return i;
    }

    // [NOT] BETWEEN lit AND lit
    {
      size_t j = after_ref;
      if (j < end_ && tokens_[j].IsKeyword("NOT") && j + 1 < end_ &&
          tokens_[j + 1].IsKeyword("BETWEEN")) {
        ++j;
      }
      if (j < end_ && tokens_[j].IsKeyword("BETWEEN")) {
        size_t lo = j + 1;
        // Operand may be a literal or an arithmetic expression; grab the
        // first literal on each side of AND.
        size_t and_pos = lo;
        while (and_pos < end_ && !tokens_[and_pos].IsKeyword("AND")) {
          ++and_pos;
        }
        if (and_pos < end_) {
          Predicate p;
          p.op = "BETWEEN";
          p.qualifier = qual;
          p.column = col;
          for (size_t k = lo; k < and_pos; ++k) {
            if (tokens_[k].type == TokenType::kNumber ||
                tokens_[k].type == TokenType::kString) {
              p.literals.push_back(tokens_[k].text);
              p.literal_is_string = tokens_[k].type == TokenType::kString;
              break;
            }
          }
          size_t hi_end = and_pos + 1;
          while (hi_end < end_ && (tokens_[hi_end].type == TokenType::kNumber ||
                                   tokens_[hi_end].type == TokenType::kString ||
                                   tokens_[hi_end].IsKeyword("INTERVAL") ||
                                   tokens_[hi_end].IsOperator("+") ||
                                   tokens_[hi_end].IsOperator("-") ||
                                   tokens_[hi_end].IsKeyword("DATE") ||
                                   tokens_[hi_end].IsKeyword("MONTH") ||
                                   tokens_[hi_end].IsKeyword("YEAR") ||
                                   tokens_[hi_end].IsKeyword("DAY"))) {
            if (tokens_[hi_end].type == TokenType::kNumber ||
                tokens_[hi_end].type == TokenType::kString) {
              p.literals.push_back(tokens_[hi_end].text);
            }
            ++hi_end;
          }
          if (!is_having && !p.literals.empty()) {
            shape.filters.push_back(std::move(p));
          }
          return hi_end;
        }
        return i;
      }
    }

    // [NOT] LIKE 'pattern'
    {
      size_t j = after_ref;
      bool negated = false;
      if (j < end_ && tokens_[j].IsKeyword("NOT") && j + 1 < end_ &&
          (tokens_[j + 1].IsKeyword("LIKE") ||
           tokens_[j + 1].IsKeyword("ILIKE"))) {
        negated = true;
        ++j;
      }
      if (j < end_ &&
          (tokens_[j].IsKeyword("LIKE") || tokens_[j].IsKeyword("ILIKE"))) {
        ++j;
        if (j < end_ && tokens_[j].type == TokenType::kString) {
          Predicate p;
          p.op = negated ? "NOT LIKE" : "LIKE";
          p.qualifier = qual;
          p.column = col;
          p.literals.push_back(tokens_[j].text);
          p.literal_is_string = true;
          if (!is_having) shape.filters.push_back(std::move(p));
          return j + 1;
        }
        return i;
      }
    }

    // IN ( literal list )  — subquery IN handled by the main loop.
    if (op_tok.IsKeyword("IN") ||
        (op_tok.IsKeyword("NOT") && after_ref + 1 < end_ &&
         tokens_[after_ref + 1].IsKeyword("IN"))) {
      size_t j = op_tok.IsKeyword("IN") ? after_ref + 1 : after_ref + 2;
      if (j < end_ && tokens_[j].IsPunct('(') &&
          !(j + 1 < end_ && tokens_[j + 1].IsKeyword("SELECT"))) {
        size_t close = FindMatchingParen(j);
        Predicate p;
        p.op = "IN";
        p.qualifier = qual;
        p.column = col;
        for (size_t k = j + 1; k < close; ++k) {
          if (tokens_[k].type == TokenType::kNumber ||
              tokens_[k].type == TokenType::kString) {
            p.literals.push_back(tokens_[k].text);
            p.literal_is_string = tokens_[k].type == TokenType::kString;
          }
        }
        if (!is_having) shape.filters.push_back(std::move(p));
        return close < end_ ? close + 1 : end_;
      }
      return i;
    }

    // Comparison: col op (literal | column-ref)
    if (op_tok.type == TokenType::kOperator &&
        (op_tok.text == "=" || op_tok.text == "<" || op_tok.text == ">" ||
         op_tok.text == "<=" || op_tok.text == ">=" || op_tok.text == "<>" ||
         op_tok.text == "!=")) {
      size_t j = after_ref + 1;
      if (j < end_ && (tokens_[j].type == TokenType::kNumber ||
                       tokens_[j].type == TokenType::kString ||
                       tokens_[j].type == TokenType::kParameter ||
                       tokens_[j].IsKeyword("DATE") ||
                       tokens_[j].IsKeyword("INTERVAL"))) {
        // Skip a DATE/INTERVAL type prefix before the literal.
        if (tokens_[j].IsKeyword("DATE") || tokens_[j].IsKeyword("INTERVAL")) {
          ++j;
        }
        Predicate p;
        p.op = op_tok.text == "!=" ? "<>" : op_tok.text;
        p.qualifier = qual;
        p.column = col;
        if (j < end_ && (tokens_[j].type == TokenType::kNumber ||
                         tokens_[j].type == TokenType::kString)) {
          p.literals.push_back(tokens_[j].text);
          p.literal_is_string = tokens_[j].type == TokenType::kString;
        }
        if (!is_having) shape.filters.push_back(std::move(p));
        return j < end_ ? j + 1 : end_;
      }
      // Column = column → join condition.
      auto [q2, c2, after2] = ParseColumnRef(j);
      if (!c2.empty() && op_tok.text == "=") {
        // Only record as a join when the two sides reference different
        // qualifiers (or either side is qualified).
        if (!is_having && (qual != q2 || !qual.empty())) {
          shape.joins.push_back({qual, col, q2, c2});
        }
        return after2;
      }
      return i;
    }
    return i;
  }

  /// Parses a comma-separated column list (GROUP BY / ORDER BY). Returns
  /// the index of the terminating token.
  size_t ParseColumnList(std::vector<std::string>& out, size_t i) {
    while (i < end_) {
      const Token& t = tokens_[i];
      if (t.type == TokenType::kKeyword) {
        const std::string& kw = t.text;
        if (kw == "ASC" || kw == "DESC" || kw == "NULLS" || kw == "FIRST" ||
            kw == "LAST" || kw == "BY") {
          ++i;
          continue;
        }
        return i;
      }
      if (IsIdentifier(t)) {
        auto [qual, col, next] = ParseColumnRef(i);
        (void)qual;
        out.push_back(col);
        i = next;
        continue;
      }
      if (t.IsPunct(',') || t.type == TokenType::kNumber) {
        ++i;  // positional refs and separators
        continue;
      }
      if (t.IsPunct('(')) {
        i = FindMatchingParen(i) + 1;
        continue;
      }
      return i;
    }
    return i;
  }

  const TokenList& tokens_;
  size_t begin_;
  size_t end_;
};

}  // namespace

int QueryShape::Depth() const {
  int max_child = 0;
  for (const QueryShape& s : subqueries) {
    max_child = std::max(max_child, s.Depth());
  }
  return 1 + max_child;
}

int QueryShape::TotalSubqueries() const {
  int n = static_cast<int>(subqueries.size());
  for (const QueryShape& s : subqueries) n += s.TotalSubqueries();
  return n;
}

std::string QueryShape::ResolveQualifier(const std::string& qualifier) const {
  auto it = alias_to_table.find(qualifier);
  if (it != alias_to_table.end()) return it->second;
  if (std::find(tables.begin(), tables.end(), qualifier) != tables.end()) {
    return qualifier;
  }
  return "";
}

QueryShape Analyze(const TokenList& tokens) {
  AnalyzerImpl impl(tokens, 0, tokens.size());
  return impl.Run();
}

QueryShape AnalyzeText(std::string_view text, Dialect dialect) {
  LexOptions options;
  options.dialect = dialect;
  return Analyze(LexLenient(text, options));
}

}  // namespace querc::sql
