
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/querc/classifier.cc" "src/querc/CMakeFiles/querc_core.dir/classifier.cc.o" "gcc" "src/querc/CMakeFiles/querc_core.dir/classifier.cc.o.d"
  "/root/repo/src/querc/drift.cc" "src/querc/CMakeFiles/querc_core.dir/drift.cc.o" "gcc" "src/querc/CMakeFiles/querc_core.dir/drift.cc.o.d"
  "/root/repo/src/querc/error_predictor.cc" "src/querc/CMakeFiles/querc_core.dir/error_predictor.cc.o" "gcc" "src/querc/CMakeFiles/querc_core.dir/error_predictor.cc.o.d"
  "/root/repo/src/querc/qworker.cc" "src/querc/CMakeFiles/querc_core.dir/qworker.cc.o" "gcc" "src/querc/CMakeFiles/querc_core.dir/qworker.cc.o.d"
  "/root/repo/src/querc/qworker_pool.cc" "src/querc/CMakeFiles/querc_core.dir/qworker_pool.cc.o" "gcc" "src/querc/CMakeFiles/querc_core.dir/qworker_pool.cc.o.d"
  "/root/repo/src/querc/recommender.cc" "src/querc/CMakeFiles/querc_core.dir/recommender.cc.o" "gcc" "src/querc/CMakeFiles/querc_core.dir/recommender.cc.o.d"
  "/root/repo/src/querc/resource_allocator.cc" "src/querc/CMakeFiles/querc_core.dir/resource_allocator.cc.o" "gcc" "src/querc/CMakeFiles/querc_core.dir/resource_allocator.cc.o.d"
  "/root/repo/src/querc/routing.cc" "src/querc/CMakeFiles/querc_core.dir/routing.cc.o" "gcc" "src/querc/CMakeFiles/querc_core.dir/routing.cc.o.d"
  "/root/repo/src/querc/security_audit.cc" "src/querc/CMakeFiles/querc_core.dir/security_audit.cc.o" "gcc" "src/querc/CMakeFiles/querc_core.dir/security_audit.cc.o.d"
  "/root/repo/src/querc/summarizer.cc" "src/querc/CMakeFiles/querc_core.dir/summarizer.cc.o" "gcc" "src/querc/CMakeFiles/querc_core.dir/summarizer.cc.o.d"
  "/root/repo/src/querc/training_module.cc" "src/querc/CMakeFiles/querc_core.dir/training_module.cc.o" "gcc" "src/querc/CMakeFiles/querc_core.dir/training_module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/embed/CMakeFiles/querc_embed.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/querc_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/querc_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/querc_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sql/CMakeFiles/querc_sql.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/querc_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
