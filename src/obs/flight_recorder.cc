#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <set>

namespace querc::obs {

namespace {

/// Bounded memory of recently finalized trace ids so events trickling in
/// after their trace closed are classified as "late" instead of seeding
/// bogus pending traces. Bounded: old ids age out (a very late event then
/// shows up as a pending trace that never completes — still counted, as a
/// pending drop, once the pending table fills).
constexpr size_t kRecentFinalized = 1024;

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HexId(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSpan:
      return "span";
    case EventKind::kBreakerTransition:
      return "breaker_transition";
    case EventKind::kShed:
      return "shed";
    case EventKind::kRetry:
      return "retry";
    case EventKind::kFailpoint:
      return "failpoint";
    case EventKind::kError:
      return "error";
  }
  return "?";
}

void FlightEvent::SetLabel(const char* s) {
  if (s == nullptr) {
    label[0] = '\0';
    return;
  }
  size_t i = 0;
  for (; i < kLabelSize - 1 && s[i] != '\0'; ++i) label[i] = s[i];
  label[i] = '\0';
}

/// One writer lane: a single-producer ring. `head` is released by the
/// owning writer after the slot store; `tail` is released by a reader
/// after it copied the window, which is what licenses the writer to reuse
/// those slots (its full-check loads tail with acquire). head/tail are
/// monotonic positions; the slot index is position & (capacity - 1).
struct FlightRecorder::Ring {
  explicit Ring(uint32_t id)
      : slots(FlightRecorder::kRingCapacity), tid(id) {}

  std::vector<FlightEvent> slots;
  const uint32_t tid;
  alignas(64) std::atomic<uint64_t> head{0};
  alignas(64) std::atomic<uint64_t> tail{0};
  std::atomic<uint64_t> dropped{0};
  /// Owned by a live thread. Cleared (release) by the lane destructor at
  /// thread exit so a future thread can reuse the ring.
  std::atomic<bool> claimed{false};
};

/// Thread-local handle returning the ring to the free pool at thread
/// exit. The recorder is a leaked singleton, so the ring outlives every
/// lane and this destructor can never touch freed memory.
struct FlightRecorder::Lane {
  Ring* ring = nullptr;
  ~Lane() {
    if (ring != nullptr) {
      ring->claimed.store(false, std::memory_order_release);
    }
  }
};

FlightRecorder::FlightRecorder()
    : epoch_(std::chrono::steady_clock::now()) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::AcquireRing() {
  util::MutexLock lock(&reader_mu_);
  for (auto& ring : rings_) {
    if (!ring->claimed.load(std::memory_order_acquire)) {
      ring->claimed.store(true, std::memory_order_relaxed);
      return ring.get();
    }
  }
  // Lane ids start at 1; 0 marks an event that never reached a ring.
  rings_.push_back(
      std::make_unique<Ring>(static_cast<uint32_t>(rings_.size() + 1)));
  rings_.back()->claimed.store(true, std::memory_order_relaxed);
  return rings_.back().get();
}

FlightRecorder::Ring* FlightRecorder::CurrentRing() {
  thread_local Lane lane;
  if (lane.ring == nullptr) lane.ring = AcquireRing();
  return lane.ring;
}

void FlightRecorder::Record(FlightEvent ev) {
  if (!enabled()) return;
  Ring* ring = CurrentRing();
  uint64_t head = ring->head.load(std::memory_order_relaxed);
  if (head - ring->tail.load(std::memory_order_acquire) >= kRingCapacity) {
    // Bounded and honest: the journal is a flight recorder, not a log —
    // drop the newest event and say so in the counter.
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ev.tid = ring->tid;
  ring->slots[head & (kRingCapacity - 1)] = ev;
  ring->head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::RecordInstant(EventKind kind, const char* label,
                                   uint8_t detail) {
  if (!enabled()) return;
  FlightEvent ev;
  TraceContext ctx = CurrentContext();
  ev.trace_id = ctx.trace_id;
  ev.span_id = ctx.span_id;
  ev.ts_us = NowUs();
  ev.kind = static_cast<uint8_t>(kind);
  ev.detail = detail;
  ev.SetLabel(label);
  Record(ev);
}

void FlightRecorder::RecordSpan(const TraceContext& ctx, int64_t ts_us,
                                int64_t dur_us, const char* label,
                                bool root_span) {
  if (!enabled()) return;
  FlightEvent ev;
  ev.trace_id = ctx.trace_id;
  ev.span_id = ctx.span_id;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.kind = static_cast<uint8_t>(EventKind::kSpan);
  if (root_span) ev.flags |= FlightEvent::kRootSpan;
  ev.SetLabel(label);
  Record(ev);
}

FlightRecorder::Stats FlightRecorder::stats() const {
  util::MutexLock lock(&reader_mu_);
  Stats stats;
  for (const auto& ring : rings_) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t dropped = ring->dropped.load(std::memory_order_relaxed);
    stats.recorded += head + dropped;
    stats.dropped += dropped;
    stats.drained += ring->tail.load(std::memory_order_relaxed);
  }
  return stats;
}

size_t FlightRecorder::Drain(std::vector<FlightEvent>* out) {
  util::MutexLock lock(&reader_mu_);
  size_t moved = 0;
  for (auto& ring : rings_) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    for (uint64_t pos = tail; pos != head; ++pos) {
      out->push_back(ring->slots[pos & (kRingCapacity - 1)]);
    }
    moved += static_cast<size_t>(head - tail);
    ring->tail.store(head, std::memory_order_release);
  }
  return moved;
}

size_t FlightRecorder::num_lanes() const {
  util::MutexLock lock(&reader_mu_);
  return rings_.size();
}

size_t FlightTrace::num_threads() const {
  std::set<uint32_t> tids;
  for (const FlightEvent& ev : events) tids.insert(ev.tid);
  return tids.size();
}

TraceCollector::TraceCollector(const Options& options) : options_(options) {
  if (options_.reservoir_capacity == 0) options_.reservoir_capacity = 1;
  if (options_.max_pending_traces == 0) options_.max_pending_traces = 1;
}

namespace {

/// Shared by Fold/Finalize: the recently-finalized window (one per
/// collector would be cleaner, but a static deque would be shared; keep
/// it as members via a small helper instead).
struct RecentIds {
  std::deque<uint64_t> order;
  std::set<uint64_t> ids;

  bool Contains(uint64_t id) const { return ids.count(id) > 0; }
  void Add(uint64_t id) {
    if (!ids.insert(id).second) return;
    order.push_back(id);
    while (order.size() > kRecentFinalized) {
      ids.erase(order.front());
      order.pop_front();
    }
  }
};

RecentIds& RecentFor(const void* collector) {
  // Per-collector recently-finalized windows, keyed by address. Bounded:
  // collectors are few (one per reporter/CLI run) and short-lived windows
  // are capped at kRecentFinalized ids each.
  static std::map<const void*, RecentIds>* windows =
      new std::map<const void*, RecentIds>();
  return (*windows)[collector];
}

}  // namespace

size_t TraceCollector::Fold(const std::vector<FlightEvent>& events) {
  RecentIds& recent = RecentFor(this);
  size_t new_roots = 0;
  for (const FlightEvent& ev : events) {
    ++counts_[{ev.kind, ev.label}];
    if (ev.trace_id == 0) {
      ++untraced_;
      continue;
    }
    auto fin = finishing_.find(ev.trace_id);
    if (fin != finishing_.end()) {
      fin->second.events.push_back(ev);
      continue;
    }
    auto it = pending_.find(ev.trace_id);
    if (it == pending_.end()) {
      if (recent.Contains(ev.trace_id)) {
        ++late_events_;
        continue;
      }
      if (pending_.size() >= options_.max_pending_traces) {
        ++pending_dropped_;
        continue;
      }
      it = pending_.emplace(ev.trace_id, FlightTrace{}).first;
      it->second.trace_id = ev.trace_id;
    }
    it->second.events.push_back(ev);
    if (ev.event_kind() == EventKind::kSpan &&
        (ev.flags & FlightEvent::kRootSpan) != 0) {
      FlightTrace& trace = it->second;
      trace.root_label = ev.label;
      trace.root_ts_us = ev.ts_us;
      trace.root_dur_us = ev.dur_us;
      finishing_.emplace(ev.trace_id, std::move(trace));
      pending_.erase(it);
      ++new_roots;
    }
  }
  return new_roots;
}

void TraceCollector::Finalize() {
  RecentIds& recent = RecentFor(this);
  for (auto& [id, trace] : finishing_) {
    std::stable_sort(trace.events.begin(), trace.events.end(),
                     [](const FlightEvent& a, const FlightEvent& b) {
                       return a.ts_us < b.ts_us;
                     });
    ++completed_total_;
    recent.Add(id);
    // Reservoir of the slowest completed traces, kept sorted slowest
    // first. A completed trace that does not make the cut (or the one it
    // displaces) is an eviction — counted, never silent.
    auto pos = std::upper_bound(
        reservoir_.begin(), reservoir_.end(), trace,
        [](const FlightTrace& a, const FlightTrace& b) {
          return a.root_dur_us > b.root_dur_us;
        });
    if (reservoir_.size() < options_.reservoir_capacity) {
      reservoir_.insert(pos, std::move(trace));
    } else if (pos != reservoir_.end()) {
      reservoir_.insert(pos, std::move(trace));
      reservoir_.pop_back();
      ++evicted_;
    } else {
      ++evicted_;
    }
  }
  finishing_.clear();
}

void TraceCollector::Poll(FlightRecorder& recorder) {
  std::vector<FlightEvent> batch;
  recorder.Drain(&batch);
  size_t roots = Fold(batch);
  // A root span proves its trace's other spans were already published
  // (the root is written last); they may sit in rings this pass scanned
  // *before* the root's ring, so re-drain until no new roots appear.
  while (roots > 0) {
    batch.clear();
    recorder.Drain(&batch);
    roots = Fold(batch);
  }
  Finalize();
}

std::vector<FlightTrace> TraceCollector::Slowest(size_t n) const {
  std::vector<FlightTrace> out;
  out.reserve(std::min(n, reservoir_.size()));
  for (const FlightTrace& trace : reservoir_) {
    if (out.size() >= n) break;
    out.push_back(trace);
  }
  return out;
}

uint64_t TraceCollector::Count(EventKind kind,
                               const std::string& label) const {
  // Journal labels are truncated to the event's inline capacity; apply
  // the same truncation to the query so counting by a full-length label
  // (e.g. a long failpoint name) still matches its journal twin.
  std::string want = label.size() >= FlightEvent::kLabelSize
                         ? label.substr(0, FlightEvent::kLabelSize - 1)
                         : label;
  uint64_t total = 0;
  for (const auto& [key, count] : counts_) {
    if (key.first != static_cast<uint8_t>(kind)) continue;
    if (!want.empty() && key.second != want) continue;
    total += count;
  }
  return total;
}

std::string ExportChromeTrace(const std::vector<FlightTrace>& traces) {
  std::vector<const FlightEvent*> events;
  for (const FlightTrace& trace : traces) {
    for (const FlightEvent& ev : trace.events) events.push_back(&ev);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent* a, const FlightEvent* b) {
                     return a->ts_us < b->ts_us;
                   });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const FlightEvent* ev : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += EscapeJson(ev->label);
    out += "\",\"cat\":\"";
    out += EventKindName(ev->event_kind());
    out += "\",\"ph\":\"";
    bool span = ev->event_kind() == EventKind::kSpan && ev->dur_us > 0;
    out += span ? "X" : "i";
    std::snprintf(buf, sizeof(buf), "\",\"ts\":%lld,",
                  static_cast<long long>(ev->ts_us));
    out += buf;
    if (span) {
      std::snprintf(buf, sizeof(buf), "\"dur\":%lld,",
                    static_cast<long long>(ev->dur_us));
      out += buf;
    } else {
      // Thread-scoped instant: renders as a marker on its lane.
      out += "\"s\":\"t\",";
    }
    std::snprintf(buf, sizeof(buf), "\"pid\":1,\"tid\":%u,",
                  static_cast<unsigned>(ev->tid));
    out += buf;
    out += "\"args\":{\"trace_id\":\"" + HexId(ev->trace_id) + "\"";
    if (ev->detail != 0) {
      std::snprintf(buf, sizeof(buf), ",\"detail\":%u",
                    static_cast<unsigned>(ev->detail));
      out += buf;
    }
    if ((ev->flags & FlightEvent::kRootSpan) != 0) {
      out += ",\"root\":true";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string FlightTraceLine(const FlightTrace& trace) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " %s %.3fms events=%zu threads=%zu",
                trace.root_label.c_str(), trace.root_ms(),
                trace.events.size(), trace.num_threads());
  std::string out = "trace " + HexId(trace.trace_id) + buf;
  for (const FlightEvent& ev : trace.events) {
    if ((ev.flags & FlightEvent::kRootSpan) != 0) continue;
    if (ev.event_kind() == EventKind::kSpan) {
      std::snprintf(buf, sizeof(buf), " %s=%.3fms", ev.label,
                    static_cast<double>(ev.dur_us) / 1000.0);
    } else {
      std::snprintf(buf, sizeof(buf), " !%s:%s",
                    EventKindName(ev.event_kind()), ev.label);
    }
    out += buf;
  }
  return out;
}

}  // namespace querc::obs
