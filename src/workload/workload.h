#ifndef QUERC_WORKLOAD_WORKLOAD_H_
#define QUERC_WORKLOAD_WORKLOAD_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "workload/query.h"

namespace querc::util {
class ThreadPool;
}  // namespace querc::util

namespace querc::workload {

/// One bucket of the template histogram: a normalized-query fingerprint
/// (literals folded, identifiers lower-cased) and how many queries in the
/// workload share it.
struct TemplateCount {
  std::string fingerprint;
  size_t count = 0;
};

/// An ordered batch of labeled queries plus summary statistics helpers.
class Workload {
 public:
  Workload() = default;
  explicit Workload(std::vector<LabeledQuery> queries)
      : queries_(std::move(queries)) {}

  void Add(LabeledQuery q) { queries_.push_back(std::move(q)); }
  void Append(const Workload& other) {
    queries_.insert(queries_.end(), other.queries_.begin(),
                    other.queries_.end());
  }

  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }
  const LabeledQuery& operator[](size_t i) const { return queries_[i]; }
  LabeledQuery& operator[](size_t i) { return queries_[i]; }
  const std::vector<LabeledQuery>& queries() const { return queries_; }
  std::vector<LabeledQuery>& queries() { return queries_; }

  auto begin() const { return queries_.begin(); }
  auto end() const { return queries_.end(); }

  /// Count of distinct values of a label extractor, e.g. per-account sizes.
  std::map<std::string, size_t> CountBy(
      const std::string& (*label)(const LabeledQuery&)) const;

  /// Histogram of normalized-template fingerprints, most frequent first
  /// (ties broken by fingerprint for determinism). Built on
  /// util::ConcurrentAggregator: when `pool` is non-null the workload is
  /// chunked across it and every chunk records into the shared lock-free
  /// aggregator concurrently (the summarizer's template-histogram path);
  /// capacity equals the workload size, so the histogram is always exact.
  std::vector<TemplateCount> TemplateHistogram(
      util::ThreadPool* pool = nullptr) const;

  /// Number of distinct normalized-query fingerprints (literals folded).
  /// Equivalent to TemplateHistogram(pool).size().
  size_t DistinctShapes(util::ThreadPool* pool = nullptr) const;

  /// Sub-workload of queries whose account matches.
  Workload FilterByAccount(const std::string& account) const;

  /// Fraction of queries whose exact text is issued by more than one user
  /// (the property the paper blames for poor user-prediction accounts).
  double SharedTextFraction() const;

 private:
  std::vector<LabeledQuery> queries_;
};

/// Label extractors compatible with Workload::CountBy.
const std::string& UserOf(const LabeledQuery& q);
const std::string& AccountOf(const LabeledQuery& q);
const std::string& ClusterOf(const LabeledQuery& q);
const std::string& ErrorOf(const LabeledQuery& q);

}  // namespace querc::workload

#endif  // QUERC_WORKLOAD_WORKLOAD_H_
