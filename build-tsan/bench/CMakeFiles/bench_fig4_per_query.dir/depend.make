# Empty dependencies file for bench_fig4_per_query.
# This may be replaced when dependencies are built.
