#include "sql/normalizer.h"

#include "util/string_util.h"

namespace querc::sql {
namespace {

/// Index of the nearest non-comment token before `i`, or npos.
size_t PrevToken(const TokenList& tokens, size_t i) {
  while (i-- > 0) {
    if (tokens[i].type != TokenType::kComment) return i;
  }
  return std::string::npos;
}

/// Index of the nearest non-comment token after `i`, or npos.
size_t NextToken(const TokenList& tokens, size_t i) {
  for (++i; i < tokens.size(); ++i) {
    if (tokens[i].type != TokenType::kComment) return i;
  }
  return std::string::npos;
}

/// True when a +/- at `i` is a unary sign on a numeric literal rather than
/// a binary operator: the next token is a number and the previous token
/// cannot end an expression. Folding the sign into the literal keeps
/// `x = -5` and `x = 5` on the same template fingerprint.
bool IsUnarySignOnNumber(const TokenList& tokens, size_t i) {
  const Token& t = tokens[i];
  if (!t.IsOperator("+") && !t.IsOperator("-")) return false;
  size_t next = NextToken(tokens, i);
  if (next == std::string::npos ||
      tokens[next].type != TokenType::kNumber) {
    return false;
  }
  size_t prev = PrevToken(tokens, i);
  if (prev == std::string::npos) return true;  // leading sign
  const Token& p = tokens[prev];
  switch (p.type) {
    case TokenType::kOperator:
      return true;  // `x = -5`, `y < -1`
    case TokenType::kKeyword:
      return true;  // `SELECT -5`, `AND -5 < x`, `BETWEEN -5 AND 5`
    case TokenType::kPunct:
      return p.text != ")";  // `(-5`, `, -5` — but `(a+b) - 5` is binary
    default:
      return false;  // identifier/literal before the sign: binary
  }
}

}  // namespace

std::vector<std::string> Normalize(const TokenList& tokens,
                                   const NormalizeOptions& options) {
  std::vector<std::string> words;
  words.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    switch (t.type) {
      case TokenType::kComment:
        if (!options.strip_comments) words.push_back(t.text);
        break;
      case TokenType::kNumber:
        words.push_back(options.fold_literals ? kNumberPlaceholder : t.text);
        break;
      case TokenType::kString:
        // Re-quote (re-escaping embedded quotes the lexer unescaped) so
        // the normalized form stays lexable and `'O''Brien'` cannot
        // collide with identifier text.
        words.push_back(options.fold_literals
                            ? kStringPlaceholder
                            : "'" + util::ReplaceAll(t.text, "'", "''") +
                                  "'");
        break;
      case TokenType::kParameter:
        words.push_back(options.fold_parameters ? kParamPlaceholder : t.text);
        break;
      case TokenType::kIdentifier:
      case TokenType::kQuotedIdentifier:
        words.push_back(options.lowercase_identifiers ? util::ToLower(t.text)
                                                      : t.text);
        break;
      case TokenType::kKeyword:
        words.push_back(t.text);
        break;
      case TokenType::kOperator:
        // A unary sign on a number folds into the literal placeholder so
        // negative and positive bindings share one fingerprint.
        if (options.fold_literals && IsUnarySignOnNumber(tokens, i)) break;
        words.push_back(t.text);
        break;
      case TokenType::kPunct:
        words.push_back(t.text);
        break;
      case TokenType::kEnd:
        break;
    }
  }
  return words;
}

std::string NormalizedText(const TokenList& tokens,
                           const NormalizeOptions& options) {
  return util::Join(Normalize(tokens, options), " ");
}

}  // namespace querc::sql
