// Scenario: workload summarization for index recommendation (paper §5.1).
//
// A DBA has 800+ TPC-H queries and an index advisor whose search cost
// grows with the input size. Summarizing the workload with learned
// embeddings lets the advisor reach a near-optimal configuration within a
// tight time budget.
//
// Build & run:  ./build/examples/index_tuning [budget_minutes]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "engine/advisor.h"
#include "engine/cost_model.h"
#include "ml/random_forest.h"
#include "querc/querc.h"

int main(int argc, char** argv) {
  using namespace querc;
  double budget = argc > 1 ? std::atof(argv[1]) : 3.0;

  // The workload and the simulated engine (catalog + cost model).
  workload::TpchGenerator::Options gen_options;
  workload::TpchGenerator generator(gen_options);
  workload::Workload tpch = generator.Generate();
  std::vector<std::string> texts;
  for (const auto& q : tpch) texts.push_back(q.text);

  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  double baseline = engine::RunWorkload(model, texts, {}).total_seconds;
  std::printf("workload: %zu queries; no-index runtime %.1f simulated s\n",
              texts.size(), baseline);

  // Train an embedder on the workload and summarize (K via elbow method).
  auto embedder = std::make_shared<embed::Doc2VecEmbedder>([&] {
    embed::Doc2VecEmbedder::Options options;
    options.dim = 16;
    options.epochs = 6;
    return options;
  }());
  util::Status status = embed::TrainOnWorkload(*embedder, tpch);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  core::WorkloadSummarizer::Options sum_options;
  sum_options.elbow.k_min = 4;
  sum_options.elbow.k_max = 48;
  sum_options.elbow.k_step = 4;
  core::WorkloadSummarizer summarizer(embedder, sum_options);
  auto summary = summarizer.Summarize(tpch);
  std::printf("summary: K=%zu witnesses (elbow method)\n",
              summary.queries.size());

  // Run the advisor twice at the same budget: native vs summarized input.
  engine::AdvisorOptions adv_options;
  adv_options.budget_minutes = budget;
  engine::TuningAdvisor advisor(&model, adv_options);

  auto native = advisor.Recommend(texts);
  std::vector<std::string> summary_texts;
  for (const auto& q : summary.queries) summary_texts.push_back(q.text);
  auto summarized = advisor.Recommend(summary_texts);

  auto report = [&](const char* name, const engine::AdvisorResult& rec) {
    double runtime =
        engine::RunWorkload(model, texts, rec.config).total_seconds;
    std::printf("\n%s (budget %.0f min):\n  config %s\n  refined=%s  "
                "what-if calls=%lld\n  full-workload runtime %.1fs "
                "(%.0f%% of baseline)\n",
                name, budget, engine::ConfigToString(rec.config).c_str(),
                rec.completed_refinement ? "yes" : "no",
                static_cast<long long>(rec.whatif_calls_used), runtime,
                100.0 * runtime / baseline);
    for (const auto& line : rec.log) std::printf("    %s\n", line.c_str());
  };
  report("native advisor (full workload)", native);
  report("advisor on learned summary", summarized);
  return 0;
}
