#include "querc/admission.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "embed/feature_embedder.h"
#include "ml/knn.h"
#include "querc/classifier.h"
#include "querc/qworker_pool.h"
#include "workload/workload.h"

namespace querc::core {
namespace {

workload::LabeledQuery Query(const std::string& account,
                             const std::string& text = "SELECT 1") {
  workload::LabeledQuery q;
  q.text = text;
  q.user = "u1";
  q.account = account;
  return q;
}

workload::Workload Batch(
    const std::vector<std::string>& accounts) {
  workload::Workload batch;
  for (const std::string& account : accounts) batch.Add(Query(account));
  return batch;
}

/// A controller on a hand-cranked clock: refill happens exactly when the
/// test advances `now_us`.
struct Rig {
  std::shared_ptr<std::atomic<int64_t>> now_us =
      std::make_shared<std::atomic<int64_t>>(int64_t{1});

  TenantAdmissionOptions Options(double burst, double rate,
                                 size_t max_tenants = 1024) {
    TenantAdmissionOptions options;
    options.default_quota.burst = burst;
    options.default_quota.rate_per_sec = rate;
    options.max_tenants = max_tenants;
    auto clock = now_us;
    options.clock = [clock] {
      return clock->load(std::memory_order_relaxed);
    };
    return options;
  }

  void AdvanceUs(int64_t us) {
    now_us->fetch_add(us, std::memory_order_relaxed);
  }
};

size_t AdmittedCount(const std::vector<AdmitDecision>& decisions) {
  size_t n = 0;
  for (const AdmitDecision& d : decisions) n += d.admitted ? 1 : 0;
  return n;
}

TEST(TenantAdmissionTest, BucketStartsFullAndClipsTheTail) {
  Rig rig;
  TenantAdmissionController admission(rig.Options(3.0, 0.0));

  auto decisions = admission.AdmitBatch(Batch({"a", "a", "a", "a", "a"}),
                                        SIZE_MAX);
  ASSERT_EQ(decisions.size(), 5u);
  // Head-first: the burst admits the first 3, the tail is shed in place.
  for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(decisions[i].admitted) << i;
  for (size_t i = 3; i < 5; ++i) {
    EXPECT_FALSE(decisions[i].admitted) << i;
    EXPECT_EQ(decisions[i].reason, ShedReason::kQuota) << i;
  }
  EXPECT_EQ(admission.shed_for(ShedReason::kQuota), 2u);
  EXPECT_EQ(admission.shed_for(ShedReason::kFairness), 0u);
}

TEST(TenantAdmissionTest, RefillFollowsTheInjectedClock) {
  Rig rig;
  // 2-token burst, 1000 tokens/sec: 1 token per 1000us.
  TenantAdmissionController admission(rig.Options(2.0, 1000.0));

  EXPECT_EQ(AdmittedCount(admission.AdmitBatch(Batch({"a", "a", "a"}),
                                               SIZE_MAX)),
            2u);
  // No time passed: bucket is empty.
  EXPECT_FALSE(admission.AdmitOne(Query("a")).admitted);
  // 1500us later exactly one token has refilled.
  rig.AdvanceUs(1500);
  EXPECT_TRUE(admission.AdmitOne(Query("a")).admitted);
  EXPECT_FALSE(admission.AdmitOne(Query("a")).admitted);
  // A long idle caps the bucket at burst, not at rate * elapsed.
  rig.AdvanceUs(60 * 1000 * 1000);
  EXPECT_EQ(AdmittedCount(admission.AdmitBatch(Batch({"a", "a", "a"}),
                                               SIZE_MAX)),
            2u);
}

TEST(TenantAdmissionTest, ZeroBurstMeansUnlimitedQuota) {
  Rig rig;
  TenantAdmissionController admission(rig.Options(0.0, 0.0));
  auto decisions =
      admission.AdmitBatch(Batch(std::vector<std::string>(64, "a")),
                           SIZE_MAX);
  EXPECT_EQ(AdmittedCount(decisions), 64u);
  EXPECT_EQ(admission.shed_total(), 0u);
}

TEST(TenantAdmissionTest, GuaranteedMinimumShedsOverQuotaTenantFirst) {
  Rig rig;
  // Victim demand (4) == its burst; the aggressor's bucket clips its 12
  // queries to 6 (over_quota). With only 8 free slots, the under-quota
  // victim must receive its whole demand BEFORE the over-quota aggressor
  // gets anything from the fairness stage.
  TenantAdmissionOptions options = rig.Options(4.0, 0.0);
  options.tenants["nn"] = {/*burst=*/6.0, /*rate_per_sec=*/0.0,
                           /*weight=*/1.0};
  TenantAdmissionController admission(options);

  std::vector<std::string> accounts;
  for (int i = 0; i < 12; ++i) accounts.push_back("nn");
  for (int i = 0; i < 4; ++i) accounts.push_back("victim");
  auto decisions = admission.AdmitBatch(Batch(accounts), 8);

  size_t victim_admitted = 0, nn_admitted = 0;
  for (size_t i = 0; i < decisions.size(); ++i) {
    if (!decisions[i].admitted) continue;
    (i < 12 ? nn_admitted : victim_admitted)++;
  }
  EXPECT_EQ(victim_admitted, 4u) << "under-quota tenant shed by fairness";
  EXPECT_EQ(nn_admitted, 4u) << "leftover capacity goes to the aggressor";
  EXPECT_EQ(admission.shed_for(ShedReason::kQuota), 6u);
  EXPECT_EQ(admission.shed_for(ShedReason::kFairness), 2u);
}

TEST(TenantAdmissionTest, FairSplitFollowsWeights) {
  Rig rig;
  TenantAdmissionOptions options = rig.Options(0.0, 0.0);
  options.tenants["heavy"] = {0.0, 0.0, /*weight=*/3.0};
  options.tenants["light"] = {0.0, 0.0, /*weight=*/1.0};
  TenantAdmissionController admission(options);

  std::vector<std::string> accounts;
  for (int i = 0; i < 40; ++i) accounts.push_back("heavy");
  for (int i = 0; i < 40; ++i) accounts.push_back("light");
  auto decisions = admission.AdmitBatch(Batch(accounts), 40);

  size_t heavy = 0, light = 0;
  for (size_t i = 0; i < decisions.size(); ++i) {
    if (!decisions[i].admitted) continue;
    (i < 40 ? heavy : light)++;
  }
  EXPECT_EQ(heavy + light, 40u);
  // 3:1 water-filling with a guaranteed minimum lands near 30/10; allow
  // rounding slack but require the ordering to be unmistakable.
  EXPECT_GE(heavy, 28u);
  EXPECT_LE(heavy, 32u);
  EXPECT_GE(light, 8u);
}

TEST(TenantAdmissionTest, MidBatchShedsLandInPlace) {
  Rig rig;
  TenantAdmissionController admission(rig.Options(1.0, 0.0));
  // Interleaved arrival: a b a b a. Each tenant's FIRST query survives
  // its 1-token bucket; the later ones are shed at their own positions.
  auto decisions = admission.AdmitBatch(Batch({"a", "b", "a", "b", "a"}),
                                        SIZE_MAX);
  EXPECT_TRUE(decisions[0].admitted);
  EXPECT_TRUE(decisions[1].admitted);
  EXPECT_FALSE(decisions[2].admitted);
  EXPECT_FALSE(decisions[3].admitted);
  EXPECT_FALSE(decisions[4].admitted);
}

TEST(TenantAdmissionTest, GlobalShedReclassifiesAndReleases) {
  Rig rig;
  TenantAdmissionController admission(rig.Options(0.0, 0.0));
  ASSERT_TRUE(admission.AdmitOne(Query("a")).admitted);
  admission.OnGlobalShed("a");
  EXPECT_EQ(admission.shed_for(ShedReason::kGlobal), 1u);
  auto stats = admission.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].in_flight, 0u);
  EXPECT_EQ(stats[0].shed_global, 1u);
}

TEST(TenantAdmissionTest, StatsAndTopShedsRankTenants) {
  Rig rig;
  TenantAdmissionController admission(rig.Options(1.0, 0.0));
  admission.AdmitBatch(Batch({"noisy", "noisy", "noisy", "quiet"}),
                       SIZE_MAX);
  auto top = admission.TopSheds(2);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key, "noisy");
  EXPECT_EQ(top[0].count, 2u);

  auto stats = admission.Stats();
  ASSERT_EQ(stats.size(), 2u);  // account-sorted: noisy, quiet
  EXPECT_EQ(stats[0].account, "noisy");
  EXPECT_EQ(stats[0].shed_quota, 2u);
  EXPECT_EQ(stats[0].in_flight, 1u);
  EXPECT_EQ(stats[1].account, "quiet");
  EXPECT_EQ(stats[1].shed_total(), 0u);

  admission.Release("noisy");
  admission.Release("quiet");
}

TEST(TenantAdmissionTest, TenantStatesEvictLeastRecentlyActive) {
  Rig rig;
  TenantAdmissionController admission(rig.Options(0.0, 0.0,
                                                  /*max_tenants=*/2));
  ASSERT_TRUE(admission.AdmitOne(Query("old")).admitted);
  admission.Release("old");
  rig.AdvanceUs(1000);
  ASSERT_TRUE(admission.AdmitOne(Query("busy")).admitted);  // stays in flight
  rig.AdvanceUs(1000);
  // Third tenant: "old" (idle, least recently active) is displaced;
  // "busy" survives because it has work in flight.
  ASSERT_TRUE(admission.AdmitOne(Query("new")).admitted);
  EXPECT_EQ(admission.tracked_tenants(), 2u);
  EXPECT_EQ(admission.evicted_tenants(), 1u);
  auto stats = admission.Stats();
  for (const auto& row : stats) EXPECT_NE(row.account, "old");
  admission.Release("busy");
  admission.Release("new");
}

TEST(TenantAdmissionTest, ShedCountersCarryAccountPolicyReason) {
  Rig rig;
  TenantAdmissionOptions options = rig.Options(1.0, 0.0);
  options.policy_label = "reject_new";
  TenantAdmissionController admission(options);
  uint64_t before =
      obs::MetricsRegistry::Global()
          .GetCounter("querc_shed_total", {{"account", "metered"},
                                           {"policy", "reject_new"},
                                           {"reason", "quota"}})
          .value();
  admission.AdmitBatch(Batch({"metered", "metered"}), SIZE_MAX);
  uint64_t after =
      obs::MetricsRegistry::Global()
          .GetCounter("querc_shed_total", {{"account", "metered"},
                                           {"policy", "reject_new"},
                                           {"reason", "quota"}})
          .value();
  EXPECT_EQ(after - before, 1u);
  admission.Release("metered");
}

// -- TenantBreakerMap ------------------------------------------------------

CircuitBreakerOptions FastBreaker() {
  CircuitBreakerOptions options;
  options.window = 4;
  options.min_samples = 2;
  options.failure_ratio = 0.5;
  options.open_ms = 1000.0;
  return options;
}

TEST(TenantBreakerMapTest, BreakersAreScopedPerAccount) {
  TenantBreakerMap::Options options;
  options.name_prefix = "t:sink_database";
  options.breaker = FastBreaker();
  TenantBreakerMap map(options);

  auto bad = map.GetOrCreate("bad");
  auto good = map.GetOrCreate("good");
  ASSERT_NE(bad, nullptr);
  ASSERT_NE(good, nullptr);
  EXPECT_NE(bad.get(), good.get());
  EXPECT_EQ(bad->name(), "t:sink_database:bad");

  bad->RecordFailure();
  bad->RecordFailure();
  EXPECT_EQ(bad->state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(good->state(), CircuitBreaker::State::kClosed)
      << "one tenant's failures must not move another tenant's breaker";
  // Same account -> same breaker instance.
  EXPECT_EQ(map.GetOrCreate("bad").get(), bad.get());
}

TEST(TenantBreakerMapTest, EvictionPrefersClosedLeastUsed) {
  TenantBreakerMap::Options options;
  options.name_prefix = "t:sink_database";
  options.breaker = FastBreaker();
  options.capacity = 2;
  TenantBreakerMap map(options);

  auto open_one = map.GetOrCreate("open");
  open_one->RecordFailure();
  open_one->RecordFailure();
  ASSERT_EQ(open_one->state(), CircuitBreaker::State::kOpen);
  map.GetOrCreate("closed");
  // At capacity: the CLOSED breaker is displaced even though the open one
  // is no more used — an open breaker is live fault evidence.
  map.GetOrCreate("fresh");
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.evicted(), 1u);
  bool open_survives = false, closed_survives = false;
  for (const auto& [name, state] : map.States()) {
    if (name == "t:sink_database:open") open_survives = true;
    if (name == "t:sink_database:closed") closed_survives = true;
  }
  EXPECT_TRUE(open_survives);
  EXPECT_FALSE(closed_survives);
  // The held shared_ptr keeps an evicted breaker usable.
  auto evicted_handle = map.GetOrCreate("short-lived-a");
  map.GetOrCreate("short-lived-b");
  evicted_handle->RecordSuccess();  // must not crash after displacement
}

// -- Quota x deadline interaction ------------------------------------------

std::shared_ptr<Classifier> TrainedUserClassifier() {
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  auto classifier = std::make_shared<Classifier>(
      "user", embedder,
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{.k = 1}));
  workload::Workload history;
  for (int i = 0; i < 8; ++i) {
    workload::LabeledQuery q = Query("acct", "SELECT a FROM t WHERE x = 1");
    q.user = "alice";
    history.Add(q);
    q = Query("acct", "SELECT b, c FROM u, v WHERE u.k = v.k");
    q.user = "bob";
    history.Add(q);
  }
  EXPECT_TRUE(classifier->Train(history, workload::UserOf).ok());
  return classifier;
}

TEST(TenantAdmissionPoolTest, AtQuotaWithDeadlineShedsBeforeAnySinkWrite) {
  // A tenant at quota whose queries also carry a near-expired deadline
  // must be rejected AT ADMISSION: ResourceExhausted + shed, never
  // DeadlineExceeded with a partial sink write. The shed query must not
  // touch either sink.
  QWorkerPool::Options options;
  options.application = "qd";
  options.num_shards = 1;
  options.enable_tenant_admission = true;
  options.admission.default_quota.burst = 2.0;
  options.admission.default_quota.rate_per_sec = 0.0;
  options.worker.deadline_ms = 0.0001;  // effectively already expired
  options.worker.enable_lint = false;
  QWorkerPool pool(options);
  pool.Deploy(TrainedUserClassifier());

  std::atomic<size_t> sink_calls{0};
  pool.set_database_sink(
      [&](const workload::LabeledQuery&) { ++sink_calls; });

  auto out = pool.ProcessBatch(Batch({"t", "t", "t", "t"}));
  ASSERT_EQ(out.size(), 4u);
  size_t sink_calls_after_admitted = sink_calls.load();
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(out[i].shed) << i;
  }
  for (size_t i = 2; i < 4; ++i) {
    EXPECT_TRUE(out[i].shed) << i;
    EXPECT_EQ(out[i].status.code(), util::StatusCode::kResourceExhausted)
        << i;
    EXPECT_FALSE(out[i].deadline_exceeded)
        << "a quota shed must never be reported as a deadline miss";
    EXPECT_TRUE(out[i].predictions.empty()) << i;
  }
  // Only the two admitted queries may have reached the sink.
  EXPECT_LE(sink_calls_after_admitted, 2u);

  // Inline path, same contract.
  ProcessedQuery pq = pool.Process(Query("t"));
  EXPECT_TRUE(pq.shed);
  EXPECT_EQ(pq.status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_FALSE(pq.deadline_exceeded);
  EXPECT_EQ(sink_calls.load(), sink_calls_after_admitted);
}

// -- Concurrency (meaningful under TSan) -----------------------------------

TEST(TenantAdmissionStressTest, ConcurrentTenantsOneController) {
  Rig rig;
  TenantAdmissionOptions options = rig.Options(8.0, 1e6, /*max_tenants=*/8);
  TenantAdmissionController admission(options);

  constexpr int kThreads = 8;
  constexpr int kIterations = 300;
  std::atomic<uint64_t> admitted_total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // 12 tenants over an 8-state bound: eviction races admission.
      std::string account = "tenant" + std::to_string(t % 12);
      for (int i = 0; i < kIterations; ++i) {
        if (i % 3 == 0) {
          workload::Workload batch;
          for (int j = 0; j < 4; ++j) batch.Add(Query(account));
          auto decisions = admission.AdmitBatch(batch, /*capacity=*/16);
          size_t n = AdmittedCount(decisions);
          admitted_total.fetch_add(n, std::memory_order_relaxed);
          if (n > 0) admission.Release(account, n);
        } else {
          AdmitDecision d = admission.AdmitOne(Query(account));
          if (d.admitted) {
            admitted_total.fetch_add(1, std::memory_order_relaxed);
            if (i % 5 == 0) {
              admission.OnGlobalShed(account);
            } else {
              admission.Release(account);
            }
          }
        }
        if (i % 7 == 0) {
          admission.Stats();
          admission.TopSheds(3);
        }
        rig.AdvanceUs(50);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Everything admitted was released or reclassified: nothing in flight.
  for (const auto& row : admission.Stats()) {
    EXPECT_EQ(row.in_flight, 0u) << row.account;
  }
  EXPECT_GT(admitted_total.load(), 0u);
  EXPECT_LE(admission.tracked_tenants(), 12u);
}

TEST(TenantBreakerStressTest, ConcurrentGetOrCreateWithEviction) {
  TenantBreakerMap::Options options;
  options.name_prefix = "stress:sink";
  options.breaker = FastBreaker();
  options.capacity = 4;
  TenantBreakerMap map(options);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        auto breaker = map.GetOrCreate("acct" + std::to_string((t + i) % 10));
        ASSERT_NE(breaker, nullptr);
        // Exercise an instance that may have been concurrently evicted.
        if (i % 2 == 0) {
          breaker->RecordSuccess();
        } else {
          breaker->Allow();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(map.size(), 4u + kThreads);  // soft bound under racing inserts
  map.States();
}

}  // namespace
}  // namespace querc::core
