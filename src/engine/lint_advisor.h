#ifndef QUERC_ENGINE_LINT_ADVISOR_H_
#define QUERC_ENGINE_LINT_ADVISOR_H_

#include <string>
#include <vector>

#include "engine/advisor.h"
#include "engine/catalog.h"
#include "engine/cost_model.h"
#include "sql/lint/engine.h"

namespace querc::engine {

/// Adapts the engine Catalog to the schema interface sql::lint rules
/// consult (the sql layer deliberately knows nothing about the engine).
class CatalogSchemaProvider : public sql::lint::SchemaProvider {
 public:
  explicit CatalogSchemaProvider(const Catalog* catalog)
      : catalog_(catalog) {}

  std::string TableOfColumn(const std::string& column) const override;
  bool HasTable(const std::string& table) const override;
  uint64_t TableRowCount(const std::string& table) const override;
  size_t TableColumnCount(const std::string& table) const override;

 private:
  const Catalog* catalog_;
};

/// Options for the combined lint + advisor pass.
struct AdvisorLintOptions {
  sql::lint::LintOptions lint;
  AdvisorOptions advisor;
  /// Tables below this row count are ignored by the index-coverage
  /// cross-check (scanning tiny tables is fine without an index).
  uint64_t min_table_rows = 1000;
};

/// Result of linting a workload with the advisor in the loop.
struct AdvisorLintResult {
  sql::lint::LintReport report;
  AdvisorResult advisor;
};

/// Runs the tuning advisor over `texts`, then lints the workload with the
/// catalog as schema provider plus an extra index-coverage rule: a filter
/// column on a large table that no recommended index covers yields an
/// info diagnostic citing the cost model's estimated scan time. This is
/// the "index-advisor cross-check" — diagnostics grounded in what the
/// advisor actually recommended rather than generic heuristics.
AdvisorLintResult LintWorkloadWithAdvisor(
    const std::vector<std::string>& texts, const CostModel& model,
    const AdvisorLintOptions& options = {});

}  // namespace querc::engine

#endif  // QUERC_ENGINE_LINT_ADVISOR_H_
