file(REMOVE_RECURSE
  "CMakeFiles/test_embed_model_io.dir/test_embed_model_io.cc.o"
  "CMakeFiles/test_embed_model_io.dir/test_embed_model_io.cc.o.d"
  "test_embed_model_io"
  "test_embed_model_io.pdb"
  "test_embed_model_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embed_model_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
