#ifndef QUERC_QUERC_TRAINING_MODULE_H_
#define QUERC_QUERC_TRAINING_MODULE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "querc/classifier.h"
#include "querc/qworker.h"
#include "querc/qworker_pool.h"
#include "util/mutex.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "workload/workload.h"

namespace querc::core {

/// The "Training, Evaluation, and Offline Labeling" module of Figure 1.
/// Collects labeled queries teed off the QWorkers (and periodic log
/// imports from the databases), manages per-application training sets,
/// runs batch training/evaluation jobs — model training is infrequent and
/// offline by design (§2: the architecture is not built for continuous
/// learning) — and deploys trained classifiers back to QWorkers.
class TrainingModule {
 public:
  struct Options {
    /// Per-application cap on retained training queries (oldest dropped).
    size_t max_queries_per_application = 1 << 20;
    /// Threads in the training pool; 0 = size to the machine
    /// (util::DefaultThreadCount()). Training work rides the pool's batch
    /// lane, so sharing the pool with a QWorkerPool keeps predict
    /// traffic ahead of it.
    size_t training_threads = 0;
  };

  explicit TrainingModule(const Options& options);

  /// Sink endpoint for a QWorker's training tee.
  void Collect(const std::string& application, const ProcessedQuery& query)
      EXCLUDES(mu_);

  /// Bulk log import (the periodic query-log export path of §2).
  void ImportLogs(const std::string& application,
                  const workload::Workload& logs) EXCLUDES(mu_);

  /// A snapshot of the retained training set for `application` (empty if
  /// unknown). Returned by value: the live set keeps mutating under mu_
  /// as Collect/ImportLogs run, so a reference would dangle into the
  /// guarded map.
  workload::Workload TrainingSet(const std::string& application) const
      EXCLUDES(mu_);

  /// Registers a shared embedder under `name`. Embedders are trained once
  /// on large (possibly combined, e.g. "EmbedderA(X,Y)") corpora and
  /// shared across classifiers.
  void RegisterEmbedder(const std::string& name,
                        std::shared_ptr<const embed::Embedder> embedder)
      EXCLUDES(mu_);

  std::shared_ptr<const embed::Embedder> Embedder(
      const std::string& name) const EXCLUDES(mu_);

  /// Specification of one batch training job.
  struct TrainJob {
    std::string task_name;
    std::string application;
    std::string embedder_name;
    LabelExtractor label_of;
    /// Builds the (untrained) labeler; defaults to a random forest when
    /// null.
    std::function<std::unique_ptr<ml::VectorClassifier>()> labeler_factory;
  };

  /// Trains one classifier on the application's training set.
  util::StatusOr<std::shared_ptr<Classifier>> Train(const TrainJob& job);

  /// Trains several jobs in parallel on the module's thread pool and
  /// deploys the results to `worker` in one snapshot swap (queries racing
  /// the deployment see either none or all of the new classifiers).
  /// Returns the first error, if any; nothing is deployed on error.
  util::Status TrainAndDeploy(const std::vector<TrainJob>& jobs,
                              QWorker& worker);

  /// Same, deploying to every shard of a QWorkerPool.
  util::Status TrainAndDeploy(const std::vector<TrainJob>& jobs,
                              QWorkerPool& pool);

  /// The pool shared by training jobs (and offered to QWorkerPools that
  /// want to bound total service threads).
  util::ThreadPool& thread_pool() { return pool_; }

  /// Deployed-model registry (task name -> classifier).
  std::shared_ptr<Classifier> Model(const std::string& task_name) const
      EXCLUDES(mu_);

 private:
  /// Trains all jobs in parallel; fills `trained` (same order as `jobs`)
  /// and returns the first error.
  util::Status TrainAll(const std::vector<TrainJob>& jobs,
                        std::vector<std::shared_ptr<const Classifier>>* trained);

  Options options_;
  mutable util::Mutex mu_{util::LockRank::kTrainingModule,
                          "training_module.mu"};
  std::map<std::string, workload::Workload> training_sets_ GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<const embed::Embedder>> embedders_
      GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Classifier>> models_ GUARDED_BY(mu_);
  util::ThreadPool pool_;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_TRAINING_MODULE_H_
