file(REMOVE_RECURSE
  "libquerc_workload.a"
)
