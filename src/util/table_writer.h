#ifndef QUERC_UTIL_TABLE_WRITER_H_
#define QUERC_UTIL_TABLE_WRITER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace querc::util {

/// Accumulates rows and renders them either as an aligned ASCII table
/// (for terminal bench reports mirroring the paper's tables/figures) or as
/// CSV (for downstream plotting).
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string Num(double v, int precision = 2);

  size_t num_rows() const { return rows_.size(); }

  /// Renders an aligned, boxed ASCII table.
  std::string ToAscii() const;

  /// Renders RFC-4180-style CSV (quotes fields containing , " or newline).
  std::string ToCsv() const;

  /// Writes the CSV rendering to `path`.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace querc::util

#endif  // QUERC_UTIL_TABLE_WRITER_H_
