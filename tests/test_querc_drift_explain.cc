#include <memory>

#include <gtest/gtest.h>

#include "embed/feature_embedder.h"
#include "engine/explain.h"
#include "querc/drift.h"
#include "workload/snowflake_gen.h"

namespace querc {
namespace {

workload::LabeledQuery Query(const std::string& text) {
  workload::LabeledQuery q;
  q.text = text;
  return q;
}

std::shared_ptr<const embed::Embedder> FeatureEmbedderPtr() {
  return std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
}

workload::Workload SelectWorkload(int n) {
  workload::Workload wl;
  for (int i = 0; i < n; ++i) {
    wl.Add(Query("SELECT a FROM t WHERE x = " + std::to_string(i)));
    wl.Add(Query("SELECT b, c FROM u, v WHERE u.k = v.k"));
  }
  return wl;
}

TEST(DriftTest, StationaryWindowIsQuiet) {
  core::DriftDetector detector(FeatureEmbedderPtr(), {});
  ASSERT_TRUE(detector.SetReference(SelectWorkload(40)).ok());
  auto report = detector.Check(SelectWorkload(40));
  EXPECT_LT(report.centroid_shift, 0.2);
  EXPECT_FALSE(report.retrain_recommended);
  EXPECT_EQ(report.reference_size, 80u);
  EXPECT_EQ(report.recent_size, 80u);
}

TEST(DriftTest, NewQueryFamilyTriggersRetraining) {
  core::DriftDetector detector(FeatureEmbedderPtr(), {});
  ASSERT_TRUE(detector.SetReference(SelectWorkload(40)).ok());
  workload::Workload shifted;
  for (int i = 0; i < 60; ++i) {
    shifted.Add(Query(
        "SELECT p, q, r, SUM(s) FROM w1, w2, w3 WHERE w1.k = w2.k AND "
        "w2.j = w3.j GROUP BY p, q, r HAVING SUM(s) > 10 ORDER BY p"));
  }
  auto report = detector.Check(shifted);
  EXPECT_TRUE(report.retrain_recommended);
  EXPECT_GT(report.novelty, 0.5);
}

TEST(DriftTest, PartialDriftScoresBetween) {
  core::DriftDetector detector(FeatureEmbedderPtr(), {});
  ASSERT_TRUE(detector.SetReference(SelectWorkload(40)).ok());
  workload::Workload mixed = SelectWorkload(30);
  for (int i = 0; i < 20; ++i) {
    mixed.Add(Query("SELECT DISTINCT z FROM brand_new_table ORDER BY z"));
  }
  auto stationary = detector.Check(SelectWorkload(40));
  auto report = detector.Check(mixed);
  EXPECT_GT(report.novelty, stationary.novelty);
}

TEST(DriftTest, EmptyReferenceFails) {
  core::DriftDetector detector(FeatureEmbedderPtr(), {});
  EXPECT_FALSE(detector.SetReference({}).ok());
}

TEST(DriftTest, SubsamplingBoundsWindow) {
  core::DriftDetector::Options options;
  options.max_window = 10;
  core::DriftDetector detector(FeatureEmbedderPtr(), options);
  ASSERT_TRUE(detector.SetReference(SelectWorkload(20)).ok());
  auto report = detector.Check(SelectWorkload(100));  // 200 queries
  EXPECT_LE(report.recent_size, 20u);
}

TEST(ExplainTest, ShowsScanAndIndexAndWarning) {
  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);

  std::string scan = engine::ExplainQuery(
      model, "SELECT * FROM lineitem WHERE l_quantity < 10", {});
  EXPECT_NE(scan.find("TABLE SCAN"), std::string::npos);
  EXPECT_NE(scan.find("lineitem"), std::string::npos);
  EXPECT_EQ(scan.find("WARNING"), std::string::npos);

  engine::IndexConfig config = {{"lineitem", {"l_shipdate"}}};
  std::string seek = engine::ExplainQuery(
      model,
      "SELECT * FROM lineitem WHERE l_shipdate >= '1998-06-01' AND "
      "l_shipdate < '1998-07-01'",
      config);
  EXPECT_NE(seek.find("INDEX SEEK"), std::string::npos);
  EXPECT_NE(seek.find("lineitem(l_shipdate)"), std::string::npos);

  engine::IndexConfig bad = {{"lineitem", {"l_quantity"}}};
  std::string warn = engine::ExplainQuery(
      model,
      "SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING "
      "SUM(l_quantity) > 300",
      bad);
  EXPECT_NE(warn.find("CARDINALITY MISESTIMATE"), std::string::npos);
  EXPECT_NE(warn.find("WARNING"), std::string::npos);
}

TEST(ExplainTest, TotalsLineAlwaysPresent) {
  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  std::string out = engine::ExplainQuery(model, "SELECT 1", {});
  EXPECT_NE(out.find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace querc
