file(REMOVE_RECURSE
  "CMakeFiles/test_workload_structure.dir/test_workload_structure.cc.o"
  "CMakeFiles/test_workload_structure.dir/test_workload_structure.cc.o.d"
  "test_workload_structure"
  "test_workload_structure.pdb"
  "test_workload_structure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
