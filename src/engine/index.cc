#include "engine/index.h"

#include <algorithm>

#include "engine/catalog.h"

namespace querc::engine {

std::string Index::ToString() const {
  std::string s = table + "(";
  for (size_t i = 0; i < key_columns.size(); ++i) {
    if (i > 0) s += ",";
    s += key_columns[i];
  }
  s += ")";
  return s;
}

bool ContainsIndex(const IndexConfig& config, const Index& index) {
  return std::find(config.begin(), config.end(), index) != config.end();
}

double IndexSizeMb(const Catalog& catalog, const Index& index) {
  const TableStats* table = catalog.Table(index.table);
  if (table == nullptr) return 0.0;
  double key_width = 8.0;  // row locator
  for (const std::string& column : index.key_columns) {
    const ColumnStats* stats = table->Column(column);
    if (stats == nullptr) return 0.0;
    key_width += stats->avg_width_bytes;
  }
  return static_cast<double>(table->row_count) * key_width / (1024.0 * 1024.0);
}

double ConfigSizeMb(const Catalog& catalog, const IndexConfig& config) {
  double total = 0.0;
  for (const Index& index : config) total += IndexSizeMb(catalog, index);
  return total;
}

std::string ConfigToString(const IndexConfig& config) {
  std::string s = "{";
  for (size_t i = 0; i < config.size(); ++i) {
    if (i > 0) s += ", ";
    s += config[i].ToString();
  }
  s += "}";
  return s;
}

}  // namespace querc::engine
