#include "embed/model_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "embed/doc2vec.h"
#include "embed/feature_embedder.h"
#include "embed/lstm_autoencoder.h"

namespace querc::embed {
namespace {

std::vector<std::vector<std::string>> Corpus() {
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 20; ++i) {
    docs.push_back({"SELECT", "a", "FROM", "t", "WHERE", "b", "=", "<num>"});
    docs.push_back({"SELECT", "c", "FROM", "u"});
  }
  return docs;
}

TEST(ModelIoTest, RoundTripsDoc2Vec) {
  Doc2VecEmbedder::Options options;
  options.dim = 12;
  options.epochs = 4;
  options.min_count = 1;
  Doc2VecEmbedder embedder(options);
  ASSERT_TRUE(embedder.Train(Corpus()).ok());

  std::stringstream ss;
  ASSERT_TRUE(SaveEmbedder(embedder, ss).ok());
  auto loaded = LoadEmbedder(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), embedder.name());
  EXPECT_EQ((*loaded)->dim(), embedder.dim());
  std::vector<std::string> doc = {"SELECT", "a", "FROM", "t"};
  EXPECT_EQ((*loaded)->Embed(doc), embedder.Embed(doc));
}

TEST(ModelIoTest, RoundTripsLstm) {
  LstmAutoencoderEmbedder::Options options;
  options.hidden_dim = 10;
  options.token_dim = 8;
  options.epochs = 2;
  options.min_count = 1;
  LstmAutoencoderEmbedder embedder(options);
  ASSERT_TRUE(embedder.Train(Corpus()).ok());

  std::stringstream ss;
  ASSERT_TRUE(SaveEmbedder(embedder, ss).ok());
  auto loaded = LoadEmbedder(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), "lstm-autoencoder");
  std::vector<std::string> doc = {"SELECT", "a", "FROM", "t"};
  EXPECT_EQ((*loaded)->Embed(doc), embedder.Embed(doc));
}

TEST(ModelIoTest, FeatureEmbedderHasNoPersistence) {
  FeatureEmbedder embedder{FeatureEmbedder::Options{}};
  std::stringstream ss;
  EXPECT_EQ(SaveEmbedder(embedder, ss).code(),
            util::StatusCode::kUnimplemented);
}

TEST(ModelIoTest, LoadRejectsUnknownMagic) {
  std::stringstream ss("garbage that is at least eight bytes long");
  auto loaded = LoadEmbedder(ss);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kCorruption);
}

TEST(ModelIoTest, FileHelpersReportIoErrors) {
  FeatureEmbedder embedder{FeatureEmbedder::Options{}};
  EXPECT_FALSE(SaveEmbedderFile(embedder, "/no/such/dir/m.bin").ok());
  EXPECT_FALSE(LoadEmbedderFile("/no/such/file.bin").ok());
}

}  // namespace
}  // namespace querc::embed
