// Fixture: raw std::thread construction is banned outside src/util/ —
// thread creation routes through util::SpawnThread / util::ThreadPool so
// every worker is named, topology-aware, and joined by an owner.
// Declarations without a body (empty handles, members, containers) and
// mentions in comments (std::thread([]{})) or strings must NOT be
// flagged.
#include <thread>
#include <utility>
#include <vector>

namespace fixture {

const char* kDoc = "std::thread(body) in a string literal is fine";

class BadSpawner {
 public:
  void Start() {
    std::thread worker([] {});  // flagged: named construction with a body
    handle_ = std::thread([] {});  // flagged: temporary construction
    worker.join();
  }

  void Stop() {
    std::thread joiner;  // empty handle: legal (the Stop()-idiom swap)
    joiner = std::move(handle_);
    if (joiner.joinable()) joiner.join();
  }

 private:
  std::thread handle_;              // member declaration: legal
  std::vector<std::thread> extra_;  // container of handles: legal
};

}  // namespace fixture
