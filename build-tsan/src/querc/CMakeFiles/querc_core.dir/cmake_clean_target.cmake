file(REMOVE_RECURSE
  "libquerc_core.a"
)
