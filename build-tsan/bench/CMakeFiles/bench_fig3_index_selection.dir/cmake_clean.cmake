file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_index_selection.dir/bench_fig3_index_selection.cc.o"
  "CMakeFiles/bench_fig3_index_selection.dir/bench_fig3_index_selection.cc.o.d"
  "bench_fig3_index_selection"
  "bench_fig3_index_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_index_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
