#ifndef QUERC_ML_KMEANS_H_
#define QUERC_ML_KMEANS_H_

#include <cstddef>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace querc::ml {

/// Result of one K-means run.
struct KMeansResult {
  std::vector<nn::Vec> centroids;
  std::vector<int> assignment;  // cluster id per point
  double inertia = 0.0;         // sum of squared distances to centroids
  int iterations = 0;
};

struct KMeansOptions {
  int max_iterations = 100;
  double tolerance = 1e-6;  // stop when inertia improvement falls below
  uint64_t seed = 97;
  int num_seeding_trials = 1;  // best-of-N restarts
};

/// Lloyd's algorithm with k-means++ seeding. `k` is clamped to
/// [1, points.size()].
KMeansResult KMeans(const std::vector<nn::Vec>& points, size_t k,
                    const KMeansOptions& options = {});

/// Index of the point nearest each centroid (the "witness" of each
/// cluster, used by the workload summarizer). Result has one entry per
/// centroid; clusters that own no points fall back to the globally nearest
/// point.
std::vector<size_t> NearestPointToCentroids(const std::vector<nn::Vec>& points,
                                            const KMeansResult& result);

/// The paper's intentionally simple elbow method: runs K-means for
/// increasing k and picks the k where the relative drop in inertia
/// plateaus (falls below `plateau_threshold`).
struct ElbowOptions {
  size_t k_min = 2;
  size_t k_max = 40;
  size_t k_step = 2;
  /// Plateau when this step's inertia drop falls below `threshold` times
  /// the largest drop observed so far (the knee of the curve).
  double plateau_threshold = 0.10;
  KMeansOptions kmeans;
};

struct ElbowResult {
  size_t chosen_k = 0;
  std::vector<size_t> ks;
  std::vector<double> inertias;
};

ElbowResult ElbowMethod(const std::vector<nn::Vec>& points,
                        const ElbowOptions& options = {});

}  // namespace querc::ml

#endif  // QUERC_ML_KMEANS_H_
