file(REMOVE_RECURSE
  "CMakeFiles/test_engine_advisor.dir/test_engine_advisor.cc.o"
  "CMakeFiles/test_engine_advisor.dir/test_engine_advisor.cc.o.d"
  "test_engine_advisor"
  "test_engine_advisor.pdb"
  "test_engine_advisor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
