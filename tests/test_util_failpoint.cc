#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/stopwatch.h"

namespace querc::util {
namespace {

/// Every test starts and ends with a clean registry (the registry is
/// process-global; leaking an armed point would poison later tests).
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Global().DisarmAll(); }
  void TearDown() override { Failpoints::Global().DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedIsOkAndUnarmed) {
  EXPECT_FALSE(Failpoints::AnyArmed());
  EXPECT_TRUE(MaybeFail("never.armed").ok());
  EXPECT_EQ(Failpoints::Global().hits("never.armed"), 0u);
}

TEST_F(FailpointTest, ArmedErrorReturnsStatus) {
  FailpointSpec spec;
  spec.action = FailAction::kError;
  spec.code = StatusCode::kUnavailable;
  Failpoints::Global().Arm("site.a", spec);
  EXPECT_TRUE(Failpoints::AnyArmed());

  Status status = MaybeFail("site.a");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("site.a"), std::string::npos);
  // Other sites are unaffected.
  EXPECT_TRUE(MaybeFail("site.b").ok());
  EXPECT_EQ(Failpoints::Global().hits("site.a"), 1u);
}

TEST_F(FailpointTest, CustomCodeAndMessage) {
  FailpointSpec spec;
  spec.code = StatusCode::kInternal;
  spec.message = "boom";
  Failpoints::Global().Arm("site.custom", spec);
  Status status = MaybeFail("site.custom");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "boom");
}

TEST_F(FailpointTest, CountLimitsFailuresThenSucceeds) {
  FailpointSpec spec;
  spec.count = 3;
  Failpoints::Global().Arm("site.count", spec);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(MaybeFail("site.count").ok()) << "hit " << i;
  }
  // Budget exhausted: the point stays registered but stops firing.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(MaybeFail("site.count").ok());
  }
  EXPECT_EQ(Failpoints::Global().hits("site.count"), 3u);
}

TEST_F(FailpointTest, DelayActionSleepsThenSucceeds) {
  FailpointSpec spec;
  spec.action = FailAction::kDelay;
  spec.delay_ms = 20.0;
  Failpoints::Global().Arm("site.delay", spec);
  util::Stopwatch sw;
  EXPECT_TRUE(MaybeFail("site.delay").ok());
  EXPECT_GE(sw.ElapsedMillis(), 15.0);
}

TEST_F(FailpointTest, DisarmRestoresOk) {
  Failpoints::Global().Arm("site.a", FailpointSpec{});
  EXPECT_FALSE(MaybeFail("site.a").ok());
  EXPECT_TRUE(Failpoints::Global().Disarm("site.a"));
  EXPECT_FALSE(Failpoints::Global().Disarm("site.a"));  // already gone
  EXPECT_TRUE(MaybeFail("site.a").ok());
  EXPECT_FALSE(Failpoints::AnyArmed());
}

TEST_F(FailpointTest, RearmResetsCountAndHits) {
  FailpointSpec spec;
  spec.count = 1;
  Failpoints::Global().Arm("site.rearm", spec);
  EXPECT_FALSE(MaybeFail("site.rearm").ok());
  EXPECT_TRUE(MaybeFail("site.rearm").ok());
  Failpoints::Global().Arm("site.rearm", spec);
  EXPECT_EQ(Failpoints::Global().hits("site.rearm"), 0u);
  EXPECT_FALSE(MaybeFail("site.rearm").ok());
}

TEST_F(FailpointTest, ParseAndArmFullSyntax) {
  ASSERT_TRUE(Failpoints::Global()
                  .ParseAndArm("a=error;b=error:Internal*2;c=delay:5;"
                               "d=error:DeadlineExceeded")
                  .ok());
  EXPECT_EQ(MaybeFail("a").code(), StatusCode::kUnavailable);
  EXPECT_EQ(MaybeFail("b").code(), StatusCode::kInternal);
  EXPECT_EQ(MaybeFail("b").code(), StatusCode::kInternal);
  EXPECT_TRUE(MaybeFail("b").ok());  // *2 exhausted
  EXPECT_TRUE(MaybeFail("c").ok());  // delay succeeds
  EXPECT_EQ(MaybeFail("d").code(), StatusCode::kDeadlineExceeded);

  auto armed = Failpoints::Global().Armed();
  EXPECT_EQ(armed.size(), 4u);
}

TEST_F(FailpointTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Failpoints::Global().ParseAndArm("justaname").ok());
  EXPECT_FALSE(Failpoints::Global().ParseAndArm("x=frobnicate").ok());
  EXPECT_FALSE(Failpoints::Global().ParseAndArm("x=error:NoSuchCode").ok());
  EXPECT_FALSE(Failpoints::AnyArmed());
}

TEST_F(FailpointTest, ConcurrentHitsAreExactlyCounted) {
  FailpointSpec spec;
  spec.count = 100;
  Failpoints::Global().Arm("site.race", spec);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&failures] {
      for (int i = 0; i < 100; ++i) {
        if (!MaybeFail("site.race").ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // The count budget is enforced atomically: exactly 100 of the 400
  // calls failed, no more, no fewer.
  EXPECT_EQ(failures.load(), 100);
  EXPECT_EQ(Failpoints::Global().hits("site.race"), 100u);
}

}  // namespace
}  // namespace querc::util
