file(REMOVE_RECURSE
  "CMakeFiles/test_sql_analyzer.dir/test_sql_analyzer.cc.o"
  "CMakeFiles/test_sql_analyzer.dir/test_sql_analyzer.cc.o.d"
  "test_sql_analyzer"
  "test_sql_analyzer.pdb"
  "test_sql_analyzer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
