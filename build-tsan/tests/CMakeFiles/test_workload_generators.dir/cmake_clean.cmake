file(REMOVE_RECURSE
  "CMakeFiles/test_workload_generators.dir/test_workload_generators.cc.o"
  "CMakeFiles/test_workload_generators.dir/test_workload_generators.cc.o.d"
  "test_workload_generators"
  "test_workload_generators.pdb"
  "test_workload_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
