# Empty dependencies file for test_workload_generators.
# This may be replaced when dependencies are built.
