# Empty dependencies file for test_querc_applications.
# This may be replaced when dependencies are built.
