file(REMOVE_RECURSE
  "CMakeFiles/test_engine_catalog.dir/test_engine_catalog.cc.o"
  "CMakeFiles/test_engine_catalog.dir/test_engine_catalog.cc.o.d"
  "test_engine_catalog"
  "test_engine_catalog.pdb"
  "test_engine_catalog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
