#include "util/mutex.h"

#if defined(QUERC_LOCK_RANK_CHECKS)

#include <cstdio>
#include <cstdlib>

#include "obs/flight_recorder.h"

namespace querc::util::lock_rank_internal {

namespace {

/// One held ranked-or-unranked mutex on the calling thread.
struct HeldLock {
  const void* mu = nullptr;
  int rank = 0;
  const char* name = nullptr;
};

/// Per-thread held stack. Fixed capacity: no allocation on the lock path,
/// and no reentrancy hazards while reporting a violation. Depth 3 is the
/// deepest legal chain today (deploy -> breaker-ctor -> registry); 64
/// leaves room for any future discipline.
constexpr int kMaxHeld = 64;
thread_local HeldLock held_stack[kMaxHeld];
thread_local int held_depth = 0;
/// Reentrancy guard: journaling the violation takes the flight recorder's
/// reader mutex on a thread's first Record, which would re-enter the
/// checker mid-report.
thread_local bool reporting = false;

[[noreturn]] void Violation(const HeldLock& held, int rank,
                            const char* name) {
  reporting = true;
  std::fprintf(stderr,
               "lock-rank violation: acquiring \"%s\" (rank %d) while "
               "holding \"%s\" (rank %d) — ranked mutexes must be "
               "acquired in strictly increasing rank order "
               "(util/mutex.h, DESIGN.md §15)\n",
               name, rank, held.name, held.rank);
  // Journal the inversion so a post-mortem `querc trace` shows which
  // query hit it; detail carries the rank that was being acquired.
  obs::FlightRecorder::Global().RecordInstant(
      obs::EventKind::kError, "lock_rank_violation",
      static_cast<uint8_t>(rank > 0 && rank < 256 ? rank : 0));
  std::abort();
}

}  // namespace

void CheckAcquire(const void* mu, int rank, const char* name) {
  if (reporting) return;
  if (rank < 0) return;  // unranked: tracked for AssertHeld, not ordered
  const HeldLock* worst = nullptr;
  for (int i = 0; i < held_depth; ++i) {
    const HeldLock& held = held_stack[i];
    if (held.rank < 0) continue;
    if (held.mu == mu) {
      // Self-deadlock: relocking a non-recursive mutex. Report it as an
      // inversion against itself instead of hanging forever.
      Violation(held, rank, name);
    }
    if (held.rank >= rank && (worst == nullptr || held.rank > worst->rank)) {
      worst = &held;
    }
  }
  if (worst != nullptr) Violation(*worst, rank, name);
}

void PushHeld(const void* mu, int rank, const char* name) {
  if (reporting) return;
  if (held_depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "lock-rank: held-stack overflow (> %d locks) acquiring "
                 "\"%s\"\n",
                 kMaxHeld, name);
    std::abort();
  }
  held_stack[held_depth++] = HeldLock{mu, rank, name};
}

void PopHeld(const void* mu) {
  if (reporting) return;
  // Unlock order need not be LIFO (lock A, lock B, unlock A is legal):
  // search from the top and close the gap.
  for (int i = held_depth - 1; i >= 0; --i) {
    if (held_stack[i].mu != mu) continue;
    for (int j = i; j + 1 < held_depth; ++j) {
      held_stack[j] = held_stack[j + 1];
    }
    --held_depth;
    return;
  }
  // Unlocking a mutex this thread never locked through util::Mutex.
  std::fprintf(stderr, "lock-rank: unlock of a mutex not held by this "
                       "thread\n");
  std::abort();
}

bool IsHeld(const void* mu) {
  for (int i = 0; i < held_depth; ++i) {
    if (held_stack[i].mu == mu) return true;
  }
  return false;
}

void AssertIsHeld(const void* mu, const char* name) {
  if (reporting) return;
  if (IsHeld(mu)) return;
  std::fprintf(stderr,
               "lock-rank: AssertHeld(\"%s\") failed — calling thread does "
               "not hold the mutex\n",
               name);
  std::abort();
}

}  // namespace querc::util::lock_rank_internal

#endif  // QUERC_LOCK_RANK_CHECKS
