#!/usr/bin/env bash
# Builds and tests querc across the sanitizer matrix:
#
#   plain   : -DQUERC_WERROR=ON                   (the tier-1 configuration)
#   asan    : -DQUERC_SANITIZE=address,undefined  (combined ASan+UBSan)
#   tsan    : -DQUERC_SANITIZE=thread
#   tsafety : -DQUERC_THREAD_SAFETY=ON, compiled with clang — the static
#             thread-safety-analysis leg (-Werror=thread-safety). Build
#             only, no runtime smokes; skipped gracefully when clang++ is
#             not on PATH, mirroring run_clang_tidy.sh.
#
# Each configuration gets its own build directory (build/, build-asan/,
# build-tsan/, build-tsafety/) so incremental rebuilds stay cheap.
# Configurations can be subset via QUERC_VERIFY_CONFIGS ("plain asan tsan
# tsafety" by default), and the ctest filter via QUERC_VERIFY_TESTS (-R
# pattern, default: everything).
#
#   tools/verify_matrix.sh                       # full matrix
#   QUERC_VERIFY_CONFIGS="plain" tools/verify_matrix.sh
#   QUERC_VERIFY_TESTS="sql|lint" tools/verify_matrix.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
configs="${QUERC_VERIFY_CONFIGS:-plain asan tsan tsafety}"
test_filter="${QUERC_VERIFY_TESTS:-}"
jobs="${QUERC_VERIFY_JOBS:-$(nproc 2>/dev/null || echo 2)}"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure: $* ===="
  cmake -B "$dir" -S "$repo_root" "$@" >/dev/null
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$jobs"
  echo "==== [$name] ctest ===="
  if [ -n "$test_filter" ]; then
    (cd "$dir" && ctest --output-on-failure -j "$jobs" -R "$test_filter")
  else
    (cd "$dir" && ctest --output-on-failure -j "$jobs")
  fi
  # Smoke the lint CLI end to end under the instrumented binary: a query
  # with a known error-severity finding must exit nonzero.
  if printf 'SELECT a FROM orders, lineitem;' | \
      "$dir/tools/querc" lint --stdin >/dev/null; then
    echo "[$name] FAIL: querc lint did not gate on an error finding" >&2
    return 1
  fi
  # Chaos smoke: a short fault-injection soak (sink failures + classifier
  # outage + shed bursts) must degrade gracefully — breakers trip and
  # re-close, load is shed instead of queued, nothing is silently dropped.
  # `querc chaos` exits nonzero if any of those invariants break.
  echo "==== [$name] chaos smoke ===="
  "$dir/tools/querc" chaos --shards 2 --warmup 40 --faults 120 \
    --recovery 200 --max-in-flight 4 --breaker-open-ms 10 >/dev/null
  # Noisy-neighbor smoke: one tenant floods at 10x its quota while its
  # backend fails; the drill exits nonzero unless isolation holds —
  # victims never shed (guaranteed-minimum share), victim p99 bounded,
  # only the aggressor's per-tenant breakers trip and all re-close, and
  # every shed reconciles per account across counters, the controller,
  # and the flight-recorder journal. Fully deterministic (fake clock), so
  # it runs identically in every sanitizer config.
  echo "==== [$name] noisy-neighbor smoke ===="
  "$dir/tools/querc" chaos --noisy-neighbor --shards 2 --victims 3 \
    --warmup 5 --flood 10 --recovery 200 --breaker-open-ms 10 >/dev/null
  # Embedding-cache smoke: warm-cache throughput must be >= 5x cold, a
  # replayed workload must hit, and cached vectors must be bit-identical
  # to direct inference. bench_embed_cache exits nonzero otherwise.
  echo "==== [$name] embed cache smoke ===="
  (cd "$dir" && ./bench/bench_embed_cache --smoke \
    --out BENCH_embed_smoke.json >/dev/null)
  # Aggregator smoke: the lock-free ConcurrentAggregator must hold its
  # correctness contract in every config (counts conserved across eviction
  # churn, exact in-capacity group-by, evict-least surfacing late hot
  # keys), and must beat the mutexed-map baseline at 8 threads in the
  # plain config. Sanitizer instrumentation distorts relative timings, so
  # asan/tsan run contract-only (--no-perf-gate).
  echo "==== [$name] aggregator smoke ===="
  local agg_flags=""
  if [ "$name" != plain ]; then agg_flags="--no-perf-gate"; fi
  (cd "$dir" && ./bench/bench_aggregator --smoke $agg_flags \
    --out BENCH_aggregator_smoke.json >/dev/null)
  # Flight-recorder smoke: the journal's conservation / drop-counting /
  # cross-thread-reassembly contract must hold in every config (this is
  # where tsan earns its keep: N writers racing a concurrent drain). The
  # perf gates — tens-of-ns record path, recorder-on within 5% of
  # recorder-off on the QWorker pipeline — run in plain only.
  echo "==== [$name] flight recorder smoke ===="
  (cd "$dir" && ./bench/bench_flight_recorder --smoke $agg_flags \
    --out BENCH_flightrec_smoke.json >/dev/null)
  # Tenant fairness smoke: the isolation contract (victim never shed,
  # aggressor shed at a positive rate, no silent drops) must hold in every
  # config; the perf gate (unisolated flood sheds the victim, isolated
  # victim p99 no worse) is timing-sensitive and runs plain-only.
  echo "==== [$name] tenant fairness smoke ===="
  (cd "$dir" && ./bench/bench_tenant_fairness --smoke $agg_flags \
    --out BENCH_tenant_smoke.json >/dev/null)
  # Sched latency smoke: the lane-scheduling contract (interactive p99
  # under a batch-lane flood within max(10x unloaded p99, 20 ms); the
  # same-lane FIFO baseline violating that bound; batch still making
  # progress) must hold in every config — the flood sleeps rather than
  # spins, so queueing delay survives sanitizer slowdowns. The 2x
  # separation perf gate runs plain-only.
  echo "==== [$name] sched latency smoke ===="
  (cd "$dir" && ./bench/bench_sched_latency --smoke $agg_flags \
    --out BENCH_sched_smoke.json >/dev/null)
  # Trace smoke: `querc trace` must reassemble per-query traces from the
  # journal and emit Perfetto-loadable JSON end to end.
  echo "==== [$name] trace smoke ===="
  "$dir/tools/querc" trace --queries 60 --accounts 2 --users 2 --epochs 2 \
    --shards 2 --slowest 3 --out "$dir/BENCH_trace_smoke.json" >/dev/null
  echo "==== [$name] ok ===="
}

# Static thread-safety-analysis leg: compile everything under clang with
# -Wthread-safety promoted to an error (QUERC_THREAD_SAFETY=ON). The
# analysis is compile-time only, so this leg builds but does not run the
# ctest/smoke battery — the runtime contracts are already covered by the
# other configs.
run_tsafety() {
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "==== [tsafety] clang++ not found on PATH; skipping (ok) ===="
    return 0
  fi
  local dir="$repo_root/build-tsafety"
  echo "==== [tsafety] configure: clang++ -DQUERC_THREAD_SAFETY=ON ===="
  cmake -B "$dir" -S "$repo_root" \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DQUERC_THREAD_SAFETY=ON >/dev/null
  echo "==== [tsafety] build ===="
  cmake --build "$dir" -j "$jobs"
  echo "==== [tsafety] ok ===="
}

for config in $configs; do
  case "$config" in
    plain)
      run_config plain "$repo_root/build" -DQUERC_WERROR=ON ;;
    asan)
      run_config asan "$repo_root/build-asan" \
        -DQUERC_SANITIZE=address,undefined ;;
    tsan)
      run_config tsan "$repo_root/build-tsan" -DQUERC_SANITIZE=thread ;;
    tsafety)
      run_tsafety ;;
    *)
      echo "verify_matrix: unknown config '$config'" >&2
      exit 2 ;;
  esac
done
echo "verify_matrix: all configs passed: $configs"
