// Property-style sweeps over the engine: invariants that must hold for
// EVERY TPC-H template under assorted index configurations.

#include <gtest/gtest.h>

#include "engine/advisor.h"
#include "engine/cost_model.h"
#include "util/rng.h"
#include "workload/tpch_gen.h"

namespace querc::engine {
namespace {

const Catalog& SharedCatalog() {
  static const Catalog* catalog = new Catalog(TpchCatalog());
  return *catalog;
}

IndexConfig AssortedConfig() {
  return {{"lineitem", {"l_shipdate"}},
          {"lineitem", {"l_quantity"}},
          {"orders", {"o_orderdate"}},
          {"orders", {"o_orderkey"}},
          {"customer", {"c_mktsegment"}},
          {"part", {"p_size", "p_brand"}},
          {"partsupp", {"ps_supplycost"}}};
}

class TemplateInvariantsTest : public ::testing::TestWithParam<int> {
 protected:
  sql::QueryShape Shape() {
    util::Rng rng(900 + static_cast<uint64_t>(GetParam()));
    return sql::AnalyzeText(
        workload::TpchGenerator::Instantiate(GetParam(), rng),
        sql::Dialect::kSqlServer);
  }
};

TEST_P(TemplateInvariantsTest, CostsArePositiveAndFinite) {
  CostModel model(&SharedCatalog());
  for (const IndexConfig& config :
       {IndexConfig{}, AssortedConfig()}) {
    QueryCost cost = model.Cost(Shape(), config);
    EXPECT_GT(cost.actual_seconds, 0.0);
    EXPECT_GT(cost.estimated_seconds, 0.0);
    EXPECT_TRUE(std::isfinite(cost.actual_seconds));
    EXPECT_TRUE(std::isfinite(cost.estimated_seconds));
  }
}

TEST_P(TemplateInvariantsTest, OptimizerNeverRaisesEstimatedCost) {
  // The optimizer picks plans by estimated cost, so adding indexes can
  // only lower (or keep) the ESTIMATED cost — never raise it.
  CostModel model(&SharedCatalog());
  sql::QueryShape shape = Shape();
  double bare = model.Cost(shape, {}).estimated_seconds;
  double indexed = model.Cost(shape, AssortedConfig()).estimated_seconds;
  EXPECT_LE(indexed, bare + 1e-9);
}

TEST_P(TemplateInvariantsTest, IrrelevantIndexIsANoop) {
  CostModel model(&SharedCatalog());
  sql::QueryShape shape = Shape();
  // An index on a column no TPC-H query filters by (comments).
  IndexConfig irrelevant = {{"supplier", {"s_comment"}}};
  EXPECT_DOUBLE_EQ(model.Cost(shape, {}).actual_seconds,
                   model.Cost(shape, irrelevant).actual_seconds);
}

TEST_P(TemplateInvariantsTest, CostingIsDeterministic) {
  CostModel model(&SharedCatalog());
  sql::QueryShape shape = Shape();
  QueryCost a = model.Cost(shape, AssortedConfig());
  QueryCost b = model.Cost(shape, AssortedConfig());
  EXPECT_DOUBLE_EQ(a.actual_seconds, b.actual_seconds);
  EXPECT_DOUBLE_EQ(a.estimated_seconds, b.estimated_seconds);
}

TEST_P(TemplateInvariantsTest, EstimateMatchesActualWithoutMisestimation) {
  // Whenever the chosen plan used no misestimated index, estimated and
  // actual must agree exactly (the simulator's ground truth IS the stats).
  CostModel model(&SharedCatalog());
  QueryCost cost = model.Cost(Shape(), AssortedConfig());
  if (!cost.used_bad_plan) {
    EXPECT_NEAR(cost.estimated_seconds, cost.actual_seconds,
                1e-9 * std::max(1.0, cost.actual_seconds));
  } else {
    EXPECT_GT(cost.actual_seconds, cost.estimated_seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TemplateInvariantsTest,
                         ::testing::Range(1, 23));

// Selectivity must always be a probability, for every operator shape.
class SelectivityRangeTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SelectivityRangeTest, WithinUnitInterval) {
  CostModel model(&SharedCatalog());
  const ColumnStats* stats =
      SharedCatalog().Table("lineitem")->Column("l_quantity");
  sql::Predicate p;
  p.op = GetParam();
  p.column = "l_quantity";
  p.literals = {"25", "40"};
  for (bool estimated : {false, true}) {
    double s = model.Selectivity(p, stats, estimated);
    EXPECT_GE(s, 0.0) << p.op;
    EXPECT_LE(s, 1.0) << p.op;
    // And without stats.
    s = model.Selectivity(p, nullptr, estimated);
    EXPECT_GE(s, 0.0) << p.op;
    EXPECT_LE(s, 1.0) << p.op;
  }
}

INSTANTIATE_TEST_SUITE_P(Operators, SelectivityRangeTest,
                         ::testing::Values("=", "<>", "<", ">", "<=", ">=",
                                           "BETWEEN", "IN", "LIKE",
                                           "NOT LIKE", "IS NULL",
                                           "IS NOT NULL", "IN_SUBQUERY",
                                           "EXISTS_SUBQUERY", "HAVING_>"));

TEST(SelectivityMonotonicityTest, RangeGrowsWithBound) {
  CostModel model(&SharedCatalog());
  const ColumnStats* stats =
      SharedCatalog().Table("lineitem")->Column("l_shipdate");
  double prev = 0.0;
  for (int year = 1992; year <= 1999; ++year) {
    sql::Predicate p;
    p.op = "<";
    p.column = "l_shipdate";
    p.literals = {std::to_string(year) + "-01-01"};
    double s = model.Selectivity(p, stats, false);
    EXPECT_GE(s, prev - 1e-12) << year;
    prev = s;
  }
  EXPECT_GT(prev, 0.95);  // past the domain max
}

}  // namespace
}  // namespace querc::engine
