#ifndef QUERC_UTIL_THREAD_POOL_H_
#define QUERC_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace querc::util {

/// Fixed-size worker pool used by the training module and the QWorker
/// pool for parallel training/evaluation and batch labeling. Tasks are
/// void() closures; `WaitIdle` blocks until every submitted task has
/// finished.
///
/// Concurrency contract:
///   - `Submit` tasks must not throw; an escaping exception is caught and
///     logged (it previously reached `std::terminate`).
///   - `ParallelFor` tracks its own batch with a completion latch, so two
///     concurrent batches from different threads never observe each
///     other's work, and the *calling thread participates* in the loop —
///     calling `ParallelFor` from inside a pool worker is safe (no
///     deadlock) because the caller can drain the whole batch itself.
///   - The first exception thrown by `fn` in a `ParallelFor` batch is
///     captured and rethrown on the calling thread after the batch
///     completes; remaining indices still run.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and no task is running. Global: a
  /// caller may also wait out tasks submitted by other threads. Batch
  /// users should prefer `ParallelFor`, which waits on its own latch.
  void WaitIdle() EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and the calling thread,
  /// returning when all n calls have finished. The callable is shared by
  /// all workers; it must be thread-safe. Safe to call from inside a pool
  /// worker (the caller participates) and concurrently from several
  /// threads (each batch has its own completion latch). Rethrows the
  /// first exception thrown by `fn` once the batch has drained.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_{LockRank::kThreadPool, "threadpool.mu"};
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  /// Immutable after the constructor returns (workers never touch it).
  std::vector<std::thread> threads_;
};

}  // namespace querc::util

#endif  // QUERC_UTIL_THREAD_POOL_H_
