#include "embed/doc2vec.h"

#include <sstream>

#include <gtest/gtest.h>

namespace querc::embed {
namespace {

/// Tiny corpus with two obvious structural groups.
std::vector<std::vector<std::string>> TwoGroupCorpus(int per_group = 30) {
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < per_group; ++i) {
    docs.push_back({"SELECT", "revenue", "FROM", "sales", "WHERE", "region",
                    "=", "<str>"});
    docs.push_back({"INSERT", "INTO", "audit_log", "VALUES", "(", "<num>",
                    ",", "<str>", ")"});
  }
  return docs;
}

Doc2VecEmbedder::Options SmallOptions(Doc2VecEmbedder::Mode mode) {
  Doc2VecEmbedder::Options options;
  options.dim = 16;
  options.mode = mode;
  options.epochs = 20;
  options.min_count = 1;
  options.seed = 21;
  return options;
}

class Doc2VecModeTest
    : public ::testing::TestWithParam<Doc2VecEmbedder::Mode> {};

TEST_P(Doc2VecModeTest, TrainSucceedsAndEmbedsToDim) {
  Doc2VecEmbedder embedder(SmallOptions(GetParam()));
  ASSERT_TRUE(embedder.Train(TwoGroupCorpus()).ok());
  nn::Vec v = embedder.Embed({"SELECT", "revenue", "FROM", "sales"});
  EXPECT_EQ(v.size(), 16u);
  double mag = 0.0;
  for (double x : v) mag += std::abs(x);
  EXPECT_GT(mag, 0.0);
}

TEST_P(Doc2VecModeTest, SimilarQueriesCloserThanDissimilar) {
  Doc2VecEmbedder embedder(SmallOptions(GetParam()));
  ASSERT_TRUE(embedder.Train(TwoGroupCorpus()).ok());
  nn::Vec select1 = embedder.Embed(
      {"SELECT", "revenue", "FROM", "sales", "WHERE", "region", "=", "<str>"});
  nn::Vec select2 = embedder.Embed({"SELECT", "revenue", "FROM", "sales"});
  nn::Vec insert = embedder.Embed(
      {"INSERT", "INTO", "audit_log", "VALUES", "(", "<num>", ")"});
  double sim_same = nn::CosineSimilarity(select1, select2);
  double sim_diff = nn::CosineSimilarity(select1, insert);
  EXPECT_GT(sim_same, sim_diff);
}

TEST_P(Doc2VecModeTest, InferenceIsDeterministicPerInput) {
  Doc2VecEmbedder embedder(SmallOptions(GetParam()));
  ASSERT_TRUE(embedder.Train(TwoGroupCorpus()).ok());
  std::vector<std::string> doc = {"SELECT", "revenue", "FROM", "sales"};
  EXPECT_EQ(embedder.Embed(doc), embedder.Embed(doc));
}

INSTANTIATE_TEST_SUITE_P(Modes, Doc2VecModeTest,
                         ::testing::Values(Doc2VecEmbedder::Mode::kDm,
                                           Doc2VecEmbedder::Mode::kDbow));

TEST(Doc2VecTest, EmptyCorpusFails) {
  Doc2VecEmbedder embedder(SmallOptions(Doc2VecEmbedder::Mode::kDm));
  EXPECT_FALSE(embedder.Train({}).ok());
}

TEST(Doc2VecTest, EmbedBeforeTrainReturnsZeros) {
  Doc2VecEmbedder embedder(SmallOptions(Doc2VecEmbedder::Mode::kDm));
  nn::Vec v = embedder.Embed({"a"});
  for (double x : v) EXPECT_EQ(x, 0.0);
}

TEST(Doc2VecTest, TrainedDocVectorsAvailable) {
  Doc2VecEmbedder embedder(SmallOptions(Doc2VecEmbedder::Mode::kDm));
  auto corpus = TwoGroupCorpus(5);
  ASSERT_TRUE(embedder.Train(corpus).ok());
  EXPECT_EQ(embedder.num_train_docs(), corpus.size());
  EXPECT_EQ(embedder.TrainedDocVector(0).size(), 16u);
}

TEST(Doc2VecTest, SaveLoadPreservesEmbeddings) {
  Doc2VecEmbedder embedder(SmallOptions(Doc2VecEmbedder::Mode::kDm));
  ASSERT_TRUE(embedder.Train(TwoGroupCorpus()).ok());
  std::stringstream ss;
  ASSERT_TRUE(embedder.Save(ss).ok());
  auto loaded = Doc2VecEmbedder::Load(ss);
  ASSERT_TRUE(loaded.ok());
  std::vector<std::string> doc = {"SELECT", "revenue", "FROM", "sales"};
  nn::Vec original = embedder.Embed(doc);
  nn::Vec restored = loaded->Embed(doc);
  ASSERT_EQ(original.size(), restored.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(original[i], restored[i], 1e-12);
  }
}

TEST(Doc2VecTest, SaveUntrainedFails) {
  Doc2VecEmbedder embedder(SmallOptions(Doc2VecEmbedder::Mode::kDm));
  std::stringstream ss;
  EXPECT_FALSE(embedder.Save(ss).ok());
}

TEST(Doc2VecTest, LoadRejectsBadMagic) {
  std::stringstream ss("garbage bytes here, definitely not a model");
  EXPECT_FALSE(Doc2VecEmbedder::Load(ss).ok());
}

TEST(Doc2VecTest, NameReflectsMode) {
  EXPECT_EQ(Doc2VecEmbedder(SmallOptions(Doc2VecEmbedder::Mode::kDm)).name(),
            "doc2vec-dm");
  EXPECT_EQ(
      Doc2VecEmbedder(SmallOptions(Doc2VecEmbedder::Mode::kDbow)).name(),
      "doc2vec-dbow");
}


TEST(Doc2VecTest, DbowInferenceIsOrderInvariant) {
  // PV-DBOW is a bag-of-words model: two inputs with the same token
  // multiset must embed identically, byte for byte. (This is load-bearing
  // for the Table 1 reproduction: order signal must be invisible here.)
  Doc2VecEmbedder embedder(SmallOptions(Doc2VecEmbedder::Mode::kDbow));
  ASSERT_TRUE(embedder.Train(TwoGroupCorpus()).ok());
  std::vector<std::string> a = {"SELECT", "revenue", "FROM", "sales",
                                "WHERE", "region", "=", "<str>"};
  std::vector<std::string> b = {"WHERE", "region", "FROM", "sales",
                                "SELECT", "revenue", "=", "<str>"};
  EXPECT_EQ(embedder.Embed(a), embedder.Embed(b));
}

TEST(Doc2VecTest, DmInferenceUsesOrder) {
  // PV-DM predicts words from context windows, so order can influence the
  // vector. Different multisets must certainly differ.
  Doc2VecEmbedder embedder(SmallOptions(Doc2VecEmbedder::Mode::kDm));
  ASSERT_TRUE(embedder.Train(TwoGroupCorpus()).ok());
  std::vector<std::string> a = {"SELECT", "revenue", "FROM", "sales"};
  std::vector<std::string> c = {"INSERT", "INTO", "audit_log"};
  EXPECT_NE(embedder.Embed(a), embedder.Embed(c));
}

}  // namespace
}  // namespace querc::embed
