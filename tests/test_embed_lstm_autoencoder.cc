#include "embed/lstm_autoencoder.h"

#include <sstream>

#include <gtest/gtest.h>

namespace querc::embed {
namespace {

std::vector<std::vector<std::string>> TwoGroupCorpus(int per_group = 25) {
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < per_group; ++i) {
    docs.push_back({"SELECT", "a", "FROM", "t", "WHERE", "b", "=", "<num>"});
    docs.push_back({"UPDATE", "u", "SET", "c", "=", "<str>"});
  }
  return docs;
}

LstmAutoencoderEmbedder::Options SmallOptions() {
  LstmAutoencoderEmbedder::Options options;
  options.hidden_dim = 12;
  options.token_dim = 8;
  options.epochs = 8;
  options.min_count = 1;
  options.seed = 33;
  return options;
}

TEST(LstmAeTest, TrainsAndEmbeds) {
  LstmAutoencoderEmbedder embedder(SmallOptions());
  ASSERT_TRUE(embedder.Train(TwoGroupCorpus()).ok());
  nn::Vec v = embedder.Embed({"SELECT", "a", "FROM", "t"});
  EXPECT_EQ(v.size(), 12u);
}

TEST(LstmAeTest, TrainingLossDecreases) {
  auto corpus = TwoGroupCorpus();
  LstmAutoencoderEmbedder::Options short_opts = SmallOptions();
  short_opts.epochs = 1;
  LstmAutoencoderEmbedder one_epoch(short_opts);
  ASSERT_TRUE(one_epoch.Train(corpus).ok());

  LstmAutoencoderEmbedder::Options long_opts = SmallOptions();
  long_opts.epochs = 10;
  LstmAutoencoderEmbedder ten_epochs(long_opts);
  ASSERT_TRUE(ten_epochs.Train(corpus).ok());
  EXPECT_LT(ten_epochs.last_epoch_loss(), one_epoch.last_epoch_loss());
}

TEST(LstmAeTest, SimilarQueriesCloserThanDissimilar) {
  LstmAutoencoderEmbedder::Options options = SmallOptions();
  options.full_softmax = true;  // exact loss separates the groups faster
  options.epochs = 25;
  options.learning_rate = 5e-3;
  LstmAutoencoderEmbedder embedder(options);
  ASSERT_TRUE(embedder.Train(TwoGroupCorpus()).ok());
  nn::Vec s1 = embedder.Embed(
      {"SELECT", "a", "FROM", "t", "WHERE", "b", "=", "<num>"});
  nn::Vec s2 = embedder.Embed({"SELECT", "a", "FROM", "t"});
  nn::Vec u1 = embedder.Embed({"UPDATE", "u", "SET", "c", "=", "<str>"});
  EXPECT_GT(nn::CosineSimilarity(s1, s2), nn::CosineSimilarity(s1, u1));
}

TEST(LstmAeTest, EmbedIsDeterministic) {
  LstmAutoencoderEmbedder embedder(SmallOptions());
  ASSERT_TRUE(embedder.Train(TwoGroupCorpus()).ok());
  std::vector<std::string> doc = {"SELECT", "a", "FROM", "t"};
  EXPECT_EQ(embedder.Embed(doc), embedder.Embed(doc));
}

TEST(LstmAeTest, FullSoftmaxReconstructsTrainingSequences) {
  // The autoencoder's defining property (paper Figure 2): reproduce the
  // input. On a tiny memorizable corpus with full softmax it must recover
  // most of a training sequence.
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 40; ++i) {
    corpus.push_back({"SELECT", "a", "FROM", "t"});
    corpus.push_back({"DROP", "TABLE", "u"});
  }
  LstmAutoencoderEmbedder::Options options = SmallOptions();
  options.full_softmax = true;
  options.epochs = 30;
  options.learning_rate = 5e-3;
  LstmAutoencoderEmbedder embedder(options);
  ASSERT_TRUE(embedder.Train(corpus).ok());
  std::vector<std::string> rec = embedder.Reconstruct({"SELECT", "a", "FROM",
                                                       "t"});
  ASSERT_FALSE(rec.empty());
  size_t hits = 0;
  std::vector<std::string> expected = {"SELECT", "a", "FROM", "t"};
  for (size_t i = 0; i < std::min(rec.size(), expected.size()); ++i) {
    if (rec[i] == expected[i]) ++hits;
  }
  EXPECT_GE(hits, 3u) << "reconstruction too lossy";
}

TEST(LstmAeTest, EmptyCorpusFails) {
  LstmAutoencoderEmbedder embedder(SmallOptions());
  EXPECT_FALSE(embedder.Train({}).ok());
}

TEST(LstmAeTest, EmbedBeforeTrainReturnsZeros) {
  LstmAutoencoderEmbedder embedder(SmallOptions());
  nn::Vec v = embedder.Embed({"x"});
  for (double x : v) EXPECT_EQ(x, 0.0);
}

TEST(LstmAeTest, LongSequencesTruncatedSafely) {
  LstmAutoencoderEmbedder::Options options = SmallOptions();
  options.max_sequence = 6;
  LstmAutoencoderEmbedder embedder(options);
  std::vector<std::vector<std::string>> corpus;
  std::vector<std::string> long_doc;
  for (int i = 0; i < 50; ++i) long_doc.push_back("tok" + std::to_string(i % 9));
  for (int i = 0; i < 10; ++i) corpus.push_back(long_doc);
  ASSERT_TRUE(embedder.Train(corpus).ok());
  EXPECT_EQ(embedder.Embed(long_doc).size(), options.hidden_dim);
}

TEST(LstmAeTest, SaveLoadPreservesEmbeddings) {
  LstmAutoencoderEmbedder embedder(SmallOptions());
  ASSERT_TRUE(embedder.Train(TwoGroupCorpus()).ok());
  std::stringstream ss;
  ASSERT_TRUE(embedder.Save(ss).ok());
  auto loaded = LstmAutoencoderEmbedder::Load(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::vector<std::string> doc = {"SELECT", "a", "FROM", "t"};
  nn::Vec original = embedder.Embed(doc);
  nn::Vec restored = loaded->Embed(doc);
  ASSERT_EQ(original.size(), restored.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(original[i], restored[i], 1e-12);
  }
}

TEST(LstmAeTest, LoadRejectsBadMagic) {
  std::stringstream ss("nope");
  EXPECT_FALSE(LstmAutoencoderEmbedder::Load(ss).ok());
}

}  // namespace
}  // namespace querc::embed
