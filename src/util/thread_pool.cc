#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace querc::util {

namespace {

/// Shared by every pool in the process: the queue depth gauge counts
/// tasks submitted but not yet started, the histogram times task bodies.
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge = obs::MetricsRegistry::Global().GetGauge(
      "querc_threadpool_queue_depth", {},
      "Tasks submitted to ThreadPools but not yet running");
  return gauge;
}

obs::Histogram& TaskHistogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "querc_threadpool_task_ms", {},
      "Execution time of ThreadPool task bodies in milliseconds");
  return hist;
}

obs::Counter& TaskCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_threadpool_tasks_total", {}, "Tasks executed by ThreadPools");
  return counter;
}

/// Shared state of one ParallelFor batch. Heap-allocated and owned via
/// shared_ptr by every shard task *and* the caller, so a worker that
/// wakes up after the batch already drained (its `next` fetch returns
/// >= n) still touches valid memory.
struct Batch {
  explicit Batch(size_t total, const std::function<void(size_t)>& f)
      : n(total), fn(f), ctx(obs::CurrentContext()) {}

  const size_t n;
  /// The caller blocks until the batch drains, so the reference stays
  /// valid for exactly as long as any shard can dereference it.
  const std::function<void(size_t)>& fn;
  /// The caller's trace context at batch creation; every shard adopts it
  /// so spans recorded inside `fn` carry the caller's trace id even when
  /// they run on pool threads.
  const obs::TraceContext ctx;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  Mutex mu{LockRank::kThreadPoolBatch, "threadpool.batch_mu"};
  CondVar cv;
  std::exception_ptr error GUARDED_BY(mu);  // first exception wins

  /// Claims indices until the batch is exhausted. Returns true if this
  /// call finished the batch (done hit n).
  bool RunShard() EXCLUDES(mu) {
    obs::ScopedTraceContext adopt(ctx);
    bool finished = false;
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(&mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        finished = true;
      }
    }
    return finished;
  }

  void NotifyDone() EXCLUDES(mu) {
    // Empty critical section: pairs with the caller's wait so the
    // notification cannot fire between its predicate check and sleep.
    { MutexLock lock(&mu); }
    cv.NotifyAll();
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Capture the submitter's trace context and re-install it around the
  // task body, so work handed to the pool stays attributed to the query
  // that submitted it.
  obs::TraceContext ctx = obs::CurrentContext();
  if (ctx.valid()) {
    task = [ctx, inner = std::move(task)] {
      obs::ScopedTraceContext adopt(ctx);
      inner();
    };
  }
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  QueueDepthGauge().Add(1.0);
  work_cv_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(&mu_);
  idle_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
    mu_.AssertHeld();
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  auto batch = std::make_shared<Batch>(n, fn);
  // One helper per pool thread beyond the caller; never more than n - 1
  // since the caller takes a share of the loop itself.
  size_t helpers = std::min(n - 1, threads_.size());
  for (size_t s = 0; s < helpers; ++s) {
    Submit([batch] {
      if (batch->RunShard()) batch->NotifyDone();
    });
  }
  // The calling thread participates: if it is itself a pool worker (a
  // nested ParallelFor) or every worker is busy elsewhere, it can drain
  // the entire batch alone — no deadlock.
  if (batch->RunShard()) batch->NotifyDone();
  {
    MutexLock lock(&batch->mu);
    batch->cv.Wait(batch->mu, [&]() REQUIRES(batch->mu) {
      batch->mu.AssertHeld();
      return batch->done.load(std::memory_order_acquire) == n;
    });
    if (batch->error) std::rethrow_exception(batch->error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      work_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
        mu_.AssertHeld();
        return stop_ || !queue_.empty();
      });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    QueueDepthGauge().Add(-1.0);
    try {
      obs::Span span(&TaskHistogram());
      task();
    } catch (...) {
      // A throwing Submit() task previously escaped into std::terminate.
      // ParallelFor batches capture and rethrow their own exceptions; a
      // bare Submit has no one to rethrow to, so log and keep the worker.
      QUERC_LOG(Error) << "ThreadPool task threw an exception; dropped";
    }
    TaskCounter().Increment();
    {
      MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace querc::util
