#include <memory>

#include <gtest/gtest.h>

#include "ml/crossval.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace querc::ml {
namespace {

TEST(LabelEncoderTest, AssignsDenseIds) {
  LabelEncoder enc;
  EXPECT_EQ(enc.FitId("alice"), 0);
  EXPECT_EQ(enc.FitId("bob"), 1);
  EXPECT_EQ(enc.FitId("alice"), 0);
  EXPECT_EQ(enc.num_classes(), 2u);
  EXPECT_EQ(enc.Label(1), "bob");
  EXPECT_EQ(enc.Id("carol"), -1);
  auto ids = enc.FitTransform({"bob", "carol", "alice"});
  EXPECT_EQ(ids, (std::vector<int>{1, 2, 0}));
}

TEST(KnnTest, NearestNeighborWins) {
  Dataset train;
  train.x = {{0.0}, {1.0}, {10.0}, {11.0}};
  train.y = {0, 0, 1, 1};
  KnnClassifier knn(KnnClassifier::Options{.k = 1});
  knn.Fit(train);
  EXPECT_EQ(knn.Predict({0.5}), 0);
  EXPECT_EQ(knn.Predict({10.5}), 1);
}

TEST(KnnTest, MajorityOfKVotes) {
  Dataset train;
  train.x = {{0.0}, {0.1}, {0.2}, {5.0}};
  train.y = {1, 1, 1, 0};
  KnnClassifier knn(KnnClassifier::Options{.k = 3});
  knn.Fit(train);
  EXPECT_EQ(knn.Predict({0.05}), 1);
}

TEST(KnnTest, NeighborsSortedByDistance) {
  Dataset train;
  train.x = {{0.0}, {3.0}, {1.0}};
  train.y = {0, 0, 0};
  KnnClassifier knn(KnnClassifier::Options{.k = 3});
  knn.Fit(train);
  auto nbrs = knn.Neighbors({0.9}, 3);
  EXPECT_EQ(nbrs, (std::vector<size_t>{2, 0, 1}));
}

TEST(MetricsTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, ConfusionMatrixAndRecall) {
  auto cm = ConfusionMatrix({0, 0, 1, 1}, {0, 1, 1, 1}, 2);
  EXPECT_EQ(cm[0][0], 1);
  EXPECT_EQ(cm[0][1], 1);
  EXPECT_EQ(cm[1][1], 2);
  auto recall = PerClassRecall(cm);
  EXPECT_DOUBLE_EQ(recall[0], 0.5);
  EXPECT_DOUBLE_EQ(recall[1], 1.0);
}

TEST(MetricsTest, GroupedAccuracy) {
  auto grouped = GroupedAccuracy({0, 0, 1, 1}, {0, 1, 1, 0},
                                 {"a", "a", "b", "b"});
  EXPECT_DOUBLE_EQ(grouped["a"], 0.5);
  EXPECT_DOUBLE_EQ(grouped["b"], 0.5);
}

TEST(MetricsTest, MacroF1PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 0, 1}, {0, 1, 0, 1}, 2), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1({0, 0}, {1, 1}, 2), 0.0);
}

Dataset StripedData(int n, util::Rng& rng) {
  Dataset data;
  for (int i = 0; i < n; ++i) {
    double x = rng.UniformDouble(0, 3);
    data.x.push_back({x});
    data.y.push_back(static_cast<int>(x));
  }
  return data;
}

TEST(CrossValTest, StratifiedFoldsCoverEverySample) {
  util::Rng rng(3);
  Dataset data = StripedData(120, rng);
  auto result = StratifiedKFold(data, 4, [] {
    return std::make_unique<KnnClassifier>(KnnClassifier::Options{.k = 3});
  });
  EXPECT_EQ(result.fold_accuracies.size(), 4u);
  EXPECT_EQ(result.oof_predictions.size(), data.size());
  for (int p : result.oof_predictions) EXPECT_GE(p, 0);
  EXPECT_GT(result.MeanAccuracy(), 0.9);
}

TEST(CrossValTest, OofAccuracyMatchesFoldMean) {
  util::Rng rng(5);
  Dataset data = StripedData(90, rng);
  auto result = StratifiedKFold(data, 3, [] {
    return std::make_unique<RandomForestClassifier>(
        RandomForestClassifier::Options{.num_trees = 10});
  });
  double oof_acc = Accuracy(data.y, result.oof_predictions);
  EXPECT_NEAR(oof_acc, result.MeanAccuracy(), 0.05);
}

TEST(CrossValTest, RareClassStillInEveryTrainFold) {
  // 3 samples of a rare class with 3 folds: each fold holds exactly one,
  // so training always sees the other two — stratification guarantee.
  Dataset data;
  util::Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    data.x.push_back({rng.UniformDouble(0, 1)});
    data.y.push_back(0);
  }
  for (int i = 0; i < 3; ++i) {
    data.x.push_back({100.0 + static_cast<double>(i)});
    data.y.push_back(1);
  }
  auto result = StratifiedKFold(data, 3, [] {
    return std::make_unique<KnnClassifier>(KnnClassifier::Options{.k = 1});
  });
  // All rare-class members classified correctly out-of-fold (their single
  // nearest neighbor is always another rare-class member).
  for (size_t i = 60; i < 63; ++i) {
    EXPECT_EQ(result.oof_predictions[i], 1);
  }
}

}  // namespace
}  // namespace querc::ml
