#include "engine/cost_model.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/string_util.h"
#include "workload/tpch_gen.h"

namespace querc::engine {

namespace {

/// Parses a predicate literal to a numeric value (numbers directly, ISO
/// dates to days-since-epoch). Returns NaN when unparseable.
double ParseLiteral(const std::string& text, ColumnType type) {
  if (type == ColumnType::kDate || (text.size() == 10 && text[4] == '-')) {
    if (text.size() == 10 && text[4] == '-' && text[7] == '-') {
      int y = std::atoi(text.substr(0, 4).c_str());
      int m = std::atoi(text.substr(5, 2).c_str());
      int d = std::atoi(text.substr(8, 2).c_str());
      if (y > 0 && m >= 1 && m <= 12 && d >= 1 && d <= 31) {
        return static_cast<double>(workload::DaysFromCivil(y, m, d));
      }
    }
    return std::nan("");
  }
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) return std::nan("");
  return v;
}

bool IsHavingPredicate(const sql::Predicate& p) {
  return util::StartsWith(p.op, "HAVING_");
}

}  // namespace

CostModel::CostModel(const Catalog* catalog, const CostModelOptions& options)
    : catalog_(catalog), options_(options) {}

double CostModel::Selectivity(const sql::Predicate& pred,
                              const ColumnStats* stats, bool estimated) const {
  if (IsHavingPredicate(pred)) {
    // The optimizer treats AGG(col) op literal as if it were col op
    // literal — a wild underestimate. The engine cannot filter base rows
    // on an aggregate at all.
    return estimated ? options_.having_misestimate_selectivity : 1.0;
  }
  if (pred.op == "IS NULL") return 0.01;
  if (pred.op == "IS NOT NULL") return 0.99;
  if (pred.op == "IN_SUBQUERY" || pred.op == "EXISTS_SUBQUERY") {
    return options_.semi_join_selectivity;
  }
  if (pred.op == "LIKE" || pred.op == "NOT LIKE") {
    bool prefix =
        !pred.literals.empty() && !pred.literals[0].empty() &&
        pred.literals[0][0] != '%';
    double s = prefix ? options_.like_prefix_selectivity
                      : options_.like_contains_selectivity;
    return pred.op == "LIKE" ? s : 1.0 - s;
  }

  double ndv = stats != nullptr
                   ? std::max<double>(1.0, static_cast<double>(
                                               stats->distinct_values))
                   : 0.0;
  if (pred.op == "=") {
    return stats != nullptr ? 1.0 / ndv : options_.default_selectivity;
  }
  if (pred.op == "<>") {
    return stats != nullptr ? 1.0 - 1.0 / ndv : 1.0 - options_.default_selectivity;
  }
  if (pred.op == "IN") {
    if (stats != nullptr && !pred.literals.empty()) {
      return std::min(1.0, static_cast<double>(pred.literals.size()) / ndv);
    }
    return options_.default_selectivity;
  }

  // Range operators.
  if (pred.op == "<" || pred.op == ">" || pred.op == "<=" ||
      pred.op == ">=" || pred.op == "BETWEEN") {
    if (stats == nullptr || stats->max_value <= stats->min_value ||
        pred.literals.empty()) {
      return pred.op == "BETWEEN" ? 0.25 : options_.default_selectivity;
    }
    double domain = stats->max_value - stats->min_value;
    double v0 = ParseLiteral(pred.literals[0], stats->type);
    if (std::isnan(v0)) {
      return pred.op == "BETWEEN" ? 0.25 : options_.default_selectivity;
    }
    if (pred.op == "BETWEEN") {
      double v1 = pred.literals.size() > 1
                      ? ParseLiteral(pred.literals[1], stats->type)
                      : std::nan("");
      if (std::isnan(v1)) return 0.25;
      double lo = std::max(stats->min_value, std::min(v0, v1));
      double hi = std::min(stats->max_value, std::max(v0, v1));
      return std::clamp((hi - lo) / domain, 0.0, 1.0);
    }
    double frac = std::clamp((v0 - stats->min_value) / domain, 0.0, 1.0);
    if (pred.op == "<" || pred.op == "<=") return std::max(frac, 1e-6);
    return std::max(1.0 - frac, 1e-6);
  }
  return options_.default_selectivity;
}

void CostModel::CostLevel(const sql::QueryShape& shape,
                          const IndexConfig& config, QueryCost& out) const {
  // Deduplicate table references at this level.
  std::vector<std::string> tables;
  for (const std::string& t : shape.tables) {
    if (catalog_->Table(t) != nullptr &&
        std::find(tables.begin(), tables.end(), t) == tables.end()) {
      tables.push_back(t);
    }
  }

  double est_driver_rows = 0.0;  // largest access output (group/sort driver)
  double act_driver_rows = 0.0;
  double est_total_rows = 0.0;
  double act_total_rows = 0.0;

  for (const std::string& table_name : tables) {
    const TableStats* table = catalog_->Table(table_name);
    double rows = static_cast<double>(table->row_count);

    // Predicates attached to this table.
    std::vector<const sql::Predicate*> preds;
    for (const sql::Predicate& p : shape.filters) {
      if (p.column.empty()) continue;
      std::string owner;
      if (!p.qualifier.empty()) {
        owner = shape.ResolveQualifier(p.qualifier);
      }
      if (owner.empty()) owner = catalog_->TableOfColumn(p.column);
      if (owner == table_name && table->Column(p.column) != nullptr) {
        preds.push_back(&p);
      }
    }

    double est_sel = 1.0;
    double act_sel = 1.0;
    for (const sql::Predicate* p : preds) {
      const ColumnStats* stats = table->Column(p->column);
      est_sel *= Selectivity(*p, stats, /*estimated=*/true);
      act_sel *= Selectivity(*p, stats, /*estimated=*/false);
    }

    TableAccess access;
    access.table = table_name;

    // Option A: sequential scan.
    double scan_cost = rows * options_.seconds_per_scanned_row;
    access.estimated_cost = scan_cost;
    access.actual_cost = scan_cost;
    access.estimated_rows = rows * est_sel;
    access.actual_rows = rows * act_sel;

    // Option B: best applicable index (leading key column must carry a
    // predicate). The optimizer compares by ESTIMATED cost.
    for (const Index& index : config) {
      if (index.table != table_name || index.key_columns.empty()) continue;
      // Combine every predicate on the leading key column (range filters
      // arrive as separate >= and < predicates).
      double lead_est = 1.0;
      double lead_act = 1.0;
      bool having = false;
      bool any_lead = false;
      for (const sql::Predicate* p : preds) {
        if (p->column != index.key_columns[0]) continue;
        any_lead = true;
        const ColumnStats* stats = table->Column(p->column);
        lead_est *= Selectivity(*p, stats, /*estimated=*/true);
        lead_act *= Selectivity(*p, stats, /*estimated=*/false);
        having = having || IsHavingPredicate(*p);
      }
      if (!any_lead) continue;
      // Composite indexes: predicates on the non-leading key columns
      // narrow the range scanned within the index, cutting fetches.
      for (size_t kc = 1; kc < index.key_columns.size(); ++kc) {
        for (const sql::Predicate* p : preds) {
          if (p->column != index.key_columns[kc]) continue;
          if (IsHavingPredicate(*p)) continue;
          const ColumnStats* stats = table->Column(p->column);
          lead_est *= Selectivity(*p, stats, /*estimated=*/true);
          lead_act *= Selectivity(*p, stats, /*estimated=*/false);
        }
      }
      double est_cost = options_.seconds_per_seek +
                        rows * lead_est * options_.seconds_per_fetched_row;
      double act_cost;
      if (having) {
        // Bad plan: the engine must fetch effectively everything through
        // random accesses and re-aggregate — worse than scanning.
        act_cost = scan_cost * options_.bad_plan_penalty;
      } else {
        act_cost = options_.seconds_per_seek +
                   rows * lead_act * options_.seconds_per_fetched_row;
      }
      if (est_cost < access.estimated_cost) {
        access.used_index = true;
        access.index = index;
        access.estimated_cost = est_cost;
        access.actual_cost = act_cost;
        access.estimated_rows = rows * est_sel;
        access.actual_rows = rows * act_sel;
        access.misestimated = having;
      }
    }

    out.estimated_seconds += access.estimated_cost;
    out.actual_seconds += access.actual_cost;
    if (access.misestimated) out.used_bad_plan = true;

    est_driver_rows = std::max(est_driver_rows, access.estimated_rows);
    act_driver_rows = std::max(act_driver_rows, access.actual_rows);
    est_total_rows += access.estimated_rows;
    act_total_rows += access.actual_rows;
    out.accesses.push_back(std::move(access));
  }

  // Join cost: hash joins over the combined access outputs, one pass per
  // join edge.
  double join_edges = static_cast<double>(
      std::max<size_t>(shape.joins.size(),
                       tables.size() > 1 ? tables.size() - 1 : 0));
  if (join_edges > 0) {
    out.estimated_seconds +=
        join_edges * est_total_rows * options_.seconds_per_joined_row;
    out.actual_seconds +=
        join_edges * act_total_rows * options_.seconds_per_joined_row;
  }

  // Aggregation (hash aggregate over the driver input).
  if (!shape.group_by_columns.empty() || !shape.aggregate_functions.empty()) {
    out.estimated_seconds +=
        est_driver_rows * options_.seconds_per_aggregated_row;
    out.actual_seconds +=
        act_driver_rows * options_.seconds_per_aggregated_row;
  }

  // Final sort for ORDER BY (post-aggregation output, capped: grouped
  // outputs are far smaller than their inputs).
  if (!shape.order_by_columns.empty()) {
    double est_out = shape.group_by_columns.empty()
                         ? est_driver_rows
                         : std::min(est_driver_rows, 1e5);
    double act_out = shape.group_by_columns.empty()
                         ? act_driver_rows
                         : std::min(act_driver_rows, 1e5);
    auto sort_cost = [&](double n) {
      return n > 1 ? n * std::log2(n) * options_.sort_coefficient : 0.0;
    };
    out.estimated_seconds += sort_cost(est_out);
    out.actual_seconds += sort_cost(act_out);
  }
}

QueryCost CostModel::Cost(const sql::QueryShape& shape,
                          const IndexConfig& config) const {
  QueryCost cost;
  // Post-order: subqueries execute (once — treated as uncorrelated) and
  // their cost adds to the total.
  std::vector<const sql::QueryShape*> stack = {&shape};
  while (!stack.empty()) {
    const sql::QueryShape* s = stack.back();
    stack.pop_back();
    CostLevel(*s, config, cost);
    for (const sql::QueryShape& sub : s->subqueries) stack.push_back(&sub);
  }
  return cost;
}

QueryCost CostModel::CostText(const std::string& text,
                              const IndexConfig& config,
                              sql::Dialect dialect) const {
  return Cost(sql::AnalyzeText(text, dialect), config);
}

WorkloadRuntime RunWorkload(const CostModel& model,
                            const std::vector<std::string>& texts,
                            const IndexConfig& config, sql::Dialect dialect) {
  WorkloadRuntime result;
  result.per_query_seconds.reserve(texts.size());
  for (const std::string& text : texts) {
    double seconds = model.CostText(text, config, dialect).actual_seconds;
    result.per_query_seconds.push_back(seconds);
    result.total_seconds += seconds;
  }
  return result;
}

}  // namespace querc::engine
