#include "obs/trace_context.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace querc::obs {
namespace {

TEST(TraceIdTest, IdsAreNonZeroAndUnique) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    uint64_t id = NewTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id";
  }
  EXPECT_NE(NewSpanId(), 0u);
}

TEST(TraceContextTest, ScopedAdoptionNestsAndRestores) {
  EXPECT_FALSE(CurrentContext().valid());
  TraceContext outer{NewTraceId(), NewSpanId()};
  {
    ScopedTraceContext adopt_outer(outer);
    EXPECT_EQ(CurrentContext().trace_id, outer.trace_id);
    TraceContext inner{NewTraceId(), NewSpanId()};
    {
      ScopedTraceContext adopt_inner(inner);
      EXPECT_EQ(CurrentContext().trace_id, inner.trace_id);
    }
    EXPECT_EQ(CurrentContext().trace_id, outer.trace_id);
    {
      // Adopting an invalid context detaches the scope from any trace.
      ScopedTraceContext detach(TraceContext{});
      EXPECT_FALSE(CurrentContext().valid());
    }
    EXPECT_EQ(CurrentContext().trace_id, outer.trace_id);
  }
  EXPECT_FALSE(CurrentContext().valid());
}

TEST(TraceContextTest, InstallContextReturnsDisplaced) {
  TraceContext a{NewTraceId(), NewSpanId()};
  TraceContext b{NewTraceId(), NewSpanId()};
  TraceContext none = InstallContext(a);
  EXPECT_FALSE(none.valid());
  TraceContext displaced = InstallContext(b);
  EXPECT_EQ(displaced.trace_id, a.trace_id);
  InstallContext(TraceContext{});
  EXPECT_FALSE(CurrentContext().valid());
}

TEST(TraceContextTest, ContextIsPerThread) {
  TraceContext ctx{NewTraceId(), NewSpanId()};
  ScopedTraceContext adopt(ctx);
  std::atomic<uint64_t> seen_on_thread{1};
  std::thread other([&] {
    // A raw thread (no propagation wrapper) starts detached.
    seen_on_thread.store(CurrentContext().trace_id);
  });
  other.join();
  EXPECT_EQ(seen_on_thread.load(), 0u);
  EXPECT_EQ(CurrentContext().trace_id, ctx.trace_id);
}

// ---------------------------------------------------------------------------
// Propagation through the shared thread pool
// ---------------------------------------------------------------------------

TEST(ThreadPoolPropagationTest, SubmitCarriesCallerContext) {
  util::ThreadPool pool(2);
  TraceContext ctx{NewTraceId(), NewSpanId()};
  std::atomic<uint64_t> observed{0};
  std::atomic<bool> ran{false};
  {
    ScopedTraceContext adopt(ctx);
    pool.Submit([&] {
      observed.store(CurrentContext().trace_id);
      ran.store(true, std::memory_order_release);
    });
  }
  while (!ran.load(std::memory_order_acquire)) std::this_thread::yield();
  EXPECT_EQ(observed.load(), ctx.trace_id);

  // Without an ambient context the task runs detached — no stale
  // adoption from a previous task on the same worker.
  ran.store(false);
  pool.Submit([&] {
    observed.store(CurrentContext().trace_id);
    ran.store(true, std::memory_order_release);
  });
  while (!ran.load(std::memory_order_acquire)) std::this_thread::yield();
  EXPECT_EQ(observed.load(), 0u);
}

TEST(ThreadPoolPropagationTest, ParallelForCarriesContextToEveryShard) {
  util::ThreadPool pool(3);
  TraceContext ctx{NewTraceId(), NewSpanId()};
  constexpr size_t kShards = 16;
  std::vector<uint64_t> observed(kShards, 0);
  {
    ScopedTraceContext adopt(ctx);
    pool.ParallelFor(kShards,
                     [&](size_t i) { observed[i] = CurrentContext().trace_id; });
  }
  for (size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(observed[i], ctx.trace_id) << "shard " << i;
  }
}

// ---------------------------------------------------------------------------
// obs::Trace join-or-create semantics
// ---------------------------------------------------------------------------

TEST(TraceJoinTest, NestedTraceJoinsAmbientTraceId) {
  ASSERT_FALSE(CurrentContext().valid());
  uint64_t outer_id = 0;
  {
    Trace outer("outer_op");
    EXPECT_TRUE(outer.owns_trace());
    outer_id = outer.context().trace_id;
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(CurrentContext().trace_id, outer_id);
    {
      Trace inner("inner_op");
      EXPECT_FALSE(inner.owns_trace());
      EXPECT_EQ(inner.context().trace_id, outer_id);
      EXPECT_NE(inner.context().span_id, outer.context().span_id);
      EXPECT_EQ(CurrentContext().span_id, inner.context().span_id);
    }
    EXPECT_EQ(CurrentContext().span_id, outer.context().span_id);
  }
  EXPECT_FALSE(CurrentContext().valid());
}

// ---------------------------------------------------------------------------
// StageList: inline up to kInlineCapacity, spills beyond without losing
// order (satellite of the flight-recorder PR: stage tracking must not
// heap-allocate on the common path).
// ---------------------------------------------------------------------------

TEST(StageListTest, InlineThenSpillPreservesOrder) {
  StageList stages;
  EXPECT_TRUE(stages.empty());
  static const char* kNames[] = {"s0", "s1", "s2", "s3", "s4", "s5",
                                 "s6", "s7", "s8", "s9", "s10", "s11"};
  for (size_t i = 0; i < 12; ++i) {
    stages.push_back({kNames[i], static_cast<double>(i)});
  }
  ASSERT_EQ(stages.size(), 12u);
  ASSERT_GT(size_t{12}, StageList::kInlineCapacity)
      << "test must exercise the spill path";
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_STREQ(stages[i].first, kNames[i]);
    EXPECT_EQ(stages[i].second, static_cast<double>(i));
  }
  size_t i = 0;
  for (const auto& [name, ms] : stages) {
    EXPECT_STREQ(name, kNames[i]);
    EXPECT_EQ(ms, static_cast<double>(i));
    ++i;
  }
  EXPECT_EQ(i, 12u);
}

TEST(StageListTest, TraceStagesStayInline) {
  Trace trace("inline_check");
  for (int i = 0; i < 3; ++i) trace.AddStage("stage", 1.0);
  EXPECT_EQ(trace.stages().size(), 3u);
  EXPECT_STREQ(trace.stages()[0].first, "stage");
}

}  // namespace
}  // namespace querc::obs
