#include "querc/training_module.h"

#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace querc::core {

namespace {

obs::Histogram& TrainHistogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "querc_training_train_ms", {},
      "Duration of one TrainingModule::Train job in milliseconds");
  return hist;
}

obs::Histogram& DeployHistogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "querc_training_deploy_ms", {},
      "Duration of the deploy step of TrainAndDeploy in milliseconds");
  return hist;
}

obs::Counter& TrainJobsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_training_jobs_total", {}, "Training jobs attempted");
  return counter;
}

obs::Counter& TrainFailuresCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_training_failures_total", {}, "Training jobs that failed");
  return counter;
}

obs::Counter& DeploysCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_training_deploys_total", {},
      "Classifier deployments published to workers/pools");
  return counter;
}

}  // namespace

namespace {
util::ThreadPool::Options TrainingPoolOptions(size_t threads) {
  util::ThreadPool::Options options;
  options.num_threads = threads;  // 0 = topology default
  return options;
}
}  // namespace

TrainingModule::TrainingModule(const Options& options)
    : options_(options), pool_(TrainingPoolOptions(options.training_threads)) {}

void TrainingModule::Collect(const std::string& application,
                             const ProcessedQuery& query) {
  util::MutexLock lock(&mu_);
  workload::Workload& set = training_sets_[application];
  set.Add(query.query);
  if (set.size() > options_.max_queries_per_application) {
    // Drop the oldest half to amortize the erase.
    auto& qs = set.queries();
    qs.erase(qs.begin(), qs.begin() + static_cast<long>(qs.size() / 2));
  }
}

void TrainingModule::ImportLogs(const std::string& application,
                                const workload::Workload& logs) {
  util::MutexLock lock(&mu_);
  training_sets_[application].Append(logs);
}

workload::Workload TrainingModule::TrainingSet(
    const std::string& application) const {
  util::MutexLock lock(&mu_);
  auto it = training_sets_.find(application);
  return it == training_sets_.end() ? workload::Workload() : it->second;
}

void TrainingModule::RegisterEmbedder(
    const std::string& name,
    std::shared_ptr<const embed::Embedder> embedder) {
  util::MutexLock lock(&mu_);
  embedders_[name] = std::move(embedder);
}

std::shared_ptr<const embed::Embedder> TrainingModule::Embedder(
    const std::string& name) const {
  util::MutexLock lock(&mu_);
  auto it = embedders_.find(name);
  return it == embedders_.end() ? nullptr : it->second;
}

util::StatusOr<std::shared_ptr<Classifier>> TrainingModule::Train(
    const TrainJob& job) {
  util::Stopwatch timer;
  TrainJobsCounter().Increment();
  auto fail = [](util::Status status) {
    TrainFailuresCounter().Increment();
    return status;
  };
  std::shared_ptr<const embed::Embedder> embedder =
      Embedder(job.embedder_name);
  if (embedder == nullptr) {
    return fail(util::Status::NotFound("embedder " + job.embedder_name));
  }
  workload::Workload corpus;
  {
    util::MutexLock lock(&mu_);
    auto it = training_sets_.find(job.application);
    if (it == training_sets_.end() || it->second.empty()) {
      return fail(util::Status::FailedPrecondition(
          "no training data for application " + job.application));
    }
    corpus = it->second;
  }
  std::unique_ptr<ml::VectorClassifier> labeler =
      job.labeler_factory
          ? job.labeler_factory()
          : std::make_unique<ml::RandomForestClassifier>(
                ml::RandomForestClassifier::Options{});
  auto classifier = std::make_shared<Classifier>(job.task_name, embedder,
                                                 std::move(labeler));
  if (util::Status status = classifier->Train(corpus, job.label_of, &pool_);
      !status.ok()) {
    return fail(std::move(status));
  }
  {
    util::MutexLock lock(&mu_);
    models_[job.task_name] = classifier;
  }
  TrainHistogram().Record(timer.ElapsedMillis());
  return classifier;
}

util::Status TrainingModule::TrainAll(
    const std::vector<TrainJob>& jobs,
    std::vector<std::shared_ptr<const Classifier>>* trained) {
  std::vector<util::Status> statuses(jobs.size(), util::Status::OK());
  trained->assign(jobs.size(), nullptr);
  // ParallelFor (latch-based) rather than Submit+WaitIdle: WaitIdle is
  // global, so a concurrent training batch from another thread could
  // make this one return early or block on unrelated work. Batch lane:
  // training must never queue ahead of predict fan-out on a shared pool.
  pool_.ParallelFor(util::Lane::kBatch, jobs.size(),
                    [this, &jobs, &statuses, trained](size_t i) {
    auto result = Train(jobs[i]);
    if (result.ok()) {
      (*trained)[i] = std::move(result).value();
    } else {
      statuses[i] = result.status();
    }
  });
  for (const util::Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return util::Status::OK();
}

util::Status TrainingModule::TrainAndDeploy(const std::vector<TrainJob>& jobs,
                                            QWorker& worker) {
  std::vector<std::shared_ptr<const Classifier>> trained;
  QUERC_RETURN_IF_ERROR(TrainAll(jobs, &trained));
  // Deployment can fail in real deployments (publish race, worker gone);
  // the injected fault keeps trained models undeployed — callers keep the
  // old classifier set, which is the desired fail-static behavior.
  QUERC_RETURN_IF_ERROR(util::MaybeFail("training.deploy"));
  util::Stopwatch timer;
  worker.DeployAll(trained);
  DeployHistogram().Record(timer.ElapsedMillis());
  DeploysCounter().Increment();
  return util::Status::OK();
}

util::Status TrainingModule::TrainAndDeploy(const std::vector<TrainJob>& jobs,
                                            QWorkerPool& pool) {
  std::vector<std::shared_ptr<const Classifier>> trained;
  QUERC_RETURN_IF_ERROR(TrainAll(jobs, &trained));
  QUERC_RETURN_IF_ERROR(util::MaybeFail("training.deploy"));
  util::Stopwatch timer;
  pool.DeployAll(trained);
  DeployHistogram().Record(timer.ElapsedMillis());
  DeploysCounter().Increment();
  return util::Status::OK();
}

std::shared_ptr<Classifier> TrainingModule::Model(
    const std::string& task_name) const {
  util::MutexLock lock(&mu_);
  auto it = models_.find(task_name);
  return it == models_.end() ? nullptr : it->second;
}

}  // namespace querc::core
