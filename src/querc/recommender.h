#ifndef QUERC_QUERC_RECOMMENDER_H_
#define QUERC_QUERC_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "ml/knn.h"
#include "workload/workload.h"

namespace querc::core {

/// Query recommendation (§4): predict the next query from the user's
/// recent history, à la SQL QueRIE. The model is non-parametric: the
/// session history is embedded; for an incoming query we find its nearest
/// historical occurrences and recommend the queries that followed them
/// (within the same user's session).
class QueryRecommender {
 public:
  struct Options {
    int neighbors = 10;
    int max_recommendations = 3;
  };

  struct Recommendation {
    std::string text;
    double score = 0.0;  // neighbor-frequency weight
  };

  QueryRecommender(std::shared_ptr<const embed::Embedder> embedder,
                   const Options& options)
      : embedder_(std::move(embedder)), options_(options) {}

  /// Indexes the history. Queries are grouped by user and ordered by
  /// timestamp to derive (query -> next query) transitions.
  util::Status Train(const workload::Workload& history);

  /// Recommends follow-up queries for `current`.
  std::vector<Recommendation> Recommend(
      const workload::LabeledQuery& current) const;

 private:
  std::shared_ptr<const embed::Embedder> embedder_;
  Options options_;
  std::vector<nn::Vec> vectors_;       // embedding of history[i]
  std::vector<int> next_of_;           // index of the query that followed, -1
  workload::Workload history_;
  bool trained_ = false;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_RECOMMENDER_H_
