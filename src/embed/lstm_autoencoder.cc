#include "embed/lstm_autoencoder.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "nn/serialize.h"
#include "nn/softmax.h"

namespace querc::embed {

namespace {
constexpr uint64_t kMagic = 0x514c53544d414532ULL;  // "QLSTMAE2"
}

LstmAutoencoderEmbedder::LstmAutoencoderEmbedder(const Options& options)
    : options_(options) {}

void LstmAutoencoderEmbedder::BuildNetwork(util::Rng& rng) {
  token_embed_ = nn::Tensor(vocab_.size(), options_.token_dim, "ae.embed");
  token_embed_.EmbeddingInit(rng);
  encoder_ = std::make_unique<nn::LstmLayer>(
      options_.token_dim, options_.hidden_dim, "ae.encoder", rng);
  decoder_ = std::make_unique<nn::LstmLayer>(
      options_.token_dim, options_.hidden_dim, "ae.decoder", rng);
  out_ = nn::Tensor(vocab_.size(), options_.hidden_dim, "ae.out");
  out_bias_ = nn::Tensor(vocab_.size(), 1, "ae.out_bias");
  if (options_.full_softmax) out_.XavierInit(rng);
  // Sampled-softmax mode keeps out_ zero-initialized (word2vec convention).

  nn::AdamOptimizer::Options adam;
  adam.learning_rate = options_.learning_rate;
  optimizer_ = std::make_unique<nn::AdamOptimizer>(adam);
  optimizer_->Register(&token_embed_);
  for (nn::Tensor* t : encoder_->Params()) optimizer_->Register(t);
  for (nn::Tensor* t : decoder_->Params()) optimizer_->Register(t);
  if (options_.full_softmax) {
    optimizer_->Register(&out_);
    optimizer_->Register(&out_bias_);
  }
}

util::Status LstmAutoencoderEmbedder::Train(
    const std::vector<std::vector<std::string>>& docs) {
  if (docs.empty()) {
    return util::Status::InvalidArgument("lstm-ae: empty training corpus");
  }
  vocab_ = Vocabulary::Build(docs, options_.min_count);
  if (vocab_.size() <= 3) {
    return util::Status::InvalidArgument(
        "lstm-ae: vocabulary collapsed to special tokens only");
  }
  util::Rng rng(options_.seed);
  BuildNetwork(rng);

  std::vector<std::vector<size_t>> encoded;
  encoded.reserve(docs.size());
  for (const auto& d : docs) {
    auto ids = vocab_.Encode(d);
    if (ids.size() > options_.max_sequence) {
      ids.resize(options_.max_sequence);
    }
    encoded.push_back(std::move(ids));
  }

  std::vector<size_t> order(encoded.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    double loss_sum = 0.0;
    size_t token_sum = 0;
    for (size_t doc_id : order) {
      if (encoded[doc_id].empty()) continue;
      auto [loss, tokens] = TrainDocument(encoded[doc_id], rng);
      loss_sum += loss;
      token_sum += tokens;
    }
    last_epoch_loss_ =
        token_sum > 0 ? loss_sum / static_cast<double>(token_sum) : 0.0;
  }
  trained_ = true;
  return util::Status::OK();
}

std::pair<double, size_t> LstmAutoencoderEmbedder::TrainDocument(
    const std::vector<size_t>& ids, util::Rng& rng) {
  const size_t hd = options_.hidden_dim;

  // ---- Encode ----
  encoder_->Reset();
  std::vector<size_t> enc_inputs = ids;
  for (size_t id : enc_inputs) {
    const double* row = token_embed_.row(id);
    encoder_->Forward(nn::Vec(row, row + options_.token_dim));
  }

  // ---- Decode with teacher forcing ----
  decoder_->Reset();
  decoder_->SetState(encoder_->hidden(), encoder_->cell());
  // Inputs are the targets shifted right by one: [<sos>, w1..wn], targets
  // [w1..wn, <eos>] (the <eos> step is dropped when it would exceed
  // max_sequence).
  std::vector<size_t> dec_inputs;
  std::vector<size_t> targets;
  dec_inputs.push_back(vocab_.SosId());
  for (size_t i = 0; i + 1 < ids.size(); ++i) dec_inputs.push_back(ids[i]);
  for (size_t id : ids) targets.push_back(id);
  if (ids.size() + 1 <= options_.max_sequence) {
    dec_inputs.push_back(ids.back());
    targets.push_back(vocab_.EosId());
  }

  double loss = 0.0;
  std::vector<nn::Vec> dh_per_step(dec_inputs.size());
  std::vector<size_t> negatives(static_cast<size_t>(options_.negative));
  nn::Vec probs;
  for (size_t t = 0; t < dec_inputs.size(); ++t) {
    const double* row = token_embed_.row(dec_inputs[t]);
    const nn::Vec& h =
        decoder_->Forward(nn::Vec(row, row + options_.token_dim));
    size_t target = targets[t];
    if (options_.full_softmax) {
      // logits = out_ h + bias; CE; grads accumulate into out_/out_bias_.
      probs.resize(vocab_.size());
      for (size_t r = 0; r < vocab_.size(); ++r) {
        probs[r] = nn::Dot(out_.row(r), h.data(), hd) + out_bias_.at(r, 0);
      }
      nn::SoftmaxInPlace(probs);
      loss += -std::log(std::max(probs[target], 1e-12));
      nn::Vec dh(hd, 0.0);
      for (size_t r = 0; r < vocab_.size(); ++r) {
        double dlogit = probs[r] - (r == target ? 1.0 : 0.0);
        if (dlogit == 0.0) continue;
        nn::Axpy(dlogit, h.data(), out_.grad_row(r), hd);
        out_bias_.grad_at(r, 0) += dlogit;
        nn::Axpy(dlogit, out_.row(r), dh.data(), hd);
      }
      dh_per_step[t] = std::move(dh);
    } else {
      for (auto& n : negatives) n = vocab_.SampleNegative(rng);
      nn::Vec d_context;
      loss += nn::NegativeSamplingStep(h.data(), hd, target, negatives, out_,
                                       /*lr=*/0.05, d_context,
                                       /*update_output=*/true);
      dh_per_step[t] = std::move(d_context);
    }
  }

  // ---- Backward ----
  auto dec_grad = decoder_->Backward(dh_per_step);
  for (size_t t = 0; t < dec_inputs.size(); ++t) {
    nn::Axpy(1.0, dec_grad.dx[t].data(),
             token_embed_.grad_row(dec_inputs[t]), options_.token_dim);
  }
  auto enc_grad = encoder_->Backward({}, dec_grad.dh_init, dec_grad.dc_init);
  for (size_t t = 0; t < enc_inputs.size(); ++t) {
    nn::Axpy(1.0, enc_grad.dx[t].data(),
             token_embed_.grad_row(enc_inputs[t]), options_.token_dim);
  }
  optimizer_->Step();
  return {loss, dec_inputs.size()};
}

nn::Vec LstmAutoencoderEmbedder::Embed(
    const std::vector<std::string>& words) const {
  nn::Vec h(options_.hidden_dim, 0.0);
  if (!trained_) return h;
  std::vector<size_t> ids = vocab_.Encode(words);
  if (ids.size() > options_.max_sequence) ids.resize(options_.max_sequence);
  std::vector<nn::Vec> xs;
  xs.reserve(ids.size());
  for (size_t id : ids) {
    const double* row = token_embed_.row(id);
    xs.emplace_back(row, row + options_.token_dim);
  }
  encoder_->InferSequence(xs, &h, nullptr);
  return h;
}

std::vector<std::string> LstmAutoencoderEmbedder::Reconstruct(
    const std::vector<std::string>& words) const {
  std::vector<std::string> result;
  if (!trained_) return result;
  std::vector<size_t> ids = vocab_.Encode(words);
  if (ids.size() > options_.max_sequence) ids.resize(options_.max_sequence);
  std::vector<nn::Vec> xs;
  for (size_t id : ids) {
    const double* row = token_embed_.row(id);
    xs.emplace_back(row, row + options_.token_dim);
  }
  nn::Vec h, c;
  encoder_->InferSequence(xs, &h, &c);

  size_t prev = vocab_.SosId();
  for (size_t step = 0; step < options_.max_sequence; ++step) {
    const double* row = token_embed_.row(prev);
    nn::Vec x(row, row + options_.token_dim);
    decoder_->InferStep(x, &h, &c);
    // argmax over logits (biases included for full-softmax models).
    size_t best = 0;
    double best_score = -1e300;
    for (size_t r = 0; r < vocab_.size(); ++r) {
      double score = nn::Dot(out_.row(r), h.data(), options_.hidden_dim) +
                     out_bias_.at(r, 0);
      if (score > best_score) {
        best_score = score;
        best = r;
      }
    }
    if (best == vocab_.EosId()) break;
    result.push_back(vocab_.Word(best));
    prev = best;
  }
  return result;
}

util::Status LstmAutoencoderEmbedder::Save(std::ostream& out) const {
  if (!trained_) {
    return util::Status::FailedPrecondition("lstm-ae: not trained");
  }
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, kMagic));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, options_.hidden_dim));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, options_.token_dim));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, options_.max_sequence));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, options_.full_softmax ? 1 : 0));
  QUERC_RETURN_IF_ERROR(vocab_.Save(out));
  QUERC_RETURN_IF_ERROR(nn::WriteTensor(out, token_embed_));
  for (const nn::Tensor* t : encoder_->Params()) {
    QUERC_RETURN_IF_ERROR(nn::WriteTensor(out, *t));
  }
  for (const nn::Tensor* t : decoder_->Params()) {
    QUERC_RETURN_IF_ERROR(nn::WriteTensor(out, *t));
  }
  QUERC_RETURN_IF_ERROR(nn::WriteTensor(out, out_));
  QUERC_RETURN_IF_ERROR(nn::WriteTensor(out, out_bias_));
  return util::Status::OK();
}

util::StatusOr<LstmAutoencoderEmbedder> LstmAutoencoderEmbedder::Load(
    std::istream& in) {
  uint64_t magic = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, magic));
  if (magic != kMagic) {
    return util::Status::Corruption("lstm-ae: bad magic");
  }
  Options options;
  uint64_t hidden = 0, token = 0, max_seq = 0, full = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, hidden));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, token));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, max_seq));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, full));
  // Reject degenerate headers from corrupt streams before sizing tensors.
  if (hidden == 0 || hidden > 65536 || token == 0 || token > 65536) {
    return util::Status::Corruption("lstm-ae: corrupt header (dims)");
  }
  if (max_seq == 0 || max_seq > (1ULL << 20)) {
    return util::Status::Corruption("lstm-ae: corrupt header (max_sequence)");
  }
  if (full > 1) {
    return util::Status::Corruption("lstm-ae: corrupt header (full_softmax)");
  }
  options.hidden_dim = hidden;
  options.token_dim = token;
  options.max_sequence = max_seq;
  options.full_softmax = full != 0;

  LstmAutoencoderEmbedder embedder(options);
  QUERC_RETURN_IF_ERROR(Vocabulary::Load(in, &embedder.vocab_));
  util::Rng rng(options.seed);
  embedder.BuildNetwork(rng);
  QUERC_RETURN_IF_ERROR(nn::ReadTensor(in, embedder.token_embed_));
  for (nn::Tensor* t : embedder.encoder_->Params()) {
    QUERC_RETURN_IF_ERROR(nn::ReadTensor(in, *t));
  }
  for (nn::Tensor* t : embedder.decoder_->Params()) {
    QUERC_RETURN_IF_ERROR(nn::ReadTensor(in, *t));
  }
  QUERC_RETURN_IF_ERROR(nn::ReadTensor(in, embedder.out_));
  QUERC_RETURN_IF_ERROR(nn::ReadTensor(in, embedder.out_bias_));
  embedder.trained_ = true;
  return embedder;
}

}  // namespace querc::embed
