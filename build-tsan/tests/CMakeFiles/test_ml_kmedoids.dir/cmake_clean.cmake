file(REMOVE_RECURSE
  "CMakeFiles/test_ml_kmedoids.dir/test_ml_kmedoids.cc.o"
  "CMakeFiles/test_ml_kmedoids.dir/test_ml_kmedoids.cc.o.d"
  "test_ml_kmedoids"
  "test_ml_kmedoids.pdb"
  "test_ml_kmedoids[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_kmedoids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
