#include "embed/tfidf_embedder.h"

#include <cmath>
#include <set>

#include "util/string_util.h"

namespace querc::embed {

TfidfEmbedder::TfidfEmbedder(const Options& options)
    : options_(options), idf_(options.buckets, 1.0) {}

size_t TfidfEmbedder::Bucket(const std::string& word) const {
  return util::Fnv1a64(word) % options_.buckets;
}

util::Status TfidfEmbedder::Train(
    const std::vector<std::vector<std::string>>& docs) {
  if (docs.empty()) {
    return util::Status::InvalidArgument("tfidf: empty corpus");
  }
  std::vector<double> doc_freq(options_.buckets, 0.0);
  std::set<size_t> seen;
  for (const auto& doc : docs) {
    seen.clear();
    for (const auto& w : doc) seen.insert(Bucket(w));
    for (size_t b : seen) doc_freq[b] += 1.0;
  }
  const double n = static_cast<double>(docs.size());
  for (size_t b = 0; b < options_.buckets; ++b) {
    // Smoothed idf, always positive.
    idf_[b] = std::log((1.0 + n) / (1.0 + doc_freq[b])) + 1.0;
  }
  trained_ = true;
  return util::Status::OK();
}

nn::Vec TfidfEmbedder::Embed(const std::vector<std::string>& words) const {
  nn::Vec v(options_.buckets, 0.0);
  for (const auto& w : words) v[Bucket(w)] += 1.0;
  for (size_t b = 0; b < v.size(); ++b) {
    if (v[b] > 0.0) {
      double tf = options_.sublinear_tf ? 1.0 + std::log(v[b]) : v[b];
      v[b] = tf * (trained_ ? idf_[b] : 1.0);
    }
  }
  double norm = nn::L2Norm(v);
  if (norm > 0.0) {
    for (double& x : v) x /= norm;
  }
  return v;
}

}  // namespace querc::embed
