# Empty dependencies file for test_sql_dialect.
# This may be replaced when dependencies are built.
