#ifndef QUERC_UTIL_MUTEX_H_
#define QUERC_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace querc::util {

/// Global lock-rank order (DESIGN.md §15). A thread may only acquire a
/// ranked Mutex whose rank is STRICTLY GREATER than every ranked Mutex it
/// already holds; the runtime detector (active in debug/sanitizer builds,
/// see QUERC_LOCK_RANK_CHECKS below) aborts on the first out-of-order
/// acquisition with both lock names — catching deadlock *cycles* that TSan
/// cannot see unless a test happens to interleave both orders.
///
/// The numbers encode the observed nesting of the service today:
///
///   rank  lock                      acquired while holding
///   ----  ------------------------  -----------------------------------
///    10   stats_reporter.mu         (leaf; reporter start/stop)
///    15   admission.mu              -> aggregator.evict_mu,
///                                      metrics.registry_mu,
///                                      flightrec.reader_mu (shed events)
///    18   qworker.tenant_breakers   -> breaker.mu (state scan),
///                                      metrics.registry_mu (breaker ctor)
///    20   qworker.deploy_mu         -> atomic_shared_ptr.mu,
///                                      metrics.registry_mu (breaker ctor)
///    30   training_module.mu        (leaf; training-set/model maps)
///    40   breaker.mu                -> metrics.registry_mu,
///                                      flightrec.reader_mu (transitions)
///    50   embed_cache.shard_mu      -> metrics.registry_mu (counters)
///    55   embed_cache.flight_mu     -> metrics.registry_mu,
///                                      flightrec.reader_mu (coalesce mark)
///    60   threadpool.mu             -> metrics.registry_mu (lane gauges
///                                      resolve/update under the lock so
///                                      depth scrapes stay consistent)
///    62   threadpool.batch_mu       (leaf; ParallelFor latch)
///    65   failpoints.mu             (leaf; actions run after release)
///    70   aggregator.evict_mu       (leaf; atomics + delete only)
///    75   qworker.window_mu         (leaf; window deque)
///    80   atomic_shared_ptr.mu      (leaf; two pointer copies)
///    90   metrics.registry_mu       (leaf; registration map)
///    95   flightrec.reader_mu       (leaf; ring registry)
///
/// Gaps are deliberate: new locks slot in without renumbering. A lock
/// that is only ever a leaf still gets a high-ish rank so future nesting
/// under today's locks stays legal.
enum class LockRank : int {
  /// Not rank-checked (and not pushed on the held stack). For mutexes in
  /// generic utility code whose nesting is caller-defined; prefer a real
  /// rank for every service lock.
  kUnranked = -1,
  kStatsReporter = 10,
  kAdmission = 15,
  kTenantBreakers = 18,
  kQWorkerDeploy = 20,
  kTrainingModule = 30,
  kBreaker = 40,
  kEmbedCacheShard = 50,
  kEmbedCacheFlight = 55,
  kThreadPool = 60,
  kThreadPoolBatch = 62,
  kFailpoints = 65,
  kAggregatorEvict = 70,
  kQWorkerWindow = 75,
  kAtomicSharedPtr = 80,
  kMetricsRegistry = 90,
  kFlightRecorder = 95,
};

/// QUERC_LOCK_RANK_CHECKS is defined by CMake for Debug builds and every
/// sanitizer configuration (and via -DQUERC_LOCK_RANK=ON). Release builds
/// compile the detector out entirely: Mutex::Lock is exactly
/// std::mutex::lock.
#if defined(QUERC_LOCK_RANK_CHECKS)

namespace lock_rank_internal {

/// Checks `rank` against the calling thread's held stack; reports (both
/// lock names, both ranks), journals a flight-recorder event, and aborts
/// on an inversion. Called BEFORE blocking on the native lock so the
/// inversion is reported even on the interleaving that would deadlock.
void CheckAcquire(const void* mu, int rank, const char* name);

/// Pushes an acquired mutex onto the thread's held stack.
void PushHeld(const void* mu, int rank, const char* name);

/// Removes `mu` from the held stack (handles non-LIFO unlock orders).
void PopHeld(const void* mu);

/// True when the calling thread holds `mu`.
bool IsHeld(const void* mu);

/// Aborts unless the calling thread holds `mu` (AssertHeld's backend).
void AssertIsHeld(const void* mu, const char* name);

}  // namespace lock_rank_internal

#endif  // QUERC_LOCK_RANK_CHECKS

/// Annotated mutex (DESIGN.md §15): the project-wide replacement for raw
/// std::mutex in service code (enforced by tools/check_source.py). Carries
/// a Clang thread-safety CAPABILITY so GUARDED_BY/REQUIRES contracts are
/// compiler-checked, and an optional LockRank + name so the runtime
/// detector can prove acquisition order in debug/sanitizer builds.
///
/// Prefer the RAII MutexLock; call Lock/Unlock directly only where a
/// scoped guard cannot express the control flow.
class CAPABILITY("mutex") Mutex {
 public:
  /// An unranked mutex: thread-safety-annotated but invisible to the
  /// lock-rank detector.
  Mutex() = default;

  /// A ranked mutex. `name` must be a string literal (stored, not
  /// copied); it names the lock in inversion reports, e.g.
  /// "qworker.deploy_mu".
  explicit Mutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if defined(QUERC_LOCK_RANK_CHECKS)
    lock_rank_internal::CheckAcquire(this, static_cast<int>(rank_), name_);
#endif
    mu_.lock();
#if defined(QUERC_LOCK_RANK_CHECKS)
    lock_rank_internal::PushHeld(this, static_cast<int>(rank_), name_);
#endif
  }

  void Unlock() RELEASE() {
#if defined(QUERC_LOCK_RANK_CHECKS)
    lock_rank_internal::PopHeld(this);
#endif
    mu_.unlock();
  }

  /// Non-blocking acquire. A successful TryLock is pushed on the held
  /// stack but exempt from the order check — it cannot deadlock.
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if defined(QUERC_LOCK_RANK_CHECKS)
    lock_rank_internal::PushHeld(this, static_cast<int>(rank_), name_);
#endif
    return true;
  }

  /// Runtime + static assertion that the calling thread holds this mutex.
  /// Used inside lambdas that run under a caller's lock, where the static
  /// analysis cannot see the capability. No-op when checks are off.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#if defined(QUERC_LOCK_RANK_CHECKS)
    lock_rank_internal::AssertIsHeld(this, name_);
#endif
  }

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;

  /// CondVar wait bookkeeping: the native wait releases and reacquires
  /// mu_ underneath us, so the held stack must be popped before the wait
  /// and re-pushed (order-checked) after it.
  void PreWait() {
#if defined(QUERC_LOCK_RANK_CHECKS)
    lock_rank_internal::PopHeld(this);
#endif
  }
  void PostWait() {
#if defined(QUERC_LOCK_RANK_CHECKS)
    lock_rank_internal::CheckAcquire(this, static_cast<int>(rank_), name_);
    lock_rank_internal::PushHeld(this, static_cast<int>(rank_), name_);
#endif
  }

  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "<unranked>";
};

/// RAII scoped lock over util::Mutex — the project-wide replacement for
/// std::lock_guard/std::unique_lock in service code.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with util::Mutex. Waits keep the lock-rank
/// held stack truthful across the internal release/reacquire, and the
/// REQUIRES annotations make "wait called without the lock" a
/// compile-time error under clang.
///
/// All concurrent waiters of one CondVar must wait on the same Mutex
/// (std::condition_variable's own contract).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — use the predicate
  /// overload unless an outer loop re-checks).
  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    mu.PreWait();
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
    mu.PostWait();
  }

  /// Blocks until `pred()` is true. The predicate runs with `mu` held;
  /// start it with `mu.AssertHeld()` so the static analysis knows.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Blocks until notified or `deadline`; false on timeout.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    mu.PreWait();
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    mu.PostWait();
    return status == std::cv_status::no_timeout;
  }

  /// Blocks until `pred()` is true or `timeout` elapses; returns the
  /// final predicate value (std::condition_variable::wait_for semantics).
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               Pred pred) REQUIRES(mu) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      if (!WaitUntil(mu, deadline)) return pred();
    }
    return true;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace querc::util

#endif  // QUERC_UTIL_MUTEX_H_
