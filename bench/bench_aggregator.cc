// Measures util::ConcurrentAggregator — the lock-free sharded hash
// aggregator behind the lint offender maps, template histograms, and
// pooled stats — against the mutexed-map baseline it replaced: insert
// throughput vs thread count and two-phase central-merge latency, at up
// to 1M+ distinct templates.
//
// Every bench_-prefixed metric is exported to BENCH_aggregator.json (see
// --out). With --smoke the sizes are truncated for a CI sanity run and
// the process fails unless (a) the aggregator's correctness contract
// holds — counts conserved across eviction churn, exact group-by within
// capacity, late hot keys surfacing past a full table — and (b) the
// aggregator beats the mutexed baseline at the highest thread count.
// --no-perf-gate keeps (a) but waives (b): sanitizer builds distort
// relative timings, so tools/verify_matrix.sh passes it for asan/tsan
// (contract-only under sanitizers).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/concurrent_aggregator.h"

namespace querc::bench {
namespace {

/// The pre-aggregator shape of every merge path: one mutex around a map.
/// (unordered_map, to be generous — the replaced QWorker code used an
/// ordered std::map.)
class MutexedMap {
 public:
  void Record(const std::string& key, uint64_t count_delta,
              uint64_t weight_delta) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = map_[key];
    entry.first += count_delta;
    entry.second += weight_delta;
  }

  /// The old central merge: copy under the lock, fold into `central`.
  void MergeInto(
      std::unordered_map<std::string, std::pair<uint64_t, uint64_t>>&
          central) const {
    std::unordered_map<std::string, std::pair<uint64_t, uint64_t>> copy;
    {
      std::lock_guard<std::mutex> lock(mu_);
      copy = map_;
    }
    for (const auto& [key, value] : copy) {
      auto& entry = central[key];
      entry.first += value.first;
      entry.second += value.second;
    }
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::pair<uint64_t, uint64_t>> map_;
};

std::vector<std::string> MakeKeys(size_t distinct) {
  std::vector<std::string> keys;
  keys.reserve(distinct);
  for (size_t i = 0; i < distinct; ++i) {
    keys.push_back("tmpl_" + std::to_string(i));  // short: stays in SSO
  }
  return keys;
}

/// Key index for operation `op`: a multiplicative scramble so threads
/// touch the key space in a shuffled order (no accidental per-thread
/// partitioning — concurrent inserts of the same key do collide).
size_t KeyIndex(size_t op, size_t distinct) {
  return static_cast<size_t>(op * 2654435761u) % distinct;
}

template <typename RecordFn>
double TimedRun(size_t threads, size_t total_ops,
                const RecordFn& record_one) {
  util::Stopwatch watch;
  if (threads <= 1) {
    for (size_t op = 0; op < total_ops; ++op) record_one(op);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const size_t per_thread = (total_ops + threads - 1) / threads;
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const size_t begin = t * per_thread;
        const size_t end = std::min(begin + per_thread, total_ops);
        for (size_t op = begin; op < end; ++op) record_one(op);
      });
    }
    for (auto& w : workers) w.join();
  }
  double seconds = watch.ElapsedSeconds();
  return static_cast<double>(total_ops) / std::max(seconds, 1e-9);
}

struct ThroughputResult {
  double aggregator_qps = 0.0;
  double baseline_qps = 0.0;
};

/// One throughput cell: `threads` writers over `total_ops` records drawn
/// from `keys`, fresh containers per run, best of `reps`.
ThroughputResult MeasureThroughput(const std::vector<std::string>& keys,
                                   size_t threads, size_t total_ops,
                                   int reps) {
  ThroughputResult result;
  for (int rep = 0; rep < reps; ++rep) {
    // 2x headroom so hash skew across shards can't trigger eviction: this
    // cell measures pure insert/update throughput (the capped/evicting
    // regime is exercised separately by the contract checks).
    util::ConcurrentAggregator::Options options;
    options.capacity = keys.size() * 2;
    options.shards = 16;
    util::ConcurrentAggregator aggregator(options);
    result.aggregator_qps = std::max(
        result.aggregator_qps,
        TimedRun(threads, total_ops, [&](size_t op) {
          aggregator.Record(keys[KeyIndex(op, keys.size())], 1, op & 3);
        }));

    MutexedMap baseline;
    result.baseline_qps = std::max(
        result.baseline_qps,
        TimedRun(threads, total_ops, [&](size_t op) {
          baseline.Record(keys[KeyIndex(op, keys.size())], 1, op & 3);
        }));
  }
  return result;
}

struct MergeResult {
  double aggregator_ms = 0.0;
  double baseline_ms = 0.0;
  bool ok = true;
};

/// Two-phase central merge latency with every key resident.
MergeResult MeasureMerge(const std::vector<std::string>& keys, int reps) {
  // 2x headroom: hash skew across shards must not evict anything, or the
  // merged map would come up short and the run would be meaningless.
  util::ConcurrentAggregator::Options options;
  options.capacity = keys.size() * 2;
  options.shards = 16;
  util::ConcurrentAggregator aggregator(options);
  MutexedMap baseline;
  for (const std::string& key : keys) {
    aggregator.Record(key, 1, 2);
    baseline.Record(key, 1, 2);
  }
  MergeResult result;
  result.aggregator_ms = 1e300;
  result.baseline_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    {
      std::unordered_map<std::string, util::AggregateEntry> central;
      util::Stopwatch watch;
      aggregator.MergeInto(central);
      result.aggregator_ms =
          std::min(result.aggregator_ms, watch.ElapsedMillis());
      if (central.size() != keys.size()) {
        std::fprintf(stderr,
                     "FAIL: merge saw %zu of %zu keys (unexpected "
                     "eviction)\n",
                     central.size(), keys.size());
        result.ok = false;
        return result;
      }
    }
    {
      std::unordered_map<std::string, std::pair<uint64_t, uint64_t>> central;
      util::Stopwatch watch;
      baseline.MergeInto(central);
      result.baseline_ms = std::min(result.baseline_ms, watch.ElapsedMillis());
    }
  }
  return result;
}

/// The aggregator's correctness contract, checked in every mode and every
/// sanitizer config:
///  1. concurrent totals conserved across eviction churn (no lost
///     updates: resident + dropped == recorded);
///  2. exact group-by within capacity (matches a reference map);
///  3. evict-least: a late hot key surfaces after the table fills.
bool CheckContract(size_t threads) {
  bool ok = true;

  // 1. Conservation under concurrent churn: tiny capacity, hot+cold mix.
  {
    util::ConcurrentAggregator::Options options;
    options.capacity = 64;
    options.shards = 4;
    util::ConcurrentAggregator aggregator(options);
    const size_t kOps = 40000;
    std::vector<std::thread> workers;
    const size_t per_thread = kOps / std::max<size_t>(threads, 1);
    for (size_t t = 0; t < std::max<size_t>(threads, 1); ++t) {
      workers.emplace_back([&, t] {
        for (size_t i = 0; i < per_thread; ++i) {
          std::string key = (i % 2 == 0)
                                ? "hot_" + std::to_string(i % 8)
                                : "cold_" + std::to_string(t * per_thread + i);
          aggregator.Record(key, 1, 3);
        }
      });
    }
    for (auto& w : workers) w.join();
    uint64_t recorded = per_thread * std::max<size_t>(threads, 1);
    uint64_t resident_count = 0;
    uint64_t resident_weight = 0;
    for (const auto& e : aggregator.Snapshot()) {
      resident_count += e.count;
      resident_weight += e.weight;
    }
    if (resident_count + aggregator.dropped_count() != recorded ||
        resident_weight + aggregator.dropped_weight() != 3 * recorded) {
      std::fprintf(stderr,
                   "FAIL: contract(1) lost updates under churn: "
                   "%llu+%llu counts vs %llu recorded\n",
                   static_cast<unsigned long long>(resident_count),
                   static_cast<unsigned long long>(aggregator.dropped_count()),
                   static_cast<unsigned long long>(recorded));
      ok = false;
    }
  }

  // 2. Exactness within capacity.
  {
    util::ConcurrentAggregator::Options options;
    options.capacity = 4096;
    options.shards = 8;
    util::ConcurrentAggregator aggregator(options);
    std::map<std::string, std::pair<uint64_t, uint64_t>> reference;
    for (size_t i = 0; i < 20000; ++i) {
      std::string key = "k" + std::to_string(i % 1500);
      aggregator.Record(key, 1, i % 5);
      auto& entry = reference[key];
      entry.first += 1;
      entry.second += i % 5;
    }
    auto snapshot = aggregator.Snapshot();
    bool exact = snapshot.size() == reference.size() &&
                 aggregator.dropped_keys() == 0;
    for (const auto& e : snapshot) {
      auto it = reference.find(e.key);
      if (it == reference.end() || it->second.first != e.count ||
          it->second.second != e.weight) {
        exact = false;
        break;
      }
    }
    if (!exact) {
      std::fprintf(stderr,
                   "FAIL: contract(2) in-capacity group-by is not exact\n");
      ok = false;
    }
  }

  // 3. Evict-least: late hot key must surface past a full table.
  {
    util::ConcurrentAggregator::Options options;
    options.capacity = 8;
    options.shards = 1;
    util::ConcurrentAggregator aggregator(options);
    for (size_t i = 0; i < 8; ++i) {
      aggregator.Record("early_" + std::to_string(i), 1, 1);
    }
    for (int i = 0; i < 100; ++i) aggregator.Record("late_hot", 1, 1);
    auto top = aggregator.Top(1);
    if (top.empty() || top[0].key != "late_hot" ||
        aggregator.dropped_keys() == 0) {
      std::fprintf(stderr,
                   "FAIL: contract(3) late hot key did not surface "
                   "(evict-least broken)\n");
      ok = false;
    }
  }
  return ok;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool perf_gate = true;
  const char* out_path = "BENCH_aggregator.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-perf-gate") == 0) {
      perf_gate = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_aggregator [--smoke] [--no-perf-gate] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  const size_t distinct = smoke ? (1u << 14) : (1u << 20);  // 16k / 1M+
  const size_t total_ops = smoke ? (1u << 17) : (1u << 22);  // 128k / 4M
  const int reps = 2;
  const std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 8} : std::vector<size_t>{1, 2, 4, 8};

  std::printf("=== ConcurrentAggregator vs mutexed map: %zu distinct "
              "templates, %zu records ===\n",
              distinct, total_ops);
  std::vector<std::string> keys = MakeKeys(distinct);

  auto& registry = obs::MetricsRegistry::Global();
  registry
      .GetGauge("bench_agg_distinct_templates", {},
                "Distinct template keys in the aggregation benchmark")
      .Set(static_cast<double>(distinct));
  registry
      .GetGauge("bench_agg_total_records", {},
                "Records per throughput run")
      .Set(static_cast<double>(total_ops));

  double agg_at_max = 0.0;
  double base_at_max = 0.0;
  for (size_t threads : thread_counts) {
    ThroughputResult r = MeasureThroughput(keys, threads, total_ops, reps);
    obs::Labels agg_labels = {{"impl", "aggregator"},
                              {"threads", std::to_string(threads)}};
    obs::Labels base_labels = {{"impl", "mutex_map"},
                               {"threads", std::to_string(threads)}};
    registry
        .GetGauge("bench_agg_insert_qps", agg_labels,
                  "Aggregation record throughput, records/second")
        .Set(r.aggregator_qps);
    registry.GetGauge("bench_agg_insert_qps", base_labels, "")
        .Set(r.baseline_qps);
    std::printf("  threads %zu  aggregator %12.0f rec/s  mutexed map "
                "%12.0f rec/s  (%.2fx)\n",
                threads, r.aggregator_qps, r.baseline_qps,
                r.aggregator_qps / std::max(r.baseline_qps, 1e-9));
    if (threads == thread_counts.back()) {
      agg_at_max = r.aggregator_qps;
      base_at_max = r.baseline_qps;
    }
  }
  registry
      .GetGauge("bench_agg_speedup_at_max_threads", {},
                "aggregator_qps / mutex_map_qps at the highest measured "
                "thread count")
      .Set(agg_at_max / std::max(base_at_max, 1e-9));

  MergeResult merge = MeasureMerge(keys, reps);
  registry
      .GetGauge("bench_agg_merge_ms", {{"impl", "aggregator"}},
                "Two-phase Snapshot+MergeInto central-merge latency, ms")
      .Set(merge.aggregator_ms);
  registry.GetGauge("bench_agg_merge_ms", {{"impl", "mutex_map"}}, "")
      .Set(merge.baseline_ms);
  std::printf("  central merge of %zu keys: aggregator %.2f ms  mutexed "
              "map %.2f ms\n",
              distinct, merge.aggregator_ms, merge.baseline_ms);

  bool contract_ok = merge.ok && CheckContract(thread_counts.back());
  registry
      .GetGauge("bench_agg_contract_ok", {},
                "1 when conservation/exactness/evict-least checks passed")
      .Set(contract_ok ? 1.0 : 0.0);

  std::string json = obs::ExportJson(registry, "bench_");
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  if (!contract_ok) return 1;
  if (smoke && perf_gate) {
    if (agg_at_max < base_at_max) {
      std::fprintf(stderr,
                   "FAIL: aggregator %.0f rec/s < mutexed baseline %.0f "
                   "rec/s at %zu threads\n",
                   agg_at_max, base_at_max, thread_counts.back());
      return 1;
    }
  }
  if (smoke) std::printf("smoke OK\n");
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main(int argc, char** argv) { return querc::bench::Main(argc, argv); }
