#ifndef QUERC_BENCH_BENCH_COMMON_H_
#define QUERC_BENCH_BENCH_COMMON_H_

/// Shared setup for the experiment-reproduction binaries. Each binary
/// regenerates one table or figure from the paper; everything is seeded,
/// so reports are reproducible run-to-run.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "embed/doc2vec.h"
#include "embed/embedder.h"
#include "embed/feature_embedder.h"
#include "embed/lstm_autoencoder.h"
#include "util/stopwatch.h"
#include "util/table_writer.h"
#include "workload/snowflake_gen.h"
#include "workload/tpch_gen.h"

namespace querc::bench {

/// The §5.1 TPC-H workload (22 templates x 38 instances, template-major).
inline workload::Workload TpchWorkload() {
  workload::TpchGenerator::Options options;
  options.instances_per_template = 38;
  return workload::TpchGenerator(options).Generate();
}

/// Unlabeled multi-tenant pre-training corpus (stands in for the paper's
/// 500k-query Snowflake corpus at laptop scale).
inline workload::Workload SnowflakePretrainCorpus(int queries_per_account =
                                                      300) {
  workload::SnowflakeGenerator::Options options;
  options.seed = 2024;
  options.accounts = workload::SnowflakeGenerator::UniformAccounts(
      /*num_accounts=*/10, queries_per_account, /*users_per_account=*/6);
  return workload::SnowflakeGenerator(options).Generate();
}

/// The labeled evaluation workload with the paper's Table 2 account mix
/// (stands in for the 200k labeled Snowflake queries).
inline workload::Workload SnowflakeLabeledWorkload() {
  workload::SnowflakeGenerator::Options options;
  options.seed = 77;
  options.accounts = workload::SnowflakeGenerator::Table2Accounts();
  return workload::SnowflakeGenerator(options).Generate();
}

inline embed::Doc2VecEmbedder::Options Doc2VecBenchOptions() {
  embed::Doc2VecEmbedder::Options options;
  options.dim = 16;
  // PV-DBOW: the classic off-the-shelf Doc2Vec flavor — a pure
  // bag-of-words objective with no token-order signal, which is exactly
  // why the order-sensitive LSTM autoencoder outperforms it in Table 1.
  options.mode = embed::Doc2VecEmbedder::Mode::kDbow;
  options.epochs = 6;
  options.infer_epochs = 12;
  options.min_count = 2;
  options.seed = 9;
  return options;
}

inline embed::LstmAutoencoderEmbedder::Options LstmBenchOptions() {
  embed::LstmAutoencoderEmbedder::Options options;
  options.hidden_dim = 32;
  options.token_dim = 16;
  options.epochs = 8;
  options.min_count = 2;
  options.seed = 13;
  return options;
}

/// Trains an embedder on `corpus`, printing the wall-clock time.
inline void TrainEmbedder(embed::Embedder& embedder,
                          const workload::Workload& corpus,
                          const char* label) {
  util::Stopwatch watch;
  util::Status status = embed::TrainOnWorkload(embedder, corpus);
  std::printf("  trained %-18s on %5zu queries in %6.1fs%s\n", label,
              corpus.size(), watch.ElapsedSeconds(),
              status.ok() ? "" : (" FAILED: " + status.ToString()).c_str());
}

/// Prints a table and best-effort writes its CSV next to the binary.
inline void EmitTable(const util::TableWriter& table, const char* title,
                      const std::string& csv_name) {
  std::printf("\n%s\n%s", title, table.ToAscii().c_str());
  util::Status status = table.WriteCsv(csv_name);
  if (status.ok()) {
    std::printf("(csv written to %s)\n", csv_name.c_str());
  }
}

}  // namespace querc::bench

#endif  // QUERC_BENCH_BENCH_COMMON_H_
