# Empty dependencies file for test_sql_analyzer.
# This may be replaced when dependencies are built.
