#include "util/status.h"

namespace querc::util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeName(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace querc::util
