#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace querc::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / kN;
  double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 3.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 10000.0, 0.75, 0.03);
}

TEST(RngTest, WeightedIndexAllZeroReturnsZero) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(weights), 0u);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(31);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[1], counts[8]);
  // Every rank reachable.
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(RngTest, ForkGivesIndependentStream) {
  Rng a(37);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(37);
  b.NextUint64();  // advance by the fork draw
  EXPECT_NE(child.NextUint64(), b.NextUint64());
}

}  // namespace
}  // namespace querc::util
