file(REMOVE_RECURSE
  "CMakeFiles/querc_sql.dir/analyzer.cc.o"
  "CMakeFiles/querc_sql.dir/analyzer.cc.o.d"
  "CMakeFiles/querc_sql.dir/dialect.cc.o"
  "CMakeFiles/querc_sql.dir/dialect.cc.o.d"
  "CMakeFiles/querc_sql.dir/lexer.cc.o"
  "CMakeFiles/querc_sql.dir/lexer.cc.o.d"
  "CMakeFiles/querc_sql.dir/normalizer.cc.o"
  "CMakeFiles/querc_sql.dir/normalizer.cc.o.d"
  "libquerc_sql.a"
  "libquerc_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querc_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
