#ifndef QUERC_UTIL_LANE_H_
#define QUERC_UTIL_LANE_H_

#include <cstddef>
#include <cstdint>

namespace querc::util {

/// Scheduling lane of a ThreadPool task (DESIGN.md §17). Lanes are strict
/// priorities with a starvation bound: interactive work (QWorker predict
/// fan-out) always runs before normal work, which runs before batch work
/// (training, advising, summarization) — except that a bounded number of
/// consecutive higher-lane dispatches forces one lower-lane dispatch so
/// batch work cannot starve outright, and a queued task whose deadline is
/// about to expire escalates past the lane order entirely.
///
/// Kept in its own header (no dependencies) so low-level modules such as
/// embed::Embedder can take a Lane parameter without pulling in the full
/// thread-pool machinery.
enum class Lane : uint8_t {
  kInteractive = 0,  ///< latency-sensitive predict traffic
  kNormal = 1,       ///< default for unclassified work
  kBatch = 2,        ///< train / advise / summarize churn
};

inline constexpr size_t kNumLanes = 3;

/// Stable lowercase name ("interactive", "normal", "batch") — the `lane`
/// label value on the per-lane ThreadPool metrics.
constexpr const char* LaneName(Lane lane) {
  switch (lane) {
    case Lane::kInteractive:
      return "interactive";
    case Lane::kNormal:
      return "normal";
    case Lane::kBatch:
      return "batch";
  }
  return "?";
}

}  // namespace querc::util

#endif  // QUERC_UTIL_LANE_H_
