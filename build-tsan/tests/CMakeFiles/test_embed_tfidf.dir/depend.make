# Empty dependencies file for test_embed_tfidf.
# This may be replaced when dependencies are built.
