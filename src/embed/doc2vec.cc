#include "embed/doc2vec.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "nn/serialize.h"
#include "nn/softmax.h"
#include "util/string_util.h"

namespace querc::embed {

namespace {
// Format v2 adds min_learning_rate (it drives the inference LR schedule,
// so dropping it changed Embed() across a save/load round trip).
constexpr uint64_t kMagic = 0x51444f4332564532ULL;    // "QDOC2VE2"
constexpr uint64_t kMagicV1 = 0x51444f4332564543ULL;  // "QDOC2VEC"
}

util::Status Doc2VecEmbedder::Train(
    const std::vector<std::vector<std::string>>& docs) {
  if (docs.empty()) {
    return util::Status::InvalidArgument("doc2vec: empty training corpus");
  }
  vocab_ = Vocabulary::Build(docs, options_.min_count);
  if (vocab_.size() <= 3) {
    return util::Status::InvalidArgument(
        "doc2vec: vocabulary collapsed to special tokens only");
  }
  util::Rng rng(options_.seed);
  word_in_ = nn::Tensor(vocab_.size(), options_.dim, "doc2vec.word_in");
  out_ = nn::Tensor(vocab_.size(), options_.dim, "doc2vec.out");
  doc_vecs_ = nn::Tensor(docs.size(), options_.dim, "doc2vec.docs");
  word_in_.EmbeddingInit(rng);
  doc_vecs_.EmbeddingInit(rng);
  // Output table starts at zero (word2vec convention).

  std::vector<std::vector<size_t>> encoded;
  encoded.reserve(docs.size());
  for (const auto& d : docs) encoded.push_back(vocab_.Encode(d));

  std::vector<size_t> order(docs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const double lr0 = options_.learning_rate;
  const double lr1 = options_.min_learning_rate;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    double frac = options_.epochs > 1
                      ? static_cast<double>(epoch) /
                            static_cast<double>(options_.epochs - 1)
                      : 0.0;
    double lr = lr0 + (lr1 - lr0) * frac;
    rng.Shuffle(order);
    for (size_t doc_id : order) {
      TrainDocument(encoded[doc_id], doc_vecs_.row(doc_id), lr,
                    /*update_tables=*/true, rng);
    }
  }
  num_train_docs_ = docs.size();
  trained_ = true;
  return util::Status::OK();
}

double Doc2VecEmbedder::TrainDocument(const std::vector<size_t>& raw_ids,
                                      double* doc_vec, double lr,
                                      bool update_tables, util::Rng& rng) {
  // PV-DBOW is a pure bag-of-words objective: process tokens in a
  // canonical (sorted) order so the RNG pairing cannot smuggle token-order
  // information into the vector. PV-DM keeps document order (its windows
  // are inherently order-aware).
  std::vector<size_t> ids = raw_ids;
  if (options_.mode == Mode::kDbow) std::sort(ids.begin(), ids.end());
  const size_t dim = options_.dim;
  double loss = 0.0;
  nn::Vec context(dim, 0.0);
  nn::Vec d_context;
  std::vector<size_t> negatives(static_cast<size_t>(options_.negative));
  std::vector<size_t> window_words;

  for (size_t t = 0; t < ids.size(); ++t) {
    size_t target = ids[t];
    if (target == vocab_.UnknownId()) continue;

    for (auto& n : negatives) n = vocab_.SampleNegative(rng);

    if (options_.mode == Mode::kDbow) {
      // Paragraph vector alone predicts the word.
      loss += nn::NegativeSamplingStep(doc_vec, dim, target, negatives, out_,
                                       lr, d_context, update_tables);
      nn::Axpy(-lr, d_context.data(), doc_vec, dim);
      continue;
    }

    // PV-DM: mean of doc vector and window word vectors.
    window_words.clear();
    size_t lo = t >= static_cast<size_t>(options_.window)
                    ? t - static_cast<size_t>(options_.window)
                    : 0;
    size_t hi = std::min(ids.size(), t + static_cast<size_t>(options_.window) +
                                         1);
    for (size_t j = lo; j < hi; ++j) {
      if (j != t && ids[j] != vocab_.UnknownId()) {
        window_words.push_back(ids[j]);
      }
    }
    double denom = static_cast<double>(window_words.size() + 1);
    for (size_t d = 0; d < dim; ++d) context[d] = doc_vec[d];
    for (size_t w : window_words) {
      nn::Axpy(1.0, word_in_.row(w), context.data(), dim);
    }
    for (double& v : context) v /= denom;

    loss += nn::NegativeSamplingStep(context.data(), dim, target, negatives,
                                     out_, lr, d_context, update_tables);
    // The mean distributes the gradient equally to each contributor.
    double scale = -lr / denom;
    nn::Axpy(scale, d_context.data(), doc_vec, dim);
    if (update_tables) {
      for (size_t w : window_words) {
        nn::Axpy(scale, d_context.data(), word_in_.row(w), dim);
      }
    }
  }
  return loss;
}

nn::Vec Doc2VecEmbedder::Embed(const std::vector<std::string>& words) const {
  nn::Vec vec(options_.dim, 0.0);
  if (!trained_) return vec;

  // Inference: train a fresh paragraph vector against frozen tables.
  // Deterministic per input: the RNG is seeded from the document content.
  // The combining function is ORDER-INVARIANT (commutative) on purpose —
  // two documents with the same token multiset must infer identically, or
  // token order would leak into the vectors of a bag-of-words model
  // through the seed.
  uint64_t h = options_.seed;
  for (const auto& w : words) h += util::Fnv1a64(w) * 0x9e3779b97f4a7c15ULL;
  util::Rng rng(h);
  for (double& v : vec) {
    v = rng.UniformDouble(-0.5, 0.5) / static_cast<double>(options_.dim);
  }

  std::vector<size_t> ids = vocab_.Encode(words);
  // Mutable alias: inference never touches the shared tables
  // (update_tables=false), so the const_cast only affects the local vector.
  auto* self = const_cast<Doc2VecEmbedder*>(this);
  const double lr0 = options_.learning_rate;
  const double lr1 = options_.min_learning_rate;
  for (int epoch = 0; epoch < options_.infer_epochs; ++epoch) {
    double frac = options_.infer_epochs > 1
                      ? static_cast<double>(epoch) /
                            static_cast<double>(options_.infer_epochs - 1)
                      : 0.0;
    double lr = lr0 + (lr1 - lr0) * frac;
    self->TrainDocument(ids, vec.data(), lr, /*update_tables=*/false, rng);
  }
  return vec;
}

const nn::Vec Doc2VecEmbedder::TrainedDocVector(size_t i) const {
  const double* row = doc_vecs_.row(i);
  return nn::Vec(row, row + options_.dim);
}

util::Status Doc2VecEmbedder::Save(std::ostream& out) const {
  if (!trained_) {
    return util::Status::FailedPrecondition("doc2vec: not trained");
  }
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, kMagic));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, options_.dim));
  QUERC_RETURN_IF_ERROR(
      nn::WriteU64(out, options_.mode == Mode::kDm ? 0 : 1));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, static_cast<uint64_t>(options_.window)));
  QUERC_RETURN_IF_ERROR(
      nn::WriteU64(out, static_cast<uint64_t>(options_.negative)));
  QUERC_RETURN_IF_ERROR(
      nn::WriteU64(out, static_cast<uint64_t>(options_.infer_epochs)));
  QUERC_RETURN_IF_ERROR(nn::WriteF64(out, options_.learning_rate));
  QUERC_RETURN_IF_ERROR(nn::WriteF64(out, options_.min_learning_rate));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, options_.seed));
  QUERC_RETURN_IF_ERROR(vocab_.Save(out));
  QUERC_RETURN_IF_ERROR(nn::WriteTensor(out, word_in_));
  QUERC_RETURN_IF_ERROR(nn::WriteTensor(out, out_));
  return util::Status::OK();
}

util::StatusOr<Doc2VecEmbedder> Doc2VecEmbedder::Load(std::istream& in) {
  uint64_t magic = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, magic));
  if (magic == kMagicV1) {
    return util::Status::Corruption(
        "doc2vec: v1 model file lacks min_learning_rate (inference would "
        "not match the saving process); retrain and re-save");
  }
  if (magic != kMagic) {
    return util::Status::Corruption("doc2vec: bad magic");
  }
  Options options;
  uint64_t dim = 0, mode = 0, window = 0, negative = 0, infer_epochs = 0,
           seed = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, dim));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, mode));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, window));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, negative));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, infer_epochs));
  QUERC_RETURN_IF_ERROR(nn::ReadF64(in, options.learning_rate));
  QUERC_RETURN_IF_ERROR(nn::ReadF64(in, options.min_learning_rate));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, seed));
  // A corrupt stream can pass the magic check; reject degenerate headers
  // before they size tensors or drive inference loops.
  if (dim == 0 || dim > 65536) {
    return util::Status::Corruption("doc2vec: corrupt header (dim)");
  }
  if (mode > 1) {
    return util::Status::Corruption("doc2vec: corrupt header (mode)");
  }
  if (window == 0 || window > 4096) {
    return util::Status::Corruption("doc2vec: corrupt header (window)");
  }
  if (negative == 0 || negative > 4096) {
    return util::Status::Corruption("doc2vec: corrupt header (negative)");
  }
  if (infer_epochs == 0 || infer_epochs > 1000000) {
    return util::Status::Corruption("doc2vec: corrupt header (infer_epochs)");
  }
  if (!std::isfinite(options.learning_rate) || options.learning_rate <= 0.0 ||
      !std::isfinite(options.min_learning_rate) ||
      options.min_learning_rate <= 0.0) {
    return util::Status::Corruption("doc2vec: corrupt header (learning rate)");
  }
  options.dim = dim;
  options.mode = mode == 0 ? Mode::kDm : Mode::kDbow;
  options.window = static_cast<int>(window);
  options.negative = static_cast<int>(negative);
  options.infer_epochs = static_cast<int>(infer_epochs);
  options.seed = seed;

  Doc2VecEmbedder embedder(options);
  QUERC_RETURN_IF_ERROR(Vocabulary::Load(in, &embedder.vocab_));
  QUERC_RETURN_IF_ERROR(nn::ReadTensor(in, embedder.word_in_));
  QUERC_RETURN_IF_ERROR(nn::ReadTensor(in, embedder.out_));
  const size_t vocab_size = embedder.vocab_.size();
  if (embedder.word_in_.rows() != vocab_size ||
      embedder.word_in_.cols() != options.dim ||
      embedder.out_.rows() != vocab_size ||
      embedder.out_.cols() != options.dim) {
    return util::Status::Corruption(
        "doc2vec: tensor shape disagrees with header/vocabulary");
  }
  embedder.trained_ = true;
  return embedder;
}

}  // namespace querc::embed
