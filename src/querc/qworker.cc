#include "querc/qworker.h"

#include <algorithm>

#include "obs/trace.h"

namespace querc::core {

namespace {

/// Registry metrics shared by every worker; resolved once, then the hot
/// path touches only their atomics (no registry mutex, no lock).
obs::Histogram& GlobalProcessHistogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "querc_qworker_process_ms", {},
      "End-to-end QWorker::Process latency in milliseconds, all workers");
  return hist;
}

obs::Counter& GlobalQueriesCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_qworker_queries_total", {},
      "Queries processed by all QWorkers");
  return counter;
}

}  // namespace

QWorker::QWorker(const Options& options) : options_(options) {
  classifiers_.store(std::make_shared<const ClassifierMap>());
  // Resolve one hit counter per lint rule up front; registration takes the
  // registry mutex, but Process then increments plain atomics.
  for (const auto& rule : lint_engine_.registry().rules()) {
    std::string id(rule->id());
    lint_counters_[id] = &obs::MetricsRegistry::Global().GetCounter(
        "querc_lint_hits_total", {{"rule", id}},
        "Lint diagnostics emitted per rule, all workers");
  }
}

void QWorker::Deploy(std::shared_ptr<const Classifier> classifier) {
  std::lock_guard<std::mutex> lock(deploy_mu_);
  auto next = std::make_shared<ClassifierMap>(
      *classifiers_.load());
  (*next)[classifier->task_name()] = std::move(classifier);
  classifiers_.store(std::move(next));
}

void QWorker::DeployAll(
    const std::vector<std::shared_ptr<const Classifier>>& classifiers) {
  std::lock_guard<std::mutex> lock(deploy_mu_);
  auto next = std::make_shared<ClassifierMap>(
      *classifiers_.load());
  for (const auto& classifier : classifiers) {
    (*next)[classifier->task_name()] = classifier;
  }
  classifiers_.store(std::move(next));
}

bool QWorker::Undeploy(const std::string& task_name) {
  std::lock_guard<std::mutex> lock(deploy_mu_);
  auto current = classifiers_.load();
  if (current->find(task_name) == current->end()) return false;
  auto next = std::make_shared<ClassifierMap>(*current);
  next->erase(task_name);
  classifiers_.store(std::move(next));
  return true;
}

void QWorker::set_database_sink(DatabaseSink sink) {
  database_.store(std::make_shared<const DatabaseSink>(std::move(sink)));
}

void QWorker::set_training_sink(TrainingSink sink) {
  training_.store(std::make_shared<const TrainingSink>(std::move(sink)));
}

std::shared_ptr<const QWorker::ClassifierMap> QWorker::classifiers() const {
  return classifiers_.load();
}

size_t QWorker::num_classifiers() const {
  return classifiers_.load()->size();
}

std::deque<workload::LabeledQuery> QWorker::window() const {
  std::lock_guard<std::mutex> lock(window_mu_);
  return window_;
}

LatencyStats QWorker::latency() const {
  obs::HistogramSnapshot snap = latency_hist_.Snapshot();
  LatencyStats stats;
  stats.count = snap.count;
  stats.min_ms = snap.min;
  stats.max_ms = snap.max;
  stats.total_ms = snap.sum;
  return stats;
}

ProcessedQuery QWorker::Process(const workload::LabeledQuery& query) {
  // The trace scopes this thread's stage spans (embed/classify inside the
  // classifiers, lex/normalize inside the embedder, the sinks below) to
  // this query; all recording is atomic histogram increments — no mutex
  // is taken for telemetry on this path.
  obs::Trace trace("qworker_process");
  ProcessedQuery out;
  out.query = query;
  // One snapshot load pins the classifier set for this whole query:
  // a racing Deploy/Undeploy publishes a *new* map and cannot mutate the
  // one we hold, so the prediction set is always internally consistent.
  std::shared_ptr<const ClassifierMap> classifiers =
      classifiers_.load();
  for (const auto& [task, classifier] : *classifiers) {
    out.predictions[task] = classifier->Predict(query);
  }
  processed_count_.fetch_add(1, std::memory_order_relaxed);

  if (options_.enable_lint) {
    static obs::Histogram& lint_hist = obs::StageHistogram("lint");
    obs::Span lint_span(&lint_hist, "lint");
    sql::lint::QueryLint lint =
        lint_engine_.LintQuery(query.text, 0, query.dialect);
    if (!lint.diagnostics.empty()) {
      lint_diagnostic_count_.fetch_add(lint.diagnostics.size(),
                                       std::memory_order_relaxed);
      for (const sql::lint::Diagnostic& d : lint.diagnostics) {
        auto it = lint_counters_.find(d.rule_id);
        if (it != lint_counters_.end()) it->second->Increment();
      }
      {
        std::lock_guard<std::mutex> lock(lint_mu_);
        auto it = lint_templates_.find(lint.fingerprint);
        if (it == lint_templates_.end() &&
            lint_templates_.size() < options_.lint_template_cap) {
          it = lint_templates_.emplace(lint.fingerprint, LintTemplateStats{})
                   .first;
          it->second.fingerprint = lint.fingerprint;
          it->second.example_text = query.text;
        }
        if (it != lint_templates_.end()) {
          ++it->second.instances;
          it->second.diagnostics += lint.diagnostics.size();
        }
      }
      out.diagnostics = std::move(lint.diagnostics);
    }
  }

  {
    std::lock_guard<std::mutex> lock(window_mu_);
    window_.push_back(query);
    while (window_.size() > options_.window_size) window_.pop_front();
  }

  if (options_.forward_to_database) {
    auto database = database_.load();
    if (database && *database) {
      static obs::Histogram& hist = obs::StageHistogram("sink_database");
      obs::Span span(&hist, "sink_database");
      (*database)(query);
    }
  }
  auto training = training_.load();
  if (training && *training) {
    static obs::Histogram& hist = obs::StageHistogram("sink_training");
    obs::Span span(&hist, "sink_training");
    (*training)(out);
  }

  double ms = trace.ElapsedMs();
  latency_hist_.Record(ms);
  GlobalProcessHistogram().Record(ms);
  GlobalQueriesCounter().Increment();
  return out;
}

std::vector<LintTemplateStats> QWorker::TopOffendingTemplates(
    size_t n) const {
  std::vector<LintTemplateStats> templates;
  {
    std::lock_guard<std::mutex> lock(lint_mu_);
    templates.reserve(lint_templates_.size());
    for (const auto& [fingerprint, stats] : lint_templates_) {
      templates.push_back(stats);
    }
  }
  std::sort(templates.begin(), templates.end(),
            [](const LintTemplateStats& a, const LintTemplateStats& b) {
              if (a.diagnostics != b.diagnostics) {
                return a.diagnostics > b.diagnostics;
              }
              return a.instances > b.instances;
            });
  if (templates.size() > n) templates.resize(n);
  return templates;
}

std::vector<ProcessedQuery> QWorker::ProcessBatch(
    const workload::Workload& batch) {
  std::vector<ProcessedQuery> out;
  out.reserve(batch.size());
  for (const auto& q : batch) out.push_back(Process(q));
  return out;
}

}  // namespace querc::core
