#include "ml/random_forest.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "nn/serialize.h"

namespace querc::ml {

namespace {

/// Gini impurity of the label counts.
double Gini(const std::vector<int>& counts, int total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (int c : counts) {
    double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

int Majority(const std::vector<int>& counts) {
  int best = 0;
  for (size_t c = 1; c < counts.size(); ++c) {
    if (counts[c] > counts[static_cast<size_t>(best)]) {
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace

void RandomForestClassifier::Fit(const Dataset& data) {
  assert(!data.x.empty());
  num_classes_ = 0;
  for (int label : data.y) num_classes_ = std::max(num_classes_, label + 1);

  util::Rng rng(options_.seed);
  trees_.clear();
  trees_.resize(static_cast<size_t>(options_.num_trees));
  for (auto& tree : trees_) {
    util::Rng tree_rng = rng.Fork();
    std::vector<size_t> indices;
    indices.reserve(data.size());
    if (options_.bootstrap) {
      for (size_t i = 0; i < data.size(); ++i) {
        indices.push_back(tree_rng.NextUint64(data.size()));
      }
    } else {
      for (size_t i = 0; i < data.size(); ++i) indices.push_back(i);
    }
    GrowNode(tree, data, indices, 0, tree_rng);
  }
}

int RandomForestClassifier::GrowNode(Tree& tree, const Dataset& data,
                                     const std::vector<size_t>& indices,
                                     int depth, util::Rng& rng) {
  int node_id = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();

  std::vector<int> counts(static_cast<size_t>(num_classes_), 0);
  for (size_t i : indices) ++counts[static_cast<size_t>(data.y[i])];
  int majority = Majority(counts);
  double impurity = Gini(counts, static_cast<int>(indices.size()));

  auto make_leaf = [&] {
    tree.nodes[static_cast<size_t>(node_id)].label = majority;
    return node_id;
  };
  if (depth >= options_.max_depth ||
      static_cast<int>(indices.size()) < options_.min_samples_split ||
      impurity <= 0.0) {
    return make_leaf();
  }

  const size_t dim = data.dim();
  int mtry = options_.num_candidate_features > 0
                 ? options_.num_candidate_features
                 : std::max(1, static_cast<int>(std::sqrt(
                                   static_cast<double>(dim))));

  // Extra-trees: one random threshold per sampled feature.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<int> left_counts(static_cast<size_t>(num_classes_));
  std::vector<int> right_counts(static_cast<size_t>(num_classes_));
  for (int trial = 0; trial < mtry; ++trial) {
    size_t f = rng.NextUint64(dim);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (size_t i : indices) {
      lo = std::min(lo, data.x[i][f]);
      hi = std::max(hi, data.x[i][f]);
    }
    if (hi <= lo) continue;
    double threshold = rng.UniformDouble(lo, hi);
    std::fill(left_counts.begin(), left_counts.end(), 0);
    std::fill(right_counts.begin(), right_counts.end(), 0);
    int nl = 0;
    int nr = 0;
    for (size_t i : indices) {
      if (data.x[i][f] <= threshold) {
        ++left_counts[static_cast<size_t>(data.y[i])];
        ++nl;
      } else {
        ++right_counts[static_cast<size_t>(data.y[i])];
        ++nr;
      }
    }
    if (nl == 0 || nr == 0) continue;
    double score = (nl * Gini(left_counts, nl) + nr * Gini(right_counts, nr)) /
                   static_cast<double>(indices.size());
    if (score < best_score) {
      best_score = score;
      best_feature = static_cast<int>(f);
      best_threshold = threshold;
    }
  }
  if (best_feature < 0 || best_score >= impurity) return make_leaf();

  std::vector<size_t> left;
  std::vector<size_t> right;
  for (size_t i : indices) {
    if (data.x[i][static_cast<size_t>(best_feature)] <= best_threshold) {
      left.push_back(i);
    } else {
      right.push_back(i);
    }
  }
  int left_id = GrowNode(tree, data, left, depth + 1, rng);
  int right_id = GrowNode(tree, data, right, depth + 1, rng);
  Node& node = tree.nodes[static_cast<size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left_id;
  node.right = right_id;
  node.label = majority;
  return node_id;
}

int RandomForestClassifier::TreePredict(const Tree& tree, const nn::Vec& v) {
  int node = 0;
  for (;;) {
    const Node& n = tree.nodes[static_cast<size_t>(node)];
    if (n.feature < 0) return n.label;
    node = v[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
}

std::vector<double> RandomForestClassifier::PredictProba(
    const nn::Vec& v) const {
  std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
  if (trees_.empty()) return votes;
  for (const auto& tree : trees_) {
    ++votes[static_cast<size_t>(TreePredict(tree, v))];
  }
  for (double& x : votes) x /= static_cast<double>(trees_.size());
  return votes;
}

namespace {
constexpr uint64_t kForestMagic = 0x5146524553543031ULL;  // "QFREST01"
}  // namespace

util::Status RandomForestClassifier::Save(std::ostream& out) const {
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, kForestMagic));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, static_cast<uint64_t>(num_classes_)));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, trees_.size()));
  for (const Tree& tree : trees_) {
    QUERC_RETURN_IF_ERROR(nn::WriteU64(out, tree.nodes.size()));
    for (const Node& node : tree.nodes) {
      QUERC_RETURN_IF_ERROR(
          nn::WriteU64(out, static_cast<uint64_t>(
                                static_cast<int64_t>(node.feature))));
      QUERC_RETURN_IF_ERROR(nn::WriteF64(out, node.threshold));
      QUERC_RETURN_IF_ERROR(
          nn::WriteU64(out, static_cast<uint64_t>(
                                static_cast<int64_t>(node.left))));
      QUERC_RETURN_IF_ERROR(
          nn::WriteU64(out, static_cast<uint64_t>(
                                static_cast<int64_t>(node.right))));
      QUERC_RETURN_IF_ERROR(
          nn::WriteU64(out, static_cast<uint64_t>(node.label)));
    }
  }
  return util::Status::OK();
}

util::StatusOr<RandomForestClassifier> RandomForestClassifier::Load(
    std::istream& in) {
  uint64_t magic = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, magic));
  if (magic != kForestMagic) {
    return util::Status::Corruption("random forest: bad magic");
  }
  RandomForestClassifier forest((Options()));
  uint64_t num_classes = 0;
  uint64_t num_trees = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, num_classes));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, num_trees));
  if (num_classes > (1u << 24) || num_trees > (1u << 20)) {
    return util::Status::Corruption("random forest: implausible sizes");
  }
  forest.num_classes_ = static_cast<int>(num_classes);
  forest.trees_.resize(num_trees);
  for (Tree& tree : forest.trees_) {
    uint64_t num_nodes = 0;
    QUERC_RETURN_IF_ERROR(nn::ReadU64(in, num_nodes));
    if (num_nodes > (1u << 26)) {
      return util::Status::Corruption("random forest: implausible tree");
    }
    tree.nodes.resize(num_nodes);
    for (Node& node : tree.nodes) {
      uint64_t feature = 0, left = 0, right = 0, label = 0;
      QUERC_RETURN_IF_ERROR(nn::ReadU64(in, feature));
      QUERC_RETURN_IF_ERROR(nn::ReadF64(in, node.threshold));
      QUERC_RETURN_IF_ERROR(nn::ReadU64(in, left));
      QUERC_RETURN_IF_ERROR(nn::ReadU64(in, right));
      QUERC_RETURN_IF_ERROR(nn::ReadU64(in, label));
      node.feature = static_cast<int>(static_cast<int64_t>(feature));
      node.left = static_cast<int>(static_cast<int64_t>(left));
      node.right = static_cast<int>(static_cast<int64_t>(right));
      node.label = static_cast<int>(label);
    }
  }
  return forest;
}

int RandomForestClassifier::Predict(const nn::Vec& v) const {
  std::vector<double> votes = PredictProba(v);
  size_t best = 0;
  for (size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return static_cast<int>(best);
}

}  // namespace querc::ml
