#include "embed/tfidf_embedder.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <set>

#include "nn/serialize.h"
#include "util/string_util.h"

namespace querc::embed {

namespace {
constexpr uint64_t kMagic = 0x5154464944463031ULL;  // "QTFIDF01"
}

TfidfEmbedder::TfidfEmbedder(const Options& options)
    : options_(options), idf_(options.buckets, 1.0) {}

size_t TfidfEmbedder::Bucket(const std::string& word) const {
  return util::Fnv1a64(word) % options_.buckets;
}

util::Status TfidfEmbedder::Train(
    const std::vector<std::vector<std::string>>& docs) {
  if (docs.empty()) {
    return util::Status::InvalidArgument("tfidf: empty corpus");
  }
  std::vector<double> doc_freq(options_.buckets, 0.0);
  std::set<size_t> seen;
  for (const auto& doc : docs) {
    seen.clear();
    for (const auto& w : doc) seen.insert(Bucket(w));
    for (size_t b : seen) doc_freq[b] += 1.0;
  }
  const double n = static_cast<double>(docs.size());
  for (size_t b = 0; b < options_.buckets; ++b) {
    // Smoothed idf, always positive.
    idf_[b] = std::log((1.0 + n) / (1.0 + doc_freq[b])) + 1.0;
  }
  trained_ = true;
  return util::Status::OK();
}

nn::Vec TfidfEmbedder::Embed(const std::vector<std::string>& words) const {
  nn::Vec v(options_.buckets, 0.0);
  // Uniform untrained policy (see Embedder::Embed): zeros, not a tf-only
  // vector that silently lacks the idf weighting.
  if (!trained_) return v;
  for (const auto& w : words) v[Bucket(w)] += 1.0;
  for (size_t b = 0; b < v.size(); ++b) {
    if (v[b] > 0.0) {
      double tf = options_.sublinear_tf ? 1.0 + std::log(v[b]) : v[b];
      v[b] = tf * idf_[b];
    }
  }
  double norm = nn::L2Norm(v);
  if (norm > 0.0) {
    for (double& x : v) x /= norm;
  }
  return v;
}

util::Status TfidfEmbedder::Save(std::ostream& out) const {
  if (!trained_) {
    return util::Status::FailedPrecondition("tfidf: not trained");
  }
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, kMagic));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, options_.buckets));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, options_.sublinear_tf ? 1 : 0));
  for (double x : idf_) QUERC_RETURN_IF_ERROR(nn::WriteF64(out, x));
  return util::Status::OK();
}

util::StatusOr<TfidfEmbedder> TfidfEmbedder::Load(std::istream& in) {
  uint64_t magic = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, magic));
  if (magic != kMagic) {
    return util::Status::Corruption("tfidf: bad magic");
  }
  uint64_t buckets = 0, sublinear = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, buckets));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, sublinear));
  if (buckets == 0 || buckets > (1ULL << 24)) {
    return util::Status::Corruption("tfidf: corrupt header (buckets)");
  }
  if (sublinear > 1) {
    return util::Status::Corruption("tfidf: corrupt header (sublinear_tf)");
  }
  Options options;
  options.buckets = buckets;
  options.sublinear_tf = sublinear == 1;
  TfidfEmbedder embedder(options);
  for (size_t b = 0; b < buckets; ++b) {
    QUERC_RETURN_IF_ERROR(nn::ReadF64(in, embedder.idf_[b]));
    if (!std::isfinite(embedder.idf_[b])) {
      return util::Status::Corruption("tfidf: non-finite idf value");
    }
  }
  embedder.trained_ = true;
  return embedder;
}

}  // namespace querc::embed
