#include "sql/dialect.h"

#include <gtest/gtest.h>

namespace querc::sql {
namespace {

TEST(DialectTest, Names) {
  EXPECT_EQ(DialectName(Dialect::kGeneric), "generic");
  EXPECT_EQ(DialectName(Dialect::kSqlServer), "sqlserver");
  EXPECT_EQ(DialectName(Dialect::kSnowflake), "snowflake");
}

TEST(DialectTest, CommonKeywordsEverywhere) {
  for (Dialect d : {Dialect::kGeneric, Dialect::kSqlServer,
                    Dialect::kSnowflake}) {
    const DialectTraits& traits = GetDialectTraits(d);
    for (const char* kw : {"SELECT", "FROM", "WHERE", "GROUP", "ORDER",
                           "JOIN", "HAVING", "UNION", "BETWEEN", "LIKE"}) {
      EXPECT_TRUE(traits.is_keyword(kw)) << DialectName(d) << " " << kw;
    }
    EXPECT_FALSE(traits.is_keyword("LINEITEM"));
    EXPECT_FALSE(traits.is_keyword(""));
  }
}

TEST(DialectTest, SqlServerExtensions) {
  const DialectTraits& traits = GetDialectTraits(Dialect::kSqlServer);
  EXPECT_TRUE(traits.is_keyword("TOP"));
  EXPECT_TRUE(traits.is_keyword("APPLY"));
  EXPECT_TRUE(traits.is_keyword("DATEADD"));
  EXPECT_FALSE(traits.is_keyword("QUALIFY"));  // Snowflake-only
  EXPECT_EQ(traits.extra_ident_open, '[');
  EXPECT_EQ(traits.extra_ident_close, ']');
  EXPECT_TRUE(traits.at_parameters);
  EXPECT_FALSE(traits.dollar_parameters);
}

TEST(DialectTest, SnowflakeExtensions) {
  const DialectTraits& traits = GetDialectTraits(Dialect::kSnowflake);
  EXPECT_TRUE(traits.is_keyword("QUALIFY"));
  EXPECT_TRUE(traits.is_keyword("ILIKE"));
  EXPECT_TRUE(traits.is_keyword("FLATTEN"));
  EXPECT_FALSE(traits.is_keyword("TOP"));  // SQL Server-only
  EXPECT_EQ(traits.extra_ident_open, '\0');
  EXPECT_FALSE(traits.at_parameters);
  EXPECT_TRUE(traits.dollar_parameters);
}

TEST(DialectTest, GenericIsTheIntersectionBaseline) {
  const DialectTraits& traits = GetDialectTraits(Dialect::kGeneric);
  EXPECT_FALSE(traits.is_keyword("TOP"));
  EXPECT_FALSE(traits.is_keyword("QUALIFY"));
  EXPECT_FALSE(traits.at_parameters);
  EXPECT_FALSE(traits.dollar_parameters);
}

TEST(DialectTest, IsCommonKeywordIsCaseSensitiveUpper) {
  // Callers upper-case before asking (the lexer does this).
  EXPECT_TRUE(IsCommonKeyword("SELECT"));
  EXPECT_FALSE(IsCommonKeyword("select"));
}

}  // namespace
}  // namespace querc::sql
