# Empty dependencies file for test_querc_drift_explain.
# This may be replaced when dependencies are built.
