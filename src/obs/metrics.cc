#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace querc::obs {

namespace {

void AtomicAdd(std::atomic<double>& slot, double delta) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t Histogram::BucketIndex(double value) {
  if (!(value >= kMinTracked)) return 0;  // also catches NaN and v <= 0
  double octaves = std::log2(value / kMinTracked);
  auto idx = static_cast<size_t>(octaves * kBucketsPerOctave);
  if (idx >= kLogBuckets) return kNumBuckets - 1;
  return idx + 1;
}

double Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return kMinTracked;
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kMinTracked *
         std::exp2(static_cast<double>(i) / kBucketsPerOctave);
}

double Histogram::BucketLowerBound(size_t i) {
  if (i == 0) return 0.0;
  return kMinTracked *
         std::exp2(static_cast<double>(i - 1) / kBucketsPerOctave);
}

void Histogram::Record(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap.buckets[i];
  }
  // Derive the count from the buckets so the snapshot is internally
  // consistent even when racing writers have bumped count_ but not yet
  // their bucket (or vice versa).
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  double min = min_.load(std::memory_order_relaxed);
  // min_ idles at +inf until the first sample; a snapshot racing that
  // first Record can still see it, so treat non-finite as "no data yet".
  snap.min = (total == 0 || !std::isfinite(min)) ? 0.0 : min;
  snap.max = total == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    cum += buckets[i];
    if (static_cast<double>(cum) >= target) {
      double lower = Histogram::BucketLowerBound(i);
      double upper = Histogram::BucketUpperBound(i);
      // The overflow bucket has no finite upper bound; the observed max
      // is the best available estimate.
      if (std::isinf(upper)) upper = max;
      double in_bucket =
          target - static_cast<double>(cum - buckets[i]);
      double fraction =
          std::clamp(in_bucket / static_cast<double>(buckets[i]), 0.0, 1.0);
      double value = lower + fraction * (upper - lower);
      return std::clamp(value, min, max);
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (buckets.empty()) buckets.resize(other.buckets.size());
  for (size_t i = 0; i < buckets.size() && i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

Labels Canonical(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

template <typename T>
T& GetOrCreate(std::map<std::pair<std::string, Labels>, std::unique_ptr<T>>&
                   metrics,
               const std::string& name, const Labels& labels) {
  auto key = std::make_pair(name, Canonical(labels));
  auto it = metrics.find(key);
  if (it == metrics.end()) {
    it = metrics.emplace(std::move(key), std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  util::MutexLock lock(&mu_);
  if (!help.empty()) help_.emplace(name, help);
  return GetOrCreate(counters_, name, labels);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  util::MutexLock lock(&mu_);
  if (!help.empty()) help_.emplace(name, help);
  return GetOrCreate(gauges_, name, labels);
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const std::string& help) {
  util::MutexLock lock(&mu_);
  if (!help.empty()) help_.emplace(name, help);
  return GetOrCreate(histograms_, name, labels);
}

MetricsRegistry::Snapshot MetricsRegistry::Collect(
    const std::string& prefix) const {
  auto matches = [&prefix](const std::string& name) {
    return prefix.empty() || name.rfind(prefix, 0) == 0;
  };
  Snapshot snap;
  util::MutexLock lock(&mu_);
  for (const auto& [key, counter] : counters_) {
    if (!matches(key.first)) continue;
    snap.counters.push_back({key.first, key.second, counter->value()});
  }
  for (const auto& [key, gauge] : gauges_) {
    if (!matches(key.first)) continue;
    snap.gauges.push_back({key.first, key.second, gauge->value()});
  }
  for (const auto& [key, histogram] : histograms_) {
    if (!matches(key.first)) continue;
    snap.histograms.push_back({key.first, key.second, histogram->Snapshot()});
  }
  for (const auto& [name, help] : help_) {
    if (matches(name)) snap.help.emplace(name, help);
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  util::MutexLock lock(&mu_);
  for (auto& [key, counter] : counters_) counter->Reset();
  for (auto& [key, gauge] : gauges_) gauge->Reset();
  for (auto& [key, histogram] : histograms_) histogram->Reset();
}

}  // namespace querc::obs
