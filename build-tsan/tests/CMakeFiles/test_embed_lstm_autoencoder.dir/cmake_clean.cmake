file(REMOVE_RECURSE
  "CMakeFiles/test_embed_lstm_autoencoder.dir/test_embed_lstm_autoencoder.cc.o"
  "CMakeFiles/test_embed_lstm_autoencoder.dir/test_embed_lstm_autoencoder.cc.o.d"
  "test_embed_lstm_autoencoder"
  "test_embed_lstm_autoencoder.pdb"
  "test_embed_lstm_autoencoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embed_lstm_autoencoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
