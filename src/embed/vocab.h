#ifndef QUERC_EMBED_VOCAB_H_
#define QUERC_EMBED_VOCAB_H_

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace querc::embed {

/// Token vocabulary shared by the neural embedders. Words below
/// `min_count` map to the <unk> id. Provides the unigram^0.75 negative-
/// sampling distribution of Mikolov et al.
class Vocabulary {
 public:
  static constexpr const char* kUnknown = "<unk>";
  static constexpr const char* kStartOfSequence = "<sos>";
  static constexpr const char* kEndOfSequence = "<eos>";

  Vocabulary() = default;

  /// Builds the vocabulary from tokenized documents. Ids 0..2 are the
  /// special tokens (<unk>, <sos>, <eos>) in that order.
  static Vocabulary Build(const std::vector<std::vector<std::string>>& docs,
                          size_t min_count = 1);

  size_t size() const { return words_.size(); }

  /// Id for `word`; unknown words map to UnknownId().
  size_t Id(const std::string& word) const;
  const std::string& Word(size_t id) const { return words_[id]; }
  /// Raw corpus frequency of word id (special tokens have count 0).
  uint64_t Count(size_t id) const { return counts_[id]; }
  uint64_t total_tokens() const { return total_tokens_; }

  size_t UnknownId() const { return 0; }
  size_t SosId() const { return 1; }
  size_t EosId() const { return 2; }

  /// Converts words to ids (unknowns folded).
  std::vector<size_t> Encode(const std::vector<std::string>& words) const;

  /// Draws one id from the unigram^0.75 negative-sampling distribution.
  size_t SampleNegative(util::Rng& rng) const;

  util::Status Save(std::ostream& out) const;
  static util::Status Load(std::istream& in, Vocabulary* vocab);

 private:
  void BuildSamplingTable();

  std::vector<std::string> words_;
  std::vector<uint64_t> counts_;
  std::unordered_map<std::string, size_t> index_;
  uint64_t total_tokens_ = 0;
  /// Alias-free sampling table: cumulative distribution over ids.
  std::vector<double> sampling_cdf_;
};

}  // namespace querc::embed

#endif  // QUERC_EMBED_VOCAB_H_
