file(REMOVE_RECURSE
  "CMakeFiles/test_querc_qworker.dir/test_querc_qworker.cc.o"
  "CMakeFiles/test_querc_qworker.dir/test_querc_qworker.cc.o.d"
  "test_querc_qworker"
  "test_querc_qworker.pdb"
  "test_querc_qworker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_querc_qworker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
