#ifndef QUERC_UTIL_THREAD_ANNOTATIONS_H_
#define QUERC_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (DESIGN.md §15).
///
/// The locking discipline of the concurrency layer — which mutex guards
/// which field, which private helpers may only run with a lock held — is
/// written down with these macros and *checked by the compiler* on every
/// clang build with -Wthread-safety (the QUERC_THREAD_SAFETY CMake option
/// promotes it to -Werror=thread-safety; tools/verify_matrix.sh runs that
/// leg whenever clang is installed). TSan only proves the interleavings a
/// test happens to exercise; the static analysis proves every call path
/// in the tree against the annotated contract.
///
/// Under GCC (or any compiler without the attributes) every macro expands
/// to nothing, so the annotations are free documentation off-clang.
///
/// Conventions (enforced by tools/check_source.py):
///   - service code uses util::Mutex / util::MutexLock / util::CondVar
///     from util/mutex.h — raw std::mutex is banned outside src/util/;
///   - fields protected by a mutex carry GUARDED_BY(mu_);
///   - private helpers that assume the lock is held carry REQUIRES(mu_)
///     and are named with a `Locked` suffix (e.g. TransitionLocked).

#if defined(__clang__) && defined(__has_attribute)
#define QUERC_THREAD_ANNOTATION_IMPL__(x) __attribute__((x))
#else
#define QUERC_THREAD_ANNOTATION_IMPL__(x)  // no-op off clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#ifndef CAPABILITY
#define CAPABILITY(x) QUERC_THREAD_ANNOTATION_IMPL__(capability(x))
#endif

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor (util::MutexLock).
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY QUERC_THREAD_ANNOTATION_IMPL__(scoped_lockable)
#endif

/// The field or variable may only be touched while `x` is held.
#ifndef GUARDED_BY
#define GUARDED_BY(x) QUERC_THREAD_ANNOTATION_IMPL__(guarded_by(x))
#endif

/// The *pointee* of the annotated pointer is protected by `x`.
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) QUERC_THREAD_ANNOTATION_IMPL__(pt_guarded_by(x))
#endif

/// Document a required acquisition order between mutexes.
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  QUERC_THREAD_ANNOTATION_IMPL__(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  QUERC_THREAD_ANNOTATION_IMPL__(acquired_after(__VA_ARGS__))
#endif

/// The function may only be called with the listed capabilities held
/// (and does not release them). Private `*Locked()` helpers use this.
#ifndef REQUIRES
#define REQUIRES(...) \
  QUERC_THREAD_ANNOTATION_IMPL__(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  QUERC_THREAD_ANNOTATION_IMPL__(requires_shared_capability(__VA_ARGS__))
#endif

/// The function acquires the capability and holds it on return.
#ifndef ACQUIRE
#define ACQUIRE(...) \
  QUERC_THREAD_ANNOTATION_IMPL__(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  QUERC_THREAD_ANNOTATION_IMPL__(acquire_shared_capability(__VA_ARGS__))
#endif

/// The function releases the capability (which must be held on entry).
#ifndef RELEASE
#define RELEASE(...) \
  QUERC_THREAD_ANNOTATION_IMPL__(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  QUERC_THREAD_ANNOTATION_IMPL__(release_shared_capability(__VA_ARGS__))
#endif

/// The function attempts the acquisition; the first argument is the
/// return value that means "acquired".
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  QUERC_THREAD_ANNOTATION_IMPL__(try_acquire_capability(__VA_ARGS__))
#endif

/// The function must NOT be called with the listed capabilities held
/// (it acquires them itself — calling with them held would deadlock).
#ifndef EXCLUDES
#define EXCLUDES(...) \
  QUERC_THREAD_ANNOTATION_IMPL__(locks_excluded(__VA_ARGS__))
#endif

/// Runtime assertion that the capability is held; teaches the analysis
/// about contexts it cannot see (e.g. lambda bodies run under a lock).
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) \
  QUERC_THREAD_ANNOTATION_IMPL__(assert_capability(x))
#endif

/// The function returns a reference to the capability guarding it.
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) QUERC_THREAD_ANNOTATION_IMPL__(lock_returned(x))
#endif

/// Escape hatch for code the analysis cannot model (the CondVar wait
/// internals that release/reacquire through std::condition_variable).
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  QUERC_THREAD_ANNOTATION_IMPL__(no_thread_safety_analysis)
#endif

#endif  // QUERC_UTIL_THREAD_ANNOTATIONS_H_
