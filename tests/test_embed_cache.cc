#include "embed/embed_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "embed/doc2vec.h"
#include "embed/feature_embedder.h"
#include "ml/knn.h"
#include "querc/qworker.h"
#include "querc/qworker_pool.h"
#include "workload/workload.h"

namespace querc::embed {
namespace {

/// Deterministic embedder that counts how many times Embed actually runs
/// — the probe for memoization and single-flight guarantees.
class CountingEmbedder : public Embedder {
 public:
  util::Status Train(const std::vector<std::vector<std::string>>&) override {
    return util::Status::OK();
  }
  nn::Vec Embed(const std::vector<std::string>& words) const override {
    calls.fetch_add(1, std::memory_order_relaxed);
    nn::Vec v(4, 0.0);
    for (size_t i = 0; i < words.size(); ++i) {
      v[i % 4] += static_cast<double>(words[i].size());
    }
    return v;
  }
  size_t dim() const override { return 4; }
  std::string name() const override { return "counting"; }

  mutable std::atomic<int> calls{0};
};

nn::Vec ComputeFor(const std::string& token) {
  return nn::Vec(3, static_cast<double>(token.size()));
}

TEST(EmbedCacheTest, KeyForNamespacesByInstanceAndTokenBoundaries) {
  CountingEmbedder a;
  CountingEmbedder b;
  std::vector<std::string> words = {"SELECT", "x"};
  EXPECT_NE(EmbeddingCache::KeyFor(a, words),
            EmbeddingCache::KeyFor(b, words));
  EXPECT_EQ(EmbeddingCache::KeyFor(a, words),
            EmbeddingCache::KeyFor(a, words));
  // Token boundaries must survive the join: {"ab","c"} != {"a","bc"}.
  EXPECT_NE(EmbeddingCache::KeyFor(a, {"ab", "c"}),
            EmbeddingCache::KeyFor(a, {"a", "bc"}));
}

TEST(EmbedCacheTest, CopyAndMoveGetFreshInstanceIds) {
  // A copied or moved embedder is a distinct object whose tables may later
  // diverge, so it must not inherit the original's cache-key namespace.
  FeatureEmbedder a{FeatureEmbedder::Options{}};
  FeatureEmbedder copy(a);
  EXPECT_NE(a.instance_id(), copy.instance_id());
  FeatureEmbedder moved(std::move(copy));
  EXPECT_NE(a.instance_id(), moved.instance_id());
}

TEST(EmbedCacheTest, MemoizesAndCountsHits) {
  EmbeddingCache cache(EmbeddingCache::Options{});
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return ComputeFor("k1");
  };
  auto first = cache.GetOrCompute("k1", compute);
  auto second = cache.GetOrCompute("k1", compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first.get(), second.get());  // literally the same vector
  EmbedCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 0.5);
}

TEST(EmbedCacheTest, EvictsLeastRecentlyUsed) {
  EmbeddingCache::Options options;
  options.capacity = 2;
  options.shards = 1;
  EmbeddingCache cache(options);
  cache.GetOrCompute("a", [] { return ComputeFor("a"); });
  cache.GetOrCompute("b", [] { return ComputeFor("b"); });
  // Refresh "a" so "b" is the LRU victim.
  cache.GetOrCompute("a", [] { return ComputeFor("a"); });
  cache.GetOrCompute("c", [] { return ComputeFor("c"); });
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_NE(cache.Peek("a"), nullptr);
  EXPECT_EQ(cache.Peek("b"), nullptr);
  EXPECT_NE(cache.Peek("c"), nullptr);
}

TEST(EmbedCacheTest, EvictedValueStaysValidForHolders) {
  EmbeddingCache::Options options;
  options.capacity = 1;
  options.shards = 1;
  EmbeddingCache cache(options);
  auto held = cache.GetOrCompute("a", [] { return ComputeFor("a"); });
  cache.GetOrCompute("b", [] { return ComputeFor("b"); });  // evicts "a"
  EXPECT_EQ(cache.Peek("a"), nullptr);
  EXPECT_EQ(*held, ComputeFor("a"));  // snapshot outlives eviction
}

TEST(EmbedCacheTest, ClearDropsEntriesButKeepsCounters) {
  EmbeddingCache cache(EmbeddingCache::Options{});
  cache.GetOrCompute("a", [] { return ComputeFor("a"); });
  cache.GetOrCompute("a", [] { return ComputeFor("a"); });
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EmbedCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(EmbedCacheTest, StatsMergeSumsPointwise) {
  EmbedCacheStats a{10, 5, 1, 3, 16};
  EmbedCacheStats b{2, 3, 0, 1, 16};
  a.Merge(b);
  EXPECT_EQ(a.hits, 12u);
  EXPECT_EQ(a.misses, 8u);
  EXPECT_EQ(a.evictions, 1u);
  EXPECT_EQ(a.size, 4u);
  EXPECT_EQ(a.capacity, 32u);
  EXPECT_DOUBLE_EQ(a.hit_ratio(), 0.6);
}

TEST(EmbedCacheTest, SingleFlightStampedeComputesExactlyOnce) {
  // N threads miss on the same new template simultaneously: single-flight
  // must coalesce them onto ONE underlying compute; the rest share the
  // result (and count as hits — they ran no inference).
  EmbeddingCache cache(EmbeddingCache::Options{});
  std::atomic<int> computes{0};
  constexpr int kThreads = 16;
  std::vector<std::shared_ptr<const nn::Vec>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] = cache.GetOrCompute("stampede", [&] {
        computes.fetch_add(1, std::memory_order_relaxed);
        // Widen the race window so waiters really do pile up in-flight.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return ComputeFor("stampede");
      });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(computes.load(), 1);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(results[t], nullptr);
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  EmbedCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(EmbedCacheTest, FailedComputeDoesNotPoisonKey) {
  EmbeddingCache cache(EmbeddingCache::Options{});
  EXPECT_THROW(cache.GetOrCompute(
                   "k", []() -> nn::Vec { throw std::runtime_error("boom"); }),
               std::runtime_error);
  EXPECT_EQ(cache.Peek("k"), nullptr);
  // The key is immediately usable again.
  auto value = cache.GetOrCompute("k", [] { return ComputeFor("k"); });
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, ComputeFor("k"));
}

TEST(EmbedCacheTest, WaitersSurviveOwnerFailure) {
  // The owner's compute throws while waiters are coalesced on its flight:
  // each waiter must fall back to its own compute and still get a value.
  EmbeddingCache cache(EmbeddingCache::Options{});
  std::atomic<int> attempts{0};
  constexpr int kThreads = 8;
  std::atomic<int> successes{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        auto v = cache.GetOrCompute("flaky", [&]() -> nn::Vec {
          // The first attempt (the owner) fails after a delay; waiter
          // fallbacks succeed.
          if (attempts.fetch_add(1, std::memory_order_relaxed) == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            throw std::runtime_error("owner failed");
          }
          return ComputeFor("flaky");
        });
        if (v != nullptr) successes.fetch_add(1);
      } catch (const std::runtime_error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(successes.load() + failures.load(), kThreads);
  // Exactly the threads that ran the throwing first attempt failed.
  EXPECT_GE(successes.load(), 1);
}

TEST(EmbedCacheTest, ConcurrentDistinctKeysAllComplete) {
  EmbeddingCache::Options options;
  options.capacity = 64;
  options.shards = 8;
  EmbeddingCache cache(options);
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          std::string key = "key" + std::to_string(k);
          auto v = cache.GetOrCompute(key, [&] { return ComputeFor(key); });
          ASSERT_NE(v, nullptr);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EmbedCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.lookups(),
            static_cast<uint64_t>(kThreads) * 50 * kKeys);
  EXPECT_EQ(stats.size, static_cast<size_t>(kKeys));
}

// Striped-stats stress (runs under TSan in the verify matrix): writers
// hammer the cache through hits, misses, and evictions while a scraper
// concurrently merges the per-shard counters via Stats(). The merged view
// must be tearing-free while racing and exact at quiescence — no update
// lost to the striping or to the two-phase merge.
TEST(EmbedCacheStressTest, ConcurrentStatsScrapeLosesNoUpdates) {
  EmbeddingCache::Options options;
  options.capacity = 32;  // small: forces steady eviction traffic
  options.shards = 4;
  EmbeddingCache cache(options);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> computes{0};
  std::atomic<bool> stop{false};

  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EmbedCacheStats s = cache.Stats();
      // Invariants that must hold mid-flight on any consistent-enough
      // snapshot: sizes within the union capacity, counters monotonic
      // (never torn into garbage).
      EXPECT_LE(s.size, s.capacity);
      EXPECT_LE(s.hits, s.lookups());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // 50% hot working set (hits), 50% per-thread cold keys (misses
        // that evict).
        std::string key = (i % 2 == 0)
                              ? "hot" + std::to_string(i % 8)
                              : "cold" + std::to_string(t) + "_" +
                                    std::to_string(i);
        auto v = cache.GetOrCompute(key, [&] {
          computes.fetch_add(1, std::memory_order_relaxed);
          return ComputeFor(key);
        });
        ASSERT_NE(v, nullptr);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  EmbedCacheStats stats = cache.Stats();
  const uint64_t total_ops =
      static_cast<uint64_t>(kThreads) * kOpsPerThread;
  // Exactness at quiescence: every lookup landed in exactly one of
  // hits/misses, and every miss ran exactly one compute (single-flight).
  EXPECT_EQ(stats.lookups(), total_ops);
  EXPECT_EQ(stats.misses, computes.load());
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);  // the cold stream must have churned
  EXPECT_LE(stats.size, stats.capacity);
}

TEST(EmbedCacheTest, ConcurrentDoc2VecEmbedIsRaceFreeAndDeterministic) {
  // Doc2Vec::Embed const_casts `this` for its inference pass but only
  // reads the shared tables (update_tables=false). Hammering it from many
  // threads must be race-free (exercised under TSan in the verify matrix)
  // and every thread must reproduce the serial result exactly.
  Doc2VecEmbedder::Options options;
  options.dim = 8;
  options.epochs = 2;
  options.min_count = 1;
  Doc2VecEmbedder embedder(options);
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 30; ++i) {
    corpus.push_back({"SELECT", "a", "FROM", "t", "WHERE", "b", "=", "<num>"});
    corpus.push_back({"INSERT", "INTO", "u", "VALUES", "<num>"});
  }
  ASSERT_TRUE(embedder.Train(corpus).ok());

  const std::vector<std::vector<std::string>> docs = {
      {"SELECT", "a", "FROM", "t"},
      {"INSERT", "INTO", "u", "VALUES", "<num>"},
      {"SELECT", "fresh", "tokens", "never", "trained"},
  };
  std::vector<nn::Vec> expected;
  for (const auto& doc : docs) expected.push_back(embedder.Embed(doc));

  constexpr int kThreads = 8;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        size_t i = static_cast<size_t>(t + round) % docs.size();
        if (embedder.Embed(docs[i]) != expected[i]) mismatch.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
}

// ---------------------------------------------------------------------
// QWorker integration: the once-per-query shared embedding.

workload::LabeledQuery Query(const std::string& text,
                             const std::string& user = "u1") {
  workload::LabeledQuery q;
  q.text = text;
  q.user = user;
  return q;
}

std::shared_ptr<core::Classifier> TrainedClassifier(
    const std::string& task, std::shared_ptr<const Embedder> embedder) {
  auto classifier = std::make_shared<core::Classifier>(
      task, std::move(embedder),
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{.k = 1}));
  workload::Workload history;
  for (int i = 0; i < 5; ++i) {
    history.Add(Query("SELECT a FROM t WHERE x = 1", "alice"));
    history.Add(Query("SELECT b, c, d FROM u, v WHERE u.k = v.k", "bob"));
  }
  EXPECT_TRUE(classifier->Train(history, workload::UserOf).ok());
  return classifier;
}

TEST(QWorkerEmbedCacheTest, TasksOnOneEmbedderShareOneEmbedPerQuery) {
  auto embedder = std::make_shared<CountingEmbedder>();
  core::QWorker::Options options;
  options.application = "appX";
  options.embed_cache_capacity = 0;  // isolate the sharing from the cache
  core::QWorker worker(options);
  worker.DeployAll({TrainedClassifier("user", embedder),
                    TrainedClassifier("audience", embedder)});

  int calls_before = embedder->calls.load();
  core::ProcessedQuery out = worker.Process(Query("SELECT a FROM t"));
  EXPECT_EQ(out.predictions.size(), 2u);
  // Two deployed tasks, ONE embedding: the query was embedded once and
  // the vector fanned out.
  EXPECT_EQ(embedder->calls.load() - calls_before, 1);
}

TEST(QWorkerEmbedCacheTest, RepeatedTemplatesHitTheCache) {
  auto embedder = std::make_shared<CountingEmbedder>();
  core::QWorker::Options options;
  options.application = "appX";
  options.embed_cache_capacity = 128;
  core::QWorker worker(options);
  worker.Deploy(TrainedClassifier("user", embedder));

  int calls_before = embedder->calls.load();
  // Same template, different literals: the normalizer folds them to one
  // fingerprint, so only the first instance runs inference.
  worker.Process(Query("SELECT a FROM t WHERE x = 1"));
  worker.Process(Query("SELECT a FROM t WHERE x = 2"));
  worker.Process(Query("SELECT a FROM t WHERE x = 343"));
  EXPECT_EQ(embedder->calls.load() - calls_before, 1);

  EmbedCacheStats stats = worker.embed_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.size, 1u);

  // A different template misses again.
  worker.Process(Query("DELETE FROM t WHERE x = 1"));
  EXPECT_EQ(worker.embed_cache_stats().misses, 2u);
}

TEST(QWorkerEmbedCacheTest, CachedPredictionsMatchUncached) {
  auto embedder = std::make_shared<CountingEmbedder>();
  core::QWorker::Options cached_options;
  cached_options.application = "cached";
  cached_options.embed_cache_capacity = 128;
  core::QWorker cached(cached_options);
  cached.Deploy(TrainedClassifier("user", embedder));

  core::QWorker::Options uncached_options;
  uncached_options.application = "uncached";
  uncached_options.embed_cache_capacity = 0;
  core::QWorker uncached(uncached_options);
  uncached.Deploy(TrainedClassifier("user", embedder));
  EXPECT_EQ(uncached.embed_cache_stats().capacity, 0u);

  const char* queries[] = {"SELECT a FROM t WHERE x = 1",
                           "SELECT a FROM t WHERE x = 7",
                           "SELECT b, c, d FROM u, v WHERE u.k = v.k",
                           "SELECT a FROM t WHERE x = 7"};
  for (const char* text : queries) {
    auto with = cached.Process(Query(text));
    auto without = uncached.Process(Query(text));
    EXPECT_EQ(with.predictions, without.predictions) << text;
  }
}

TEST(QWorkerEmbedCacheTest, PoolMergesShardCacheStats) {
  auto embedder = std::make_shared<CountingEmbedder>();
  core::QWorkerPool::Options options;
  options.application = "pool";
  options.num_shards = 2;
  options.partition = core::QWorkerPool::Partition::kRoundRobin;
  options.worker.embed_cache_capacity = 64;
  core::QWorkerPool pool(options);
  pool.Deploy(TrainedClassifier("user", embedder));

  workload::Workload batch;
  for (int i = 0; i < 8; ++i) {
    batch.Add(Query("SELECT a FROM t WHERE x = " + std::to_string(i)));
  }
  pool.ProcessBatch(batch);

  EmbedCacheStats merged = pool.MergedEmbedCacheStats();
  EXPECT_EQ(merged.lookups(), 8u);
  // Round-robin spread one template over 2 shards: one miss per shard,
  // the rest hits.
  EXPECT_EQ(merged.misses, 2u);
  EXPECT_EQ(merged.hits, 6u);
  auto stats = pool.Stats();
  uint64_t per_shard_lookups = 0;
  for (const auto& s : stats) per_shard_lookups += s.embed_cache.lookups();
  EXPECT_EQ(per_shard_lookups, 8u);
}

}  // namespace
}  // namespace querc::embed
