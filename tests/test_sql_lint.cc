#include "sql/lint/engine.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/catalog.h"
#include "engine/cost_model.h"
#include "engine/lint_advisor.h"
#include "obs/metrics.h"
#include "querc/qworker.h"
#include "querc/qworker_pool.h"
#include "sql/lint/export.h"
#include "workload/snowflake_gen.h"
#include "workload/tpch_gen.h"

namespace querc::sql::lint {
namespace {

/// Tiny fixed schema for rules that need column->table resolution.
class FakeSchema : public SchemaProvider {
 public:
  std::string TableOfColumn(const std::string& column) const override {
    if (column.rfind("o_", 0) == 0) return "orders";
    if (column.rfind("l_", 0) == 0) return "lineitem";
    if (column.rfind("c_", 0) == 0) return "customer";
    return "";
  }
  bool HasTable(const std::string& table) const override {
    return table == "orders" || table == "lineitem" || table == "customer";
  }
  uint64_t TableRowCount(const std::string& table) const override {
    return HasTable(table) ? 1000000 : 0;
  }
  size_t TableColumnCount(const std::string& table) const override {
    return HasTable(table) ? 16 : 0;
  }
};

std::vector<std::string> RuleIds(const QueryLint& lint) {
  std::vector<std::string> ids;
  for (const Diagnostic& d : lint.diagnostics) ids.push_back(d.rule_id);
  return ids;
}

bool Fired(const QueryLint& lint, const std::string& rule_id) {
  for (const Diagnostic& d : lint.diagnostics) {
    if (d.rule_id == rule_id) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Per-rule goldens: one positive and one negative query per rule.
// ---------------------------------------------------------------------------

TEST(LintRules, CartesianProductFiresOnCommaJoinWithoutPredicate) {
  LintEngine engine;
  QueryLint lint =
      engine.LintQuery("SELECT a FROM orders, lineitem WHERE a > 5");
  ASSERT_TRUE(Fired(lint, "cartesian-product")) << FormatText(LintReport{});
  EXPECT_EQ(lint.diagnostics[0].severity, Severity::kError);
}

TEST(LintRules, CartesianProductFiresOnExplicitCrossJoin) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT a FROM orders CROSS JOIN lineitem WHERE a > 5");
  EXPECT_TRUE(Fired(lint, "cartesian-product"));
}

TEST(LintRules, CartesianProductSilentOnProperJoin) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT a FROM orders o JOIN lineitem l ON o.o_orderkey = "
      "l.l_orderkey");
  EXPECT_FALSE(Fired(lint, "cartesian-product"));
}

TEST(LintRules, CartesianProductSilentOnBareEquiJoin) {
  // The analyzer drops bare-bare equi-joins (the TPC-H comma-join idiom)
  // from QueryShape::joins; the rule must notice the textual join
  // predicate and stay silent rather than report a false positive.
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT a FROM orders, lineitem WHERE o_orderkey = l_orderkey");
  EXPECT_FALSE(Fired(lint, "cartesian-product"));
}

TEST(LintRules, MissingJoinPredicateFiresOnDisconnectedTable) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT a FROM orders o, lineitem l, customer c "
      "WHERE o.o_orderkey = l.l_orderkey AND o.o_total > 5");
  ASSERT_TRUE(Fired(lint, "missing-join-predicate"));
  EXPECT_NE(lint.diagnostics[0].message.find("customer"), std::string::npos);
}

TEST(LintRules, MissingJoinPredicateSilentWhenConnected) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT a FROM orders o, lineitem l, customer c "
      "WHERE o.o_orderkey = l.l_orderkey AND o.o_custkey = c.c_custkey");
  EXPECT_FALSE(Fired(lint, "missing-join-predicate"));
}

TEST(LintRules, MissingJoinPredicateResolvesBareColumnsViaSchema) {
  FakeSchema schema;
  LintEngine engine(LintOptions{}, &schema);
  QueryLint lint = engine.LintQuery(
      "SELECT a FROM orders o, lineitem l, customer c "
      "WHERE o.o_orderkey = l.l_orderkey AND c_acctbal > 0");
  // customer is only touched by a filter, never joined.
  EXPECT_TRUE(Fired(lint, "missing-join-predicate"));
}

TEST(LintRules, NonSargableFiresOnFunctionOverColumn) {
  LintEngine engine;
  QueryLint lint =
      engine.LintQuery("SELECT a FROM t WHERE YEAR(order_date) = 1995");
  ASSERT_TRUE(Fired(lint, "non-sargable-predicate"));
  EXPECT_EQ(lint.diagnostics[0].severity, Severity::kWarning);
}

TEST(LintRules, NonSargableFiresOnColumnArithmetic) {
  LintEngine engine;
  QueryLint lint =
      engine.LintQuery("SELECT a FROM t WHERE price * 2 > 100");
  EXPECT_TRUE(Fired(lint, "non-sargable-predicate"));
}

TEST(LintRules, NonSargableSilentOnBareColumnAndAggregates) {
  LintEngine engine;
  EXPECT_FALSE(Fired(
      engine.LintQuery("SELECT a FROM t WHERE order_date >= '1995-01-01'"),
      "non-sargable-predicate"));
  // Aggregates in HAVING are not index-scan candidates.
  EXPECT_FALSE(Fired(engine.LintQuery(
                         "SELECT a, SUM(x) FROM t GROUP BY a "
                         "HAVING SUM(x) > 100"),
                     "non-sargable-predicate"));
}

TEST(LintRules, SelectStarFiresAndReportsWideTable) {
  FakeSchema schema;
  LintEngine engine(LintOptions{}, &schema);
  QueryLint lint = engine.LintQuery("SELECT * FROM lineitem WHERE l_qty > 5");
  ASSERT_TRUE(Fired(lint, "select-star"));
  EXPECT_NE(lint.diagnostics[0].message.find("16 columns"),
            std::string::npos);
}

TEST(LintRules, SelectStarSilentOnCountStarAndExplicitColumns) {
  LintEngine engine;
  EXPECT_FALSE(
      Fired(engine.LintQuery("SELECT COUNT(*) FROM t"), "select-star"));
  EXPECT_FALSE(
      Fired(engine.LintQuery("SELECT a, b FROM t"), "select-star"));
}

TEST(LintRules, OrEqualityChainFiresAndSuggestsIn) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT a FROM t WHERE region = 'EU' OR region = 'US' OR "
      "region = 'APAC'");
  ASSERT_TRUE(Fired(lint, "or-equality-chain"));
  EXPECT_NE(lint.diagnostics[0].fix_hint.find("IN"), std::string::npos);
}

TEST(LintRules, OrEqualityChainSilentOnMixedColumns) {
  LintEngine engine;
  QueryLint lint =
      engine.LintQuery("SELECT a FROM t WHERE region = 'EU' OR tier = 1");
  EXPECT_FALSE(Fired(lint, "or-equality-chain"));
}

TEST(LintRules, RedundantDistinctFiresUnderGroupBy) {
  LintEngine engine;
  QueryLint lint =
      engine.LintQuery("SELECT DISTINCT region FROM t GROUP BY region");
  EXPECT_TRUE(Fired(lint, "redundant-distinct"));
}

TEST(LintRules, RedundantDistinctSilentOnAggregateDistinct) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT region, COUNT(DISTINCT user_id) FROM t GROUP BY region");
  EXPECT_FALSE(Fired(lint, "redundant-distinct"));
}

TEST(LintRules, ContradictionFiresOnConflictingEqualities) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT a FROM t WHERE status = 'paid' AND status = 'failed'");
  ASSERT_TRUE(Fired(lint, "predicate-contradiction"));
  EXPECT_EQ(lint.diagnostics[0].severity, Severity::kError);
}

TEST(LintRules, ContradictionFiresOnEmptyRange) {
  LintEngine engine;
  EXPECT_TRUE(Fired(
      engine.LintQuery("SELECT a FROM t WHERE x > 10 AND x < 5"),
      "predicate-contradiction"));
  EXPECT_TRUE(Fired(
      engine.LintQuery("SELECT a FROM t WHERE x = 100 AND x < 50"),
      "predicate-contradiction"));
}

TEST(LintRules, ContradictionFlagsTautologyAsWarning) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery("SELECT a FROM t WHERE 1 = 1");
  ASSERT_TRUE(Fired(lint, "predicate-contradiction"));
  EXPECT_EQ(lint.diagnostics[0].severity, Severity::kWarning);
}

TEST(LintRules, ContradictionSilentUnderDisjunction) {
  // x = 1 OR x = 2 is satisfiable; conjunction-only reasoning must not
  // run when OR is present.
  LintEngine engine;
  QueryLint lint =
      engine.LintQuery("SELECT a FROM t WHERE x = 1 OR x = 2");
  EXPECT_FALSE(Fired(lint, "predicate-contradiction"));
}

TEST(LintRules, ContradictionSilentOnCompatibleRange) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT a FROM t WHERE x >= 5 AND x <= 10 AND x = 7");
  EXPECT_FALSE(Fired(lint, "predicate-contradiction"));
}

TEST(LintRules, CorrelatedSubqueryFiresOnOuterAliasReference) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT a FROM orders o WHERE EXISTS (SELECT 1 FROM lineitem l "
      "WHERE l.l_orderkey = o.o_orderkey)");
  ASSERT_TRUE(Fired(lint, "correlated-subquery"));
  EXPECT_EQ(lint.diagnostics[0].severity, Severity::kInfo);
}

TEST(LintRules, CorrelatedSubquerySilentOnUncorrelated) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT a FROM orders o WHERE o.o_total > "
      "(SELECT AVG(l.l_price) FROM lineitem l WHERE l.l_qty > 5)");
  EXPECT_FALSE(Fired(lint, "correlated-subquery"));
}

TEST(LintRules, UnparameterizedLiteralsFiresOnHotTemplate) {
  LintOptions options;
  options.hot_template_threshold = 4;
  LintEngine engine(options);
  std::vector<std::string> texts;
  for (int i = 0; i < 6; ++i) {
    texts.push_back("SELECT a FROM t WHERE user_id = " +
                    std::to_string(1000 + i));
  }
  LintReport report = engine.LintTexts(texts);
  EXPECT_EQ(report.rule_hits["unparameterized-literals"], 1u);
}

TEST(LintRules, UnparameterizedLiteralsSilentWhenParameterized) {
  LintOptions options;
  options.hot_template_threshold = 4;
  LintEngine engine(options);
  std::vector<std::string> texts(8, "SELECT a FROM t WHERE user_id = ?");
  LintReport report = engine.LintTexts(texts);
  EXPECT_EQ(report.rule_hits.count("unparameterized-literals"), 0u);
}

// ---------------------------------------------------------------------------
// Engine-level aggregation and severity gating.
// ---------------------------------------------------------------------------

TEST(LintEngineTest, CleanQueryProducesNoDiagnostics) {
  LintEngine engine;
  QueryLint lint = engine.LintQuery(
      "SELECT o.o_orderdate, SUM(l.l_price) FROM orders o JOIN lineitem l "
      "ON o.o_orderkey = l.l_orderkey WHERE o.o_orderdate >= '1995-01-01' "
      "GROUP BY o.o_orderdate ORDER BY o.o_orderdate");
  EXPECT_TRUE(lint.diagnostics.empty())
      << "unexpected: " << RuleIds(lint).front();
}

TEST(LintEngineTest, CountAtLeastRespectsSeverityOrder) {
  LintEngine engine;
  LintReport report = engine.LintTexts({
      "SELECT a FROM orders, lineitem",                    // error
      "SELECT a FROM t WHERE YEAR(d) = 1995",              // warning
      "SELECT a FROM t WHERE x = 1 OR x = 2 OR x = 3",     // info
  });
  EXPECT_EQ(report.CountAtLeast(Severity::kError), 1u);
  EXPECT_EQ(report.CountAtLeast(Severity::kWarning), 2u);
  EXPECT_EQ(report.CountAtLeast(Severity::kInfo), 3u);
  EXPECT_EQ(report.total_queries, 3u);
}

TEST(LintEngineTest, DiagnosticsSortedAndStampedWithQueryIndex) {
  LintEngine engine;
  LintReport report = engine.LintTexts({
      "SELECT a, b FROM t WHERE a > 5",     // clean
      "SELECT a FROM orders, lineitem",     // query 1
  });
  ASSERT_FALSE(report.diagnostics.empty());
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_EQ(d.query_index, 1u);
  }
  EXPECT_TRUE(std::is_sorted(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        return a.query_index < b.query_index;
      }));
}

TEST(LintEngineTest, TopTemplatesRankWorstFirst) {
  LintEngine engine;
  std::vector<std::string> texts;
  // Template A: two instances, each with a cartesian error.
  texts.push_back("SELECT a FROM orders, lineitem WHERE a > 1");
  texts.push_back("SELECT a FROM orders, lineitem WHERE a > 2");
  // Template B: one clean instance.
  texts.push_back("SELECT a, b FROM t WHERE a > 3");
  LintReport report = engine.LintTexts(texts);
  ASSERT_FALSE(report.top_templates.empty());
  EXPECT_EQ(report.top_templates[0].instances, 2u);
  EXPECT_GE(report.top_templates[0].diagnostics, 2u);
}

// ---------------------------------------------------------------------------
// Zero false positives on the clean seed workloads. TPC-H is entirely
// clean except for two *true* positives baked into the spec text: Q21's
// correlated EXISTS subqueries and Q22's SUBSTRING(c_phone, ...) filters.
// ---------------------------------------------------------------------------

TEST(LintSeedWorkloads, TpchHasNoFalsePositives) {
  workload::TpchGenerator::Options gen;
  gen.instances_per_template = 2;
  workload::Workload queries = workload::TpchGenerator(gen).Generate();
  std::vector<std::string> texts;
  for (const auto& q : queries) texts.push_back(q.text);

  engine::Catalog catalog = engine::TpchCatalog();
  engine::CatalogSchemaProvider schema(&catalog);
  LintOptions options;
  options.dialect = Dialect::kSqlServer;
  LintEngine engine(options, &schema);
  LintReport report = engine.LintTexts(texts);

  EXPECT_EQ(report.CountAtLeast(Severity::kError), 0u);
  for (const auto& [rule, hits] : report.rule_hits) {
    EXPECT_TRUE(rule == "correlated-subquery" ||
                rule == "non-sargable-predicate")
        << rule << " fired " << hits << " times on clean TPC-H";
  }
  // The known true positives must keep firing.
  EXPECT_GT(report.rule_hits["correlated-subquery"], 0u);
  EXPECT_GT(report.rule_hits["non-sargable-predicate"], 0u);
}

TEST(LintSeedWorkloads, SnowflakeHasNoStructuralFalsePositives) {
  workload::SnowflakeGenerator::Options gen;
  gen.accounts = workload::SnowflakeGenerator::UniformAccounts(3, 60, 3);
  workload::Workload queries =
      workload::SnowflakeGenerator(gen).Generate();
  std::vector<std::string> texts;
  for (const auto& q : queries) texts.push_back(q.text);

  LintOptions options;
  options.dialect = Dialect::kSnowflake;
  LintEngine engine(options);
  LintReport report = engine.LintTexts(texts);

  // The generator emits contradictory conjunctions (two independent
  // literal draws on one column) — those hits are true positives. The
  // structural rules must stay silent.
  for (const char* rule :
       {"cartesian-product", "missing-join-predicate", "select-star",
        "redundant-distinct", "non-sargable-predicate",
        "or-equality-chain"}) {
    EXPECT_EQ(report.rule_hits.count(rule), 0u)
        << rule << " fired on the snowflake seed workload";
  }
}

// ---------------------------------------------------------------------------
// Export formats.
// ---------------------------------------------------------------------------

LintReport SampleReport() {
  LintEngine engine;
  return engine.LintTexts({
      "SELECT a FROM orders, lineitem",
      "SELECT a FROM t WHERE YEAR(d) = 1995",
  });
}

TEST(LintExport, TextContainsDiagnosticsAndSummary) {
  std::string text = FormatText(SampleReport());
  EXPECT_NE(text.find("cartesian-product"), std::string::npos);
  EXPECT_NE(text.find("non-sargable-predicate"), std::string::npos);
  EXPECT_NE(text.find("2 queries linted"), std::string::npos);
  EXPECT_NE(text.find("rule hits:"), std::string::npos);
}

TEST(LintExport, JsonIsStructurallyValid) {
  std::string json = FormatJson(SampleReport());
  // Balanced braces/brackets outside strings — a cheap structural check
  // that catches missed commas/quotes in the hand-rolled serializer.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"total_queries\":2"), std::string::npos);
  EXPECT_NE(json.find("\"rule_id\":\"cartesian-product\""),
            std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"rule_hits\""), std::string::npos);
}

TEST(LintExport, SarifHasRequiredStructure) {
  RuleRegistry registry = RuleRegistry::Builtin();
  std::string sarif = FormatSarif(SampleReport(), registry);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"querc-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"cartesian-product\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"warning\""), std::string::npos);
  // Every built-in rule is listed in tool.driver.rules.
  for (const auto& rule : registry.rules()) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(rule->id()) + "\""),
              std::string::npos)
        << rule->id();
  }
}

TEST(LintExport, SeverityNamesRoundTrip) {
  for (Severity s : {Severity::kInfo, Severity::kWarning, Severity::kError}) {
    Severity parsed = Severity::kInfo;
    EXPECT_TRUE(ParseSeverity(SeverityName(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  Severity unused = Severity::kInfo;
  EXPECT_FALSE(ParseSeverity("fatal", &unused));
}

// ---------------------------------------------------------------------------
// Advisor cross-check (engine layer).
// ---------------------------------------------------------------------------

TEST(LintAdvisor, IndexCoverageReportsUncoveredLargeTableFilter) {
  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  engine::AdvisorLintOptions options;
  options.lint.dialect = Dialect::kSqlServer;
  // Zero budget: the advisor recommends nothing, so every large-table
  // filter column is uncovered.
  options.advisor.budget_minutes = 0.0;
  engine::AdvisorLintResult result = engine::LintWorkloadWithAdvisor(
      {"SELECT l_quantity FROM lineitem WHERE l_shipdate >= '1995-01-01'"},
      model, options);
  EXPECT_GT(result.report.rule_hits["index-coverage"], 0u);
  EXPECT_TRUE(result.advisor.config.empty());
}

TEST(LintAdvisor, IndexCoverageSilentWhenAdvisorCoversColumn) {
  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  engine::AdvisorLintOptions options;
  options.lint.dialect = Dialect::kSqlServer;
  options.advisor.budget_minutes = 10.0;
  std::vector<std::string> texts(
      4, "SELECT l_quantity FROM lineitem WHERE l_shipdate >= '1995-01-01'");
  engine::AdvisorLintResult result =
      engine::LintWorkloadWithAdvisor(texts, model, options);
  ASSERT_FALSE(result.advisor.config.empty());
  EXPECT_EQ(result.report.rule_hits.count("index-coverage"), 0u);
}

// ---------------------------------------------------------------------------
// QWorker / QWorkerPool lint stage integration.
// ---------------------------------------------------------------------------

workload::LabeledQuery MakeQuery(const std::string& text) {
  workload::LabeledQuery q;
  q.text = text;
  q.account = "acct";
  q.user = "user";
  return q;
}

TEST(LintServiceIntegration, QWorkerAttachesDiagnosticsAndCounts) {
  core::QWorker::Options options;
  options.application = "lint_test_app";
  core::QWorker worker(options);
  core::ProcessedQuery out =
      worker.Process(MakeQuery("SELECT a FROM orders, lineitem"));
  ASSERT_FALSE(out.diagnostics.empty());
  EXPECT_EQ(out.diagnostics[0].rule_id, "cartesian-product");
  EXPECT_GE(worker.lint_diagnostic_count(), 1u);

  worker.Process(MakeQuery("SELECT a, b FROM t WHERE a > 5"));  // clean
  auto top = worker.TopOffendingTemplates(5);
  ASSERT_EQ(top.size(), 1u);  // only the offending template is tracked
  EXPECT_GE(top[0].diagnostics, 1u);

  // The per-rule counter is registered and advanced.
  auto snapshot =
      obs::MetricsRegistry::Global().Collect("querc_lint_hits_total");
  bool found = false;
  for (const auto& counter : snapshot.counters) {
    for (const auto& [key, value] : counter.labels) {
      if (key == "rule" && value == "cartesian-product" &&
          counter.value >= 1u) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintServiceIntegration, LintStageCanBeDisabled) {
  core::QWorker::Options options;
  options.application = "lint_test_app_off";
  options.enable_lint = false;
  core::QWorker worker(options);
  core::ProcessedQuery out =
      worker.Process(MakeQuery("SELECT a FROM orders, lineitem"));
  EXPECT_TRUE(out.diagnostics.empty());
  EXPECT_EQ(worker.lint_diagnostic_count(), 0u);
}

// Regression: the original capped offender map silently refused every
// template that arrived after the cap — a hot offender that first showed
// up late was invisible forever, with no signal anything was missing. The
// tracker must instead evict the least-offending entry and count drops.
TEST(LintServiceIntegration, CappedTrackerSurfacesLateHotTemplate) {
  core::QWorker::Options options;
  options.application = "lint_test_cap";
  options.lint_template_cap = 4;
  core::QWorker worker(options);
  // Overflow the cap with distinct one-instance offenders (distinct
  // column lists => distinct normalized fingerprints, all cartesian).
  for (int i = 0; i < 8; ++i) {
    worker.Process(MakeQuery("SELECT c" + std::to_string(i) +
                             " FROM orders, lineitem"));
  }
  EXPECT_GT(worker.lint_templates_dropped(), 0u)
      << "overflowing the cap must be counted, not silent";
  // A hot offender arriving only after the tracker filled up must still
  // displace a cold entry and surface at the top.
  for (int i = 0; i < 10; ++i) {
    worker.Process(MakeQuery("SELECT hot FROM orders, lineitem WHERE x > " +
                             std::to_string(i)));
  }
  auto top = worker.TopOffendingTemplates(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].instances, 10u) << "late hot template did not surface";
  EXPECT_GE(top[0].diagnostics, 10u);
  EXPECT_FALSE(top[0].example_text.empty());

  // The drop counter is exported for scraping.
  auto snapshot = obs::MetricsRegistry::Global().Collect(
      "querc_lint_templates_dropped_total");
  ASSERT_FALSE(snapshot.counters.empty());
  EXPECT_GE(snapshot.counters[0].value, 1.0);
}

TEST(LintServiceIntegration, ZeroCapDropsEverythingButStillCounts) {
  core::QWorker::Options options;
  options.application = "lint_test_cap0";
  options.lint_template_cap = 0;
  core::QWorker worker(options);
  for (int i = 0; i < 3; ++i) {
    worker.Process(MakeQuery("SELECT a FROM orders, lineitem"));
  }
  EXPECT_TRUE(worker.TopOffendingTemplates(5).empty());
  EXPECT_EQ(worker.lint_templates_dropped(), 3u);
}

// Regression: the pool's cross-shard merge summed only `instances`,
// silently zeroing `diagnostics` (and any future field) in the merged
// view. Merge must be total over all LintTemplateStats fields.
TEST(LintServiceIntegration, LintTemplateStatsMergeIsTotal) {
  core::LintTemplateStats a;
  a.fingerprint = "fp";
  a.example_text = "SELECT 1";
  a.instances = 2;
  a.diagnostics = 3;
  core::LintTemplateStats b;
  b.instances = 5;
  b.diagnostics = 7;
  a.Merge(b);
  EXPECT_EQ(a.instances, 7u);
  EXPECT_EQ(a.diagnostics, 10u);
  EXPECT_EQ(a.fingerprint, "fp");
  EXPECT_EQ(a.example_text, "SELECT 1");

  // Merging into an empty aggregate adopts the identifying fields.
  core::LintTemplateStats empty;
  empty.Merge(a);
  EXPECT_EQ(empty.fingerprint, "fp");
  EXPECT_EQ(empty.example_text, "SELECT 1");
  EXPECT_EQ(empty.instances, 7u);
  EXPECT_EQ(empty.diagnostics, 10u);
}

// Cross-shard golden: one template spread round-robin over both shards
// must merge back with *every* field totalled, not just instances.
TEST(LintServiceIntegration, PoolMergeTotalsAllFieldsAcrossShards) {
  core::QWorkerPool::Options options;
  options.application = "lint_test_pool_total";
  options.num_shards = 2;
  options.partition = core::QWorkerPool::Partition::kRoundRobin;
  core::QWorkerPool pool(options);
  workload::Workload batch;
  for (int i = 0; i < 6; ++i) {
    batch.Add(MakeQuery("SELECT g FROM orders, lineitem WHERE g > " +
                        std::to_string(i)));
  }
  pool.ProcessBatch(batch);
  auto top = pool.TopOffendingTemplates(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].instances, 6u);
  EXPECT_EQ(top[0].diagnostics, 6u)
      << "cross-shard merge dropped the diagnostics field";
  EXPECT_FALSE(top[0].fingerprint.empty());
  EXPECT_FALSE(top[0].example_text.empty());
  EXPECT_EQ(pool.lint_templates_dropped(), 0u);
  // Per-shard drop counts surface in ShardStats (zero here: under cap).
  for (const auto& s : pool.Stats(/*lint_top_n=*/1)) {
    EXPECT_EQ(s.lint_templates_dropped, 0u);
  }
}

TEST(LintServiceIntegration, PoolMergesTemplatesAcrossShards) {
  core::QWorkerPool::Options options;
  options.application = "lint_test_pool";
  options.num_shards = 2;
  options.partition = core::QWorkerPool::Partition::kRoundRobin;
  core::QWorkerPool pool(options);
  workload::Workload batch;
  for (int i = 0; i < 4; ++i) {
    batch.Add(MakeQuery("SELECT a FROM orders, lineitem WHERE a > " +
                        std::to_string(i)));
  }
  pool.ProcessBatch(batch);
  EXPECT_GE(pool.lint_diagnostic_count(), 4u);
  auto top = pool.TopOffendingTemplates(3);
  ASSERT_FALSE(top.empty());
  // Round-robin spread the one template across both shards; the merged
  // view must sum the instances back together.
  EXPECT_EQ(top[0].instances, 4u);
  auto stats = pool.Stats(/*lint_top_n=*/2);
  size_t shard_total = 0;
  for (const auto& s : stats) shard_total += s.lint_diagnostics;
  EXPECT_EQ(shard_total, pool.lint_diagnostic_count());
}

}  // namespace
}  // namespace querc::sql::lint
