#ifndef QUERC_QUERC_QWORKER_POOL_H_
#define QUERC_QUERC_QWORKER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "querc/admission.h"
#include "querc/qworker.h"
#include "util/thread_pool.h"

namespace querc::core {

/// Per-shard statistics snapshot exposed for benchmarks and ops. The
/// `latency` min/mean/max view is derived from `histogram`, which also
/// carries tail percentiles (p50/p90/p99 via HistogramSnapshot).
struct ShardStats {
  size_t shard = 0;
  size_t processed = 0;
  size_t num_classifiers = 0;
  LatencyStats latency;
  obs::HistogramSnapshot histogram;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  /// Lint diagnostics emitted by this shard's lint stage.
  size_t lint_diagnostics = 0;
  /// Offending templates displaced from this shard's bounded tracker
  /// (evict-least; see QWorker::Options::lint_template_cap).
  size_t lint_templates_dropped = 0;
  /// The shard's worst templates by lint diagnostics (bounded top-N).
  std::vector<LintTemplateStats> top_offending_templates;
  /// This shard's template-keyed embedding cache counters (all zeros when
  /// the cache is disabled).
  embed::EmbedCacheStats embed_cache;
};

/// Sharded, thread-safe QWorker service layer: the paper's remark that
/// QWorkers "can be load-balanced and parallelized in the usual ways"
/// (§2, Figure 1), made concrete. Arriving queries are hashed across N
/// QWorker shards — by account (default: one tenant's stream stays on one
/// shard, preserving its bounded window), by user, or round-robin — and
/// batches fan out over a shared util::ThreadPool with one task per
/// shard. Deployments apply to every shard; each shard's classifier set
/// is an immutable snapshot (see QWorker), so Deploy/Undeploy can race
/// Process/ProcessBatch safely and every query sees a consistent set.
class QWorkerPool {
 public:
  /// How queries are assigned to shards.
  enum class Partition {
    kByAccount,  ///< hash(query.account): per-tenant stream affinity
    kByUser,     ///< hash(query.user): per-user stream affinity
    kRoundRobin  ///< ignore identity, spread uniformly
  };

  /// What happens to queries that do not fit under `max_in_flight`.
  enum class ShedPolicy {
    kRejectNew,   ///< shed the newest queries (tail of the batch)
    kDropOldest,  ///< shed the oldest queries (head of the batch)
  };

  struct Options {
    std::string application;
    size_t num_shards = 4;
    /// Threads in the owned pool (ignored when a shared `thread_pool` is
    /// passed). 0 = one thread per shard, capped to the machine's cpu
    /// count (util::Topology) — extra threads past the cpus only add
    /// queueing interference.
    size_t threads = 0;
    /// Pin the owned pool's workers to cpus in topology order so a
    /// query's embed→classify→sink chain stays cache-local on its shard's
    /// worker. Best-effort (restricted containers degrade to unpinned);
    /// ignored when a shared `thread_pool` is passed.
    bool pin_shards = false;
    Partition partition = Partition::kByAccount;
    /// Bounded admission: at most this many queries may be in flight
    /// across the pool at once; the overflow is *shed* — returned
    /// immediately with status ResourceExhausted and `shed = true`, never
    /// silently dropped. 0 = unbounded (no admission control).
    size_t max_in_flight = 0;
    ShedPolicy shed_policy = ShedPolicy::kRejectNew;
    /// Tenant-isolation admission stage ahead of the global slot bound
    /// (DESIGN.md §16): per-account token-bucket quotas, then a
    /// weighted-fair split of the free capacity with a guaranteed
    /// minimum for under-quota tenants. Sheds keep the contract above
    /// (in place, ResourceExhausted, `shed = true`) and gain the
    /// account + reason dimensions on querc_shed_total and the journal.
    bool enable_tenant_admission = false;
    /// Quotas/weights per account (admission.policy_label is overwritten
    /// with this pool's shed_policy name).
    TenantAdmissionOptions admission;
    /// Per-shard QWorker settings. `worker.application` is derived from
    /// `application` plus the shard index (e.g. "appX/3").
    QWorker::Options worker;
  };

  /// `thread_pool` may be null, in which case the pool owns a private
  /// ThreadPool with one thread per shard. A shared pool (e.g. the
  /// TrainingModule's) can be passed to bound total service threads.
  explicit QWorkerPool(const Options& options,
                       util::ThreadPool* thread_pool = nullptr);

  QWorkerPool(const QWorkerPool&) = delete;
  QWorkerPool& operator=(const QWorkerPool&) = delete;

  /// Deploys `classifier` to every shard (one snapshot swap per shard).
  void Deploy(const std::shared_ptr<const Classifier>& classifier);

  /// Deploys a set of classifiers to every shard, each shard in one
  /// snapshot swap (no shard can expose a partially-applied set).
  void DeployAll(
      const std::vector<std::shared_ptr<const Classifier>>& classifiers);

  /// Undeploys from every shard; returns whether any shard had the task.
  bool Undeploy(const std::string& task_name);

  /// Deploys a fallback classifier to every shard (used when the task's
  /// primary breaker is open or the primary fails; see QWorker).
  void DeployFallback(const std::shared_ptr<const Classifier>& classifier);

  /// Removes a fallback from every shard; returns whether any had it.
  bool UndeployFallback(const std::string& task_name);

  /// Installs the sink on every shard. The sink must be thread-safe: it
  /// is invoked concurrently from all shards.
  void set_database_sink(QWorker::DatabaseSink sink);
  void set_training_sink(QWorker::TrainingSink sink);

  /// Shard a single query by the partition policy and process it inline
  /// on the calling thread (the hot online path: no queueing, no lock on
  /// the classifier read).
  ProcessedQuery Process(const workload::LabeledQuery& query);

  /// Partitions `batch` across shards and processes the per-shard
  /// sub-batches in parallel on the thread pool (the calling thread
  /// participates). Results are returned in the original batch order.
  std::vector<ProcessedQuery> ProcessBatch(const workload::Workload& batch);

  /// Shard index the partition policy routes `query` to. Deterministic
  /// for kByAccount/kByUser; for kRoundRobin this *consumes* a ticket.
  size_t ShardOf(const workload::LabeledQuery& query);

  size_t num_shards() const { return shards_.size(); }
  QWorker& shard(size_t i) { return *shards_[i]; }
  const QWorker& shard(size_t i) const { return *shards_[i]; }

  /// Total queries processed across shards.
  size_t processed_count() const;

  /// Per-shard stats snapshot (processed count, min/mean/max latency,
  /// p50/p90/p99 from the shard's latency histogram, lint counts and the
  /// shard's `lint_top_n` worst templates).
  std::vector<ShardStats> Stats(size_t lint_top_n = 3) const;

  /// Service-wide worst templates by lint diagnostics: per-shard
  /// aggregates merged by fingerprint (a template routed to several shards
  /// — e.g. under round-robin — sums across them), worst first.
  std::vector<LintTemplateStats> TopOffendingTemplates(size_t n) const;

  /// Total lint diagnostics across all shards.
  size_t lint_diagnostic_count() const;

  /// Total offending templates displaced from the bounded per-shard
  /// trackers across all shards.
  size_t lint_templates_dropped() const;

  /// Pooled view: every shard's latency histogram merged into one
  /// snapshot, so service-level percentiles reflect all shards.
  obs::HistogramSnapshot MergedLatency() const;

  /// Service-wide embedding-cache counters: every shard's cache summed
  /// (hit_ratio() of the merged view is the pool-level hit ratio).
  embed::EmbedCacheStats MergedEmbedCacheStats() const;

  /// Every breaker across all shards with its current state (shard order,
  /// sinks before tasks), for `querc stats` and the chaos driver.
  std::vector<std::pair<std::string, CircuitBreaker::State>> BreakerStates()
      const;

  /// Queries shed at admission since construction.
  size_t shed_count() const {
    return shed_count_.load(std::memory_order_relaxed);
  }

  /// Queries currently in flight (admitted, not yet returned).
  size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// The tenant admission controller, or null when disabled.
  TenantAdmissionController* admission() { return admission_.get(); }
  const TenantAdmissionController* admission() const {
    return admission_.get();
  }

  const std::string& application() const { return options_.application; }

 private:
  /// Tries to reserve `want` admission slots; returns how many were
  /// granted (== `want` when unbounded). Granted slots must be returned
  /// via ReleaseSlots.
  size_t TryAcquireSlots(size_t want);
  void ReleaseSlots(size_t n);

  /// Free global slots right now (SIZE_MAX when unbounded) — the
  /// capacity estimate handed to the tenant controller's fairness stage.
  size_t FreeSlots() const;

  /// A shed marker for `query` (ResourceExhausted, `shed = true`) plus
  /// the shed accounting: metric + journal event. With the tenant
  /// controller active that accounting already happened per account
  /// inside the controller, so only the marker is built.
  ProcessedQuery MakeShed(const workload::LabeledQuery& query);
  /// Marker + pool shed_count_ only (no counters/journal) — the tenant
  /// controller's half of the split above.
  ProcessedQuery MakeShedMarker(const workload::LabeledQuery& query);

  Options options_;
  std::unique_ptr<TenantAdmissionController> admission_;  // null = disabled
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_;  // never null
  std::vector<std::unique_ptr<QWorker>> shards_;
  std::atomic<uint64_t> round_robin_{0};
  std::atomic<size_t> in_flight_{0};
  std::atomic<size_t> shed_count_{0};
};

}  // namespace querc::core

#endif  // QUERC_QUERC_QWORKER_POOL_H_
