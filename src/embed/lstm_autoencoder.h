#ifndef QUERC_EMBED_LSTM_AUTOENCODER_H_
#define QUERC_EMBED_LSTM_AUTOENCODER_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "util/statusor.h"
#include "embed/vocab.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace querc::embed {

/// The paper's second embedder (§3, Figure 2): an LSTM encoder-decoder
/// trained to reproduce the input token sequence. After training, a query's
/// representation is the hidden state of the final encoder LSTM cell.
///
/// The decoder is trained with teacher forcing and (by default) a sampled-
/// softmax / negative-sampling output loss so vocabulary size does not
/// dominate training cost; a full-softmax mode exists for small vocabularies
/// and for exact reconstruction metrics.
class LstmAutoencoderEmbedder : public Embedder {
 public:
  struct Options {
    size_t hidden_dim = 24;  // embedding dimensionality (encoder state)
    size_t token_dim = 16;   // token embedding size
    int epochs = 3;
    double learning_rate = 2e-3;
    int negative = 16;         // sampled-softmax negatives
    bool full_softmax = false; // exact CE loss (slow for big vocabularies)
    size_t max_sequence = 48;  // truncate longer queries
    size_t min_count = 2;
    uint64_t seed = 11;
  };

  explicit LstmAutoencoderEmbedder(const Options& options);
  LstmAutoencoderEmbedder(LstmAutoencoderEmbedder&&) noexcept = default;
  LstmAutoencoderEmbedder& operator=(LstmAutoencoderEmbedder&&) noexcept =
      default;

  util::Status Train(
      const std::vector<std::vector<std::string>>& docs) override;

  nn::Vec Embed(const std::vector<std::string>& words) const override;

  size_t dim() const override { return options_.hidden_dim; }
  std::string name() const override { return "lstm-autoencoder"; }

  /// Mean per-token training loss of the last epoch (negative-sampling
  /// logistic loss, or cross-entropy in full-softmax mode).
  double last_epoch_loss() const { return last_epoch_loss_; }

  /// Greedy-decodes the autoencoder's reconstruction of `words` (up to
  /// max_sequence tokens); used to test that the network actually learned
  /// to reproduce inputs. Requires full_softmax mode for exact argmax.
  std::vector<std::string> Reconstruct(
      const std::vector<std::string>& words) const;

  const Vocabulary& vocabulary() const { return vocab_; }

  util::Status Save(std::ostream& out) const;
  static util::StatusOr<LstmAutoencoderEmbedder> Load(std::istream& in);

 private:
  /// Trains on one encoded document; returns (loss, token count).
  std::pair<double, size_t> TrainDocument(const std::vector<size_t>& ids,
                                          util::Rng& rng);

  void BuildNetwork(util::Rng& rng);

  Options options_;
  Vocabulary vocab_;
  nn::Tensor token_embed_;  // V x E
  std::unique_ptr<nn::LstmLayer> encoder_;
  std::unique_ptr<nn::LstmLayer> decoder_;
  nn::Tensor out_;  // V x H output table (sampled softmax + full softmax)
  nn::Tensor out_bias_;  // V x 1 (full softmax only)
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
  double last_epoch_loss_ = 0.0;
  bool trained_ = false;
};

}  // namespace querc::embed

#endif  // QUERC_EMBED_LSTM_AUTOENCODER_H_
