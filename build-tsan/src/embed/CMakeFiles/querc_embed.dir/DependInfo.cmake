
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/doc2vec.cc" "src/embed/CMakeFiles/querc_embed.dir/doc2vec.cc.o" "gcc" "src/embed/CMakeFiles/querc_embed.dir/doc2vec.cc.o.d"
  "/root/repo/src/embed/embedder.cc" "src/embed/CMakeFiles/querc_embed.dir/embedder.cc.o" "gcc" "src/embed/CMakeFiles/querc_embed.dir/embedder.cc.o.d"
  "/root/repo/src/embed/feature_embedder.cc" "src/embed/CMakeFiles/querc_embed.dir/feature_embedder.cc.o" "gcc" "src/embed/CMakeFiles/querc_embed.dir/feature_embedder.cc.o.d"
  "/root/repo/src/embed/lstm_autoencoder.cc" "src/embed/CMakeFiles/querc_embed.dir/lstm_autoencoder.cc.o" "gcc" "src/embed/CMakeFiles/querc_embed.dir/lstm_autoencoder.cc.o.d"
  "/root/repo/src/embed/model_io.cc" "src/embed/CMakeFiles/querc_embed.dir/model_io.cc.o" "gcc" "src/embed/CMakeFiles/querc_embed.dir/model_io.cc.o.d"
  "/root/repo/src/embed/tfidf_embedder.cc" "src/embed/CMakeFiles/querc_embed.dir/tfidf_embedder.cc.o" "gcc" "src/embed/CMakeFiles/querc_embed.dir/tfidf_embedder.cc.o.d"
  "/root/repo/src/embed/vocab.cc" "src/embed/CMakeFiles/querc_embed.dir/vocab.cc.o" "gcc" "src/embed/CMakeFiles/querc_embed.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/nn/CMakeFiles/querc_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sql/CMakeFiles/querc_sql.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/querc_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/querc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
