file(REMOVE_RECURSE
  "CMakeFiles/test_sql_lexer.dir/test_sql_lexer.cc.o"
  "CMakeFiles/test_sql_lexer.dir/test_sql_lexer.cc.o.d"
  "test_sql_lexer"
  "test_sql_lexer.pdb"
  "test_sql_lexer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
