#ifndef QUERC_QUERC_QWORKER_H_
#define QUERC_QUERC_QWORKER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "querc/classifier.h"
#include "sql/lint/engine.h"
#include "util/atomic_shared_ptr.h"
#include "workload/workload.h"

namespace querc::core {

/// A query annotated with the labels Querc's classifiers predicted.
struct ProcessedQuery {
  workload::LabeledQuery query;
  /// task name -> predicted label.
  std::map<std::string, std::string> predictions;
  /// Static-analysis findings from the worker's lint stage (empty when the
  /// stage is disabled or the query is clean).
  std::vector<sql::lint::Diagnostic> diagnostics;
};

/// Aggregated lint outcome for one normalized query template, tracked per
/// worker so the pool can surface the worst offenders per shard.
struct LintTemplateStats {
  std::string fingerprint;
  std::string example_text;  // raw text of the first offending instance
  size_t instances = 0;      // offending queries seen for this template
  size_t diagnostics = 0;    // total diagnostics across those instances
};

/// Per-worker latency accounting for the throughput bench and the pool's
/// per-shard stats. Times cover the full Process() call (predict + window
/// + sinks), in wall-clock milliseconds. Since the obs subsystem landed
/// this is a thin view over the worker's latency histogram (see
/// QWorker::latency_snapshot() for percentiles); it is kept so existing
/// callers migrate incrementally.
struct LatencyStats {
  size_t count = 0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double total_ms = 0.0;

  double mean_ms() const {
    return count == 0 ? 0.0 : total_ms / static_cast<double>(count);
  }
};

/// The per-application stream worker of Figure 1: runs every deployed
/// classifier over each arriving query, forwards the query downstream (to
/// the database — here a callback), and tees labeled queries to the
/// training module's collector. QWorkers hold only a small bounded window
/// of recent queries (for windowed tasks such as recommendation), so they
/// can be load-balanced and parallelized in the usual ways.
///
/// Concurrency model: `Process`/`ProcessBatch` may be called from many
/// threads concurrently with `Deploy`/`Undeploy`/`DeployAll` and the sink
/// setters. The deployed classifier set is an immutable snapshot map
/// behind a util::AtomicSharedPtr slot: writers copy-on-write under a
/// mutex and publish the new map in one store, readers take one snapshot
/// load per query — so every query sees a *consistent* classifier set,
/// never a half-applied deployment, and a deployment never blocks on
/// in-flight queries (it swaps the pointer and returns; old snapshots die
/// with their last reader). Sinks
/// installed via the setters must themselves be thread-safe if the worker
/// is shared across threads.
class QWorker {
 public:
  struct Options {
    std::string application;
    /// Bounded recent-query window retained for windowed labeling tasks.
    size_t window_size = 32;
    /// When false (the "forked" deployment of §2), queries are NOT
    /// forwarded to the database — Querc stays off the critical path.
    bool forward_to_database = true;
    /// Run the static-analysis lint stage on every query (per-rule hit
    /// counters + querc_stage_ms{stage=lint}). Cheap: one lenient lex +
    /// token scans, no allocation on clean queries beyond the token list.
    bool enable_lint = true;
    /// Offending templates tracked per worker (bounds lint memory).
    size_t lint_template_cap = 256;
  };

  using DatabaseSink = std::function<void(const workload::LabeledQuery&)>;
  using TrainingSink = std::function<void(const ProcessedQuery&)>;
  using ClassifierMap =
      std::map<std::string, std::shared_ptr<const Classifier>>;

  explicit QWorker(const Options& options);

  /// Installs (or replaces) a classifier under its task name. Deployment
  /// of retrained models is an atomic snapshot swap; in-flight queries
  /// keep the classifier set they started with.
  void Deploy(std::shared_ptr<const Classifier> classifier);

  /// Installs several classifiers in ONE snapshot swap: no concurrent
  /// query can observe some of them deployed and others not.
  void DeployAll(
      const std::vector<std::shared_ptr<const Classifier>>& classifiers);

  /// Removes a classifier by task name; returns whether it existed.
  bool Undeploy(const std::string& task_name);

  void set_database_sink(DatabaseSink sink);
  void set_training_sink(TrainingSink sink);

  /// Processes one arriving query through every deployed classifier.
  /// Thread-safe; may race with deployments (see class comment).
  ProcessedQuery Process(const workload::LabeledQuery& query);

  /// Processes a batch ("query(X, t)" in the paper's notation).
  std::vector<ProcessedQuery> ProcessBatch(const workload::Workload& batch);

  /// A snapshot copy of the bounded window of most recent queries seen.
  std::deque<workload::LabeledQuery> window() const;

  /// The current deployed-classifier snapshot.
  std::shared_ptr<const ClassifierMap> classifiers() const;

  const std::string& application() const { return options_.application; }
  size_t num_classifiers() const;
  size_t processed_count() const {
    return processed_count_.load(std::memory_order_relaxed);
  }
  /// Latency accounting since construction (min/mean/max per Process) —
  /// a compatibility view over latency_snapshot().
  LatencyStats latency() const;

  /// Full latency histogram snapshot (count, sum, min/max, p50/p90/p99)
  /// since construction. Lock-free to read; the record side is atomic
  /// bucket increments on the Process hot path.
  obs::HistogramSnapshot latency_snapshot() const {
    return latency_hist_.Snapshot();
  }

  /// Total lint diagnostics emitted by this worker since construction.
  size_t lint_diagnostic_count() const {
    return lint_diagnostic_count_.load(std::memory_order_relaxed);
  }

  /// The `n` templates with the most lint diagnostics, worst first.
  std::vector<LintTemplateStats> TopOffendingTemplates(size_t n) const;

  /// The lint engine this worker runs (builtin rules, worker dialect).
  const sql::lint::LintEngine& lint_engine() const { return lint_engine_; }

 private:
  Options options_;
  /// Immutable published snapshot; writers serialize on deploy_mu_ and
  /// copy-on-write, readers snapshot-load. Never null.
  util::AtomicSharedPtr<const ClassifierMap> classifiers_;
  std::mutex deploy_mu_;
  /// Sinks are published the same way so setters can race with Process.
  util::AtomicSharedPtr<const DatabaseSink> database_;
  util::AtomicSharedPtr<const TrainingSink> training_;
  mutable std::mutex window_mu_;
  std::deque<workload::LabeledQuery> window_;
  std::atomic<size_t> processed_count_{0};
  /// Per-worker Process latency; also mirrored into the global registry's
  /// querc_qworker_process_ms so exporters see the service-wide view.
  obs::Histogram latency_hist_;

  /// Lint stage. The engine is immutable after construction (safe to call
  /// from every processing thread); per-rule counters are resolved once
  /// here so the hot path touches only counter atomics.
  sql::lint::LintEngine lint_engine_;
  std::map<std::string, obs::Counter*> lint_counters_;
  std::atomic<size_t> lint_diagnostic_count_{0};
  mutable std::mutex lint_mu_;
  std::map<std::string, LintTemplateStats> lint_templates_;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_QWORKER_H_
