// Scenario: security auditing (paper §4, §5.2). A user model is trained on
// trusted history; at audit time, queries whose predicted user confidently
// disagrees with the recorded user are flagged — including a simulated
// compromised account where one user suddenly issues another user's
// workload.
//
// Build & run:  ./build/examples/security_audit

#include <cstdio>
#include <memory>

#include "querc/querc.h"

int main() {
  using namespace querc;

  workload::SnowflakeGenerator::Options gen_options;
  gen_options.seed = 99;
  workload::SnowflakeGenerator::AccountSpec acct;
  acct.name = "acme";
  acct.num_users = 6;
  acct.num_queries = 1200;
  acct.shared_query_rate = 0.05;  // a well-behaved account
  gen_options.accounts = {acct};
  workload::Workload all =
      workload::SnowflakeGenerator(gen_options).Generate();
  // Trusted history = first 75%; audit batch = held-out tail.
  size_t split = all.size() * 3 / 4;
  workload::Workload history(
      {all.queries().begin(), all.queries().begin() + split});
  workload::Workload batch(
      {all.queries().begin() + split, all.queries().end()});

  auto embedder = std::make_shared<embed::LstmAutoencoderEmbedder>([&] {
    embed::LstmAutoencoderEmbedder::Options options;
    options.hidden_dim = 24;
    options.epochs = 6;
    return options;
  }());
  util::Status status = embed::TrainOnWorkload(*embedder, history);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  core::SecurityAuditor::Options audit_options;
  audit_options.min_confidence = 0.75;
  core::SecurityAuditor auditor(embedder, audit_options);
  status = auditor.Train(history);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("auditor trained on %zu queries from %zu users\n",
              history.size(), auditor.users().num_classes());

  // Inject an intrusion into the audit batch: queries that are textually
  // user00's, recorded under user05's identity (a stolen credential).
  int injected = 0;
  for (auto& q : batch.queries()) {
    if (injected < 12 && q.user == "acme_user00") {
      q.user = "acme_user05";  // the attacker's session identity
      ++injected;
    }
  }
  std::printf("audit batch: %zu queries, %d with a forged identity\n",
              batch.size(), injected);

  auto flags = auditor.Audit(batch);
  int true_hits = 0;
  for (const auto& flag : flags) {
    bool was_injected =
        batch[flag.query_index].user == "acme_user05" &&
        flag.predicted_user == "acme_user00";
    true_hits += was_injected ? 1 : 0;
  }
  std::printf("flags raised: %zu (of which %d catch the intrusion)\n",
              flags.size(), true_hits);
  for (size_t i = 0; i < flags.size() && i < 6; ++i) {
    const auto& f = flags[i];
    std::printf("  #%zu recorded=%s predicted=%s confidence=%.2f\n",
                f.query_index, f.actual_user.c_str(),
                f.predicted_user.c_str(), f.confidence);
  }
  return 0;
}
