#ifndef QUERC_NN_SOFTMAX_H_
#define QUERC_NN_SOFTMAX_H_

#include <vector>

#include "nn/tensor.h"

namespace querc::nn {

/// In-place numerically stable softmax over `logits`.
void SoftmaxInPlace(Vec& logits);

/// Full-vocabulary softmax classifier head used by the LSTM decoder:
/// logits = W h + b, loss = -log p[target].
///
/// ForwardLoss computes probabilities and returns the cross-entropy loss.
/// Backward accumulates dW, db into the tensors and writes the hidden-state
/// gradient into `dh` (overwriting it).
class SoftmaxHead {
 public:
  SoftmaxHead(size_t vocab_size, size_t hidden_dim, const std::string& name,
              util::Rng& rng);

  size_t vocab_size() const { return w_.rows(); }
  size_t hidden_dim() const { return w_.cols(); }

  /// Computes p = softmax(W h + b) into `probs` and returns -log p[target].
  double ForwardLoss(const Vec& h, size_t target, Vec& probs) const;

  /// Given `probs` from ForwardLoss, accumulates parameter gradients and
  /// writes the gradient w.r.t. `h` into `dh`.
  void Backward(const Vec& h, size_t target, const Vec& probs, Vec& dh);

  /// Index of the highest-probability word given hidden state `h`.
  size_t Predict(const Vec& h) const;

  std::vector<Tensor*> Params() { return {&w_, &b_}; }
  std::vector<const Tensor*> Params() const { return {&w_, &b_}; }

 private:
  Tensor w_;  // V x H
  Tensor b_;  // V x 1
};

/// Negative-sampling logistic loss used by Doc2Vec (Mikolov et al.):
/// positive pair (context, target) scored against k sampled negatives.
/// Free function because Doc2Vec updates its embedding tables directly
/// with SGD rather than through the optimizer.
///
/// Returns the loss; accumulates the context-vector gradient into
/// `d_context` (resized/zeroed internally) and applies SGD updates with
/// rate `lr` directly to the rows of `output_table` touched.
/// When `update_output` is false the output table is left untouched
/// (used when inferring vectors for unseen documents).
double NegativeSamplingStep(const double* context, size_t dim,
                            size_t target_word,
                            const std::vector<size_t>& negative_words,
                            Tensor& output_table, double lr, Vec& d_context,
                            bool update_output = true);

}  // namespace querc::nn

#endif  // QUERC_NN_SOFTMAX_H_
