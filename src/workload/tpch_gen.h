#ifndef QUERC_WORKLOAD_TPCH_GEN_H_
#define QUERC_WORKLOAD_TPCH_GEN_H_

#include <string>

#include "util/rng.h"
#include "workload/workload.h"

namespace querc::workload {

/// Generates TPC-H query streams: all 22 templates with parameter
/// substitution following the spec's value domains (segments, regions,
/// brands, date windows, ...). Text targets the SQL Server dialect used in
/// the paper's §5.1 experiment.
class TpchGenerator {
 public:
  struct Options {
    uint64_t seed = 42;
    /// Queries are emitted as round-robin template sweeps (1..22, 1..22,
    /// ...) like the paper's workload of repeated template instances.
    int instances_per_template = 38;  // ~840 queries total, as in Figure 4
    /// User id attached to every query (single-tenant workload).
    std::string user = "tpch";
    std::string account = "tpch_account";
  };

  explicit TpchGenerator(const Options& options) : options_(options) {}

  /// Emits the full workload: instances_per_template sweeps over Q1..Q22.
  Workload Generate() const;

  /// Emits a single instance of template `query_number` (1..22) using
  /// `rng` for parameter substitution. Returns empty text if out of range.
  static std::string Instantiate(int query_number, util::Rng& rng);

  static constexpr int kNumTemplates = 22;

 private:
  Options options_;
};

/// Date helpers shared with the Snowflake generator (proleptic Gregorian,
/// days since 1970-01-01).
int64_t DaysFromCivil(int year, int month, int day);
void CivilFromDays(int64_t days, int* year, int* month, int* day);
/// Formats days-since-epoch as 'YYYY-MM-DD' (without quotes).
std::string FormatDate(int64_t days);

}  // namespace querc::workload

#endif  // QUERC_WORKLOAD_TPCH_GEN_H_
