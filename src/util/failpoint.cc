#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/string_util.h"

namespace querc::util {

std::atomic<int> Failpoints::armed_count_{0};

namespace {

/// Parses a StatusCode by its StatusCodeName ("Internal", "IoError", ...).
bool ParseCode(std::string_view text, StatusCode* out) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kInvalidArgument,   StatusCode::kNotFound,
      StatusCode::kAlreadyExists,     StatusCode::kFailedPrecondition,
      StatusCode::kOutOfRange,        StatusCode::kUnimplemented,
      StatusCode::kInternal,          StatusCode::kIoError,
      StatusCode::kCorruption,        StatusCode::kUnavailable,
      StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : kCodes) {
    if (text == StatusCodeName(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

obs::Counter& TriggerCounter(const std::string& name) {
  return obs::MetricsRegistry::Global().GetCounter(
      "querc_failpoint_triggers_total", {{"point", name}},
      "Times an armed failpoint's action fired");
}

}  // namespace

Failpoints::Failpoints() {
  if (const char* env = std::getenv("QUERC_FAILPOINTS");
      env != nullptr && *env != '\0') {
    // Malformed env specs are ignored rather than fatal: arming is a
    // debugging affordance and must never take the service down itself.
    (void)ParseAndArm(env);
  }
}

Failpoints& Failpoints::Global() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

namespace {

/// MaybeFail's disarmed fast path never constructs the registry, so the
/// env var must be applied eagerly: without this, a process whose every
/// failpoint check short-circuits on AnyArmed() would silently ignore
/// QUERC_FAILPOINTS.
[[maybe_unused]] const bool kEnvFailpointsApplied =
    (Failpoints::Global(), true);

}  // namespace

void Failpoints::Arm(const std::string& name, FailpointSpec spec) {
  MutexLock lock(&mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
    it = points_.emplace(name, Armed_{}).first;
  }
  it->second.spec = std::move(spec);
  it->second.remaining = it->second.spec.count;
  it->second.hits = 0;
}

bool Failpoints::Disarm(const std::string& name) {
  MutexLock lock(&mu_);
  if (points_.erase(name) == 0) return false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void Failpoints::DisarmAll() {
  MutexLock lock(&mu_);
  armed_count_.fetch_sub(static_cast<int>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
}

Status Failpoints::ParseAndArm(std::string_view spec_list) {
  for (const std::string& raw : Split(spec_list, ';')) {
    std::string_view entry = Trim(raw);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec without '=': " +
                                     std::string(entry));
    }
    std::string name(Trim(entry.substr(0, eq)));
    std::string_view action = Trim(entry.substr(eq + 1));

    FailpointSpec spec;
    if (size_t star = action.rfind('*'); star != std::string_view::npos) {
      std::string_view count = action.substr(star + 1);
      spec.count = std::atoll(std::string(count).c_str());
      if (spec.count <= 0) {
        return Status::InvalidArgument("failpoint count must be positive: " +
                                       std::string(entry));
      }
      action = action.substr(0, star);
    }
    std::string_view arg;
    if (size_t colon = action.find(':'); colon != std::string_view::npos) {
      arg = action.substr(colon + 1);
      action = action.substr(0, colon);
    }
    if (action == "error") {
      spec.action = FailAction::kError;
      if (!arg.empty() && !ParseCode(arg, &spec.code)) {
        return Status::InvalidArgument("unknown status code in failpoint: " +
                                       std::string(arg));
      }
    } else if (action == "delay") {
      spec.action = FailAction::kDelay;
      spec.delay_ms = std::atof(std::string(arg).c_str());
      if (spec.delay_ms < 0.0) spec.delay_ms = 0.0;
    } else if (action == "crash") {
      spec.action = FailAction::kCrash;
    } else {
      return Status::InvalidArgument("unknown failpoint action: " +
                                     std::string(action));
    }
    Arm(name, std::move(spec));
  }
  return Status::OK();
}

uint64_t Failpoints::hits(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

std::vector<FailpointInfo> Failpoints::Armed() const {
  MutexLock lock(&mu_);
  std::vector<FailpointInfo> out;
  out.reserve(points_.size());
  for (const auto& [name, armed] : points_) {
    FailpointInfo info;
    info.name = name;
    info.spec = armed.spec;
    info.hits = armed.hits;
    out.push_back(std::move(info));
  }
  return out;
}

Status Failpoints::Evaluate(std::string_view name) {
  FailpointSpec spec;
  std::string point;
  {
    MutexLock lock(&mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return Status::OK();
    if (it->second.remaining == 0) return Status::OK();
    if (it->second.remaining > 0) --it->second.remaining;
    ++it->second.hits;
    spec = it->second.spec;
    point = it->first;
    // "Fail N times then succeed": the point stays registered (so hits()
    // remains observable) but stops firing once its budget is spent.
  }
  TriggerCounter(point).Increment();
  // Journal twin of the trigger counter (detail = action), carrying the
  // trace context of the query that hit the armed point.
  obs::FlightRecorder::Global().RecordInstant(
      obs::EventKind::kFailpoint, point.c_str(),
      static_cast<uint8_t>(spec.action));
  switch (spec.action) {
    case FailAction::kError:
      return Status(spec.code, spec.message.empty()
                                   ? "failpoint " + point
                                   : spec.message);
    case FailAction::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(spec.delay_ms));
      return Status::OK();
    case FailAction::kCrash:
      std::abort();
  }
  return Status::OK();
}

}  // namespace querc::util
