// Scenario: the complete Querc deployment of the paper's Figure 1.
//
// Three applications X, Y, Z, each with its own query stream and database.
// X and Y are tenants that permit log sharing, so they share EmbedderA
// trained on their combined workloads; Z keeps its logs private and gets
// its own EmbedderB. The central training module trains per-application
// labelers over the shared representations and deploys them to each
// application's QWorker; processed queries tee back for the next batch
// training job. A drift check decides when retraining is due.
//
// X, the busiest application, runs a sharded QWorkerPool: its stream is
// hashed across 4 QWorker shards and batches are labeled in parallel —
// the paper's "QWorkers can be load-balanced and parallelized in the
// usual ways" (§2). Deployments are snapshot swaps, so the training
// module can hot-swap retrained classifiers while queries are in flight.
//
// Build & run:  ./build/examples/full_service

#include <algorithm>
#include <cstdio>
#include <memory>

#include "ml/random_forest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stats_reporter.h"
#include "querc/drift.h"
#include "querc/querc.h"

namespace {

using namespace querc;

workload::Workload AppWorkload(const char* account, uint64_t seed,
                               int queries) {
  workload::SnowflakeGenerator::Options options;
  options.seed = seed;
  workload::SnowflakeGenerator::AccountSpec spec;
  spec.name = account;
  spec.num_users = 5;
  spec.num_queries = queries;
  spec.shared_query_rate = 0.05;
  options.accounts = {spec};
  return workload::SnowflakeGenerator(options).Generate();
}

std::shared_ptr<embed::Doc2VecEmbedder> TrainEmbedder(
    const workload::Workload& corpus, const char* label) {
  embed::Doc2VecEmbedder::Options options;
  options.dim = 20;
  options.epochs = 8;
  auto embedder = std::make_shared<embed::Doc2VecEmbedder>(options);
  util::Status status = embed::TrainOnWorkload(*embedder, corpus);
  std::printf("trained %s on %zu queries: %s\n", label, corpus.size(),
              status.ToString().c_str());
  return embedder;
}

}  // namespace

int main() {
  // --- query streams (left edge of Figure 1) ---
  workload::Workload x = AppWorkload("appx", 11, 600);
  workload::Workload y = AppWorkload("appy", 12, 600);
  workload::Workload z = AppWorkload("appz", 13, 600);

  // --- embedders: EmbedderA(X, Y) shared; EmbedderB(Z) private ---
  workload::Workload xy = x;
  xy.Append(y);
  auto embedder_a = TrainEmbedder(xy, "EmbedderA(X,Y)");
  auto embedder_b = TrainEmbedder(z, "EmbedderB(Z)");

  // --- central training module ---
  core::TrainingModule module({});
  module.RegisterEmbedder("EmbedderA", embedder_a);
  module.RegisterEmbedder("EmbedderB", embedder_b);
  module.ImportLogs("X", x);
  module.ImportLogs("Y", y);
  module.ImportLogs("Z", z);

  auto job = [](const char* app, const char* embedder,
                core::LabelExtractor label, const char* task) {
    core::TrainingModule::TrainJob j;
    j.task_name = task;
    j.application = app;
    j.embedder_name = embedder;
    j.label_of = std::move(label);
    return j;  // default labeler: randomized decision forest
  };

  // --- per-application workers; X is sharded, gets user + cluster ---
  core::QWorkerPool::Options pool_options;
  pool_options.application = "X";
  // Shard count follows the machine (capped: the demo stream is small),
  // and the owned pool pins its workers so each shard's embed -> classify
  // -> sink chain stays cache-local.
  pool_options.num_shards = std::min<size_t>(4, util::DefaultThreadCount());
  pool_options.pin_shards = true;
  pool_options.partition = core::QWorkerPool::Partition::kByUser;
  core::QWorkerPool pool_x(pool_options);
  core::QWorker worker_y({.application = "Y"});
  core::QWorker worker_z({.application = "Z", .forward_to_database = false});
  util::Status status = module.TrainAndDeploy(
      {job("X", "EmbedderA", workload::UserOf, "user"),
       job("X", "EmbedderA", workload::ClusterOf, "cluster")},
      pool_x);
  if (!status.ok()) return 1;
  (void)module.TrainAndDeploy({job("Y", "EmbedderA", workload::UserOf,
                                   "user")},
                              worker_y);
  (void)module.TrainAndDeploy({job("Z", "EmbedderB", workload::UserOf,
                                   "user")},
                              worker_z);

  // Tee labeled queries back to the training module (Figure 1's loop).
  // Collect() locks internally, so the sink is safe to call from every
  // shard concurrently.
  pool_x.set_training_sink([&](const core::ProcessedQuery& pq) {
    module.Collect("X", pq);
  });

  // --- steady state: a batch arrives, shards label it in parallel ---
  workload::Workload batch;
  for (size_t i = 0; i < 200; ++i) batch.Add(x[i]);
  auto outputs = pool_x.ProcessBatch(batch);
  int correct = 0;
  int total = 0;
  for (size_t i = 0; i < outputs.size(); ++i) {
    correct += outputs[i].predictions.at("user") == batch[i].user ? 1 : 0;
    ++total;
  }
  std::printf("X stream: %d/%d user predictions correct across %zu shards\n",
              correct, total, pool_x.num_shards());
  for (const auto& s : pool_x.Stats()) {
    std::printf("  shard %zu: %zu queries, %zu classifiers, latency "
                "p50/p99/max %.3f/%.3f/%.3f ms\n",
                s.shard, s.processed, s.num_classifiers, s.p50_ms, s.p99_ms,
                s.histogram.max);
  }
  obs::HistogramSnapshot pooled = pool_x.MergedLatency();
  std::printf("  pooled: count=%llu p50=%.3f p99=%.3f max=%.3f ms\n",
              static_cast<unsigned long long>(pooled.count), pooled.p50(),
              pooled.p99(), pooled.max);

  // --- telemetry: the same run seen through the obs registry ---
  // Every pipeline stage the batch passed through recorded a span into
  // querc_stage_ms{stage=...}; one summary line shows the whole shape.
  std::printf("pipeline stages (ms):\n");
  auto stages = obs::MetricsRegistry::Global().Collect("querc_stage_ms");
  for (const auto& sample : stages.histograms) {
    std::string stage;
    for (const auto& [key, value] : sample.labels) {
      if (key == "stage") stage = value;
    }
    std::printf("  %-14s n=%-6llu p50=%.3f p99=%.3f max=%.3f\n",
                stage.c_str(),
                static_cast<unsigned long long>(sample.snapshot.count),
                sample.snapshot.p50(), sample.snapshot.p99(),
                sample.snapshot.max);
  }
  obs::StatsReporter reporter;
  std::printf("%s\n", reporter.SummaryLine().substr(0, 200).c_str());

  // --- drift check: should we retrain? ---
  core::DriftDetector detector(embedder_a, {});
  (void)detector.SetReference(x);
  auto quiet = detector.Check(y.FilterByAccount("appy"));
  workload::Workload shifted = AppWorkload("appnew", 99, 300);
  auto loud = detector.Check(shifted);
  std::printf("drift vs Y (same service):   centroid=%.2f novelty=%.2f -> "
              "%s\n",
              quiet.centroid_shift, quiet.novelty,
              quiet.retrain_recommended ? "retrain" : "steady");
  std::printf("drift vs new tenant:         centroid=%.2f novelty=%.2f -> "
              "%s\n",
              loud.centroid_shift, loud.novelty,
              loud.retrain_recommended ? "retrain" : "steady");
  return 0;
}
