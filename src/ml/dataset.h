#ifndef QUERC_ML_DATASET_H_
#define QUERC_ML_DATASET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "nn/tensor.h"

namespace querc::ml {

/// Maps string labels to dense integer class ids and back.
class LabelEncoder {
 public:
  /// Returns the id for `label`, assigning the next id on first sight.
  int FitId(const std::string& label);

  /// Returns the id for `label`, or -1 if never seen.
  int Id(const std::string& label) const;

  const std::string& Label(int id) const { return labels_[id]; }
  size_t num_classes() const { return labels_.size(); }

  /// Fit-encodes a whole column.
  std::vector<int> FitTransform(const std::vector<std::string>& column);

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> labels_;
};

/// A labeled vector dataset.
struct Dataset {
  std::vector<nn::Vec> x;
  std::vector<int> y;

  size_t size() const { return x.size(); }
  size_t dim() const { return x.empty() ? 0 : x[0].size(); }
};

/// Abstract multi-class classifier over dense vectors — the "labeler" half
/// of a Querc classifier pair.
class VectorClassifier {
 public:
  virtual ~VectorClassifier() = default;

  /// Trains on the dataset; `num_classes` is max(y)+1.
  virtual void Fit(const Dataset& data) = 0;

  /// Predicts the class id for one vector.
  virtual int Predict(const nn::Vec& v) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace querc::ml

#endif  // QUERC_ML_DATASET_H_
