# Empty dependencies file for test_embed_lstm_autoencoder.
# This may be replaced when dependencies are built.
