file(REMOVE_RECURSE
  "CMakeFiles/test_nn_optimizer.dir/test_nn_optimizer.cc.o"
  "CMakeFiles/test_nn_optimizer.dir/test_nn_optimizer.cc.o.d"
  "test_nn_optimizer"
  "test_nn_optimizer.pdb"
  "test_nn_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
