# Empty dependencies file for test_querc_qworker.
# This may be replaced when dependencies are built.
