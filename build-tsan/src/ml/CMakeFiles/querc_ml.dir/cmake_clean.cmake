file(REMOVE_RECURSE
  "CMakeFiles/querc_ml.dir/crossval.cc.o"
  "CMakeFiles/querc_ml.dir/crossval.cc.o.d"
  "CMakeFiles/querc_ml.dir/dataset.cc.o"
  "CMakeFiles/querc_ml.dir/dataset.cc.o.d"
  "CMakeFiles/querc_ml.dir/kmeans.cc.o"
  "CMakeFiles/querc_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/querc_ml.dir/kmedoids.cc.o"
  "CMakeFiles/querc_ml.dir/kmedoids.cc.o.d"
  "CMakeFiles/querc_ml.dir/knn.cc.o"
  "CMakeFiles/querc_ml.dir/knn.cc.o.d"
  "CMakeFiles/querc_ml.dir/metrics.cc.o"
  "CMakeFiles/querc_ml.dir/metrics.cc.o.d"
  "CMakeFiles/querc_ml.dir/random_forest.cc.o"
  "CMakeFiles/querc_ml.dir/random_forest.cc.o.d"
  "libquerc_ml.a"
  "libquerc_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querc_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
