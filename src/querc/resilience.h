#ifndef QUERC_QUERC_RESILIENCE_H_
#define QUERC_QUERC_RESILIENCE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/rng.h"
#include "util/status.h"

namespace querc::core {

/// Monotonic time source in microseconds. Null means the real steady
/// clock; tests inject a fake so breaker/deadline transitions are
/// deterministic.
using ClockFn = std::function<int64_t()>;

/// The real steady clock, in microseconds since an arbitrary epoch.
int64_t SteadyNowMicros();

/// A point in time by which work must finish. Querc sits on (or beside)
/// the database's critical path, so when a budget expires the service
/// *forwards the query with whatever predictions it has* instead of
/// blocking the path — Deadline is how that policy is threaded through
/// QWorker::Process and its stages.
///
/// A default-constructed Deadline is infinite and costs nothing to check
/// (no clock read).
class Deadline {
 public:
  Deadline() = default;

  /// A deadline `budget_ms` from now on `clock` (null = steady clock).
  static Deadline After(double budget_ms, const ClockFn& clock = nullptr);

  bool infinite() const {
    return deadline_us_ == std::numeric_limits<int64_t>::max();
  }

  /// True once the budget has been spent. Infinite deadlines are never
  /// expired and short-circuit before any clock read.
  bool Expired() const;

  /// Microseconds of budget left; +inf when infinite, clamped at 0.
  double RemainingMs() const;

 private:
  ClockFn clock_;  // null = SteadyNowMicros
  int64_t deadline_us_ = std::numeric_limits<int64_t>::max();
};

/// Capped exponential backoff with decorrelated jitter: each delay is
/// uniform in [base, prev * 3], clamped to the cap. Jitter draws from the
/// caller's util::Rng so retry schedules reproduce under a fixed seed.
struct RetryOptions {
  /// Total tries including the first (1 = no retries).
  int max_attempts = 3;
  double initial_backoff_ms = 1.0;
  double max_backoff_ms = 100.0;
};

class RetryPolicy {
 public:
  RetryPolicy() = default;
  explicit RetryPolicy(const RetryOptions& options) : options_(options) {}

  int max_attempts() const { return options_.max_attempts; }

  /// The delay before the next attempt given the previous delay (pass 0
  /// before the first retry).
  double NextBackoffMs(double prev_ms, util::Rng& rng) const;

 private:
  RetryOptions options_;
};

/// A token bucket bounding how many retries a shard may issue relative to
/// its successes, so retries cannot amplify an outage into a retry storm:
/// each success refills a fraction of a token, each retry spends one, and
/// when the bucket is empty failures surface immediately instead of
/// retrying. Lock-free; safe to share across a shard's threads.
struct RetryBudgetOptions {
  double capacity = 10.0;
  double refill_per_success = 0.1;
};

class RetryBudget {
 public:
  RetryBudget() : RetryBudget(RetryBudgetOptions{}) {}
  explicit RetryBudget(const RetryBudgetOptions& options)
      : options_(options), tokens_(options.capacity) {}

  /// Consumes one token; false (no retry allowed) when the bucket is dry.
  bool TrySpend();

  /// Refills `refill_per_success`, saturating at capacity.
  void RecordSuccess();

  double tokens() const { return tokens_.load(std::memory_order_relaxed); }

 private:
  RetryBudgetOptions options_;
  std::atomic<double> tokens_;
};

/// Classic three-state circuit breaker guarding one dependency (a sink, a
/// classifier task):
///
///   closed    -> normal operation; outcomes feed a sliding window, and
///                when the window's failure rate crosses the threshold the
///                breaker opens.
///   open      -> Allow() refuses instantly (callers degrade: fallback
///                classifier, skip-with-counter) until `open_ms` elapses.
///   half-open -> a bounded number of probe calls go through; all probes
///                succeeding re-closes the breaker, any probe failing
///                re-opens it for another cooldown.
///
/// State is exposed as the gauge `querc_breaker_state{breaker=<name>}`
/// (0 closed, 1 open, 2 half-open) plus a transitions counter. All
/// methods are thread-safe; the clock is injectable so state walks are
/// deterministic in tests.
struct CircuitBreakerOptions {
  /// Sliding outcome window (most recent calls) evaluated in closed state.
  size_t window = 32;
  /// Don't open before this many outcomes are in the window.
  size_t min_samples = 8;
  /// Open when window failure rate reaches this fraction.
  double failure_ratio = 0.5;
  /// Cooldown before an open breaker lets probes through.
  double open_ms = 1000.0;
  /// Probes admitted in half-open; all must succeed to close.
  size_t half_open_probes = 2;
  ClockFn clock;  // null = SteadyNowMicros
};

class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  /// `name` labels the obs gauge/counter series; "" disables metrics
  /// (used by unit tests that run thousands of breakers).
  CircuitBreaker(std::string name, const CircuitBreakerOptions& options);

  /// Whether a call may proceed right now. May transition open→half-open
  /// when the cooldown has elapsed.
  bool Allow() EXCLUDES(mu_);

  void RecordSuccess() EXCLUDES(mu_);
  void RecordFailure() EXCLUDES(mu_);

  State state() const EXCLUDES(mu_);
  const std::string& name() const { return name_; }

  /// Stable lowercase name for a state ("closed", "open", "half-open").
  static std::string_view StateName(State state);

 private:
  int64_t Now() const;
  void TransitionLocked(State next) REQUIRES(mu_);

  std::string name_;
  CircuitBreakerOptions options_;
  obs::Gauge* state_gauge_ = nullptr;  // null when metrics disabled

  /// Held across TransitionLocked, which journals to the metrics registry
  /// and flight recorder — hence rank kBreaker < kMetricsRegistry,
  /// kFlightRecorder.
  mutable util::Mutex mu_{util::LockRank::kBreaker, "breaker.mu"};
  State state_ GUARDED_BY(mu_) = State::kClosed;
  /// Ring buffer of recent outcomes (true = failure) in closed state.
  std::vector<bool> window_ GUARDED_BY(mu_);
  size_t window_next_ GUARDED_BY(mu_) = 0;
  size_t window_count_ GUARDED_BY(mu_) = 0;
  size_t window_failures_ GUARDED_BY(mu_) = 0;
  int64_t open_until_us_ GUARDED_BY(mu_) = 0;
  size_t probes_in_flight_ GUARDED_BY(mu_) = 0;
  size_t probe_successes_ GUARDED_BY(mu_) = 0;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_RESILIENCE_H_
