
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/querc_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/querc_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/querc_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/querc_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/querc_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/querc_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/softmax.cc" "src/nn/CMakeFiles/querc_nn.dir/softmax.cc.o" "gcc" "src/nn/CMakeFiles/querc_nn.dir/softmax.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/querc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
