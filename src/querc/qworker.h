#ifndef QUERC_QUERC_QWORKER_H_
#define QUERC_QUERC_QWORKER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "querc/classifier.h"
#include "workload/workload.h"

namespace querc::core {

/// A query annotated with the labels Querc's classifiers predicted.
struct ProcessedQuery {
  workload::LabeledQuery query;
  /// task name -> predicted label.
  std::map<std::string, std::string> predictions;
};

/// The per-application stream worker of Figure 1: runs every deployed
/// classifier over each arriving query, forwards the query downstream (to
/// the database — here a callback), and tees labeled queries to the
/// training module's collector. QWorkers hold only a small bounded window
/// of recent queries (for windowed tasks such as recommendation), so they
/// can be load-balanced and parallelized in the usual ways.
class QWorker {
 public:
  struct Options {
    std::string application;
    /// Bounded recent-query window retained for windowed labeling tasks.
    size_t window_size = 32;
    /// When false (the "forked" deployment of §2), queries are NOT
    /// forwarded to the database — Querc stays off the critical path.
    bool forward_to_database = true;
  };

  using DatabaseSink = std::function<void(const workload::LabeledQuery&)>;
  using TrainingSink = std::function<void(const ProcessedQuery&)>;

  explicit QWorker(const Options& options) : options_(options) {}

  /// Installs (or replaces) a classifier under its task name. Deployment
  /// of retrained models is a swap of this pointer.
  void Deploy(std::shared_ptr<const Classifier> classifier);

  /// Removes a classifier by task name; returns whether it existed.
  bool Undeploy(const std::string& task_name);

  void set_database_sink(DatabaseSink sink) { database_ = std::move(sink); }
  void set_training_sink(TrainingSink sink) { training_ = std::move(sink); }

  /// Processes one arriving query through every deployed classifier.
  ProcessedQuery Process(const workload::LabeledQuery& query);

  /// Processes a batch ("query(X, t)" in the paper's notation).
  std::vector<ProcessedQuery> ProcessBatch(const workload::Workload& batch);

  /// The bounded window of the most recent queries seen.
  const std::deque<workload::LabeledQuery>& window() const { return window_; }

  const std::string& application() const { return options_.application; }
  size_t num_classifiers() const { return classifiers_.size(); }
  size_t processed_count() const { return processed_count_; }

 private:
  Options options_;
  std::map<std::string, std::shared_ptr<const Classifier>> classifiers_;
  DatabaseSink database_;
  TrainingSink training_;
  std::deque<workload::LabeledQuery> window_;
  size_t processed_count_ = 0;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_QWORKER_H_
