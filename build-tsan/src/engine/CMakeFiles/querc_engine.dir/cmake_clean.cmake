file(REMOVE_RECURSE
  "CMakeFiles/querc_engine.dir/advisor.cc.o"
  "CMakeFiles/querc_engine.dir/advisor.cc.o.d"
  "CMakeFiles/querc_engine.dir/catalog.cc.o"
  "CMakeFiles/querc_engine.dir/catalog.cc.o.d"
  "CMakeFiles/querc_engine.dir/cost_model.cc.o"
  "CMakeFiles/querc_engine.dir/cost_model.cc.o.d"
  "CMakeFiles/querc_engine.dir/explain.cc.o"
  "CMakeFiles/querc_engine.dir/explain.cc.o.d"
  "CMakeFiles/querc_engine.dir/index.cc.o"
  "CMakeFiles/querc_engine.dir/index.cc.o.d"
  "CMakeFiles/querc_engine.dir/tpch_catalog.cc.o"
  "CMakeFiles/querc_engine.dir/tpch_catalog.cc.o.d"
  "libquerc_engine.a"
  "libquerc_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
