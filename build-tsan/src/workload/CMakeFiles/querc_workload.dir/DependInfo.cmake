
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/io.cc" "src/workload/CMakeFiles/querc_workload.dir/io.cc.o" "gcc" "src/workload/CMakeFiles/querc_workload.dir/io.cc.o.d"
  "/root/repo/src/workload/snowflake_gen.cc" "src/workload/CMakeFiles/querc_workload.dir/snowflake_gen.cc.o" "gcc" "src/workload/CMakeFiles/querc_workload.dir/snowflake_gen.cc.o.d"
  "/root/repo/src/workload/tpch_gen.cc" "src/workload/CMakeFiles/querc_workload.dir/tpch_gen.cc.o" "gcc" "src/workload/CMakeFiles/querc_workload.dir/tpch_gen.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/querc_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/querc_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sql/CMakeFiles/querc_sql.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/querc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
