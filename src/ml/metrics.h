#ifndef QUERC_ML_METRICS_H_
#define QUERC_ML_METRICS_H_

#include <map>
#include <string>
#include <vector>

namespace querc::ml {

/// Fraction of positions where predicted == actual. Empty input -> 0.
double Accuracy(const std::vector<int>& actual,
                const std::vector<int>& predicted);

/// Row-major confusion matrix: counts[actual][predicted].
std::vector<std::vector<int>> ConfusionMatrix(
    const std::vector<int>& actual, const std::vector<int>& predicted,
    int num_classes);

/// Per-class recall (diagonal / row sum); classes with no samples get 0.
std::vector<double> PerClassRecall(
    const std::vector<std::vector<int>>& confusion);

/// Accuracy restricted to positions whose group key matches, per group.
std::map<std::string, double> GroupedAccuracy(
    const std::vector<int>& actual, const std::vector<int>& predicted,
    const std::vector<std::string>& groups);

/// Macro-averaged F1 over all classes present in `actual`.
double MacroF1(const std::vector<int>& actual,
               const std::vector<int>& predicted, int num_classes);

}  // namespace querc::ml

#endif  // QUERC_ML_METRICS_H_
