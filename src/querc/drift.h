#ifndef QUERC_QUERC_DRIFT_H_
#define QUERC_QUERC_DRIFT_H_

#include <memory>

#include "embed/embedder.h"
#include "workload/workload.h"

namespace querc::core {

/// Workload drift detection in embedding space. The paper's architecture
/// trains models "infrequently as a batch job" (§2) — which raises the
/// operational question this component answers: has the workload moved
/// far enough from the training window that models should be retrained?
///
/// Drift is measured between a reference window (what the deployed models
/// were trained on) and a recent window, using two complementary signals:
///  - centroid shift: distance between the windows' mean embeddings,
///    normalized by the reference dispersion — detects wholesale shifts;
///  - novelty: mean distance from each recent query to its nearest
///    reference query, normalized likewise — detects new query families
///    even when the bulk of traffic is unchanged.
class DriftDetector {
 public:
  struct Options {
    /// Retraining is recommended when either score exceeds its threshold.
    double centroid_threshold = 0.5;
    double novelty_threshold = 1.0;
    /// Recent windows larger than this are subsampled (deterministic
    /// stride) to bound the O(recent x reference) novelty computation.
    size_t max_window = 2000;
  };

  struct Report {
    double centroid_shift = 0.0;  // normalized, ~0 when stationary
    double novelty = 0.0;         // normalized mean NN distance
    bool retrain_recommended = false;
    size_t reference_size = 0;
    size_t recent_size = 0;
  };

  DriftDetector(std::shared_ptr<const embed::Embedder> embedder,
                const Options& options)
      : embedder_(std::move(embedder)), options_(options) {}

  /// Fixes the reference window (typically the current training set).
  util::Status SetReference(const workload::Workload& reference);

  /// Scores a recent window against the reference.
  Report Check(const workload::Workload& recent) const;

 private:
  std::shared_ptr<const embed::Embedder> embedder_;
  Options options_;
  std::vector<nn::Vec> reference_;
  nn::Vec reference_centroid_;
  double reference_dispersion_ = 1.0;  // mean distance to the centroid
};

}  // namespace querc::core

#endif  // QUERC_QUERC_DRIFT_H_
