#ifndef QUERC_UTIL_STATUSOR_H_
#define QUERC_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace querc::util {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. Accessing `value()` on an error StatusOr aborts in debug
/// builds; callers must check `ok()` first.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace querc::util

/// Evaluates `rexpr` (a StatusOr); on error returns the status, otherwise
/// move-assigns the value into `lhs`.
#define QUERC_ASSIGN_OR_RETURN(lhs, rexpr)             \
  auto QUERC_CONCAT_(_querc_sor_, __LINE__) = (rexpr); \
  if (!QUERC_CONCAT_(_querc_sor_, __LINE__).ok())      \
    return QUERC_CONCAT_(_querc_sor_, __LINE__).status(); \
  lhs = std::move(QUERC_CONCAT_(_querc_sor_, __LINE__)).value()

#define QUERC_CONCAT_INNER_(a, b) a##b
#define QUERC_CONCAT_(a, b) QUERC_CONCAT_INNER_(a, b)

#endif  // QUERC_UTIL_STATUSOR_H_
