# Empty dependencies file for test_engine_cost_model.
# This may be replaced when dependencies are built.
