#include "ml/crossval.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "ml/metrics.h"
#include "util/rng.h"

namespace querc::ml {

double CrossValResult::MeanAccuracy() const {
  if (fold_accuracies.empty()) return 0.0;
  double s = 0.0;
  for (double a : fold_accuracies) s += a;
  return s / static_cast<double>(fold_accuracies.size());
}

CrossValResult StratifiedKFold(
    const Dataset& data, int folds,
    const std::function<std::unique_ptr<VectorClassifier>()>& factory,
    uint64_t seed) {
  assert(folds >= 2);
  util::Rng rng(seed);

  // Group indices by class, shuffle within class, deal round-robin into
  // folds so each fold matches the global class proportions.
  std::map<int, std::vector<size_t>> by_class;
  for (size_t i = 0; i < data.size(); ++i) by_class[data.y[i]].push_back(i);
  std::vector<int> fold_of(data.size(), 0);
  for (auto& [label, indices] : by_class) {
    (void)label;
    rng.Shuffle(indices);
    for (size_t j = 0; j < indices.size(); ++j) {
      fold_of[indices[j]] = static_cast<int>(j % static_cast<size_t>(folds));
    }
  }

  CrossValResult result;
  result.oof_predictions.assign(data.size(), -1);
  for (int fold = 0; fold < folds; ++fold) {
    Dataset train;
    std::vector<size_t> test_indices;
    for (size_t i = 0; i < data.size(); ++i) {
      if (fold_of[i] == fold) {
        test_indices.push_back(i);
      } else {
        train.x.push_back(data.x[i]);
        train.y.push_back(data.y[i]);
      }
    }
    if (train.x.empty() || test_indices.empty()) {
      result.fold_accuracies.push_back(0.0);
      continue;
    }
    std::unique_ptr<VectorClassifier> clf = factory();
    clf->Fit(train);
    std::vector<int> actual;
    std::vector<int> predicted;
    for (size_t i : test_indices) {
      int p = clf->Predict(data.x[i]);
      result.oof_predictions[i] = p;
      actual.push_back(data.y[i]);
      predicted.push_back(p);
    }
    result.fold_accuracies.push_back(Accuracy(actual, predicted));
  }
  return result;
}

}  // namespace querc::ml
