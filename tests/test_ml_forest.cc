#include "ml/random_forest.h"

#include <sstream>

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "util/rng.h"

namespace querc::ml {
namespace {

/// Binary-separable dataset: class = x0 > 0.
Dataset Separable(int n, util::Rng& rng, double noise = 0.0) {
  Dataset data;
  for (int i = 0; i < n; ++i) {
    double x0 = rng.UniformDouble(-1, 1);
    double x1 = rng.UniformDouble(-1, 1);
    data.x.push_back({x0 + rng.Gaussian(0, noise), x1});
    data.y.push_back(x0 > 0 ? 1 : 0);
  }
  return data;
}

TEST(ForestTest, LearnsSeparableData) {
  util::Rng rng(3);
  Dataset train = Separable(400, rng);
  Dataset test = Separable(200, rng);
  RandomForestClassifier forest(RandomForestClassifier::Options{});
  forest.Fit(train);
  std::vector<int> pred;
  for (const auto& v : test.x) pred.push_back(forest.Predict(v));
  EXPECT_GT(Accuracy(test.y, pred), 0.9);
}

TEST(ForestTest, MultiClassQuadrants) {
  util::Rng rng(5);
  Dataset train;
  for (int i = 0; i < 600; ++i) {
    double x = rng.UniformDouble(-1, 1);
    double y = rng.UniformDouble(-1, 1);
    train.x.push_back({x, y});
    train.y.push_back((x > 0 ? 1 : 0) + (y > 0 ? 2 : 0));
  }
  RandomForestClassifier forest(RandomForestClassifier::Options{});
  forest.Fit(train);
  EXPECT_EQ(forest.num_classes(), 4);
  EXPECT_EQ(forest.Predict({0.5, 0.5}), 3);
  EXPECT_EQ(forest.Predict({-0.5, -0.5}), 0);
  EXPECT_EQ(forest.Predict({0.5, -0.5}), 1);
  EXPECT_EQ(forest.Predict({-0.5, 0.5}), 2);
}

TEST(ForestTest, ProbaSumsToOne) {
  util::Rng rng(7);
  Dataset train = Separable(100, rng);
  RandomForestClassifier forest(RandomForestClassifier::Options{});
  forest.Fit(train);
  std::vector<double> proba = forest.PredictProba({0.9, 0.0});
  double sum = 0.0;
  for (double p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(proba[1], 0.8);  // far into class-1 territory
}

TEST(ForestTest, DeterministicPerSeed) {
  util::Rng rng(9);
  Dataset train = Separable(200, rng);
  RandomForestClassifier::Options options;
  options.seed = 77;
  RandomForestClassifier a(options);
  RandomForestClassifier b(options);
  a.Fit(train);
  b.Fit(train);
  util::Rng probe_rng(1);
  for (int i = 0; i < 50; ++i) {
    nn::Vec v = {probe_rng.UniformDouble(-1, 1),
                 probe_rng.UniformDouble(-1, 1)};
    EXPECT_EQ(a.Predict(v), b.Predict(v));
  }
}

TEST(ForestTest, SingleClassAlwaysPredictsIt) {
  Dataset train;
  for (int i = 0; i < 20; ++i) {
    train.x.push_back({static_cast<double>(i)});
    train.y.push_back(0);
  }
  RandomForestClassifier forest(RandomForestClassifier::Options{});
  forest.Fit(train);
  EXPECT_EQ(forest.Predict({3.0}), 0);
  EXPECT_EQ(forest.num_classes(), 1);
}

TEST(ForestTest, ConstantFeaturesFallBackToMajority) {
  Dataset train;
  for (int i = 0; i < 30; ++i) {
    train.x.push_back({1.0, 1.0});
    train.y.push_back(i < 20 ? 0 : 1);
  }
  RandomForestClassifier forest(RandomForestClassifier::Options{});
  forest.Fit(train);
  EXPECT_EQ(forest.Predict({1.0, 1.0}), 0);  // 2/3 majority
}

TEST(ForestTest, DepthLimitRespectedWithoutCrash) {
  util::Rng rng(11);
  Dataset train = Separable(300, rng, /*noise=*/0.5);
  RandomForestClassifier::Options options;
  options.max_depth = 2;
  options.num_trees = 10;
  RandomForestClassifier forest(options);
  forest.Fit(train);
  // Shallow forest still beats random on noisy-but-separable data.
  Dataset test = Separable(200, rng, 0.5);
  std::vector<int> pred;
  for (const auto& v : test.x) pred.push_back(forest.Predict(v));
  EXPECT_GT(Accuracy(test.y, pred), 0.6);
}

TEST(ForestTest, NoBootstrapModeWorks) {
  util::Rng rng(13);
  Dataset train = Separable(200, rng);
  RandomForestClassifier::Options options;
  options.bootstrap = false;
  RandomForestClassifier forest(options);
  forest.Fit(train);
  EXPECT_EQ(forest.Predict({0.9, 0.0}), 1);
  EXPECT_EQ(forest.Predict({-0.9, 0.0}), 0);
}


TEST(ForestTest, SaveLoadPreservesPredictions) {
  util::Rng rng(17);
  Dataset train = Separable(200, rng);
  RandomForestClassifier forest(RandomForestClassifier::Options{});
  forest.Fit(train);
  std::stringstream ss;
  ASSERT_TRUE(forest.Save(ss).ok());
  auto loaded = RandomForestClassifier::Load(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_classes(), forest.num_classes());
  util::Rng probe(23);
  for (int i = 0; i < 100; ++i) {
    nn::Vec v = {probe.UniformDouble(-1, 1), probe.UniformDouble(-1, 1)};
    EXPECT_EQ(loaded->Predict(v), forest.Predict(v));
    EXPECT_EQ(loaded->PredictProba(v), forest.PredictProba(v));
  }
}

TEST(ForestTest, LoadRejectsGarbage) {
  std::stringstream ss("definitely not a forest");
  EXPECT_FALSE(RandomForestClassifier::Load(ss).ok());
}

}  // namespace
}  // namespace querc::ml
