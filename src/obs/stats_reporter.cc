#include "obs/stats_reporter.h"

#include <cstdio>
#include <sstream>

#include "util/topology.h"

namespace querc::obs {

namespace {

std::string Short(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

std::string SampleName(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=" + value;
  }
  return out + "}";
}

}  // namespace

StatsReporter::StatsReporter() : StatsReporter(Options()) {}

StatsReporter::StatsReporter(const Options& options) : options_(options) {
  if (!options_.sink) {
    options_.sink = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Global();
  }
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Start() {
  util::MutexLock lock(&mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = util::SpawnThread("querc-stats", [this] { Loop(); });
}

void StatsReporter::Stop() {
  // Move the handle out under the lock so exactly one stopper joins:
  // with the handle left in place, two concurrent Stop() calls would
  // both see joinable() and both call join() (undefined behavior).
  std::thread joiner;
  {
    util::MutexLock lock(&mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    joiner = std::move(thread_);
  }
  cv_.NotifyAll();
  joiner.join();
  options_.sink(SummaryLine());
}

void StatsReporter::Loop() {
  for (;;) {
    {
      util::MutexLock lock(&mu_);
      if (cv_.WaitFor(mu_, options_.interval, [this]() REQUIRES(mu_) {
            mu_.AssertHeld();
            return stop_;
          })) {
        return;  // final line is emitted by Stop() after the join
      }
    }
    // The tick's sink call runs unlocked so a slow sink never delays
    // Stop().
    options_.sink(SummaryLine());
  }
}

std::string StatsReporter::SummaryLine() const {
  MetricsRegistry::Snapshot snap = options_.registry->Collect(options_.prefix);
  std::ostringstream os;
  os << "stats:";
  for (const auto& sample : snap.counters) {
    os << " " << SampleName(sample.name, sample.labels) << "="
       << sample.value;
  }
  for (const auto& sample : snap.gauges) {
    os << " " << SampleName(sample.name, sample.labels) << "="
       << Short(sample.value);
  }
  for (const auto& sample : snap.histograms) {
    const HistogramSnapshot& h = sample.snapshot;
    os << " " << SampleName(sample.name, sample.labels) << "[n=" << h.count
       << " p50=" << Short(h.p50()) << " p99=" << Short(h.p99())
       << " max=" << Short(h.max) << "]";
  }
  return os.str();
}

}  // namespace querc::obs
