// Reproduces Table 2: per-account user-prediction accuracy under the LSTM
// embedder. The paper's finding: most accounts sit above 90-95%, but a few
// large accounts — where many users issue the exact same query texts —
// are nearly indistinguishable and drag the global average down; those
// accounts also cover the majority of the query volume.

#include <memory>
#include <set>

#include "bench/bench_common.h"
#include "ml/crossval.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace querc::bench {
namespace {

int Main() {
  std::printf("=== Table 2: per-account user prediction accuracy ===\n");
  workload::Workload pretrain = SnowflakePretrainCorpus();
  workload::Workload labeled = SnowflakeLabeledWorkload();
  workload::Workload corpus = pretrain;
  corpus.Append(labeled);

  embed::LstmAutoencoderEmbedder lstm(LstmBenchOptions());
  TrainEmbedder(lstm, corpus, "lstm-autoencoder");

  ml::Dataset data;
  data.x = embed::EmbedWorkload(lstm, labeled);
  ml::LabelEncoder users;
  std::vector<std::string> groups;
  for (const auto& q : labeled) {
    data.y.push_back(users.FitId(q.user));
    groups.push_back(q.account);
  }
  auto cv = ml::StratifiedKFold(
      data, 10,
      [] {
        return std::make_unique<ml::RandomForestClassifier>(
            ml::RandomForestClassifier::Options{.num_trees = 40});
      },
      102);
  auto per_account = ml::GroupedAccuracy(data.y, cv.oof_predictions, groups);

  // Assemble rows sorted by query count descending, like the paper.
  struct Row {
    size_t queries;
    size_t users;
    double accuracy;
    double shared_fraction;
  };
  std::vector<Row> rows;
  auto by_account = labeled.CountBy(workload::AccountOf);
  for (const auto& [account, count] : by_account) {
    workload::Workload sub = labeled.FilterByAccount(account);
    std::set<std::string> distinct_users;
    for (const auto& q : sub) distinct_users.insert(q.user);
    rows.push_back({count, distinct_users.size(), per_account[account],
                    sub.SharedTextFraction()});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.queries > b.queries; });

  util::TableWriter table(
      {"#queries", "#users", "accuracy", "shared_text_fraction"});
  for (const Row& row : rows) {
    table.AddRow({std::to_string(row.queries), std::to_string(row.users),
                  util::TableWriter::Num(100.0 * row.accuracy, 1) + "%",
                  util::TableWriter::Num(row.shared_fraction, 2)});
  }
  EmitTable(table,
            "Table 2 — accounts (by size) with user prediction accuracy",
            "table2_per_account.csv");

  std::printf(
      "\noverall user accuracy: %.1f%%\n",
      100.0 * ml::Accuracy(data.y, cv.oof_predictions));
  // The paper's observation, checked numerically: the top accounts carry
  // most of the volume and the worst accuracy.
  size_t top3_queries = rows[0].queries + rows[1].queries + rows[2].queries;
  std::printf("top-3 accounts cover %.0f%% of all queries; their mean "
              "accuracy is %.1f%% vs %.1f%% for the rest\n",
              100.0 * static_cast<double>(top3_queries) /
                  static_cast<double>(labeled.size()),
              100.0 * (rows[0].accuracy + rows[1].accuracy +
                       rows[2].accuracy) / 3.0,
              [&] {
                double sum = 0.0;
                for (size_t i = 3; i < rows.size(); ++i) sum += rows[i].accuracy;
                return 100.0 * sum / static_cast<double>(rows.size() - 3);
              }());
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main() { return querc::bench::Main(); }
