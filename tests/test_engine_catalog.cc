#include "engine/catalog.h"

#include <gtest/gtest.h>

namespace querc::engine {
namespace {

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  TableStats t;
  t.name = "t";
  t.row_count = 100;
  t.columns = {{"a", ColumnType::kInt, 0, 9, 10, 8},
               {"b", ColumnType::kString, 0, 0, 5, 16}};
  ASSERT_TRUE(catalog.AddTable(t).ok());
  EXPECT_FALSE(catalog.AddTable(t).ok());  // duplicate

  const TableStats* found = catalog.Table("t");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->row_count, 100u);
  EXPECT_EQ(found->RowWidthBytes(), 24.0);
  EXPECT_NE(found->Column("a"), nullptr);
  EXPECT_EQ(found->Column("zzz"), nullptr);
  EXPECT_EQ(catalog.Table("nope"), nullptr);
}

TEST(CatalogTest, TableOfColumnResolvesUniqueAndFlagsAmbiguous) {
  Catalog catalog;
  TableStats t1;
  t1.name = "t1";
  t1.columns = {{"unique_col", ColumnType::kInt, 0, 1, 2, 8},
                {"shared", ColumnType::kInt, 0, 1, 2, 8}};
  TableStats t2;
  t2.name = "t2";
  t2.columns = {{"shared", ColumnType::kInt, 0, 1, 2, 8}};
  ASSERT_TRUE(catalog.AddTable(t1).ok());
  ASSERT_TRUE(catalog.AddTable(t2).ok());
  EXPECT_EQ(catalog.TableOfColumn("unique_col"), "t1");
  EXPECT_EQ(catalog.TableOfColumn("shared"), "");   // ambiguous
  EXPECT_EQ(catalog.TableOfColumn("missing"), "");  // absent
}

TEST(TpchCatalogTest, AllEightTablesPresent) {
  Catalog catalog = TpchCatalog();
  const char* tables[] = {"region",   "nation", "supplier", "customer",
                          "part",     "partsupp", "orders", "lineitem"};
  for (const char* name : tables) {
    EXPECT_NE(catalog.Table(name), nullptr) << name;
  }
  EXPECT_EQ(catalog.tables().size(), 8u);
}

TEST(TpchCatalogTest, ScaleFactorOneRowCounts) {
  Catalog catalog = TpchCatalog();
  EXPECT_EQ(catalog.Table("lineitem")->row_count, 6001215u);
  EXPECT_EQ(catalog.Table("orders")->row_count, 1500000u);
  EXPECT_EQ(catalog.Table("customer")->row_count, 150000u);
  EXPECT_EQ(catalog.Table("part")->row_count, 200000u);
  EXPECT_EQ(catalog.Table("supplier")->row_count, 10000u);
  EXPECT_EQ(catalog.Table("nation")->row_count, 25u);
  EXPECT_EQ(catalog.Table("region")->row_count, 5u);
}

TEST(TpchCatalogTest, ColumnsResolveUnambiguously) {
  // TPC-H column prefixes make every column globally unique.
  Catalog catalog = TpchCatalog();
  EXPECT_EQ(catalog.TableOfColumn("l_shipdate"), "lineitem");
  EXPECT_EQ(catalog.TableOfColumn("o_orderdate"), "orders");
  EXPECT_EQ(catalog.TableOfColumn("c_mktsegment"), "customer");
  EXPECT_EQ(catalog.TableOfColumn("ps_supplycost"), "partsupp");
}

TEST(TpchCatalogTest, DateDomainsSane) {
  Catalog catalog = TpchCatalog();
  const ColumnStats* shipdate =
      catalog.Table("lineitem")->Column("l_shipdate");
  ASSERT_NE(shipdate, nullptr);
  EXPECT_EQ(shipdate->type, ColumnType::kDate);
  EXPECT_LT(shipdate->min_value, shipdate->max_value);
  // Domain covers 1992..1998 => ~2557 days.
  EXPECT_NEAR(shipdate->max_value - shipdate->min_value, 2557, 5);
}

TEST(TpchCatalogTest, SelectiveColumnsHaveSmallNdv) {
  Catalog catalog = TpchCatalog();
  EXPECT_EQ(catalog.Table("customer")->Column("c_mktsegment")->distinct_values,
            5u);
  EXPECT_EQ(catalog.Table("lineitem")->Column("l_returnflag")->distinct_values,
            3u);
  EXPECT_EQ(catalog.Table("lineitem")->Column("l_shipmode")->distinct_values,
            7u);
}

}  // namespace
}  // namespace querc::engine
