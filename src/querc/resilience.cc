#include "querc/resilience.h"

#include <algorithm>
#include <chrono>

#include "obs/flight_recorder.h"

namespace querc::core {

namespace {

obs::Counter& TransitionCounter(const std::string& name,
                                CircuitBreaker::State to) {
  return obs::MetricsRegistry::Global().GetCounter(
      "querc_breaker_transitions_total",
      {{"breaker", name}, {"to", std::string(CircuitBreaker::StateName(to))}},
      "Circuit-breaker state transitions");
}

}  // namespace

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Deadline Deadline::After(double budget_ms, const ClockFn& clock) {
  Deadline d;
  d.clock_ = clock;
  int64_t now = clock ? clock() : SteadyNowMicros();
  d.deadline_us_ = now + static_cast<int64_t>(budget_ms * 1000.0);
  return d;
}

bool Deadline::Expired() const {
  if (infinite()) return false;
  int64_t now = clock_ ? clock_() : SteadyNowMicros();
  return now >= deadline_us_;
}

double Deadline::RemainingMs() const {
  if (infinite()) return std::numeric_limits<double>::infinity();
  int64_t now = clock_ ? clock_() : SteadyNowMicros();
  return std::max<int64_t>(0, deadline_us_ - now) / 1000.0;
}

double RetryPolicy::NextBackoffMs(double prev_ms, util::Rng& rng) const {
  double base = options_.initial_backoff_ms;
  if (base <= 0.0) return 0.0;
  // Decorrelated jitter: uniform in [base, prev * 3], so consecutive
  // delays wander upward without the lockstep thundering herd of pure
  // exponential backoff.
  double hi = std::max(base, prev_ms * 3.0);
  double next = rng.UniformDouble(base, std::max(hi, base + 1e-9));
  return std::min(next, options_.max_backoff_ms);
}

bool RetryBudget::TrySpend() {
  double cur = tokens_.load(std::memory_order_relaxed);
  while (cur >= 1.0) {
    if (tokens_.compare_exchange_weak(cur, cur - 1.0,
                                      std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void RetryBudget::RecordSuccess() {
  double cur = tokens_.load(std::memory_order_relaxed);
  while (cur < options_.capacity) {
    double next = std::min(options_.capacity,
                           cur + options_.refill_per_success);
    if (tokens_.compare_exchange_weak(cur, next,
                                      std::memory_order_relaxed)) {
      return;
    }
  }
}

CircuitBreaker::CircuitBreaker(std::string name,
                               const CircuitBreakerOptions& options)
    : name_(std::move(name)),
      options_(options),
      window_(std::max<size_t>(1, options.window), false) {
  if (!name_.empty()) {
    state_gauge_ = &obs::MetricsRegistry::Global().GetGauge(
        "querc_breaker_state", {{"breaker", name_}},
        "Circuit-breaker state: 0 closed, 1 open, 2 half-open");
    state_gauge_->Set(0.0);
  }
}

std::string_view CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

int64_t CircuitBreaker::Now() const {
  return options_.clock ? options_.clock() : SteadyNowMicros();
}

void CircuitBreaker::TransitionLocked(State next) {
  if (state_ == next) return;
  state_ = next;
  if (state_gauge_ != nullptr) {
    state_gauge_->Set(static_cast<double>(next));
    TransitionCounter(name_, next).Increment();
    // Journal twin of the transition counter (detail = destination
    // state), attributed to whichever query's Allow/Record tripped it.
    obs::FlightRecorder::Global().RecordInstant(
        obs::EventKind::kBreakerTransition, name_.c_str(),
        static_cast<uint8_t>(next));
  }
  if (next == State::kClosed) {
    std::fill(window_.begin(), window_.end(), false);
    window_next_ = 0;
    window_count_ = 0;
    window_failures_ = 0;
  } else if (next == State::kHalfOpen) {
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
}

bool CircuitBreaker::Allow() {
  util::MutexLock lock(&mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Now() < open_until_us_) return false;
      TransitionLocked(State::kHalfOpen);
      [[fallthrough]];
    case State::kHalfOpen:
      if (probes_in_flight_ >= options_.half_open_probes) return false;
      ++probes_in_flight_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  util::MutexLock lock(&mu_);
  if (state_ == State::kHalfOpen) {
    ++probe_successes_;
    if (probe_successes_ >= options_.half_open_probes) {
      TransitionLocked(State::kClosed);
    }
    return;
  }
  if (state_ != State::kClosed) return;
  if (window_[window_next_]) --window_failures_;
  window_[window_next_] = false;
  window_next_ = (window_next_ + 1) % window_.size();
  window_count_ = std::min(window_count_ + 1, window_.size());
}

void CircuitBreaker::RecordFailure() {
  util::MutexLock lock(&mu_);
  if (state_ == State::kHalfOpen) {
    // One failed probe re-opens for a fresh cooldown.
    open_until_us_ =
        Now() + static_cast<int64_t>(options_.open_ms * 1000.0);
    TransitionLocked(State::kOpen);
    return;
  }
  if (state_ != State::kClosed) return;
  if (!window_[window_next_]) ++window_failures_;
  window_[window_next_] = true;
  window_next_ = (window_next_ + 1) % window_.size();
  window_count_ = std::min(window_count_ + 1, window_.size());
  if (window_count_ >= std::max<size_t>(1, options_.min_samples) &&
      static_cast<double>(window_failures_) >=
          options_.failure_ratio * static_cast<double>(window_count_)) {
    open_until_us_ =
        Now() + static_cast<int64_t>(options_.open_ms * 1000.0);
    TransitionLocked(State::kOpen);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  util::MutexLock lock(&mu_);
  return state_;
}

}  // namespace querc::core
