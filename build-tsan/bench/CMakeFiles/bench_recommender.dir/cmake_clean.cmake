file(REMOVE_RECURSE
  "CMakeFiles/bench_recommender.dir/bench_recommender.cc.o"
  "CMakeFiles/bench_recommender.dir/bench_recommender.cc.o.d"
  "bench_recommender"
  "bench_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
