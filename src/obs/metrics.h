#ifndef QUERC_OBS_METRICS_H_
#define QUERC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace querc::obs {

/// Sorted (key, value) pairs identifying one time series within a metric
/// family, e.g. {{"stage", "embed"}}. Keys and values must be stable
/// strings; cardinality should stay small (shards, stages — not users).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. All operations are single atomic
/// RMWs — safe to hammer from every shard with no lock.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depths, last-run ratios).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of a histogram, safe to aggregate and query off the
/// hot path. Percentiles interpolate within the owning bucket and are
/// clamped to the observed [min, max], so a single-sample histogram
/// reports that exact sample at every quantile.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<uint64_t> buckets;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// q in [0, 1]; returns 0 for an empty snapshot.
  double Percentile(double q) const;
  double p50() const { return Percentile(0.50); }
  double p90() const { return Percentile(0.90); }
  double p99() const { return Percentile(0.99); }

  /// Pointwise sum; merging per-shard snapshots yields the pooled view.
  void Merge(const HistogramSnapshot& other);
};

/// Log-bucketed histogram tuned for latencies in milliseconds: bucket
/// bounds grow geometrically (4 buckets per octave, ~19% relative error)
/// from 1 microsecond to ~70 minutes, with underflow and overflow buckets.
/// The record path is a handful of relaxed atomic RMWs — no mutex — so it
/// can sit on QWorker::Process with every shard writing concurrently.
class Histogram {
 public:
  static constexpr size_t kBucketsPerOctave = 4;
  static constexpr size_t kOctaves = 32;
  static constexpr size_t kLogBuckets = kBucketsPerOctave * kOctaves;
  /// underflow + log-spaced + overflow.
  static constexpr size_t kNumBuckets = kLogBuckets + 2;
  /// Lower bound of the first log-spaced bucket (1us when recording ms).
  static constexpr double kMinTracked = 1e-3;

  void Record(double value);

  HistogramSnapshot Snapshot() const;
  void Reset();

  /// Bucket index `value` lands in; exposed for boundary tests.
  static size_t BucketIndex(double value);
  /// Inclusive upper bound of bucket `i` (+inf for the overflow bucket).
  static double BucketUpperBound(size_t i);
  /// Lower bound of bucket `i` (0 for the underflow bucket).
  static double BucketLowerBound(size_t i);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<double> sum_{0.0};
  /// Idles at +inf so the first Record's AtomicMin claims it race-free;
  /// Snapshot reports 0 while empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
  std::atomic<uint64_t> count_{0};
};

/// Name + labels -> metric instance map. Registration (first Get* for a
/// key) takes a mutex; returned references are stable for the registry's
/// lifetime, so hot paths resolve a metric once (e.g. into a function-
/// local static reference) and then touch only the metric's atomics.
///
/// The process-wide instance is `MetricsRegistry::Global()`; tests and
/// exporter goldens can construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// `help`, when non-empty, is remembered for the family (first caller
  /// wins) and emitted by the Prometheus exporter.
  Counter& GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "") EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "") EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::string& help = "") EXCLUDES(mu_);

  struct CounterSample {
    std::string name;
    Labels labels;
    uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    Labels labels;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    Labels labels;
    HistogramSnapshot snapshot;
  };
  /// Everything the exporters need, captured in one pass. Samples are
  /// sorted by (name, labels).
  struct Snapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;
    std::map<std::string, std::string> help;
  };

  /// Collects all metrics whose name starts with `prefix` ("" = all).
  Snapshot Collect(const std::string& prefix = "") const EXCLUDES(mu_);

  /// Zeroes every metric without invalidating references — used by tests
  /// and benches that want a clean slate over the global registry.
  void ResetAll() EXCLUDES(mu_);

 private:
  using Key = std::pair<std::string, Labels>;

  /// Guards registration and the family maps only; the metric objects the
  /// maps point to are lock-free atomics, touched with no lock held.
  mutable util::Mutex mu_{util::LockRank::kMetricsRegistry,
                          "metrics.registry_mu"};
  std::map<Key, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
  std::map<std::string, std::string> help_ GUARDED_BY(mu_);
};

}  // namespace querc::obs

#endif  // QUERC_OBS_METRICS_H_
