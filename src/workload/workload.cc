#include "workload/workload.h"

#include <unordered_map>
#include <unordered_set>

#include "sql/lexer.h"
#include "sql/normalizer.h"

namespace querc::workload {

std::map<std::string, size_t> Workload::CountBy(
    const std::string& (*label)(const LabeledQuery&)) const {
  std::map<std::string, size_t> counts;
  for (const auto& q : queries_) ++counts[label(q)];
  return counts;
}

size_t Workload::DistinctShapes() const {
  std::unordered_set<std::string> shapes;
  for (const auto& q : queries_) {
    sql::LexOptions options;
    options.dialect = q.dialect;
    shapes.insert(sql::NormalizedText(sql::LexLenient(q.text, options)));
  }
  return shapes.size();
}

Workload Workload::FilterByAccount(const std::string& account) const {
  Workload out;
  for (const auto& q : queries_) {
    if (q.account == account) out.Add(q);
  }
  return out;
}

double Workload::SharedTextFraction() const {
  if (queries_.empty()) return 0.0;
  // text -> set of users
  std::unordered_map<std::string, std::unordered_set<std::string>> users_by_text;
  for (const auto& q : queries_) users_by_text[q.text].insert(q.user);
  size_t shared = 0;
  for (const auto& q : queries_) {
    if (users_by_text[q.text].size() > 1) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(queries_.size());
}

const std::string& UserOf(const LabeledQuery& q) { return q.user; }
const std::string& AccountOf(const LabeledQuery& q) { return q.account; }
const std::string& ClusterOf(const LabeledQuery& q) { return q.cluster; }
const std::string& ErrorOf(const LabeledQuery& q) { return q.error_code; }

}  // namespace querc::workload
