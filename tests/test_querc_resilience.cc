#include "querc/resilience.h"

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace querc::core {
namespace {

/// A manually-advanced clock: breaker/deadline transitions under test are
/// pure functions of recorded outcomes and this counter.
struct FakeClock {
  int64_t now_us = 0;
  ClockFn fn() {
    return [this] { return now_us; };
  }
  void AdvanceMs(double ms) { now_us += static_cast<int64_t>(ms * 1000.0); }
};

CircuitBreakerOptions TestBreakerOptions(FakeClock* clock) {
  CircuitBreakerOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.failure_ratio = 0.5;
  options.open_ms = 100.0;
  options.half_open_probes = 2;
  options.clock = clock->fn();
  return options;
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(std::isinf(deadline.RemainingMs()));
}

TEST(DeadlineTest, ExpiresOnFakeClock) {
  FakeClock clock;
  Deadline deadline = Deadline::After(10.0, clock.fn());
  EXPECT_FALSE(deadline.infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_DOUBLE_EQ(deadline.RemainingMs(), 10.0);
  clock.AdvanceMs(6.0);
  EXPECT_DOUBLE_EQ(deadline.RemainingMs(), 4.0);
  clock.AdvanceMs(5.0);
  EXPECT_TRUE(deadline.Expired());
  EXPECT_DOUBLE_EQ(deadline.RemainingMs(), 0.0);
}

TEST(RetryPolicyTest, BackoffIsJitteredAndCapped) {
  RetryOptions options;
  options.initial_backoff_ms = 2.0;
  options.max_backoff_ms = 16.0;
  RetryPolicy policy(options);
  util::Rng rng(7);
  double prev = 0.0;
  for (int i = 0; i < 50; ++i) {
    double next = policy.NextBackoffMs(prev, rng);
    EXPECT_GE(next, options.initial_backoff_ms);
    EXPECT_LE(next, options.max_backoff_ms);
    prev = next;
  }
}

TEST(RetryPolicyTest, ZeroBaseMeansNoSleep) {
  RetryOptions options;
  options.initial_backoff_ms = 0.0;
  RetryPolicy policy(options);
  util::Rng rng(7);
  EXPECT_DOUBLE_EQ(policy.NextBackoffMs(5.0, rng), 0.0);
}

TEST(RetryBudgetTest, SpendsToZeroThenRefillsOnSuccess) {
  RetryBudgetOptions options;
  options.capacity = 3.0;
  options.refill_per_success = 0.5;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend());  // dry
  budget.RecordSuccess();
  budget.RecordSuccess();  // 1.0 token back
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend());
}

TEST(RetryBudgetTest, RefillSaturatesAtCapacity) {
  RetryBudgetOptions options;
  options.capacity = 1.0;
  options.refill_per_success = 0.6;
  RetryBudget budget(options);
  for (int i = 0; i < 10; ++i) budget.RecordSuccess();
  EXPECT_DOUBLE_EQ(budget.tokens(), 1.0);
}

TEST(CircuitBreakerTest, ClosedToOpenToHalfOpenToClosed) {
  FakeClock clock;
  CircuitBreaker breaker("", TestBreakerOptions(&clock));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  // Four straight failures reach min_samples at 100% failure: open.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());

  // Cooldown not elapsed: still refusing.
  clock.AdvanceMs(99.0);
  EXPECT_FALSE(breaker.Allow());

  // Cooldown elapsed: half-open admits exactly half_open_probes calls.
  clock.AdvanceMs(2.0);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());  // probe quota spent

  // Both probes succeed: closed again, window reset.
  breaker.RecordSuccess();
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, FailedProbeReopensWithFreshCooldown) {
  FakeClock clock;
  CircuitBreaker breaker("", TestBreakerOptions(&clock));
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  clock.AdvanceMs(101.0);
  EXPECT_TRUE(breaker.Allow());  // probe admitted
  breaker.RecordFailure();       // probe fails
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
  clock.AdvanceMs(99.0);  // fresh cooldown: 99ms since reopen is not enough
  EXPECT_FALSE(breaker.Allow());
  clock.AdvanceMs(2.0);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, MixedOutcomesBelowRatioStayClosed) {
  FakeClock clock;
  CircuitBreaker breaker("", TestBreakerOptions(&clock));
  // Alternate success/failure: 50% failures of window >= min_samples
  // reaches the ratio only when failures >= 0.5 * count; keep failures
  // strictly below half.
  for (int i = 0; i < 16; ++i) {
    breaker.RecordSuccess();
    breaker.RecordSuccess();
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, SlidingWindowForgetsOldFailures) {
  FakeClock clock;
  CircuitBreaker breaker("", TestBreakerOptions(&clock));
  // Three failures (below min_samples, stays closed), then a run of
  // successes long enough to evict them from the 8-slot ring.
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  for (int i = 0; i < 8; ++i) breaker.RecordSuccess();
  // A single new failure is 1/8 of the window: still closed.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_EQ(CircuitBreaker::StateName(CircuitBreaker::State::kClosed),
            "closed");
  EXPECT_EQ(CircuitBreaker::StateName(CircuitBreaker::State::kOpen), "open");
  EXPECT_EQ(CircuitBreaker::StateName(CircuitBreaker::State::kHalfOpen),
            "half-open");
}

TEST(CircuitBreakerTest, NamedBreakerExportsStateGauge) {
  FakeClock clock;
  CircuitBreaker breaker("test_export:sink", TestBreakerOptions(&clock));
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // The global registry carries the gauge (1 = open) and the transition
  // counter; both formats of the export surface must include them.
  std::string prom = obs::ExportPrometheus();
  EXPECT_NE(
      prom.find(
          "querc_breaker_state{breaker=\"test_export:sink\"} 1"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("querc_breaker_transitions_total"), std::string::npos);

  std::string json = obs::ExportJson();
  EXPECT_NE(json.find("querc_breaker_state"), std::string::npos);
  EXPECT_NE(json.find("test_export:sink"), std::string::npos);

  clock.AdvanceMs(101.0);
  EXPECT_TRUE(breaker.Allow());
  prom = obs::ExportPrometheus();
  EXPECT_NE(
      prom.find(
          "querc_breaker_state{breaker=\"test_export:sink\"} 2"),
      std::string::npos)
      << prom;
}

}  // namespace
}  // namespace querc::core
