#include "embed/embedder.h"

#include "obs/trace.h"
#include "sql/lexer.h"
#include "sql/normalizer.h"

namespace querc::embed {

std::vector<std::string> TokenizeForEmbedding(std::string_view text,
                                              sql::Dialect dialect) {
  sql::LexOptions options;
  options.dialect = dialect;
  sql::TokenList tokens;
  {
    static obs::Histogram& hist = obs::StageHistogram("lex");
    obs::Span span(&hist, "lex");
    tokens = sql::LexLenient(text, options);
  }
  static obs::Histogram& hist = obs::StageHistogram("normalize");
  obs::Span span(&hist, "normalize");
  return sql::Normalize(tokens);
}

std::vector<std::vector<std::string>> TokenizeWorkload(
    const workload::Workload& workload) {
  std::vector<std::vector<std::string>> docs;
  docs.reserve(workload.size());
  for (const auto& q : workload) {
    docs.push_back(TokenizeForEmbedding(q.text, q.dialect));
  }
  return docs;
}

util::Status TrainOnWorkload(Embedder& embedder,
                             const workload::Workload& corpus) {
  return embedder.Train(TokenizeWorkload(corpus));
}

std::vector<nn::Vec> EmbedWorkload(const Embedder& embedder,
                                   const workload::Workload& workload) {
  std::vector<nn::Vec> vectors;
  vectors.reserve(workload.size());
  for (const auto& q : workload) {
    vectors.push_back(
        embedder.Embed(TokenizeForEmbedding(q.text, q.dialect)));
  }
  return vectors;
}

}  // namespace querc::embed
