#include <memory>

#include <gtest/gtest.h>

#include "embed/feature_embedder.h"
#include "querc/error_predictor.h"
#include "querc/recommender.h"
#include "querc/resource_allocator.h"
#include "querc/routing.h"
#include "querc/security_audit.h"
#include "querc/summarizer.h"
#include "workload/snowflake_gen.h"

namespace querc::core {
namespace {

std::shared_ptr<const embed::Embedder> FeatureEmbedderPtr() {
  return std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
}

workload::LabeledQuery Query(const std::string& text, const std::string& user,
                             const std::string& cluster = "c0") {
  workload::LabeledQuery q;
  q.text = text;
  q.user = user;
  q.cluster = cluster;
  return q;
}

// Two users with clearly different syntactic habits.
workload::Workload TwoUserHistory(int n = 20) {
  workload::Workload wl;
  for (int i = 0; i < n; ++i) {
    wl.Add(Query("SELECT a FROM t WHERE x = " + std::to_string(i), "alice",
                 "c0"));
    wl.Add(Query("SELECT u.a, v.b, SUM(v.c) FROM u, v WHERE u.k = v.k "
                 "GROUP BY u.a, v.b ORDER BY u.a",
                 "bob", "c1"));
  }
  return wl;
}

TEST(SecurityAuditorTest, FlagsCrossUserQuery) {
  SecurityAuditor auditor(FeatureEmbedderPtr(), {});
  ASSERT_TRUE(auditor.Train(TwoUserHistory()).ok());
  EXPECT_EQ(auditor.PredictUser(Query("SELECT a FROM t WHERE x = 99", "?")),
            "alice");

  workload::Workload batch;
  // bob's account suddenly issues an alice-shaped query.
  batch.Add(Query("SELECT a FROM t WHERE x = 123", "bob"));
  // and a normal bob query.
  batch.Add(Query("SELECT u.a, v.b, SUM(v.c) FROM u, v WHERE u.k = v.k "
                  "GROUP BY u.a, v.b ORDER BY u.a",
                  "bob"));
  auto flags = auditor.Audit(batch);
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].query_index, 0u);
  EXPECT_EQ(flags[0].actual_user, "bob");
  EXPECT_EQ(flags[0].predicted_user, "alice");
  EXPECT_GE(flags[0].confidence, 0.5);
}

TEST(SecurityAuditorTest, UntrainedIsInert) {
  SecurityAuditor auditor(FeatureEmbedderPtr(), {});
  EXPECT_EQ(auditor.PredictUser(Query("SELECT 1", "x")), "");
  workload::Workload batch;
  batch.Add(Query("SELECT 1", "x"));
  EXPECT_TRUE(auditor.Audit(batch).empty());
  EXPECT_FALSE(auditor.Train({}).ok());
}

TEST(RoutingTest, DetectsMisroutedQuery) {
  RoutingPolicyChecker checker(FeatureEmbedderPtr(), {});
  ASSERT_TRUE(checker.Train(TwoUserHistory()).ok());
  EXPECT_EQ(checker.PredictCluster(Query("SELECT a FROM t WHERE x = 5", "?")),
            "c0");
  workload::Workload batch;
  // An alice-shaped query recorded as running on bob's cluster.
  batch.Add(Query("SELECT a FROM t WHERE x = 77", "alice", "c1"));
  batch.Add(Query("SELECT a FROM t WHERE x = 78", "alice", "c0"));
  auto misroutings = checker.Check(batch);
  ASSERT_EQ(misroutings.size(), 1u);
  EXPECT_EQ(misroutings[0].query_index, 0u);
  EXPECT_EQ(misroutings[0].assigned_cluster, "c1");
  EXPECT_EQ(misroutings[0].predicted_cluster, "c0");
}

TEST(ErrorPredictorTest, LearnsSyntaxErrorCorrelation) {
  workload::Workload history;
  for (int i = 0; i < 25; ++i) {
    auto ok = Query("SELECT a FROM t WHERE x = 1", "u");
    history.Add(ok);
    auto oom = Query(
        "SELECT a, b, c FROM t1, t2, t3 WHERE t1.k = t2.k AND t2.j = t3.j "
        "GROUP BY a, b, c ORDER BY a",
        "u");
    oom.error_code = "OOM";
    history.Add(oom);
  }
  ErrorPredictor predictor(FeatureEmbedderPtr(), {});
  ASSERT_TRUE(predictor.Train(history).ok());
  auto risky = Query(
      "SELECT a, b, c FROM t1, t2, t3 WHERE t1.k = t2.k AND t2.j = t3.j "
      "GROUP BY a, b, c ORDER BY a",
      "u");
  auto safe = Query("SELECT a FROM t WHERE x = 9", "u");
  EXPECT_EQ(predictor.PredictError(risky), "OOM");
  EXPECT_EQ(predictor.PredictError(safe), "");
  EXPECT_GT(predictor.FailureProbability(risky),
            predictor.FailureProbability(safe));
  EXPECT_TRUE(predictor.ShouldRouteDefensively(risky));
  EXPECT_FALSE(predictor.ShouldRouteDefensively(safe));
}

TEST(ResourceAllocatorTest, BucketsTrackQueryWeight) {
  workload::Workload history;
  for (int i = 0; i < 30; ++i) {
    auto light = Query("SELECT a FROM t WHERE x = 1", "u");
    light.runtime_seconds = 0.1;
    light.memory_mb = 10;
    history.Add(light);
    auto heavy = Query(
        "SELECT a, SUM(b) FROM t1, t2, t3 WHERE t1.k = t2.k AND t2.j = t3.j "
        "GROUP BY a ORDER BY a",
        "u");
    heavy.runtime_seconds = 100.0;
    heavy.memory_mb = 4000;
    history.Add(heavy);
  }
  ResourceAllocator allocator(FeatureEmbedderPtr(), {});
  ASSERT_TRUE(allocator.Train(history).ok());
  auto light_hint = allocator.Allocate(Query("SELECT a FROM t WHERE x = 2", "u"));
  auto heavy_hint = allocator.Allocate(Query(
      "SELECT a, SUM(b) FROM t1, t2, t3 WHERE t1.k = t2.k AND t2.j = t3.j "
      "GROUP BY a ORDER BY a",
      "u"));
  EXPECT_LT(static_cast<int>(light_hint.runtime_bucket),
            static_cast<int>(heavy_hint.runtime_bucket));
  EXPECT_LT(light_hint.suggested_memory_mb, heavy_hint.suggested_memory_mb);
  EXPECT_STREQ(ResourceAllocator::BucketName(light_hint.runtime_bucket),
               "small");
}

TEST(RecommenderTest, SuggestsObservedSuccessor) {
  workload::Workload history;
  int64_t t = 0;
  for (int session = 0; session < 10; ++session) {
    auto first = Query("SELECT a FROM t WHERE x = 1", "alice");
    first.timestamp = t++;
    auto second = Query("SELECT a, b FROM t, u WHERE t.k = u.k", "alice");
    second.timestamp = t++;
    history.Add(first);
    history.Add(second);
  }
  QueryRecommender recommender(FeatureEmbedderPtr(), {});
  ASSERT_TRUE(recommender.Train(history).ok());
  auto recs = recommender.Recommend(Query("SELECT a FROM t WHERE x = 5",
                                          "alice"));
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].text, "SELECT a, b FROM t, u WHERE t.k = u.k");
  EXPECT_GT(recs[0].score, 0.0);
}

TEST(RecommenderTest, NoCrossUserTransitions) {
  workload::Workload history;
  auto a = Query("SELECT a FROM t", "alice");
  a.timestamp = 0;
  auto b = Query("DROP TABLE secret", "bob");
  b.timestamp = 1;
  history.Add(a);
  history.Add(b);
  QueryRecommender recommender(FeatureEmbedderPtr(), {});
  ASSERT_TRUE(recommender.Train(history).ok());
  // alice's only query has no same-user successor: nothing to recommend.
  auto recs = recommender.Recommend(Query("SELECT a FROM t", "alice"));
  for (const auto& r : recs) EXPECT_NE(r.text, "DROP TABLE secret");
}

TEST(SummarizerTest, FixedKPicksWitnessesFromWorkload) {
  workload::Workload wl;
  for (int i = 0; i < 30; ++i) {
    wl.Add(Query("SELECT a FROM t WHERE x = " + std::to_string(i), "u"));
    wl.Add(Query("SELECT SUM(b) FROM big1, big2 WHERE big1.k = big2.k "
                 "GROUP BY c",
                 "u"));
  }
  WorkloadSummarizer::Options options;
  options.fixed_k = 2;
  WorkloadSummarizer summarizer(FeatureEmbedderPtr(), options);
  auto summary = summarizer.Summarize(wl);
  EXPECT_EQ(summary.chosen_k, 2u);
  ASSERT_EQ(summary.queries.size(), 2u);
  for (size_t idx : summary.witness_indices) ASSERT_LT(idx, wl.size());
  // One witness per structural family.
  bool has_simple = false;
  bool has_join = false;
  for (const auto& q : summary.queries) {
    has_simple |= q.text.find("FROM t ") != std::string::npos;
    has_join |= q.text.find("big1") != std::string::npos;
  }
  EXPECT_TRUE(has_simple);
  EXPECT_TRUE(has_join);
}

TEST(SummarizerTest, ElbowPathProducesReasonableK) {
  workload::Workload wl;
  for (int i = 0; i < 20; ++i) {
    wl.Add(Query("SELECT a FROM t WHERE x = " + std::to_string(i), "u"));
    wl.Add(Query("SELECT SUM(b) FROM u1, u2 WHERE u1.k = u2.k GROUP BY c",
                 "u"));
    wl.Add(Query("SELECT DISTINCT z FROM w ORDER BY z", "u"));
  }
  WorkloadSummarizer::Options options;  // fixed_k = 0 -> elbow
  options.elbow.k_min = 2;
  options.elbow.k_max = 12;
  options.elbow.k_step = 1;
  WorkloadSummarizer summarizer(FeatureEmbedderPtr(), options);
  auto summary = summarizer.Summarize(wl);
  EXPECT_GE(summary.chosen_k, 2u);
  EXPECT_LE(summary.chosen_k, 8u);
  EXPECT_LE(summary.queries.size(), summary.chosen_k);
}

TEST(SummarizerTest, EmptyWorkload) {
  WorkloadSummarizer summarizer(FeatureEmbedderPtr(), {});
  auto summary = summarizer.Summarize({});
  EXPECT_TRUE(summary.queries.empty());
  EXPECT_EQ(summary.chosen_k, 0u);
}

}  // namespace
}  // namespace querc::core
