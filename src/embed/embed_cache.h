#ifndef QUERC_EMBED_EMBED_CACHE_H_
#define QUERC_EMBED_EMBED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "embed/embedder.h"
#include "nn/tensor.h"
#include "obs/trace_context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace querc::embed {

/// Point-in-time counters for one EmbeddingCache (or a merged view over
/// several — per-worker caches roll up through QWorkerPool). `hits`
/// includes single-flight waiters: a caller that slept on another thread's
/// in-progress compute never ran inference itself.
struct EmbedCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Entries resident right now / maximum entries.
  size_t size = 0;
  size_t capacity = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_ratio() const {
    uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }

  /// Pointwise sum (sizes and capacities add: the merged view describes
  /// the union of the underlying caches).
  void Merge(const EmbedCacheStats& other);
};

/// Sharded, thread-safe, LRU cache from normalized query templates to
/// embedding vectors — the memoization layer in front of Embedder::Embed.
///
/// Key soundness: the key is the normalized-token fingerprint the
/// embedders themselves consume (literals folded, identifiers
/// lower-cased), prefixed with the producing embedder's instance id. Two
/// queries with the same fingerprint are *the same input* to Embed(), so
/// serving the memoized vector is bit-identical to re-running inference —
/// the cache can never change a label, a summary, or a figure. Real
/// workloads are dominated by repeated templates, which is what makes
/// this the hot-path win.
///
/// Concurrency: keys hash across independently locked shards, so
/// unrelated templates never contend. A miss is *single-flight*: the
/// first caller computes while concurrent callers for the same key wait
/// on its in-flight slot and share the one result — a template stampede
/// (N threads, one new template) runs inference exactly once.
///
/// Values are immutable shared vectors: a returned pointer stays valid
/// after eviction (readers keep their snapshot; eviction only drops the
/// cache's reference).
class EmbeddingCache {
 public:
  struct Options {
    /// Maximum cached templates across all shards. Rounded up so every
    /// shard holds at least one entry.
    size_t capacity = 4096;
    /// Lock shards (rounded up to a power of two, at least 1).
    size_t shards = 8;
  };

  explicit EmbeddingCache(const Options& options);

  EmbeddingCache(const EmbeddingCache&) = delete;
  EmbeddingCache& operator=(const EmbeddingCache&) = delete;

  /// Cache key for embedding `words` with `embedder`: the embedder's
  /// instance id plus the normalized-token fingerprint. Including the id
  /// keeps one cache sound across multiple embedders (two models embed
  /// the same template to different vectors).
  static std::string KeyFor(const Embedder& embedder,
                            const std::vector<std::string>& words);

  /// Returns the embedding for `key`, running `compute` on a miss.
  /// Concurrent misses on the same key coalesce: one caller computes, the
  /// rest wait and share the result (counted as hits — they ran no
  /// inference). If `compute` throws, the exception propagates to the
  /// computing caller; waiters fall back to computing for themselves
  /// (uncached), so one failure cannot poison the key.
  std::shared_ptr<const nn::Vec> GetOrCompute(
      const std::string& key, const std::function<nn::Vec()>& compute);

  /// The cached value for `key` (refreshing its LRU position), or null.
  /// Does not touch the hit/miss counters; diagnostics only.
  std::shared_ptr<const nn::Vec> Peek(const std::string& key);

  EmbedCacheStats Stats() const;
  size_t size() const;
  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }

  /// Drops every entry (counters are preserved). In-flight computes are
  /// unaffected; they publish into the emptied cache.
  void Clear();

 private:
  struct InFlight {
    util::Mutex mu{util::LockRank::kEmbedCacheFlight,
                   "embed_cache.flight_mu"};
    util::CondVar cv;
    bool done GUARDED_BY(mu) = false;
    bool failed GUARDED_BY(mu) = false;
    std::shared_ptr<const nn::Vec> value GUARDED_BY(mu);
    /// The owning (computing) thread's trace context, captured when the
    /// flight is created; waiters use it to journal which query's compute
    /// they coalesced onto.
    obs::TraceContext owner_ctx;
  };

  struct Shard {
    mutable util::Mutex mu{util::LockRank::kEmbedCacheShard,
                           "embed_cache.shard_mu"};
    /// Front = most recently used.
    std::list<std::string> lru GUARDED_BY(mu);
    struct Entry {
      std::shared_ptr<const nn::Vec> value;
      std::list<std::string>::iterator lru_it;
    };
    std::unordered_map<std::string, Entry> map GUARDED_BY(mu);
    std::unordered_map<std::string, std::shared_ptr<InFlight>> in_flight
        GUARDED_BY(mu);

    /// Striped counters: each shard counts its own traffic on its own
    /// cache line, so shards never contend on shared stats atomics; the
    /// merged view is assembled by Stats() via the two-phase
    /// EmbedCacheStats::Merge path.
    alignas(64) std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
  };

  Shard& ShardFor(const std::string& key);

  /// Inserts under the shard lock, evicting LRU tails past capacity.
  void InsertLocked(Shard& shard, const std::string& key,
                    const std::shared_ptr<const nn::Vec>& value)
      REQUIRES(shard.mu);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace querc::embed

#endif  // QUERC_EMBED_EMBED_CACHE_H_
