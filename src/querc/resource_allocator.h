#ifndef QUERC_QUERC_RESOURCE_ALLOCATOR_H_
#define QUERC_QUERC_RESOURCE_ALLOCATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"
#include "util/status.h"
#include "workload/workload.h"

namespace querc::core {

/// Resource allocation hints (§4): query structure alone cannot predict
/// exact runtime or memory, but a coarse bucket (small / medium / large)
/// is learnable and is enough for speculative scheduling and load
/// balancing. Buckets are fitted as quantiles of the training logs.
class ResourceAllocator {
 public:
  enum class Bucket { kSmall = 0, kMedium = 1, kLarge = 2 };

  struct Options {
    /// Quantile boundaries between small/medium and medium/large.
    double small_quantile = 0.5;
    double large_quantile = 0.9;
    ml::RandomForestClassifier::Options forest;
  };

  struct Hint {
    Bucket runtime_bucket = Bucket::kSmall;
    Bucket memory_bucket = Bucket::kSmall;
    /// Suggested memory grant: the fitted upper bound of the bucket.
    double suggested_memory_mb = 0.0;
  };

  ResourceAllocator(std::shared_ptr<const embed::Embedder> embedder,
                    const Options& options)
      : embedder_(std::move(embedder)),
        options_(options),
        runtime_forest_(options.forest),
        memory_forest_(options.forest) {}

  /// Fits bucket boundaries (quantiles of history) and the two bucket
  /// classifiers.
  util::Status Train(const workload::Workload& history);

  /// Allocation hint for one incoming query.
  Hint Allocate(const workload::LabeledQuery& query) const;

  static const char* BucketName(Bucket b);

  double runtime_small_bound() const { return runtime_bounds_[0]; }
  double runtime_large_bound() const { return runtime_bounds_[1]; }

 private:
  Bucket BucketOf(double value, const double bounds[2]) const;

  std::shared_ptr<const embed::Embedder> embedder_;
  Options options_;
  ml::RandomForestClassifier runtime_forest_;
  ml::RandomForestClassifier memory_forest_;
  double runtime_bounds_[2] = {0.0, 0.0};
  double memory_bounds_[2] = {0.0, 0.0};
  double memory_bucket_caps_[3] = {0.0, 0.0, 0.0};
  bool trained_ = false;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_RESOURCE_ALLOCATOR_H_
