# Empty dependencies file for test_workload_structure.
# This may be replaced when dependencies are built.
