// Quickstart: the 60-second tour of Querc's public API.
//
//   1. generate a multi-tenant workload (stand-in for your query logs);
//   2. train a shared embedder on the raw query text;
//   3. wire a QWorker with an (embedder, labeler) classifier pair;
//   4. stream queries through it and read the predicted labels.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "ml/random_forest.h"
#include "querc/querc.h"

int main() {
  using namespace querc;

  // 1. A workload. Any source of (text, labels) works; here we synthesize
  //    two tenants with four users each.
  workload::SnowflakeGenerator::Options gen_options;
  gen_options.seed = 42;
  gen_options.accounts =
      workload::SnowflakeGenerator::UniformAccounts(/*num_accounts=*/2,
                                                    /*queries_per_account=*/400,
                                                    /*users_per_account=*/4);
  workload::Workload all =
      workload::SnowflakeGenerator(gen_options).Generate();
  std::printf("workload: %zu queries, %zu distinct query shapes\n",
              all.size(), all.DistinctShapes());

  // Hold out the most recent 20% as the arriving stream; train on the
  // rest (the generator already interleaves tenants by timestamp).
  size_t split = all.size() * 4 / 5;
  workload::Workload history(
      {all.queries().begin(), all.queries().begin() + split});
  workload::Workload arriving(
      {all.queries().begin() + split, all.queries().end()});

  // 2. A shared embedder, trained once on raw text. Querc never parses
  //    your SQL with a dialect-specific grammar — the lexer is lenient and
  //    dialect-aware, and the representation is learned.
  auto embedder = std::make_shared<embed::LstmAutoencoderEmbedder>([&] {
    embed::LstmAutoencoderEmbedder::Options options;
    options.hidden_dim = 24;
    options.epochs = 4;
    return options;
  }());
  util::Status status = embed::TrainOnWorkload(*embedder, history);
  if (!status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("embedder '%s' trained (dim=%zu)\n", embedder->name().c_str(),
              embedder->dim());

  // 3. A classifier pair and a QWorker. The labeler is a random forest
  //    over the embedding space; the task is user prediction.
  auto classifier = std::make_shared<core::Classifier>(
      "user", embedder,
      std::make_unique<ml::RandomForestClassifier>(
          ml::RandomForestClassifier::Options{}));
  status = classifier->Train(history, workload::UserOf);
  if (!status.ok()) {
    std::fprintf(stderr, "labeler failed: %s\n", status.ToString().c_str());
    return 1;
  }

  core::QWorker::Options worker_options;
  worker_options.application = "quickstart";
  core::QWorker worker(worker_options);
  worker.Deploy(classifier);
  worker.set_training_sink([](const core::ProcessedQuery&) {
    // In a deployment this tees labeled queries to the training module.
  });

  // 4. Stream the held-out queries through the worker.
  int shown = 0;
  int correct = 0;
  int total = 0;
  for (const auto& q : arriving) {
    core::ProcessedQuery out = worker.Process(q);
    const std::string& predicted = out.predictions.at("user");
    correct += predicted == q.user ? 1 : 0;
    ++total;
    if (shown < 5) {
      std::printf("  [%s] predicted=%s actual=%s\n    %.90s...\n",
                  predicted == q.user ? "ok" : "??", predicted.c_str(),
                  q.user.c_str(), q.text.c_str());
      ++shown;
    }
    if (total >= 200) break;
  }
  std::printf("user prediction on a fresh stream: %d/%d correct (%.0f%%)\n",
              correct, total, 100.0 * correct / total);
  return 0;
}
