// Tests for obs::StatsReporter, including the concurrent-Stop regression:
// Stop() used to leave the thread handle in place while joining, so two
// racing stoppers could both pass the joinable() gate and both call
// join() (undefined behavior). Stop() now moves the handle out under the
// lock, so exactly one caller joins and flushes the final line.

#include "obs/stats_reporter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace querc::obs {
namespace {

/// Thread-safe line sink for reporter output.
class LineCollector {
 public:
  void Add(const std::string& line) {
    util::MutexLock lock(&mu_);
    lines_.push_back(line);
  }
  std::vector<std::string> lines() const {
    util::MutexLock lock(&mu_);
    return lines_;
  }

 private:
  mutable util::Mutex mu_;
  std::vector<std::string> lines_ GUARDED_BY(mu_);
};

TEST(StatsReporterTest, SummaryLineIncludesRegisteredMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("querc_test_events_total").Increment(7);
  StatsReporter::Options options;
  options.registry = &registry;
  options.prefix = "querc_test_";
  StatsReporter reporter(options);
  std::string line = reporter.SummaryLine();
  EXPECT_NE(line.find("stats:"), std::string::npos);
  EXPECT_NE(line.find("querc_test_events_total=7"), std::string::npos);
}

TEST(StatsReporterTest, StopFlushesExactlyOneFinalLine) {
  MetricsRegistry registry;
  auto collector = std::make_shared<LineCollector>();
  StatsReporter::Options options;
  options.registry = &registry;
  options.interval = std::chrono::hours(1);  // no periodic ticks
  options.sink = [collector](const std::string& line) {
    collector->Add(line);
  };
  StatsReporter reporter(options);
  reporter.Start();
  reporter.Stop();
  EXPECT_EQ(collector->lines().size(), 1u);
  // A second Stop with no running thread is a no-op.
  reporter.Stop();
  EXPECT_EQ(collector->lines().size(), 1u);
}

TEST(StatsReporterTest, ConcurrentStopJoinsExactlyOnce) {
  MetricsRegistry registry;
  auto collector = std::make_shared<LineCollector>();
  StatsReporter::Options options;
  options.registry = &registry;
  options.interval = std::chrono::hours(1);
  options.sink = [collector](const std::string& line) {
    collector->Add(line);
  };
  for (int round = 0; round < 20; ++round) {
    StatsReporter reporter(options);
    reporter.Start();
    std::vector<std::thread> stoppers;
    stoppers.reserve(4);
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&reporter] { reporter.Stop(); });
    }
    for (auto& t : stoppers) t.join();
  }
  // One final line per round: exactly one stopper per round won the join
  // (before the fix this test crashed on a double join()).
  EXPECT_EQ(collector->lines().size(), 20u);
}

TEST(StatsReporterTest, RestartAfterStopWorks) {
  MetricsRegistry registry;
  auto collector = std::make_shared<LineCollector>();
  StatsReporter::Options options;
  options.registry = &registry;
  options.interval = std::chrono::hours(1);
  options.sink = [collector](const std::string& line) {
    collector->Add(line);
  };
  StatsReporter reporter(options);
  reporter.Start();
  reporter.Stop();
  reporter.Start();
  reporter.Stop();
  EXPECT_EQ(collector->lines().size(), 2u);
}

TEST(StatsReporterTest, PeriodicTickEmitsWithoutStop) {
  MetricsRegistry registry;
  auto collector = std::make_shared<LineCollector>();
  std::atomic<bool> ticked{false};
  StatsReporter::Options options;
  options.registry = &registry;
  options.interval = std::chrono::milliseconds(5);
  options.sink = [collector, &ticked](const std::string& line) {
    collector->Add(line);
    ticked.store(true);
  };
  StatsReporter reporter(options);
  reporter.Start();
  for (int i = 0; i < 400 && !ticked.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  reporter.Stop();
  EXPECT_TRUE(ticked.load());
  EXPECT_GE(collector->lines().size(), 2u);  // >=1 tick + the final flush
}

}  // namespace
}  // namespace querc::obs
