#include "workload/workload.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "sql/lexer.h"
#include "sql/normalizer.h"
#include "util/concurrent_aggregator.h"
#include "util/thread_pool.h"

namespace querc::workload {

std::map<std::string, size_t> Workload::CountBy(
    const std::string& (*label)(const LabeledQuery&)) const {
  std::map<std::string, size_t> counts;
  for (const auto& q : queries_) ++counts[label(q)];
  return counts;
}

std::vector<TemplateCount> Workload::TemplateHistogram(
    util::ThreadPool* pool) const {
  // Distinct templates ≤ workload size, and capacity = shards × size
  // makes every *per-shard* cap the full workload size — so no shard can
  // overflow no matter how unevenly templates hash across shards, and no
  // eviction can ever fire: the histogram is exact, serial or parallel.
  util::ConcurrentAggregator::Options options;
  options.shards = 4;
  options.capacity =
      options.shards * (queries_.empty() ? 1 : queries_.size());
  util::ConcurrentAggregator aggregator(options);
  auto record_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const LabeledQuery& q = queries_[i];
      sql::LexOptions lex;
      lex.dialect = q.dialect;
      aggregator.Record(sql::NormalizedText(sql::LexLenient(q.text, lex)));
    }
  };
  // Normalization dominates; below a few hundred queries the chunking
  // overhead outweighs the parallel win.
  constexpr size_t kParallelThreshold = 256;
  if (pool == nullptr || queries_.size() < kParallelThreshold) {
    record_range(0, queries_.size());
  } else {
    const size_t chunks =
        std::min(queries_.size(), 4 * std::max<size_t>(pool->num_threads(), 1));
    const size_t per_chunk = (queries_.size() + chunks - 1) / chunks;
    // Batch lane: histogramming is offline/advisor analysis and must not
    // queue ahead of predict fan-out when the caller shares its pool.
    pool->ParallelFor(util::Lane::kBatch, chunks, [&](size_t c) {
      size_t begin = c * per_chunk;
      size_t end = std::min(begin + per_chunk, queries_.size());
      if (begin < end) record_range(begin, end);
    });
  }
  std::vector<TemplateCount> out;
  auto snapshot = aggregator.Snapshot();
  out.reserve(snapshot.size());
  for (util::AggregateEntry& entry : snapshot) {
    out.push_back(
        TemplateCount{std::move(entry.key), static_cast<size_t>(entry.count)});
  }
  std::sort(out.begin(), out.end(),
            [](const TemplateCount& a, const TemplateCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.fingerprint < b.fingerprint;
            });
  return out;
}

size_t Workload::DistinctShapes(util::ThreadPool* pool) const {
  return TemplateHistogram(pool).size();
}

Workload Workload::FilterByAccount(const std::string& account) const {
  Workload out;
  for (const auto& q : queries_) {
    if (q.account == account) out.Add(q);
  }
  return out;
}

double Workload::SharedTextFraction() const {
  if (queries_.empty()) return 0.0;
  // text -> set of users
  std::unordered_map<std::string, std::unordered_set<std::string>> users_by_text;
  for (const auto& q : queries_) users_by_text[q.text].insert(q.user);
  size_t shared = 0;
  for (const auto& q : queries_) {
    if (users_by_text[q.text].size() > 1) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(queries_.size());
}

const std::string& UserOf(const LabeledQuery& q) { return q.user; }
const std::string& AccountOf(const LabeledQuery& q) { return q.account; }
const std::string& ClusterOf(const LabeledQuery& q) { return q.cluster; }
const std::string& ErrorOf(const LabeledQuery& q) { return q.error_code; }

}  // namespace querc::workload
