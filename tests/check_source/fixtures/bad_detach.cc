// Fixture: std::thread::detach() is banned everywhere — a detached
// worker can never be drained on shutdown.
#include <thread>

namespace fixture {

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();
}

}  // namespace fixture
