#ifndef QUERC_NN_TENSOR_H_
#define QUERC_NN_TENSOR_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace querc::nn {

/// Dense vector of doubles; all sequence activations use this.
using Vec = std::vector<double>;

/// A trainable parameter matrix: value and gradient stored side by side,
/// row-major. Activations never use Tensor — only parameters do, so the
/// optimizer can walk a flat list of these.
class Tensor {
 public:
  Tensor() = default;
  Tensor(size_t rows, size_t cols, std::string name = "")
      : rows_(rows),
        cols_(cols),
        name_(std::move(name)),
        value_(rows * cols, 0.0),
        grad_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return value_.size(); }
  const std::string& name() const { return name_; }

  double& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return value_[r * cols_ + c];
  }
  double at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return value_[r * cols_ + c];
  }
  double& grad_at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return grad_[r * cols_ + c];
  }

  /// Raw row pointers (rows are contiguous).
  double* row(size_t r) { return value_.data() + r * cols_; }
  const double* row(size_t r) const { return value_.data() + r * cols_; }
  double* grad_row(size_t r) { return grad_.data() + r * cols_; }

  Vec& value() { return value_; }
  const Vec& value() const { return value_; }
  Vec& grad() { return grad_; }
  const Vec& grad() const { return grad_; }

  void ZeroGrad() { std::fill(grad_.begin(), grad_.end(), 0.0); }

  /// Xavier/Glorot uniform initialization: U(-s, s), s = sqrt(6/(in+out)).
  void XavierInit(util::Rng& rng) {
    double s = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
    for (double& v : value_) v = rng.UniformDouble(-s, s);
  }

  /// Small uniform init used for embedding tables: U(-0.5/d, 0.5/d).
  void EmbeddingInit(util::Rng& rng) {
    double s = 0.5 / static_cast<double>(cols_);
    for (double& v : value_) v = rng.UniformDouble(-s, s);
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::string name_;
  Vec value_;
  Vec grad_;
};

// ---- Vector helpers (free functions; sizes asserted) ----

inline double Dot(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

inline double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  return Dot(a.data(), b.data(), a.size());
}

/// y += alpha * x
inline void Axpy(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

inline void Axpy(double alpha, const Vec& x, Vec& y) {
  assert(x.size() == y.size());
  Axpy(alpha, x.data(), y.data(), x.size());
}

/// out = W * x  (W is rows x cols, x has cols entries, out has rows).
inline void MatVec(const Tensor& w, const Vec& x, Vec& out) {
  assert(x.size() == w.cols());
  out.assign(w.rows(), 0.0);
  for (size_t r = 0; r < w.rows(); ++r) {
    out[r] = Dot(w.row(r), x.data(), w.cols());
  }
}

/// out += W^T * dy  (accumulates the input gradient for out = W x).
inline void MatTVecAccum(const Tensor& w, const Vec& dy, Vec& out) {
  assert(dy.size() == w.rows());
  assert(out.size() == w.cols());
  for (size_t r = 0; r < w.rows(); ++r) {
    Axpy(dy[r], w.row(r), out.data(), w.cols());
  }
}

/// dW += dy ⊗ x  (accumulates the weight gradient for out = W x).
inline void OuterAccum(Tensor& w, const Vec& dy, const Vec& x) {
  assert(dy.size() == w.rows());
  assert(x.size() == w.cols());
  for (size_t r = 0; r < w.rows(); ++r) {
    Axpy(dy[r], x.data(), w.grad_row(r), w.cols());
  }
}

inline double L2Norm(const Vec& v) { return std::sqrt(Dot(v, v)); }

/// Cosine similarity; 0 when either vector is all-zero.
inline double CosineSimilarity(const Vec& a, const Vec& b) {
  double na = L2Norm(a);
  double nb = L2Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

/// Squared Euclidean distance.
inline double SquaredDistance(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline double Sigmoid(double x) {
  if (x >= 0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace querc::nn

#endif  // QUERC_NN_TENSOR_H_
