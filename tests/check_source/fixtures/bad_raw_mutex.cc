// Fixture: every member of the raw std::mutex family must be flagged
// outside src/util/. Mentions inside comments (std::mutex) and strings
// must NOT be flagged.
#include <condition_variable>
#include <mutex>

namespace fixture {

const char* kDoc = "std::mutex in a string literal is fine";

class BadCounter {
 public:
  void Add(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += n;
  }

  void WaitPositive() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return total_ > 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int total_ = 0;
};

}  // namespace fixture
