#include "sql/analyzer.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/tpch_gen.h"

namespace querc::sql {
namespace {

TEST(AnalyzerTest, TablesAndAliases) {
  QueryShape s = AnalyzeText("SELECT * FROM orders o, lineitem l");
  EXPECT_EQ(s.tables, (std::vector<std::string>{"orders", "lineitem"}));
  EXPECT_EQ(s.alias_to_table.at("o"), "orders");
  EXPECT_EQ(s.alias_to_table.at("l"), "lineitem");
  EXPECT_EQ(s.ResolveQualifier("o"), "orders");
  EXPECT_EQ(s.ResolveQualifier("lineitem"), "lineitem");
  EXPECT_EQ(s.ResolveQualifier("zzz"), "");
}

TEST(AnalyzerTest, ExplicitJoinSyntax) {
  QueryShape s = AnalyzeText(
      "SELECT a FROM t1 JOIN t2 ON t1.x = t2.y LEFT OUTER JOIN t3 ON "
      "t2.z = t3.z");
  EXPECT_EQ(s.tables, (std::vector<std::string>{"t1", "t2", "t3"}));
  ASSERT_EQ(s.joins.size(), 2u);
  EXPECT_EQ(s.joins[0].left_qualifier, "t1");
  EXPECT_EQ(s.joins[0].left_column, "x");
  EXPECT_EQ(s.joins[0].right_column, "y");
}

TEST(AnalyzerTest, ImplicitJoinInWhere) {
  QueryShape s =
      AnalyzeText("SELECT a FROM t1, t2 WHERE t1.x = t2.y AND t1.k = 5");
  ASSERT_EQ(s.joins.size(), 1u);
  ASSERT_EQ(s.filters.size(), 1u);
  EXPECT_EQ(s.filters[0].column, "k");
  EXPECT_EQ(s.filters[0].op, "=");
  EXPECT_EQ(s.filters[0].literals[0], "5");
}

TEST(AnalyzerTest, FilterOperators) {
  QueryShape s = AnalyzeText(
      "SELECT a FROM t WHERE p = 1 AND q < 2 AND r BETWEEN 3 AND 4 AND "
      "name LIKE 'abc%' AND m IN (1, 2, 3) AND z IS NOT NULL");
  ASSERT_EQ(s.filters.size(), 6u);
  EXPECT_EQ(s.filters[0].op, "=");
  EXPECT_EQ(s.filters[1].op, "<");
  EXPECT_EQ(s.filters[2].op, "BETWEEN");
  EXPECT_EQ(s.filters[2].literals,
            (std::vector<std::string>{"3", "4"}));
  EXPECT_EQ(s.filters[3].op, "LIKE");
  EXPECT_TRUE(s.filters[3].literal_is_string);
  EXPECT_EQ(s.filters[4].op, "IN");
  EXPECT_EQ(s.filters[4].literals.size(), 3u);
  EXPECT_EQ(s.filters[5].op, "IS NOT NULL");
}

TEST(AnalyzerTest, NotLikeAndNotIn) {
  QueryShape s = AnalyzeText(
      "SELECT a FROM t WHERE name NOT LIKE '%x%' AND m NOT IN (1, 2)");
  ASSERT_EQ(s.filters.size(), 2u);
  EXPECT_EQ(s.filters[0].op, "NOT LIKE");
  EXPECT_EQ(s.filters[1].op, "IN");
}

TEST(AnalyzerTest, GroupOrderHavingDistinctLimit) {
  QueryShape s = AnalyzeText(
      "SELECT DISTINCT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) > 10 "
      "ORDER BY a DESC LIMIT 5");
  EXPECT_TRUE(s.has_distinct);
  EXPECT_TRUE(s.has_having);
  EXPECT_TRUE(s.has_limit_or_top);
  EXPECT_EQ(s.group_by_columns, (std::vector<std::string>{"a"}));
  EXPECT_EQ(s.order_by_columns, (std::vector<std::string>{"a"}));
  ASSERT_GE(s.aggregate_functions.size(), 1u);
}

TEST(AnalyzerTest, HavingAggregatePredicateRecorded) {
  QueryShape s = AnalyzeText(
      "SELECT l_orderkey FROM lineitem GROUP BY l_orderkey "
      "HAVING SUM(l_quantity) > 312");
  bool found = false;
  for (const Predicate& p : s.filters) {
    if (p.op == "HAVING_>" && p.column == "l_quantity") {
      found = true;
      EXPECT_EQ(p.literals[0], "312");
    }
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzerTest, InSubqueryRecordedAndRecursed) {
  QueryShape s = AnalyzeText(
      "SELECT a FROM orders WHERE o_orderkey IN (SELECT l_orderkey FROM "
      "lineitem WHERE l_quantity > 3)");
  ASSERT_EQ(s.subqueries.size(), 1u);
  EXPECT_EQ(s.subqueries[0].tables,
            (std::vector<std::string>{"lineitem"}));
  bool found = false;
  for (const Predicate& p : s.filters) {
    if (p.op == "IN_SUBQUERY") {
      found = true;
      EXPECT_EQ(p.column, "o_orderkey");
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(s.Depth(), 2);
  EXPECT_EQ(s.TotalSubqueries(), 1);
}

TEST(AnalyzerTest, ExistsSubquery) {
  QueryShape s = AnalyzeText(
      "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.x)");
  ASSERT_EQ(s.subqueries.size(), 1u);
  bool found = false;
  for (const Predicate& p : s.filters) found |= p.op == "EXISTS_SUBQUERY";
  EXPECT_TRUE(found);
}

TEST(AnalyzerTest, NestedSubqueriesDepth) {
  QueryShape s = AnalyzeText(
      "SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE z IN "
      "(SELECT w FROM v))");
  EXPECT_EQ(s.Depth(), 3);
  EXPECT_EQ(s.TotalSubqueries(), 2);
}

TEST(AnalyzerTest, SelectColumnsAndStar) {
  QueryShape s = AnalyzeText("SELECT a, t.b, c FROM t");
  EXPECT_EQ(s.select_columns, (std::vector<std::string>{"a", "b", "c"}));
  QueryShape star = AnalyzeText("SELECT * FROM t");
  EXPECT_EQ(star.select_columns, (std::vector<std::string>{"*"}));
}

TEST(AnalyzerTest, SetOperations) {
  QueryShape s = AnalyzeText("SELECT a FROM t UNION SELECT a FROM u");
  EXPECT_EQ(s.set_operation_count, 1);
}

TEST(AnalyzerTest, DateKeywordLiteralInComparison) {
  QueryShape s =
      AnalyzeText("SELECT a FROM t WHERE d >= DATE '1994-01-01'");
  ASSERT_EQ(s.filters.size(), 1u);
  EXPECT_EQ(s.filters[0].op, ">=");
  EXPECT_EQ(s.filters[0].literals[0], "1994-01-01");
}

TEST(AnalyzerTest, NonSelectIsFlagged) {
  EXPECT_FALSE(AnalyzeText("INSERT INTO t VALUES (1)").is_select);
  EXPECT_TRUE(AnalyzeText("SELECT 1").is_select);
}

TEST(AnalyzerTest, EmptyInput) {
  QueryShape s = AnalyzeText("");
  EXPECT_FALSE(s.is_select);
  EXPECT_TRUE(s.tables.empty());
  EXPECT_EQ(s.Depth(), 1);
}


TEST(AnalyzerTest, DerivedTableBecomesSubquery) {
  QueryShape s = AnalyzeText(
      "SELECT v, COUNT(*) FROM (SELECT a AS v FROM t WHERE b > 1) AS d "
      "GROUP BY v");
  EXPECT_TRUE(s.tables.empty());
  ASSERT_EQ(s.subqueries.size(), 1u);
  EXPECT_EQ(s.subqueries[0].tables, (std::vector<std::string>{"t"}));
  ASSERT_EQ(s.subqueries[0].filters.size(), 1u);
  EXPECT_EQ(s.subqueries[0].filters[0].op, ">");
}

TEST(AnalyzerTest, QualifiedAliasedJoinWithSelfJoin) {
  QueryShape s = AnalyzeText(
      "SELECT l1.a FROM lineitem l1, lineitem l2 WHERE l1.k = l2.k");
  // Self-joins dedup to one table reference at the cost model level but
  // the analyzer records the reference list and both aliases.
  EXPECT_EQ(s.tables,
            (std::vector<std::string>{"lineitem", "lineitem"}));
  EXPECT_EQ(s.alias_to_table.at("l1"), "lineitem");
  EXPECT_EQ(s.alias_to_table.at("l2"), "lineitem");
  ASSERT_EQ(s.joins.size(), 1u);
}

TEST(AnalyzerTest, ReversedComparisonLiteralFirstIgnoredGracefully) {
  // literal-op-column is rare in generated workloads; the analyzer may
  // skip it but must not crash or misattribute.
  QueryShape s = AnalyzeText("SELECT a FROM t WHERE 5 < b AND c = 1");
  for (const Predicate& p : s.filters) {
    EXPECT_FALSE(p.column.empty());
  }
}

TEST(AnalyzerTest, BetweenWithArithmeticOnUpperBound) {
  QueryShape s = AnalyzeText(
      "SELECT a FROM t WHERE d BETWEEN '1995-01-01' AND '1995-01-01' + "
      "INTERVAL 3 MONTH");
  ASSERT_GE(s.filters.size(), 1u);
  EXPECT_EQ(s.filters[0].op, "BETWEEN");
  EXPECT_GE(s.filters[0].literals.size(), 1u);
  EXPECT_EQ(s.filters[0].literals[0], "1995-01-01");
}

TEST(AnalyzerTest, UnionBranchesBothScanned) {
  QueryShape s = AnalyzeText(
      "SELECT a FROM t WHERE x = 1 UNION SELECT a FROM u WHERE y = 2");
  EXPECT_EQ(s.set_operation_count, 1);
  // Both branches' tables and filters collapse into one level.
  EXPECT_EQ(s.tables, (std::vector<std::string>{"t", "u"}));
  EXPECT_EQ(s.filters.size(), 2u);
}

TEST(AnalyzerTest, SqlServerBracketIdentifiersResolve) {
  QueryShape s = AnalyzeText("SELECT [My Col] FROM [Order Details]",
                             Dialect::kSqlServer);
  EXPECT_EQ(s.tables, (std::vector<std::string>{"order details"}));
  EXPECT_EQ(s.select_columns, (std::vector<std::string>{"my col"}));
}

TEST(AnalyzerTest, TokenCountRecorded) {
  QueryShape s = AnalyzeText("SELECT a FROM t");
  EXPECT_EQ(s.token_count, 4u);
}

// Property check over all 22 TPC-H templates: the analyzer must at minimum
// find the referenced base tables and classify each as a SELECT.
class TpchAnalyzerTest : public ::testing::TestWithParam<int> {};

// Total base-table references anywhere in the shape tree (queries built on
// derived tables keep their base tables inside the subquery shapes).
size_t CountTables(const QueryShape& s) {
  size_t n = s.tables.size();
  for (const QueryShape& sub : s.subqueries) n += CountTables(sub);
  return n;
}

TEST_P(TpchAnalyzerTest, ExtractsStructure) {
  util::Rng rng(42 + static_cast<uint64_t>(GetParam()));
  std::string text =
      workload::TpchGenerator::Instantiate(GetParam(), rng);
  ASSERT_FALSE(text.empty());
  QueryShape s = AnalyzeText(text, Dialect::kSqlServer);
  EXPECT_TRUE(s.is_select) << text;
  EXPECT_GE(CountTables(s), 1u) << text;
  EXPECT_FALSE(s.select_columns.empty()) << text;
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TpchAnalyzerTest,
                         ::testing::Range(1, 23));

}  // namespace
}  // namespace querc::sql
