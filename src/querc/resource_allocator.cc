#include "querc/resource_allocator.h"

#include <algorithm>

namespace querc::core {

namespace {
double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}
}  // namespace

const char* ResourceAllocator::BucketName(Bucket b) {
  switch (b) {
    case Bucket::kSmall:
      return "small";
    case Bucket::kMedium:
      return "medium";
    case Bucket::kLarge:
      return "large";
  }
  return "?";
}

ResourceAllocator::Bucket ResourceAllocator::BucketOf(
    double value, const double bounds[2]) const {
  if (value <= bounds[0]) return Bucket::kSmall;
  if (value <= bounds[1]) return Bucket::kMedium;
  return Bucket::kLarge;
}

util::Status ResourceAllocator::Train(const workload::Workload& history) {
  if (history.empty()) {
    return util::Status::InvalidArgument("resource allocator: empty history");
  }
  std::vector<double> runtimes;
  std::vector<double> memories;
  for (const auto& q : history) {
    runtimes.push_back(q.runtime_seconds);
    memories.push_back(q.memory_mb);
  }
  runtime_bounds_[0] = Quantile(runtimes, options_.small_quantile);
  runtime_bounds_[1] = Quantile(runtimes, options_.large_quantile);
  memory_bounds_[0] = Quantile(memories, options_.small_quantile);
  memory_bounds_[1] = Quantile(memories, options_.large_quantile);
  memory_bucket_caps_[0] = memory_bounds_[0];
  memory_bucket_caps_[1] = memory_bounds_[1];
  memory_bucket_caps_[2] = Quantile(memories, 0.99);

  ml::Dataset runtime_data;
  ml::Dataset memory_data;
  for (const auto& q : history) {
    nn::Vec v = embedder_->EmbedQuery(q.text, q.dialect);
    runtime_data.x.push_back(v);
    runtime_data.y.push_back(
        static_cast<int>(BucketOf(q.runtime_seconds, runtime_bounds_)));
    memory_data.x.push_back(std::move(v));
    memory_data.y.push_back(
        static_cast<int>(BucketOf(q.memory_mb, memory_bounds_)));
  }
  runtime_forest_.Fit(runtime_data);
  memory_forest_.Fit(memory_data);
  trained_ = true;
  return util::Status::OK();
}

ResourceAllocator::Hint ResourceAllocator::Allocate(
    const workload::LabeledQuery& query) const {
  Hint hint;
  if (!trained_) return hint;
  nn::Vec v = embedder_->EmbedQuery(query.text, query.dialect);
  hint.runtime_bucket = static_cast<Bucket>(runtime_forest_.Predict(v));
  hint.memory_bucket = static_cast<Bucket>(memory_forest_.Predict(v));
  hint.suggested_memory_mb =
      memory_bucket_caps_[static_cast<int>(hint.memory_bucket)];
  return hint;
}

}  // namespace querc::core
