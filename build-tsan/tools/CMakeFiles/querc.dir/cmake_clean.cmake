file(REMOVE_RECURSE
  "CMakeFiles/querc.dir/querc_cli.cc.o"
  "CMakeFiles/querc.dir/querc_cli.cc.o.d"
  "querc"
  "querc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
