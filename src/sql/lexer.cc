#include "sql/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace querc::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

/// Single-pass tokenizer shared by the strict and lenient entry points.
class LexerImpl {
 public:
  LexerImpl(std::string_view text, const LexOptions& options, bool lenient)
      : text_(text),
        traits_(GetDialectTraits(options.dialect)),
        options_(options),
        lenient_(lenient) {}

  util::StatusOr<TokenList> Run() {
    TokenList tokens;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      size_t start = pos_;
      if (c == '-' && Peek(1) == '-') {
        LexLineComment(tokens, start);
      } else if (c == '/' && Peek(1) == '*') {
        QUERC_RETURN_IF_ERROR(LexBlockComment(tokens, start));
      } else if (c == '\'') {
        QUERC_RETURN_IF_ERROR(LexString(tokens, start));
      } else if (c == '"') {
        QUERC_RETURN_IF_ERROR(LexQuotedIdent(tokens, start, '"', '"'));
      } else if (traits_.extra_ident_open != '\0' &&
                 c == traits_.extra_ident_open) {
        QUERC_RETURN_IF_ERROR(LexQuotedIdent(tokens, start,
                                             traits_.extra_ident_open,
                                             traits_.extra_ident_close));
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && std::isdigit(
                                  static_cast<unsigned char>(Peek(1))))) {
        LexNumber(tokens, start);
      } else if (IsIdentStart(c)) {
        LexWord(tokens, start);
      } else if (c == '?') {
        ++pos_;
        tokens.push_back({TokenType::kParameter, "?", start});
      } else if (c == '@' && traits_.at_parameters && IsIdentStart(Peek(1))) {
        ++pos_;
        size_t s = pos_;
        while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
        tokens.push_back({TokenType::kParameter,
                          "@" + std::string(text_.substr(s, pos_ - s)),
                          start});
      } else if (c == '$' && traits_.dollar_parameters &&
                 std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        ++pos_;
        size_t s = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        tokens.push_back({TokenType::kParameter,
                          "$" + std::string(text_.substr(s, pos_ - s)),
                          start});
      } else if (LexOperatorOrPunct(tokens, start)) {
        // handled
      } else if (lenient_) {
        ++pos_;  // skip unknown byte
      } else {
        return util::Status::Corruption(
            util::StrFormat("unexpected byte 0x%02x at offset %zu",
                            static_cast<unsigned char>(c), pos_));
      }
    }
    return tokens;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void LexLineComment(TokenList& tokens, size_t start) {
    size_t end = text_.find('\n', pos_);
    if (end == std::string_view::npos) end = text_.size();
    if (options_.keep_comments) {
      tokens.push_back({TokenType::kComment,
                        std::string(text_.substr(pos_, end - pos_)), start});
    }
    pos_ = end;
  }

  util::Status LexBlockComment(TokenList& tokens, size_t start) {
    size_t end = text_.find("*/", pos_ + 2);
    if (end == std::string_view::npos) {
      if (!lenient_) {
        return util::Status::InvalidArgument(
            util::StrFormat("unterminated block comment at offset %zu", pos_));
      }
      end = text_.size();
    } else {
      end += 2;
    }
    if (options_.keep_comments) {
      tokens.push_back({TokenType::kComment,
                        std::string(text_.substr(pos_, end - pos_)), start});
    }
    pos_ = end;
    return util::Status::OK();
  }

  util::Status LexString(TokenList& tokens, size_t start) {
    ++pos_;  // opening quote
    std::string value;
    for (;;) {
      if (pos_ >= text_.size()) {
        if (!lenient_) {
          return util::Status::InvalidArgument(util::StrFormat(
              "unterminated string literal at offset %zu", start));
        }
        break;
      }
      char c = text_[pos_];
      if (c == '\'') {
        if (Peek(1) == '\'') {  // '' escape
          value += '\'';
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      value += c;
      ++pos_;
    }
    tokens.push_back({TokenType::kString, std::move(value), start});
    return util::Status::OK();
  }

  util::Status LexQuotedIdent(TokenList& tokens, size_t start, char open,
                              char close) {
    ++pos_;  // opening delimiter
    std::string value;
    for (;;) {
      if (pos_ >= text_.size()) {
        if (!lenient_) {
          return util::Status::InvalidArgument(util::StrFormat(
              "unterminated quoted identifier ('%c') at offset %zu", open,
              start));
        }
        break;
      }
      char c = text_[pos_];
      if (c == close) {
        if (open == close && Peek(1) == close) {  // "" escape
          value += close;
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      value += c;
      ++pos_;
    }
    tokens.push_back({TokenType::kQuotedIdentifier, std::move(value), start});
    return util::Status::OK();
  }

  void LexNumber(TokenList& tokens, size_t start) {
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      size_t mark = pos_;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
      } else {
        pos_ = mark;  // 'e' starts an identifier, not an exponent
      }
    }
    tokens.push_back({TokenType::kNumber,
                      std::string(text_.substr(start, pos_ - start)), start});
  }

  void LexWord(TokenList& tokens, size_t start) {
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    std::string word(text_.substr(start, pos_ - start));
    std::string upper = util::ToUpper(word);
    if (traits_.is_keyword(upper)) {
      tokens.push_back({TokenType::kKeyword, std::move(upper), start});
    } else {
      tokens.push_back({TokenType::kIdentifier, std::move(word), start});
    }
  }

  /// Multi-char operators first, then single-char operators/punctuation.
  bool LexOperatorOrPunct(TokenList& tokens, size_t start) {
    static constexpr std::string_view kTwoChar[] = {
        "<=", ">=", "<>", "!=", "||", "::", "->",
    };
    std::string_view rest = text_.substr(pos_);
    for (std::string_view op : kTwoChar) {
      if (rest.size() >= 2 && rest.substr(0, 2) == op) {
        tokens.push_back({TokenType::kOperator, std::string(op), start});
        pos_ += 2;
        return true;
      }
    }
    char c = text_[pos_];
    switch (c) {
      case '=':
      case '<':
      case '>':
      case '+':
      case '-':
      case '*':
      case '/':
      case '%':
      case '.':
        tokens.push_back({TokenType::kOperator, std::string(1, c), start});
        ++pos_;
        return true;
      case '(':
      case ')':
      case ',':
      case ';':
        tokens.push_back({TokenType::kPunct, std::string(1, c), start});
        ++pos_;
        return true;
      default:
        return false;
    }
  }

  std::string_view text_;
  const DialectTraits& traits_;
  const LexOptions& options_;
  bool lenient_;
  size_t pos_ = 0;
};

}  // namespace

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kKeyword:
      return "Keyword";
    case TokenType::kIdentifier:
      return "Identifier";
    case TokenType::kQuotedIdentifier:
      return "QuotedIdentifier";
    case TokenType::kNumber:
      return "Number";
    case TokenType::kString:
      return "String";
    case TokenType::kOperator:
      return "Operator";
    case TokenType::kPunct:
      return "Punct";
    case TokenType::kParameter:
      return "Parameter";
    case TokenType::kComment:
      return "Comment";
    case TokenType::kEnd:
      return "End";
  }
  return "Unknown";
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

util::StatusOr<TokenList> Lex(std::string_view text,
                              const LexOptions& options) {
  LexerImpl impl(text, options, /*lenient=*/false);
  return impl.Run();
}

TokenList LexLenient(std::string_view text, const LexOptions& options) {
  LexerImpl impl(text, options, /*lenient=*/true);
  auto result = impl.Run();
  // Lenient mode never returns an error.
  return result.ok() ? std::move(result).value() : TokenList{};
}

}  // namespace querc::sql
