// Tests for util/topology: cpulist parsing, the flat fallback, the
// detected system topology's invariants, and the SpawnThread / pinning
// chokepoints. Detection must never fail — on any platform or container
// it degrades to Flat(hardware_concurrency) — so these tests assert the
// invariants every caller is allowed to rely on, not machine specifics.
#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "util/topology.h"

namespace querc::util {
namespace {

TEST(ParseCpuListTest, SingleRange) {
  EXPECT_EQ(ParseCpuList("0-3"), (std::vector<int>{0, 1, 2, 3}));
}

TEST(ParseCpuListTest, SingletonsAndRangesMixed) {
  EXPECT_EQ(ParseCpuList("0,2,4"), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(ParseCpuList("0-1,8,10-11"),
            (std::vector<int>{0, 1, 8, 10, 11}));
}

TEST(ParseCpuListTest, WhitespaceAndNewlineTolerated) {
  // sysfs files end with a newline; stray spaces must not break parsing.
  EXPECT_EQ(ParseCpuList("0-1\n"), (std::vector<int>{0, 1}));
  EXPECT_EQ(ParseCpuList(" 2 , 4 "), (std::vector<int>{2, 4}));
}

TEST(ParseCpuListTest, DuplicatesDeduped) {
  EXPECT_EQ(ParseCpuList("0-2,1,2"), (std::vector<int>{0, 1, 2}));
}

TEST(ParseCpuListTest, MalformedFragmentsSkippedNotFatal) {
  EXPECT_TRUE(ParseCpuList("").empty());
  EXPECT_TRUE(ParseCpuList("abc").empty());
  EXPECT_TRUE(ParseCpuList("3-1").empty());  // inverted range
  // A bad fragment must not poison its good neighbors.
  EXPECT_EQ(ParseCpuList("0-1,zz,4"), (std::vector<int>{0, 1, 4}));
}

TEST(TopologyTest, FlatHasExpectedShape) {
  Topology flat = Topology::Flat(4);
  ASSERT_EQ(flat.num_cpus(), 4u);
  EXPECT_EQ(flat.num_cores(), 4u);  // one core per cpu: no SMT
  EXPECT_EQ(flat.num_nodes(), 1u);
  EXPECT_FALSE(flat.smt());
  for (size_t i = 0; i < flat.cpus.size(); ++i) {
    EXPECT_EQ(flat.cpus[i].id, static_cast<int>(i));
    EXPECT_EQ(flat.cpus[i].node, 0);
  }
  EXPECT_EQ(flat.CpusOfNode(0).size(), 4u);
  EXPECT_TRUE(flat.CpusOfNode(1).empty());
}

TEST(TopologyTest, FlatZeroGuardedToOneCpu) {
  Topology flat = Topology::Flat(0);
  EXPECT_EQ(flat.num_cpus(), 1u);
}

TEST(TopologyTest, DetectedTopologyHoldsInvariants) {
  Topology topo = Topology::Detect();
  ASSERT_GE(topo.num_cpus(), 1u);
  EXPECT_GE(topo.num_cores(), 1u);
  EXPECT_LE(topo.num_cores(), topo.num_cpus());
  EXPECT_GE(topo.num_nodes(), 1u);
  // cpus are listed in ascending id order with no duplicates, and every
  // cpu belongs to a node that CpusOfNode() can find it under.
  std::set<int> ids;
  for (size_t i = 0; i < topo.cpus.size(); ++i) {
    const Topology::Cpu& cpu = topo.cpus[i];
    EXPECT_TRUE(ids.insert(cpu.id).second) << "duplicate cpu id " << cpu.id;
    if (i > 0) {
      EXPECT_GT(cpu.id, topo.cpus[i - 1].id);
    }
    std::vector<int> node_cpus = topo.CpusOfNode(cpu.node);
    EXPECT_NE(std::find(node_cpus.begin(), node_cpus.end(), cpu.id),
              node_cpus.end());
  }
}

TEST(TopologyTest, SystemIsCachedAndStable) {
  const Topology& a = Topology::System();
  const Topology& b = Topology::System();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_cpus(), 1u);
}

TEST(TopologyTest, DefaultThreadCountNeverZero) {
  EXPECT_GE(DefaultThreadCount(), 1u);
  EXPECT_EQ(DefaultThreadCount(), Topology::System().num_cpus());
}

TEST(TopologyTest, PinCurrentThreadIsBestEffort) {
  // Pinning to the first online cpu either succeeds or reports failure —
  // it must never crash or throw, even in restricted containers.
  int first = Topology::System().cpus.front().id;
  (void)PinCurrentThreadToCpu(first);
  // An absurd cpu id must fail cleanly rather than misbehave.
  EXPECT_FALSE(PinCurrentThreadToCpu(1 << 20));
}

TEST(TopologyTest, SpawnThreadRunsBodyAndJoins) {
  std::atomic<bool> ran{false};
  std::thread t = SpawnThread("querc-test", [&ran] {
    ran.store(true, std::memory_order_release);
  });
  ASSERT_TRUE(t.joinable());
  t.join();
  EXPECT_TRUE(ran.load(std::memory_order_acquire));
}

TEST(TopologyTest, SpawnThreadTruncatesLongNames) {
  // Linux caps thread names at 15 chars + NUL; a longer tag must be
  // truncated silently, not rejected.
  std::atomic<bool> ran{false};
  std::thread t = SpawnThread("querc-very-long-thread-name-tag",
                              [&ran] { ran.store(true); });
  t.join();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace querc::util
