#ifndef QUERC_NN_LSTM_H_
#define QUERC_NN_LSTM_H_

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace querc::nn {

/// A single LSTM layer processing one sequence at a time (batch size 1 —
/// queries are short and the training sets laptop-scale, so we optimize for
/// clarity and exact BPTT over throughput).
///
/// Gate layout in the stacked weight matrices: rows [0,H) input gate i,
/// [H,2H) forget gate f, [2H,3H) candidate g (tanh), [3H,4H) output gate o.
/// The forget-gate bias is initialized to +1 (standard trick so memory is
/// kept early in training).
class LstmLayer {
 public:
  LstmLayer(size_t input_dim, size_t hidden_dim, const std::string& name,
            util::Rng& rng);

  size_t input_dim() const { return input_dim_; }
  size_t hidden_dim() const { return hidden_dim_; }

  /// Clears cached activations and resets (h, c) to zero. Call before each
  /// new sequence.
  void Reset();

  /// Sets the initial (h, c) state (e.g. the decoder seeded from the
  /// encoder). Must be called after Reset() and before the first Forward().
  void SetState(const Vec& h, const Vec& c);

  /// Processes one timestep; returns the new hidden state. Activations are
  /// cached for Backward().
  const Vec& Forward(const Vec& x);

  const Vec& hidden() const { return h_; }
  const Vec& cell() const { return c_; }
  size_t steps() const { return cache_.size(); }

  /// Result of backpropagation through the cached sequence.
  struct BackwardResult {
    /// Gradient w.r.t. each input vector, in forward order.
    std::vector<Vec> dx;
    /// Gradients w.r.t. the initial hidden/cell state (flows into an
    /// upstream encoder when this layer is a decoder).
    Vec dh_init;
    Vec dc_init;
  };

  /// Backpropagates through all cached steps. `dh_per_step[t]` is the loss
  /// gradient w.r.t. the hidden state emitted at step t (may be empty =>
  /// zero). `dh_final` / `dc_final` are extra gradients injected into the
  /// last step's state (empty => zero). Parameter gradients accumulate into
  /// the tensors; call Reset() before reusing the layer.
  BackwardResult Backward(const std::vector<Vec>& dh_per_step,
                          const Vec& dh_final = {}, const Vec& dc_final = {});

  /// Stateless const forward over a whole sequence: computes the final
  /// hidden/cell state without touching the layer's cache or state. Used
  /// for inference (Embedder::Embed is const).
  void InferSequence(const std::vector<Vec>& xs, Vec* h_out, Vec* c_out) const;

  /// Stateless const single step: advances (*h, *c) by input `x`.
  void InferStep(const Vec& x, Vec* h, Vec* c) const;

  /// Trainable parameters, for optimizer registration and serialization.
  std::vector<Tensor*> Params() { return {&wx_, &wh_, &b_}; }
  std::vector<const Tensor*> Params() const { return {&wx_, &wh_, &b_}; }

 private:
  struct StepCache {
    Vec x;
    Vec h_prev;
    Vec c_prev;
    Vec i, f, g, o;  // post-activation gates
    Vec c;           // new cell
    Vec tanh_c;      // tanh(new cell)
  };

  size_t input_dim_;
  size_t hidden_dim_;
  Tensor wx_;  // 4H x I
  Tensor wh_;  // 4H x H
  Tensor b_;   // 4H x 1
  Vec h_;
  Vec c_;
  std::vector<StepCache> cache_;
};

}  // namespace querc::nn

#endif  // QUERC_NN_LSTM_H_
