#include "querc/chaos.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "embed/feature_embedder.h"
#include "ml/knn.h"
#include "obs/flight_recorder.h"
#include "querc/classifier.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace querc::core {

namespace {

/// Percentile over a sample vector (nearest-rank); 0 when empty.
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  rank = std::min(std::max<size_t>(rank, 1), samples.size());
  return samples[rank - 1];
}

workload::LabeledQuery MakeQuery(util::Rng& rng, size_t i) {
  workload::LabeledQuery q;
  if (rng.Bernoulli(0.5)) {
    q.text = "SELECT a FROM t WHERE x = 1";
    q.user = "alice";
  } else {
    q.text = "SELECT b, c, d FROM u, v WHERE u.k = v.k";
    q.user = "bob";
  }
  q.account = "acct" + std::to_string(i % 8);
  return q;
}

std::shared_ptr<Classifier> TrainUserClassifier(const std::string& task) {
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  auto classifier = std::make_shared<Classifier>(
      task, embedder,
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{.k = 1}));
  workload::Workload history;
  for (int i = 0; i < 8; ++i) {
    workload::LabeledQuery a;
    a.text = "SELECT a FROM t WHERE x = 1";
    a.user = "alice";
    history.Add(a);
    workload::LabeledQuery b;
    b.text = "SELECT b, c, d FROM u, v WHERE u.k = v.k";
    b.user = "bob";
    history.Add(b);
  }
  if (!classifier->Train(history, workload::UserOf).ok()) return nullptr;
  return classifier;
}

/// Folds one returned query into the report's accounting.
void Account(const ProcessedQuery& pq, ChaosReport* report) {
  ++report->returned;
  if (pq.shed) ++report->shed;
  if (!pq.database_status.ok() || !pq.training_status.ok()) {
    ++report->sink_errors;
  }
  if (pq.deadline_exceeded) ++report->deadline_exceeded;
  report->degraded += pq.degraded_tasks.size();
  report->skipped += pq.skipped_tasks.size();
}

bool AllBreakersClosed(const QWorkerPool& pool) {
  for (const auto& [name, state] : pool.BreakerStates()) {
    if (state != CircuitBreaker::State::kClosed) return false;
  }
  return true;
}

}  // namespace

std::string ChaosReport::ToJson() const {
  std::string out = "{\n";
  out += util::StrFormat("  \"submitted\": %zu,\n", submitted);
  out += util::StrFormat("  \"returned\": %zu,\n", returned);
  out += util::StrFormat("  \"silent_drops\": %zu,\n", silent_drops);
  out += util::StrFormat("  \"shed\": %zu,\n", shed);
  out += util::StrFormat("  \"shed_rate\": %.4f,\n", shed_rate);
  out += util::StrFormat("  \"sink_errors\": %zu,\n", sink_errors);
  out += util::StrFormat("  \"degraded\": %zu,\n", degraded);
  out += util::StrFormat("  \"skipped\": %zu,\n", skipped);
  out += util::StrFormat("  \"deadline_exceeded\": %zu,\n", deadline_exceeded);
  out += util::StrFormat("  \"breakers_tripped\": %zu,\n", breakers_tripped);
  out += util::StrFormat("  \"breakers_reclosed\": %s,\n",
                         breakers_reclosed ? "true" : "false");
  out += util::StrFormat("  \"recovery_ms\": %.3f,\n", recovery_ms);
  out += util::StrFormat("  \"p50_warmup_ms\": %.4f,\n", p50_warmup_ms);
  out += util::StrFormat("  \"p99_warmup_ms\": %.4f,\n", p99_warmup_ms);
  out += util::StrFormat("  \"p50_fault_ms\": %.4f,\n", p50_fault_ms);
  out += util::StrFormat("  \"p99_fault_ms\": %.4f,\n", p99_fault_ms);
  out += util::StrFormat("  \"p99_recovery_ms\": %.4f,\n", p99_recovery_ms);
  if (flightrec_enabled) {
    out += util::StrFormat("  \"journal_sink_failpoints\": %llu,\n",
                           (unsigned long long)journal_sink_failpoints);
    out += util::StrFormat("  \"journal_classifier_failpoints\": %llu,\n",
                           (unsigned long long)journal_classifier_failpoints);
    out += util::StrFormat("  \"journal_sheds\": %llu,\n",
                           (unsigned long long)journal_sheds);
    out += util::StrFormat("  \"journal_breaker_transitions\": %llu,\n",
                           (unsigned long long)journal_breaker_transitions);
    out += util::StrFormat("  \"failpoint_hits_sink\": %llu,\n",
                           (unsigned long long)failpoint_hits_sink);
    out += util::StrFormat("  \"failpoint_hits_classifier\": %llu,\n",
                           (unsigned long long)failpoint_hits_classifier);
    out += util::StrFormat("  \"flightrec_ok\": %s,\n",
                           flightrec_ok ? "true" : "false");
  }
  out += util::StrFormat("  \"ok\": %s\n", ok() ? "true" : "false");
  out += "}";
  return out;
}

ChaosReport RunChaosSoak(const ChaosOptions& options) {
  ChaosReport report;
  util::Rng rng(options.seed);

  // Flight-recorder evidence trail: discard whatever earlier work in this
  // process left in the rings, then poll the collector throughout so ring
  // capacity (4096 events/thread) is never the limit on attribution.
  std::unique_ptr<obs::TraceCollector> collector;
  if (options.flightrec) {
    report.flightrec_enabled = true;
    std::vector<obs::FlightEvent> discard;
    obs::FlightRecorder::Global().Drain(&discard);
    obs::TraceCollector::Options copts;
    copts.reservoir_capacity = 8;
    collector = std::make_unique<obs::TraceCollector>(copts);
  }
  auto poll = [&] {
    if (collector) collector->Poll();
  };

  QWorkerPool::Options pool_options;
  pool_options.application = "chaos";
  pool_options.num_shards = std::max<size_t>(1, options.num_shards);
  // Round-robin so every shard's breakers see traffic (hash partitioning
  // could starve a shard and stall its recovery).
  pool_options.partition = QWorkerPool::Partition::kRoundRobin;
  pool_options.max_in_flight = options.max_in_flight;
  pool_options.shed_policy = QWorkerPool::ShedPolicy::kRejectNew;
  pool_options.worker.enable_lint = true;
  pool_options.worker.deadline_ms = options.deadline_ms;
  // A soak-friendly breaker: trips on few samples, cools down quickly.
  pool_options.worker.breaker.window = 16;
  pool_options.worker.breaker.min_samples = 4;
  pool_options.worker.breaker.failure_ratio = 0.5;
  pool_options.worker.breaker.open_ms = options.breaker_open_ms;
  pool_options.worker.breaker.half_open_probes = 2;
  pool_options.worker.sink_retry.max_attempts = 2;
  pool_options.worker.sink_retry.initial_backoff_ms = 0.1;
  pool_options.worker.sink_retry.max_backoff_ms = 1.0;
  QWorkerPool pool(pool_options);

  auto primary = TrainUserClassifier("user");
  auto fallback = TrainUserClassifier("user");
  if (primary == nullptr || fallback == nullptr) return report;
  pool.DeployAll({primary});
  pool.DeployFallback(fallback);
  pool.set_database_sink([](const workload::LabeledQuery&) {});
  pool.set_training_sink([](const ProcessedQuery&) {});

  auto process_one = [&](size_t i, std::vector<double>* latencies) {
    workload::LabeledQuery q = MakeQuery(rng, i);
    ++report.submitted;
    util::Stopwatch sw;
    ProcessedQuery pq = pool.Process(q);
    if (latencies != nullptr) latencies->push_back(sw.ElapsedMillis());
    Account(pq, &report);
    poll();
  };

  // Phase 1: warmup — healthy baseline.
  std::vector<double> warmup_lat;
  warmup_lat.reserve(options.warmup_queries);
  for (size_t i = 0; i < options.warmup_queries; ++i) {
    process_one(i, &warmup_lat);
  }

  // Phase 2: fault — counted failpoints model a transient database-sink
  // outage (>= sink_failure_rate of the phase) and a classifier outage;
  // periodic oversized batches force the admission bound to shed.
  auto& failpoints = util::Failpoints::Global();
  {
    util::FailpointSpec sink_fault;
    sink_fault.action = util::FailAction::kError;
    sink_fault.code = util::StatusCode::kUnavailable;
    sink_fault.count = std::max<int64_t>(
        8, static_cast<int64_t>(options.sink_failure_rate *
                                static_cast<double>(options.fault_queries)));
    failpoints.Arm("qworker.sink_database", sink_fault);
    if (options.classifier_outage) {
      util::FailpointSpec task_fault;
      task_fault.action = util::FailAction::kError;
      task_fault.code = util::StatusCode::kUnavailable;
      task_fault.count =
          static_cast<int64_t>(options.fault_queries);  // whole phase
      failpoints.Arm("qworker.classifier_predict", task_fault);
    }
  }
  std::vector<double> fault_lat;
  fault_lat.reserve(options.fault_queries);
  std::vector<std::string> tripped;
  for (size_t i = 0; i < options.fault_queries; ++i) {
    process_one(i, &fault_lat);
    for (const auto& [name, state] : pool.BreakerStates()) {
      if (state != CircuitBreaker::State::kClosed &&
          std::find(tripped.begin(), tripped.end(), name) == tripped.end()) {
        tripped.push_back(name);
      }
    }
    if (options.max_in_flight > 0 && options.shed_burst_every > 0 &&
        i % options.shed_burst_every == options.shed_burst_every - 1) {
      workload::Workload burst;
      for (size_t j = 0; j < 3 * options.max_in_flight; ++j) {
        burst.Add(MakeQuery(rng, j));
      }
      report.submitted += burst.size();
      for (const ProcessedQuery& pq : pool.ProcessBatch(burst)) {
        Account(pq, &report);
      }
      poll();
    }
  }
  report.breakers_tripped = tripped.size();

  // Ground truth for reconciliation must be read *before* Disarm (a
  // disarmed point forgets its hit count).
  report.failpoint_hits_sink = failpoints.hits("qworker.sink_database");
  report.failpoint_hits_classifier =
      failpoints.hits("qworker.classifier_predict");

  // Phase 3: recovery — faults gone; drive traffic until every breaker
  // re-closes (pacing by the cooldown when one is still open).
  failpoints.Disarm("qworker.sink_database");
  failpoints.Disarm("qworker.classifier_predict");
  std::vector<double> recovery_lat;
  recovery_lat.reserve(options.recovery_queries);
  util::Stopwatch recovery_sw;
  for (size_t i = 0; i < options.recovery_queries; ++i) {
    process_one(i, &recovery_lat);
    if (AllBreakersClosed(pool)) {
      report.breakers_reclosed = true;
      report.recovery_ms = recovery_sw.ElapsedMillis();
      break;
    }
    // A breaker still open is waiting out its cooldown; give it time
    // instead of burning the query budget in microseconds.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  if (collector) {
    collector->Poll();  // final drain: nothing may be left buffered
    report.journal_sink_failpoints =
        collector->Count(obs::EventKind::kFailpoint, "qworker.sink_database");
    report.journal_classifier_failpoints = collector->Count(
        obs::EventKind::kFailpoint, "qworker.classifier_predict");
    report.journal_sheds = collector->Count(obs::EventKind::kShed);
    report.journal_breaker_transitions =
        collector->Count(obs::EventKind::kBreakerTransition);
    // Attribution contract: every injected sink/classifier fault and
    // every shed the pool reported has exactly one journal event.
    report.flightrec_ok =
        report.journal_sink_failpoints == report.failpoint_hits_sink &&
        report.journal_classifier_failpoints ==
            report.failpoint_hits_classifier &&
        report.journal_sheds == static_cast<uint64_t>(report.shed) &&
        report.journal_breaker_transitions > 0;
    for (const obs::FlightTrace& trace : collector->Slowest(3)) {
      report.slow_traces.push_back(obs::FlightTraceLine(trace));
    }
  }

  report.silent_drops = report.submitted - report.returned;
  report.shed_rate =
      report.submitted == 0
          ? 0.0
          : static_cast<double>(report.shed) /
                static_cast<double>(report.submitted);
  report.p50_warmup_ms = Percentile(warmup_lat, 0.50);
  report.p99_warmup_ms = Percentile(warmup_lat, 0.99);
  report.p50_fault_ms = Percentile(fault_lat, 0.50);
  report.p99_fault_ms = Percentile(fault_lat, 0.99);
  report.p99_recovery_ms = Percentile(recovery_lat, 0.99);
  return report;
}

}  // namespace querc::core
