#include "util/concurrent_aggregator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace querc::util {
namespace {

using Outcome = ConcurrentAggregator::Outcome;

ConcurrentAggregator::Options SmallOptions(size_t capacity,
                                           size_t shards = 1) {
  ConcurrentAggregator::Options options;
  options.capacity = capacity;
  options.shards = shards;
  return options;
}

const AggregateEntry* FindEntry(const std::vector<AggregateEntry>& entries,
                                const std::string& key) {
  for (const auto& e : entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

TEST(ConcurrentAggregator, RecordsAndSnapshotsBasicCounts) {
  ConcurrentAggregator agg(SmallOptions(16));
  EXPECT_EQ(agg.Record("a", 1, 2, "first a"), Outcome::kInserted);
  EXPECT_EQ(agg.Record("a", 1, 3), Outcome::kUpdated);
  EXPECT_EQ(agg.Record("b", 5), Outcome::kInserted);
  EXPECT_EQ(agg.size(), 2u);

  auto snap = agg.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  const AggregateEntry* a = FindEntry(snap, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->count, 2u);
  EXPECT_EQ(a->weight, 5u);
  EXPECT_EQ(a->tag, "first a");
  const AggregateEntry* b = FindEntry(snap, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->count, 5u);
  EXPECT_EQ(b->weight, 0u);
}

TEST(ConcurrentAggregator, TagIsFirstWins) {
  ConcurrentAggregator agg(SmallOptions(8));
  agg.Record("k", 1, 0, "original");
  agg.Record("k", 1, 0, "later");
  auto snap = agg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].tag, "original");
}

TEST(ConcurrentAggregator, CapacityEvictsLeastCountAndCountsDrops) {
  // One shard so the bound is exact and deterministic.
  const size_t kCap = 8;
  ConcurrentAggregator agg(SmallOptions(kCap));
  for (size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(agg.Record("cold_" + std::to_string(i), 1, 1),
              Outcome::kInserted);
  }
  EXPECT_EQ(agg.size(), kCap);
  EXPECT_EQ(agg.dropped_keys(), 0u);

  // Heat one of the resident keys so it can never be the minimum.
  for (int i = 0; i < 10; ++i) agg.Record("cold_0", 1, 1);

  // A late-arriving key must still get in: the least-count entry is
  // evicted (count 1), its counters land in the dropped totals.
  Outcome first = agg.Record("late_hot", 1, 1);
  EXPECT_TRUE(first == Outcome::kEvicted || first == Outcome::kDropped);
  for (int i = 0; i < 50; ++i) agg.Record("late_hot", 1, 1);

  EXPECT_LE(agg.size(), kCap);
  EXPECT_GE(agg.dropped_keys(), 1u);
  EXPECT_GE(agg.dropped_count(), 1u);

  auto snap = agg.Snapshot();
  const AggregateEntry* hot = FindEntry(snap, "late_hot");
  ASSERT_NE(hot, nullptr) << "late hot key was silently refused";
  EXPECT_EQ(hot->count, 51u);
  // The pre-existing hot key was never the least and must survive.
  const AggregateEntry* cold0 = FindEntry(snap, "cold_0");
  ASSERT_NE(cold0, nullptr);
  EXPECT_EQ(cold0->count, 11u);
}

TEST(ConcurrentAggregator, TotalsConservedAcrossEvictions) {
  // Every recorded delta ends up either in the snapshot or in the
  // dropped totals — nothing is silently lost, no matter the churn.
  ConcurrentAggregator agg(SmallOptions(4));
  const size_t kKeys = 64;
  const uint64_t kPerKey = 3;
  for (size_t i = 0; i < kKeys; ++i) {
    for (uint64_t j = 0; j < kPerKey; ++j) {
      agg.Record("key_" + std::to_string(i), 1, 2);
    }
  }
  uint64_t resident_count = 0;
  uint64_t resident_weight = 0;
  for (const auto& e : agg.Snapshot()) {
    resident_count += e.count;
    resident_weight += e.weight;
  }
  EXPECT_EQ(resident_count + agg.dropped_count(), kKeys * kPerKey);
  EXPECT_EQ(resident_weight + agg.dropped_weight(), kKeys * kPerKey * 2);
}

TEST(ConcurrentAggregator, MatchesReferenceMapWithoutEviction) {
  // Within capacity the aggregator is an exact group-by.
  ConcurrentAggregator agg(SmallOptions(1024, /*shards=*/8));
  std::map<std::string, std::pair<uint64_t, uint64_t>> reference;
  for (int i = 0; i < 5000; ++i) {
    std::string key = "tmpl_" + std::to_string(i % 300);
    uint64_t w = static_cast<uint64_t>(i % 7);
    agg.Record(key, 1, w);
    auto& ref = reference[key];
    ref.first += 1;
    ref.second += w;
  }
  EXPECT_EQ(agg.dropped_keys(), 0u);
  auto snap = agg.Snapshot();
  ASSERT_EQ(snap.size(), reference.size());
  for (const auto& e : snap) {
    auto it = reference.find(e.key);
    ASSERT_NE(it, reference.end()) << e.key;
    EXPECT_EQ(e.count, it->second.first) << e.key;
    EXPECT_EQ(e.weight, it->second.second) << e.key;
  }
}

TEST(ConcurrentAggregator, MergeIntoIsTotalOverAllFields) {
  ConcurrentAggregator a(SmallOptions(16));
  ConcurrentAggregator b(SmallOptions(16));
  a.Record("shared", 2, 10, "example from a");
  b.Record("shared", 3, 1);  // no tag on this side
  b.Record("only_b", 1, 7, "example from b");

  std::unordered_map<std::string, AggregateEntry> central;
  a.MergeInto(central);
  b.MergeInto(central);
  ASSERT_EQ(central.size(), 2u);
  const AggregateEntry& shared = central.at("shared");
  EXPECT_EQ(shared.count, 5u);
  EXPECT_EQ(shared.weight, 11u);
  EXPECT_EQ(shared.tag, "example from a");  // first-wins survives merge
  EXPECT_EQ(shared.key, "shared");
  const AggregateEntry& only_b = central.at("only_b");
  EXPECT_EQ(only_b.count, 1u);
  EXPECT_EQ(only_b.weight, 7u);
  EXPECT_EQ(only_b.tag, "example from b");
}

TEST(ConcurrentAggregator, TopOrdersByWeightThenCountDeterministically) {
  ConcurrentAggregator agg(SmallOptions(16));
  agg.Record("low", 1, 1);
  agg.Record("high", 1, 9);
  agg.Record("mid_many", 5, 4);
  agg.Record("mid_few", 2, 4);
  auto top = agg.Top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "high");
  EXPECT_EQ(top[1].key, "mid_many");
  EXPECT_EQ(top[2].key, "mid_few");
}

TEST(ConcurrentAggregator, ZeroCapacityStillTracksOneKeyPerShard) {
  ConcurrentAggregator agg(SmallOptions(0));
  agg.Record("a");
  EXPECT_GE(agg.capacity(), 1u);
  EXPECT_EQ(agg.Snapshot().size(), 1u);
}

// TSan-targeted: N writer threads hammering a mixed keyspace while a
// scraper thread snapshots/merges concurrently. The end-of-run totals
// (resident + dropped) must account for every recorded delta.
TEST(ConcurrentAggregatorStress, ConcurrentRecordSnapshotMergeConservesAll) {
  ConcurrentAggregator::Options options;
  options.capacity = 128;  // small: force continuous eviction churn
  options.shards = 4;
  ConcurrentAggregator agg(options);

  const size_t kWriters = 4;
  const size_t kOpsPerWriter = 20000;
  std::atomic<bool> stop{false};

  std::thread scraper([&] {
    std::unordered_map<std::string, AggregateEntry> central;
    while (!stop.load(std::memory_order_acquire)) {
      agg.MergeInto(central);
      (void)agg.Top(8);
      (void)agg.size();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&agg, w] {
      for (size_t i = 0; i < kOpsPerWriter; ++i) {
        // A hot set shared by all writers plus a per-writer cold tail
        // that overflows capacity and keeps the eviction path busy.
        std::string key =
            (i % 4 != 0)
                ? "hot_" + std::to_string((i / 4) % 16)
                : "cold_" + std::to_string(w) + "_" + std::to_string(i);
        agg.Record(key, 1, 2, "example");
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  uint64_t resident_count = 0;
  uint64_t resident_weight = 0;
  for (const auto& e : agg.Snapshot()) {
    resident_count += e.count;
    resident_weight += e.weight;
  }
  const uint64_t total_ops = kWriters * kOpsPerWriter;
  EXPECT_EQ(resident_count + agg.dropped_count(), total_ops)
      << "lost updates: counts are not conserved";
  EXPECT_EQ(resident_weight + agg.dropped_weight(), 2 * total_ops)
      << "lost updates: weights are not conserved";
  // The hot keys dominate every cold key's count; with 4/5 of all ops
  // spread over 16 hot keys they must all be resident at the end.
  auto top = agg.Top(16);
  ASSERT_EQ(top.size(), 16u);
  for (const auto& e : top) {
    EXPECT_EQ(e.key.rfind("hot_", 0), 0u)
        << "cold key outranked a hot key: " << e.key;
  }
}

}  // namespace
}  // namespace querc::util
