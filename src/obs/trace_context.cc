#include "obs/trace_context.h"

#include <atomic>

namespace querc::obs {

namespace {

thread_local TraceContext g_context;

/// splitmix64 finalizer: bijective, so distinct counter values can never
/// produce the same id, and the zero sentinel is reserved by starting the
/// counter at 1 (Mix(0) == 0 is the only fixed point mapping to 0).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t NextId() {
  static std::atomic<uint64_t> counter{1};
  uint64_t id = Mix(counter.fetch_add(1, std::memory_order_relaxed));
  // Mix is a bijection over 2^64, so exactly one counter value maps to 0;
  // skip it rather than ever handing out the invalid sentinel.
  return id != 0 ? id : Mix(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

TraceContext CurrentContext() { return g_context; }

TraceContext InstallContext(const TraceContext& ctx) {
  TraceContext prev = g_context;
  g_context = ctx;
  return prev;
}

uint64_t NewTraceId() { return NextId(); }

uint64_t NewSpanId() { return NextId(); }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : prev_(g_context) {
  g_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { g_context = prev_; }

}  // namespace querc::obs
