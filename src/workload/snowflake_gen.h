#ifndef QUERC_WORKLOAD_SNOWFLAKE_GEN_H_
#define QUERC_WORKLOAD_SNOWFLAKE_GEN_H_

#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/workload.h"

namespace querc::workload {

/// Synthetic stand-in for the paper's proprietary Snowflake production
/// workload (500k pre-training + 200k labeled queries). Reproduces the
/// three structural properties the paper's §5.2 results rest on:
///
///  1.每 account owns a private schema (distinct table/column vocabulary),
///     so account prediction from syntax is near-trivial;
///  2. users within an account favor different query templates, so user
///     prediction is possible but harder;
///  3. some accounts have a pool of *fixed shared query texts* issued
///     verbatim by many users (the paper: "multiple users running the
///     exact same query"), making those users nearly indistinguishable.
class SnowflakeGenerator {
 public:
  /// Per-account generation parameters.
  struct AccountSpec {
    std::string name;
    int num_users = 5;
    int num_queries = 1000;
    /// Probability a query is drawn verbatim from the account-shared pool
    /// (identical text across users).
    double shared_query_rate = 0.0;
    int num_tables = 6;
    /// Fraction of the account's tables that carry GENERIC names shared
    /// with other accounts (the paper: "there are instances of shared
    /// schemas"). Shared names weaken pure-vocabulary account signal;
    /// what remains is compositional/structural.
    double shared_table_fraction = 0.5;
    int templates_per_account = 12;
    int templates_per_user = 4;  // subset each user favors
    int shared_pool_size = 8;    // number of frozen shared texts
    /// Probability that an odd-indexed account template is replaced by an
    /// ORDER VARIANT of its predecessor: the same token multiset with
    /// clauses rotated. Such pairs are indistinguishable to bag-of-words
    /// embedders but not to order-sensitive ones — the driver of the
    /// Table 1 user-labeling gap between Doc2Vec and the LSTM.
    double colliding_pair_rate = 0.6;
    /// Number of templates PRIVATE to each user (ad-hoc queries only that
    /// user writes). These carry near-perfect user signal and are what
    /// pushes the paper's well-behaved accounts above 90% user accuracy.
    int private_templates_per_user = 1;
    /// Number of GLOBAL query families added to this account's template
    /// pool. A family's text is shared across accounts up to an
    /// account-specific clause rotation — bag-identical across tenants,
    /// order-distinct per tenant (shared dashboards / monitoring queries).
    int global_family_templates = 4;
  };

  struct Options {
    uint64_t seed = 1234;
    std::vector<AccountSpec> accounts;
    int num_clusters = 4;  // accounts are routed to clusters round-robin
    /// Zipf-style per-account volume skew (reproducible noisy-neighbor
    /// workloads): 0 leaves each spec's num_queries as written; > 0
    /// redistributes the TOTAL query count so account at rank r (listing
    /// order, rank 0 heaviest) gets a share proportional to
    /// 1 / (r + 1)^account_skew. The total is preserved and no account
    /// with a positive original volume drops to zero. At skew 1 with 4
    /// accounts the head tenant owns ~48% of the batch; at 2, ~70%.
    double account_skew = 0.0;
  };

  explicit SnowflakeGenerator(const Options& options) : options_(options) {}

  /// Generates the labeled workload (queries shuffled, timestamps
  /// increasing).
  Workload Generate() const;

  /// Account mix mirroring the paper's Table 2 (13 accounts; sizes scaled
  /// down 20x; the top accounts carry high shared-query rates).
  static std::vector<AccountSpec> Table2Accounts();

  /// A homogeneous mix of `num_accounts` mid-sized accounts, used for
  /// embedder pre-training corpora.
  static std::vector<AccountSpec> UniformAccounts(int num_accounts,
                                                  int queries_per_account,
                                                  int users_per_account);

 private:
  Options options_;
};

}  // namespace querc::workload

#endif  // QUERC_WORKLOAD_SNOWFLAKE_GEN_H_
