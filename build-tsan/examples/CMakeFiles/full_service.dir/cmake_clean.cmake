file(REMOVE_RECURSE
  "CMakeFiles/full_service.dir/full_service.cpp.o"
  "CMakeFiles/full_service.dir/full_service.cpp.o.d"
  "full_service"
  "full_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
