#ifndef QUERC_SQL_LINT_RULE_H_
#define QUERC_SQL_LINT_RULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sql/analyzer.h"
#include "sql/lint/diagnostic.h"
#include "sql/token.h"

namespace querc::sql::lint {

/// Optional schema facts rules may consult. The sql layer deliberately
/// knows nothing about the engine's Catalog; engine/lint_advisor.h adapts
/// it behind this interface. All rules must degrade gracefully (stay
/// silent rather than guess) when no provider is installed.
class SchemaProvider {
 public:
  virtual ~SchemaProvider() = default;

  /// Base table owning `column` (lower-cased), or "" if unknown/ambiguous.
  virtual std::string TableOfColumn(const std::string& column) const = 0;

  /// Whether `table` (lower-cased) exists.
  virtual bool HasTable(const std::string& table) const = 0;

  /// Row count of `table`; 0 when unknown.
  virtual uint64_t TableRowCount(const std::string& table) const = 0;

  /// Column count of `table`; 0 when unknown.
  virtual size_t TableColumnCount(const std::string& table) const = 0;
};

/// Everything a per-query rule may inspect: the raw text, the lenient
/// token stream, the structural QueryShape, the normalized fingerprint
/// (literals folded), and the optional schema provider.
struct QueryContext {
  std::string_view text;
  const TokenList* tokens = nullptr;
  const QueryShape* shape = nullptr;
  std::string fingerprint;
  size_t query_index = 0;
  const SchemaProvider* schema = nullptr;
};

/// One normalized template observed across a linted workload.
struct TemplateGroup {
  std::string fingerprint;
  std::vector<size_t> query_indices;  // into WorkloadContext::queries
  size_t distinct_texts = 0;          // distinct raw texts (literal bindings)
  bool has_parameters = false;        // any ?/@p/$1 marker in the template
  size_t literal_tokens = 0;          // folded literal slots in the template
};

/// Workload-level view handed to Rule::CheckWorkload after every query has
/// been analyzed individually.
struct WorkloadContext {
  const std::vector<QueryContext>* queries = nullptr;
  const std::vector<TemplateGroup>* templates = nullptr;
  /// Distinct literal bindings of one template before the
  /// unparameterized-literals rule reports a hot spot.
  size_t hot_template_threshold = 8;
};

/// A static-analysis rule. Rules are immutable after construction and must
/// be safe to run from many threads concurrently (QWorker shards share one
/// engine). Emit diagnostics by appending to `out`; never mutate state.
class Rule {
 public:
  virtual ~Rule() = default;

  /// Stable kebab-case identifier ("cartesian-product").
  virtual std::string_view id() const = 0;

  /// Severity this rule's findings default to.
  virtual Severity severity() const = 0;

  /// One-line description for the rule catalog / SARIF rule metadata.
  virtual std::string_view summary() const = 0;

  /// Per-query check. Default: nothing (workload-only rules).
  virtual void Check(const QueryContext& ctx,
                     std::vector<Diagnostic>* out) const;

  /// Whole-workload check, run once per batch. Default: nothing.
  virtual void CheckWorkload(const WorkloadContext& ctx,
                             std::vector<Diagnostic>* out) const;
};

/// Ordered rule collection. Registration replaces an existing rule with
/// the same id, so callers can override a builtin with a tuned variant.
class RuleRegistry {
 public:
  RuleRegistry() = default;
  RuleRegistry(RuleRegistry&&) = default;
  RuleRegistry& operator=(RuleRegistry&&) = default;
  RuleRegistry(const RuleRegistry&) = delete;
  RuleRegistry& operator=(const RuleRegistry&) = delete;

  void Register(std::unique_ptr<const Rule> rule);
  const Rule* Find(std::string_view id) const;
  const std::vector<std::unique_ptr<const Rule>>& rules() const {
    return rules_;
  }

  /// The nine built-in structural rules (everything except the engine's
  /// index-coverage cross-check, which needs a cost model).
  static RuleRegistry Builtin();

 private:
  std::vector<std::unique_ptr<const Rule>> rules_;
};

}  // namespace querc::sql::lint

#endif  // QUERC_SQL_LINT_RULE_H_
