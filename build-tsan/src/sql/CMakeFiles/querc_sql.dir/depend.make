# Empty dependencies file for querc_sql.
# This may be replaced when dependencies are built.
