#ifndef QUERC_WORKLOAD_IO_H_
#define QUERC_WORKLOAD_IO_H_

#include <iosfwd>
#include <string>

#include "util/statusor.h"
#include "workload/workload.h"

namespace querc::workload {

/// CSV (de)serialization for labeled workloads — the interchange format
/// the CLI tool and external log exporters use. Columns:
///   text,dialect,timestamp,user,account,cluster,error_code,
///   runtime_seconds,memory_mb,template_id
/// Fields follow RFC-4180 quoting (quotes doubled, embedded commas and
/// newlines allowed inside quoted fields).

util::Status WriteWorkloadCsv(const Workload& workload, std::ostream& out);
util::Status WriteWorkloadCsvFile(const Workload& workload,
                                  const std::string& path);

util::StatusOr<Workload> ReadWorkloadCsv(std::istream& in);
util::StatusOr<Workload> ReadWorkloadCsvFile(const std::string& path);

/// Parses one dialect name ("generic", "sqlserver", "snowflake").
util::StatusOr<sql::Dialect> ParseDialect(const std::string& name);

}  // namespace querc::workload

#endif  // QUERC_WORKLOAD_IO_H_
