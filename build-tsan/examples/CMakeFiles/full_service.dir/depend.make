# Empty dependencies file for full_service.
# This may be replaced when dependencies are built.
