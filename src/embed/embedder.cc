#include "embed/embedder.h"

#include <atomic>

#include "obs/trace.h"
#include "sql/lexer.h"
#include "sql/normalizer.h"
#include "util/thread_pool.h"

namespace querc::embed {

namespace {

uint64_t NextInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Embedder::Embedder() : instance_id_(NextInstanceId()) {}
Embedder::Embedder(const Embedder&) : instance_id_(NextInstanceId()) {}
Embedder::Embedder(Embedder&&) noexcept : instance_id_(NextInstanceId()) {}

std::vector<nn::Vec> Embedder::EmbedBatch(
    const std::vector<std::vector<std::string>>& docs, util::ThreadPool* pool,
    util::Lane lane) const {
  std::vector<nn::Vec> vectors(docs.size());
  if (pool != nullptr && docs.size() > 1) {
    pool->ParallelFor(lane, docs.size(),
                      [&](size_t i) { vectors[i] = Embed(docs[i]); });
  } else {
    for (size_t i = 0; i < docs.size(); ++i) vectors[i] = Embed(docs[i]);
  }
  return vectors;
}

std::vector<std::string> TokenizeForEmbedding(std::string_view text,
                                              sql::Dialect dialect) {
  sql::LexOptions options;
  options.dialect = dialect;
  sql::TokenList tokens;
  {
    static obs::Histogram& hist = obs::StageHistogram("lex");
    obs::Span span(&hist, "lex");
    tokens = sql::LexLenient(text, options);
  }
  static obs::Histogram& hist = obs::StageHistogram("normalize");
  obs::Span span(&hist, "normalize");
  return sql::Normalize(tokens);
}

std::vector<std::vector<std::string>> TokenizeWorkload(
    const workload::Workload& workload) {
  std::vector<std::vector<std::string>> docs;
  docs.reserve(workload.size());
  for (const auto& q : workload) {
    docs.push_back(TokenizeForEmbedding(q.text, q.dialect));
  }
  return docs;
}

util::Status TrainOnWorkload(Embedder& embedder,
                             const workload::Workload& corpus) {
  return embedder.Train(TokenizeWorkload(corpus));
}

std::vector<nn::Vec> EmbedWorkload(const Embedder& embedder,
                                   const workload::Workload& workload,
                                   util::ThreadPool* pool, util::Lane lane) {
  return embedder.EmbedBatch(TokenizeWorkload(workload), pool, lane);
}

}  // namespace querc::embed
