// Reproduces Figure 4: per-query runtime for the TPC-H workload under (a)
// no indexes and (b) the indexes the native advisor recommends at the
// three-minute time budget. The low-quality 3-minute configuration makes
// specific queries — the Q18 instances, positions ~646..684 in the
// template-major sequence — run several times SLOWER than with no indexes,
// because the optimizer picks a bad plan off a misestimated
// HAVING-aggregate cardinality.

#include "bench/bench_common.h"
#include "engine/advisor.h"
#include "engine/cost_model.h"

namespace querc::bench {
namespace {

int Main() {
  std::printf("=== Figure 4: per-query runtime, no indexes vs 3-minute "
              "indexes ===\n");
  workload::Workload tpch = TpchWorkload();
  std::vector<std::string> texts;
  for (const auto& q : tpch) texts.push_back(q.text);

  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);

  engine::AdvisorOptions options;
  options.budget_minutes = 3.0;
  engine::TuningAdvisor advisor(&model, options);
  auto rec = advisor.Recommend(texts);
  std::printf("3-minute native config: %s (refined=%d)\n",
              engine::ConfigToString(rec.config).c_str(),
              rec.completed_refinement ? 1 : 0);

  auto no_index = engine::RunWorkload(model, texts, {});
  auto three_min = engine::RunWorkload(model, texts, rec.config);

  // Full per-query series (the figure's x-axis) to CSV.
  util::TableWriter series(
      {"query_index", "template", "no_indexes_s", "three_minute_indexes_s"});
  for (size_t i = 0; i < texts.size(); ++i) {
    series.AddRow({std::to_string(i),
                   "Q" + std::to_string(tpch[i].template_id),
                   util::TableWriter::Num(no_index.per_query_seconds[i], 4),
                   util::TableWriter::Num(three_min.per_query_seconds[i], 4)});
  }
  util::Status csv = series.WriteCsv("fig4_per_query.csv");
  if (csv.ok()) std::printf("(per-query series: fig4_per_query.csv)\n");

  // Aggregated per-template view for the terminal.
  util::TableWriter table({"template", "first_pos", "no_indexes_avg_s",
                           "3min_indexes_avg_s", "ratio"});
  const int kInstances = 38;
  for (int t = 1; t <= 22; ++t) {
    size_t first = static_cast<size_t>((t - 1) * kInstances);
    double base = 0.0;
    double tuned = 0.0;
    for (int i = 0; i < kInstances; ++i) {
      base += no_index.per_query_seconds[first + static_cast<size_t>(i)];
      tuned += three_min.per_query_seconds[first + static_cast<size_t>(i)];
    }
    base /= kInstances;
    tuned /= kInstances;
    table.AddRow({"Q" + std::to_string(t), std::to_string(first),
                  util::TableWriter::Num(base, 3),
                  util::TableWriter::Num(tuned, 3),
                  util::TableWriter::Num(tuned / base, 2)});
  }
  EmitTable(table,
            "Figure 4 (aggregated): mean per-query runtime by template",
            "fig4_per_template.csv");

  std::printf("\ntotals: no indexes %.1fs, 3-minute indexes %.1fs\n",
              no_index.total_seconds, three_min.total_seconds);
  // Highlight the regression window the paper calls out (Q18: ~640-680).
  size_t q18_first = 17 * kInstances;
  double worst_ratio = 0.0;
  for (int i = 0; i < kInstances; ++i) {
    size_t idx = q18_first + static_cast<size_t>(i);
    worst_ratio = std::max(worst_ratio,
                           three_min.per_query_seconds[idx] /
                               no_index.per_query_seconds[idx]);
  }
  std::printf("Q18 instances occupy positions %zu..%zu; worst slowdown "
              "under the 3-minute indexes: %.1fx\n",
              q18_first, q18_first + kInstances - 1, worst_ratio);
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main() { return querc::bench::Main(); }
