#include "ml/kmedoids.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace querc::ml {

KMedoidsResult KMedoids(size_t n,
                        const std::function<double(size_t, size_t)>& distance,
                        size_t k, const KMedoidsOptions& options) {
  assert(n > 0);
  k = std::clamp<size_t>(k, 1, n);
  util::Rng rng(options.seed);

  // Cache the (symmetric) distance matrix.
  std::vector<double> d(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double v = distance(i, j);
      d[i * n + j] = v;
      d[j * n + i] = v;
    }
  }
  auto dist = [&](size_t i, size_t j) { return d[i * n + j]; };

  // Greedy BUILD phase: first medoid minimizes total distance; each
  // subsequent medoid maximizes cost reduction.
  KMedoidsResult result;
  std::vector<bool> is_medoid(n, false);
  {
    size_t best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      double cost = 0.0;
      for (size_t j = 0; j < n; ++j) cost += dist(i, j);
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    result.medoids.push_back(best);
    is_medoid[best] = true;
  }
  std::vector<double> nearest(n);
  auto refresh_nearest = [&] {
    for (size_t j = 0; j < n; ++j) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t m : result.medoids) best = std::min(best, dist(m, j));
      nearest[j] = best;
    }
  };
  refresh_nearest();
  while (result.medoids.size() < k) {
    size_t best = 0;
    double best_gain = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (is_medoid[i]) continue;
      double gain = 0.0;
      for (size_t j = 0; j < n; ++j) {
        gain += std::max(0.0, nearest[j] - dist(i, j));
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    result.medoids.push_back(best);
    is_medoid[best] = true;
    refresh_nearest();
  }

  // SWAP phase: replace a medoid with a non-medoid while it lowers cost.
  auto total_cost = [&] {
    double cost = 0.0;
    for (size_t j = 0; j < n; ++j) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t m : result.medoids) best = std::min(best, dist(m, j));
      cost += best;
    }
    return cost;
  };
  double cost = total_cost();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    bool improved = false;
    for (size_t mi = 0; mi < result.medoids.size() && !improved; ++mi) {
      for (size_t cand = 0; cand < n && !improved; ++cand) {
        if (is_medoid[cand]) continue;
        size_t old = result.medoids[mi];
        result.medoids[mi] = cand;
        double new_cost = total_cost();
        if (new_cost + 1e-12 < cost) {
          cost = new_cost;
          is_medoid[old] = false;
          is_medoid[cand] = true;
          improved = true;
        } else {
          result.medoids[mi] = old;
        }
      }
    }
    if (!improved) break;
  }

  // Final assignment.
  result.assignment.assign(n, 0);
  result.total_cost = 0.0;
  for (size_t j = 0; j < n; ++j) {
    double best = std::numeric_limits<double>::infinity();
    int best_m = 0;
    for (size_t mi = 0; mi < result.medoids.size(); ++mi) {
      double v = dist(result.medoids[mi], j);
      if (v < best) {
        best = v;
        best_m = static_cast<int>(mi);
      }
    }
    result.assignment[j] = best_m;
    result.total_cost += best;
  }
  return result;
}

}  // namespace querc::ml
