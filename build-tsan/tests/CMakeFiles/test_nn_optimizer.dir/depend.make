# Empty dependencies file for test_nn_optimizer.
# This may be replaced when dependencies are built.
