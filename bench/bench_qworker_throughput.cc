// Microbenchmarks (google-benchmark): throughput of the hot online path —
// lexing, normalization, embedding, and end-to-end QWorker labeling — plus
// the offline building blocks (K-means, advisor what-if costing). Querc's
// QWorkers sit on (or beside) the query path, so per-query latency is the
// operative metric.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "engine/cost_model.h"
#include "ml/kmeans.h"
#include "ml/random_forest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "querc/classifier.h"
#include "querc/qworker.h"
#include "querc/qworker_pool.h"
#include "sql/analyzer.h"
#include "sql/lexer.h"
#include "sql/normalizer.h"
#include "util/stopwatch.h"

namespace querc::bench {
namespace {

const workload::Workload& SharedWorkload() {
  static const workload::Workload* wl = [] {
    workload::SnowflakeGenerator::Options options;
    options.seed = 5;
    options.accounts =
        workload::SnowflakeGenerator::UniformAccounts(4, 250, 5);
    return new workload::Workload(
        workload::SnowflakeGenerator(options).Generate());
  }();
  return *wl;
}

const std::string& SampleQuery(size_t i) {
  const auto& wl = SharedWorkload();
  return wl[i % wl.size()].text;
}

void BM_Lex(benchmark::State& state) {
  size_t i = 0;
  sql::LexOptions options;
  options.dialect = sql::Dialect::kSnowflake;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::LexLenient(SampleQuery(i++), options));
  }
}
BENCHMARK(BM_Lex);

void BM_TokenizeForEmbedding(benchmark::State& state) {
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(embed::TokenizeForEmbedding(
        SampleQuery(i++), sql::Dialect::kSnowflake));
  }
}
BENCHMARK(BM_TokenizeForEmbedding);

void BM_Analyze(benchmark::State& state) {
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sql::AnalyzeText(SampleQuery(i++), sql::Dialect::kSnowflake));
  }
}
BENCHMARK(BM_Analyze);

const embed::Embedder& SharedEmbedder(bool lstm) {
  static const embed::Embedder* doc2vec = [] {
    auto options = Doc2VecBenchOptions();
    options.epochs = 3;
    auto* e = new embed::Doc2VecEmbedder(options);
    (void)embed::TrainOnWorkload(*e, SharedWorkload());
    return e;
  }();
  static const embed::Embedder* autoencoder = [] {
    auto options = LstmBenchOptions();
    options.epochs = 1;
    auto* e = new embed::LstmAutoencoderEmbedder(options);
    (void)embed::TrainOnWorkload(*e, SharedWorkload());
    return e;
  }();
  return lstm ? *autoencoder : *doc2vec;
}

void BM_EmbedDoc2Vec(benchmark::State& state) {
  const embed::Embedder& embedder = SharedEmbedder(false);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        embedder.EmbedQuery(SampleQuery(i++), sql::Dialect::kSnowflake));
  }
}
BENCHMARK(BM_EmbedDoc2Vec);

void BM_EmbedLstm(benchmark::State& state) {
  const embed::Embedder& embedder = SharedEmbedder(true);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        embedder.EmbedQuery(SampleQuery(i++), sql::Dialect::kSnowflake));
  }
}
BENCHMARK(BM_EmbedLstm);

/// One trained (LSTM embedder, forest labeler) user classifier, shared by
/// the QWorker and QWorkerPool benchmarks so training cost is paid once.
std::shared_ptr<const core::Classifier> SharedUserClassifier() {
  static const std::shared_ptr<const core::Classifier> classifier = [] {
    auto embedder = std::make_shared<embed::LstmAutoencoderEmbedder>([] {
      auto o = LstmBenchOptions();
      o.epochs = 1;
      return o;
    }());
    (void)embed::TrainOnWorkload(*embedder, SharedWorkload());
    auto c = std::make_shared<core::Classifier>(
        "user", embedder,
        std::make_unique<ml::RandomForestClassifier>(
            ml::RandomForestClassifier::Options{.num_trees = 20}));
    (void)c->Train(SharedWorkload(), workload::UserOf);
    return c;
  }();
  return classifier;
}

void BM_QWorkerProcess(benchmark::State& state) {
  // End-to-end online path: embed + label through a deployed classifier.
  core::QWorker::Options options;
  options.application = "bench";
  core::QWorker worker(options);
  worker.Deploy(SharedUserClassifier());

  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(worker.Process(SharedWorkload()[i++ %
                                                             SharedWorkload()
                                                                 .size()]));
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QWorkerProcess);

/// End-to-end sharded service layer: one whole workload batch fanned out
/// across N QWorker shards on the pool's thread pool. Arg = shard count;
/// the scaling curve is the paper's "parallelized in the usual ways"
/// claim made measurable.
void BM_QWorkerPoolProcessBatch(benchmark::State& state) {
  core::QWorkerPool::Options options;
  options.application = "bench-pool";
  options.num_shards = static_cast<size_t>(state.range(0));
  // Round-robin spreads the batch uniformly so the benchmark measures
  // scaling, not the workload's tenant skew.
  options.partition = core::QWorkerPool::Partition::kRoundRobin;
  core::QWorkerPool pool(options);
  pool.Deploy(SharedUserClassifier());

  const workload::Workload& batch = SharedWorkload();
  util::Stopwatch timer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.ProcessBatch(batch));
  }
  double seconds = timer.ElapsedSeconds();
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(batch.size()),
      benchmark::Counter::kIsRate);
  auto stats = pool.Stats();
  double max_shard_mean = 0.0;
  for (const auto& s : stats) {
    max_shard_mean = std::max(max_shard_mean, s.latency.mean_ms());
  }
  state.counters["shard_mean_ms"] = max_shard_mean;

  // Publish the headline numbers as labeled gauges so main() can dump
  // them to BENCH_qworker.json through the obs JSON exporter.
  obs::HistogramSnapshot merged = pool.MergedLatency();
  obs::Labels labels = {{"shards", std::to_string(state.range(0))}};
  auto& registry = obs::MetricsRegistry::Global();
  registry
      .GetGauge("bench_qworker_qps", labels,
                "ProcessBatch throughput in queries per second")
      .Set(static_cast<double>(state.iterations()) *
           static_cast<double>(batch.size()) / std::max(seconds, 1e-12));
  registry
      .GetGauge("bench_qworker_p50_ms", labels,
                "Median per-query QWorker latency across shards")
      .Set(merged.p50());
  registry
      .GetGauge("bench_qworker_p99_ms", labels,
                "p99 per-query QWorker latency across shards")
      .Set(merged.p99());
}
BENCHMARK(BM_QWorkerPoolProcessBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// Same pool, tenant-affine sharding: accounts hash to shards, so skewed
/// tenants bound the speedup — the load-balancing trade-off in one number.
void BM_QWorkerPoolByAccount(benchmark::State& state) {
  core::QWorkerPool::Options options;
  options.application = "bench-pool-acct";
  options.num_shards = static_cast<size_t>(state.range(0));
  options.partition = core::QWorkerPool::Partition::kByAccount;
  core::QWorkerPool pool(options);
  pool.Deploy(SharedUserClassifier());

  const workload::Workload& batch = SharedWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.ProcessBatch(batch));
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(batch.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QWorkerPoolByAccount)->Arg(4)->UseRealTime();

void BM_KMeansSummarize(benchmark::State& state) {
  const embed::Embedder& embedder = SharedEmbedder(false);
  static const std::vector<nn::Vec>* vectors = [&] {
    auto* v = new std::vector<nn::Vec>(
        embed::EmbedWorkload(embedder, SharedWorkload()));
    return v;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ml::KMeans(*vectors, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_KMeansSummarize)->Arg(8)->Arg(32);

void BM_WhatIfCosting(benchmark::State& state) {
  static const engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  util::Rng rng(3);
  std::vector<sql::QueryShape> shapes;
  for (int q = 1; q <= 22; ++q) {
    shapes.push_back(sql::AnalyzeText(
        workload::TpchGenerator::Instantiate(q, rng),
        sql::Dialect::kSqlServer));
  }
  engine::IndexConfig config = {{"lineitem", {"l_shipdate"}},
                                {"orders", {"o_orderdate"}}};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Cost(shapes[i++ % shapes.size()], config));
  }
}
BENCHMARK(BM_WhatIfCosting);

}  // namespace
}  // namespace querc::bench

// Custom main instead of BENCHMARK_MAIN(): after the run, every
// bench_-prefixed metric is written to BENCH_qworker.json so CI and
// scripts get machine-readable qps/p50/p99 per shard count without
// scraping the human-oriented console table.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::string json = querc::obs::ExportJson(
      querc::obs::MetricsRegistry::Global(), "bench_");
  const char* path = "BENCH_qworker.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
  return 0;
}
