#include "ml/dataset.h"

namespace querc::ml {

int LabelEncoder::FitId(const std::string& label) {
  auto it = index_.find(label);
  if (it != index_.end()) return it->second;
  int id = static_cast<int>(labels_.size());
  index_[label] = id;
  labels_.push_back(label);
  return id;
}

int LabelEncoder::Id(const std::string& label) const {
  auto it = index_.find(label);
  return it == index_.end() ? -1 : it->second;
}

std::vector<int> LabelEncoder::FitTransform(
    const std::vector<std::string>& column) {
  std::vector<int> out;
  out.reserve(column.size());
  for (const auto& label : column) out.push_back(FitId(label));
  return out;
}

}  // namespace querc::ml
