#ifndef QUERC_UTIL_CONCURRENT_AGGREGATOR_H_
#define QUERC_UTIL_CONCURRENT_AGGREGATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace querc::util {

/// One aggregated entry: a string key, two monotonically increasing
/// counters, and a first-wins annotation. This is the common shape of the
/// service's merge paths — lint offender maps (count = instances, weight =
/// diagnostics, tag = example text), template histograms (count only), and
/// any future fingerprint→stats aggregation.
struct AggregateEntry {
  std::string key;
  uint64_t count = 0;   ///< primary counter; eviction ranks by this
  uint64_t weight = 0;  ///< secondary counter
  std::string tag;      ///< first-wins annotation

  /// Total merge: every field participates. Counters sum; `key` and `tag`
  /// are kept if already set, adopted from `other` otherwise — so merging
  /// shard-local views in any order yields the same totals and a stable
  /// first-wins annotation.
  void Merge(const AggregateEntry& other);
};

/// Sharded, open-addressed concurrent hash aggregator keyed by
/// fingerprint/label — the lock-free replacement for the per-shard
/// "mutex + std::map" merge paths (lint offenders, template histograms).
/// Adapted from the lock-free hash table + two-phase central merge design
/// of parallel group-by engines.
///
/// ## Hot path (Record)
///
/// Keys hash (FNV-1a/64) to one of `shards` striped tables; within a
/// table, slots are claimed by a single compare-and-swap on the slot's
/// hash word and counters are per-slot relaxed atomic adds. No mutex is
/// taken to update an existing key or to insert while the shard is under
/// capacity; two threads recording different keys touch disjoint cache
/// lines, and two threads recording the same key contend only on that
/// slot's counters.
///
/// Key identity is the full 64-bit hash: the probe loop never compares
/// key bytes, so the key record is only dereferenced by Snapshot() and
/// the eviction path (both under the shard's cold-path mutex), which is
/// what makes immediate reclamation of evicted keys safe. Two distinct
/// keys colliding on all 64 bits would alias one entry; at the
/// cardinalities this serves (≤ tens of millions of templates) that
/// probability is negligible (~n²/2⁶⁵).
///
/// ## Bounded capacity: evict-least, count drops
///
/// A shard at capacity does not silently refuse new keys (the bug this
/// class exists to fix). The arriving key takes the shard's eviction
/// mutex (cold path only), picks the minimum-`count` slot in its probe
/// window, folds the victim's counters into the dropped totals, and
/// installs itself in the victim's slot — so a late-arriving hot key
/// still climbs into the top-N while every displaced count remains
/// visible via dropped_count()/dropped_weight()/dropped_keys(). In the
/// rare case the probe window has nothing evictable, the arrival itself
/// is counted as dropped instead. Replacement (never emptying) keeps
/// linear-probe chains valid; capacity is a soft target — residency can
/// transiently exceed it by the number of concurrently inserting
/// threads, and is hard-bounded by the table size (2× capacity).
///
/// ## Two-phase merge (Snapshot / MergeInto)
///
/// Phase 1: Snapshot() copies each shard's live slots under that shard's
/// eviction mutex — blocking evictions and other snapshots but *not*
/// inserts or counter updates. Phase 2: MergeInto() folds a snapshot
/// into a caller-owned central map via AggregateEntry::Merge. Per-shard
/// copies are internally consistent with respect to eviction; counters
/// read while writers are live are each atomic but the snapshot as a
/// whole is a racy cut (exact once writers quiesce).
///
/// ## Memory-ordering contract
///
///  - slot claim: CAS on `hash` with acquire-release;
///  - key publication: store `rec` release, loads acquire — a reader that
///    observes a non-null record observes fully-constructed key bytes;
///  - counters and dropped totals: relaxed (values are independent sums);
///  - eviction swaps `count`/`weight` to 0 before republishing `hash`, so
///    an increment racing an eviction lands either in the dropped totals
///    or on the slot's new key — counts are conserved in total, and are
///    never lost, though one racing delta may be attributed to the new
///    key. Exactness holds whenever readers quiesce (end-of-run stats,
///    tests, benches).
///
/// Destruction requires quiescence (no concurrent Record/Snapshot), like
/// every other container.
class ConcurrentAggregator {
 public:
  struct Options {
    /// Target maximum resident keys across all shards (soft bound; see
    /// class comment). At least 1 per shard.
    size_t capacity = 1 << 16;
    /// Striped sub-tables (rounded up to a power of two, at least 1).
    /// More shards = less insert contention, slightly coarser per-shard
    /// capacity split.
    size_t shards = 8;
  };

  /// What Record() did, so callers can mirror drops into their own
  /// counters (e.g. querc_lint_templates_dropped_total).
  enum class Outcome {
    kUpdated,   ///< existing key's counters bumped
    kInserted,  ///< new key claimed a free slot
    kEvicted,   ///< new key installed by evicting the least-count entry
    kDropped,   ///< nothing evictable: this arrival's deltas were dropped
  };

  explicit ConcurrentAggregator(const Options& options);
  ~ConcurrentAggregator();

  ConcurrentAggregator(const ConcurrentAggregator&) = delete;
  ConcurrentAggregator& operator=(const ConcurrentAggregator&) = delete;

  /// Adds (`count_delta`, `weight_delta`) to `key`'s entry, inserting it
  /// if new (with `tag` as its first-wins annotation). Lock-free unless
  /// the shard is at capacity or the probe window is clustered.
  Outcome Record(std::string_view key, uint64_t count_delta = 1,
                 uint64_t weight_delta = 0, std::string_view tag = {});

  /// Phase 1 of the central merge: a copy of every live entry. Blocks
  /// evictions (not inserts) per shard while that shard is copied.
  std::vector<AggregateEntry> Snapshot() const;

  /// Phase 2 of the central merge: folds Snapshot() into `central`
  /// keyed by entry key, using AggregateEntry::Merge (total, all fields).
  void MergeInto(
      std::unordered_map<std::string, AggregateEntry>& central) const;

  /// The `n` entries with the largest `weight` (ties: larger `count`,
  /// then lexicographic key for determinism), worst-first.
  std::vector<AggregateEntry> Top(size_t n) const;

  /// Keys currently resident (may transiently exceed capacity; see class
  /// comment).
  size_t size() const;
  /// The configured soft bound, as split across shards.
  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }

  /// Eviction/drop accounting: number of keys displaced (or arrivals
  /// dropped), and the total count/weight those displaced entries had
  /// accumulated. size()+Snapshot() totals plus these are conserved.
  uint64_t dropped_keys() const;
  uint64_t dropped_count() const;
  uint64_t dropped_weight() const;

 private:
  /// Immutable once published into a slot; only dereferenced under the
  /// owning shard's eviction mutex (Snapshot and the eviction path), so
  /// an evicted record can be freed immediately.
  struct KeyRec {
    std::string key;
    std::string tag;
  };

  struct Slot {
    /// 0 = empty; otherwise the key's (never-zero) 64-bit hash. Claimed
    /// empty→hash by CAS; rewritten only under the eviction mutex.
    std::atomic<uint64_t> hash{0};
    /// Published with release after the hash claim; null while a claim
    /// is mid-publish.
    std::atomic<KeyRec*> rec{nullptr};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> weight{0};
  };

  struct Shard {
    std::unique_ptr<Slot[]> slots;
    std::atomic<size_t> size{0};
    std::atomic<uint64_t> dropped_keys{0};
    std::atomic<uint64_t> dropped_count{0};
    std::atomic<uint64_t> dropped_weight{0};
    /// Cold path only: eviction and Snapshot. Never taken by in-capacity
    /// inserts or counter updates. The slot atomics themselves stay
    /// unannotated: the lock-free fast path updates them by CAS with no
    /// lock held (the mutex only serializes rewrites against snapshots).
    mutable Mutex evict_mu{LockRank::kAggregatorEvict,
                           "aggregator.evict_mu"};
  };

  static uint64_t KeyHash(std::string_view key);

  /// Eviction/overflow path for `shard`; see Record.
  Outcome RecordSlow(Shard& shard, size_t start, uint64_t hash,
                     std::string_view key, uint64_t count_delta,
                     uint64_t weight_delta, std::string_view tag);

  size_t per_shard_capacity_ = 0;
  size_t slots_per_shard_ = 0;  // power of two
  size_t slot_mask_ = 0;
  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace querc::util

#endif  // QUERC_UTIL_CONCURRENT_AGGREGATOR_H_
