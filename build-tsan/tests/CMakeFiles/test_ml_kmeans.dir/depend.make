# Empty dependencies file for test_ml_kmeans.
# This may be replaced when dependencies are built.
