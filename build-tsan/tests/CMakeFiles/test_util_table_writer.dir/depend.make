# Empty dependencies file for test_util_table_writer.
# This may be replaced when dependencies are built.
