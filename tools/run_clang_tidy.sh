#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy at the repo root) over the querc
# sources using the compile_commands.json of an existing build tree.
#
#   tools/run_clang_tidy.sh [build_dir] [-- extra clang-tidy args]
#
# Files are checked in parallel (one clang-tidy process per core; override
# with QUERC_TIDY_JOBS), and repeated header diagnostics are deduplicated:
# a header included by N translation units produces its findings once, not
# N times.
#
# Exits 0 with a notice when clang-tidy is not installed, so CI stages
# without the tool degrade gracefully instead of failing the build.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
jobs="${QUERC_TIDY_JOBS:-$(nproc 2>/dev/null || echo 2)}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (ok)."
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing;" \
       "configuring with CMAKE_EXPORT_COMPILE_COMMANDS=ON..."
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null
fi

shift $(( $# > 0 ? 1 : 0 )) || true
if [ "${1:-}" = "--" ]; then shift; fi

# First-party sources only: third_party and generated files are out of
# scope for the lint profile.
mapfile -t sources < <(cd "$repo_root" && \
  find src tools -name '*.cc' -not -path '*third_party*' | sort)

echo "run_clang_tidy: checking ${#sources[@]} files against" \
     "$repo_root/.clang-tidy with $jobs parallel jobs"

raw_out="$(mktemp)"
trap 'rm -f "$raw_out"' EXIT

# Fan the files out across cores. clang-tidy's exit status is collected
# per file: any nonzero (diagnostics with WarningsAsErrors, or a crash)
# fails the run after all files have been checked.
status=0
printf '%s\n' "${sources[@]}" | \
  xargs -P "$jobs" -I{} -- \
    clang-tidy -p "$build_dir" --quiet "$@" "$repo_root/{}" \
  >"$raw_out" 2>/dev/null || status=1

# Dedupe: a diagnostic block starts at its "file:line:col: severity:"
# header. Shared headers surface the same block once per including TU;
# keep the first occurrence of each block, preserving order.
awk '
  /^[^ ].*:[0-9]+:[0-9]+: (warning|error|note):/ {
    emitting = !seen[$0]++
  }
  emitting { print }
' "$raw_out"

exit $status
