#include "querc/classifier.h"

#include "obs/trace.h"

namespace querc::core {

Classifier::Classifier(std::string task_name,
                       std::shared_ptr<const embed::Embedder> embedder,
                       std::unique_ptr<ml::VectorClassifier> labeler)
    : task_name_(std::move(task_name)),
      embedder_(std::move(embedder)),
      labeler_(std::move(labeler)) {}

util::Status Classifier::Train(const workload::Workload& corpus,
                               const LabelExtractor& label_of,
                               util::ThreadPool* pool) {
  if (corpus.empty()) {
    return util::Status::InvalidArgument(task_name_ +
                                         ": empty training corpus");
  }
  ml::Dataset data;
  data.x = embed::EmbedWorkload(*embedder_, corpus, pool);
  data.y.reserve(corpus.size());
  for (const auto& q : corpus) {
    data.y.push_back(labels_.FitId(label_of(q)));
  }
  labeler_->Fit(data);
  trained_ = true;
  return util::Status::OK();
}

int Classifier::PredictId(const workload::LabeledQuery& query) const {
  if (!trained_) return -1;
  nn::Vec embedded;
  {
    static obs::Histogram& hist = obs::StageHistogram("embed");
    obs::Span span(&hist, "embed");
    embedded = embedder_->EmbedQuery(query.text, query.dialect);
  }
  return PredictIdFromEmbedding(embedded);
}

int Classifier::PredictIdFromEmbedding(const nn::Vec& embedded) const {
  if (!trained_) return -1;
  static obs::Histogram& hist = obs::StageHistogram("classify");
  obs::Span span(&hist, "classify");
  return labeler_->Predict(embedded);
}

std::string Classifier::PredictFromEmbedding(const nn::Vec& embedded) const {
  int id = PredictIdFromEmbedding(embedded);
  return id >= 0 ? labels_.Label(id) : std::string();
}

std::string Classifier::Predict(const workload::LabeledQuery& query) const {
  int id = PredictId(query);
  return id >= 0 ? labels_.Label(id) : std::string();
}

}  // namespace querc::core
