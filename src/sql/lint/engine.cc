#include "sql/lint/engine.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "sql/lexer.h"
#include "sql/normalizer.h"

namespace querc::sql::lint {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "warning";
}

bool ParseSeverity(std::string_view name, Severity* out) {
  if (name == "info") {
    *out = Severity::kInfo;
  } else if (name == "warning") {
    *out = Severity::kWarning;
  } else if (name == "error") {
    *out = Severity::kError;
  } else {
    return false;
  }
  return true;
}

size_t LintReport::CountAtLeast(Severity floor) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity >= floor) ++n;
  }
  return n;
}

namespace {

void SortDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::stable_sort(diagnostics->begin(), diagnostics->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.query_index != b.query_index) {
                       return a.query_index < b.query_index;
                     }
                     if (a.span.offset != b.span.offset) {
                       return a.span.offset < b.span.offset;
                     }
                     return a.rule_id < b.rule_id;
                   });
}

}  // namespace

LintEngine::LintEngine(LintOptions options, const SchemaProvider* schema)
    : LintEngine(RuleRegistry::Builtin(), options, schema) {}

LintEngine::LintEngine(RuleRegistry registry, LintOptions options,
                       const SchemaProvider* schema)
    : registry_(std::move(registry)), options_(options), schema_(schema) {}

QueryLint LintEngine::LintQuery(std::string_view text, size_t query_index,
                                Dialect dialect) const {
  LexOptions lex_options;
  lex_options.dialect = dialect;
  TokenList tokens = LexLenient(text, lex_options);
  QueryShape shape = Analyze(tokens);

  QueryLint result;
  result.query_index = query_index;
  result.fingerprint = NormalizedText(tokens);

  QueryContext ctx;
  ctx.text = text;
  ctx.tokens = &tokens;
  ctx.shape = &shape;
  ctx.fingerprint = result.fingerprint;
  ctx.query_index = query_index;
  ctx.schema = schema_;

  for (const auto& rule : registry_.rules()) {
    rule->Check(ctx, &result.diagnostics);
  }
  for (Diagnostic& d : result.diagnostics) d.query_index = query_index;
  SortDiagnostics(&result.diagnostics);
  return result;
}

LintReport LintEngine::LintTexts(const std::vector<std::string>& texts) const {
  LintReport report;
  report.total_queries = texts.size();

  // Per-query pass. Token streams and shapes must outlive the workload
  // pass, so keep them alongside the contexts.
  struct Analyzed {
    TokenList tokens;
    QueryShape shape;
  };
  std::vector<Analyzed> analyzed(texts.size());
  std::vector<QueryContext> contexts(texts.size());
  LexOptions lex_options;
  lex_options.dialect = options_.dialect;
  for (size_t i = 0; i < texts.size(); ++i) {
    analyzed[i].tokens = LexLenient(texts[i], lex_options);
    analyzed[i].shape = Analyze(analyzed[i].tokens);
    QueryContext& ctx = contexts[i];
    ctx.text = texts[i];
    ctx.tokens = &analyzed[i].tokens;
    ctx.shape = &analyzed[i].shape;
    ctx.fingerprint = NormalizedText(analyzed[i].tokens);
    ctx.query_index = i;
    ctx.schema = schema_;
    for (const auto& rule : registry_.rules()) {
      size_t before = report.diagnostics.size();
      rule->Check(ctx, &report.diagnostics);
      for (size_t d = before; d < report.diagnostics.size(); ++d) {
        report.diagnostics[d].query_index = i;
      }
    }
  }

  // Template map: group queries by fingerprint, count distinct raw texts
  // (distinct literal bindings) and inspect the folded template.
  std::map<std::string, TemplateGroup> groups;
  std::map<std::string, std::set<std::string>> distinct_texts;
  for (size_t i = 0; i < texts.size(); ++i) {
    TemplateGroup& g = groups[contexts[i].fingerprint];
    if (g.query_indices.empty()) {
      g.fingerprint = contexts[i].fingerprint;
      for (const Token& t : *contexts[i].tokens) {
        if (t.type == TokenType::kNumber || t.type == TokenType::kString) {
          ++g.literal_tokens;
        } else if (t.type == TokenType::kParameter) {
          g.has_parameters = true;
        }
      }
    }
    g.query_indices.push_back(i);
    distinct_texts[contexts[i].fingerprint].insert(texts[i]);
  }
  std::vector<TemplateGroup> templates;
  templates.reserve(groups.size());
  for (auto& [fingerprint, group] : groups) {
    group.distinct_texts = distinct_texts[fingerprint].size();
    templates.push_back(std::move(group));
  }

  WorkloadContext workload;
  workload.queries = &contexts;
  workload.templates = &templates;
  workload.hot_template_threshold = options_.hot_template_threshold;
  for (const auto& rule : registry_.rules()) {
    rule->CheckWorkload(workload, &report.diagnostics);
  }

  SortDiagnostics(&report.diagnostics);
  for (const Diagnostic& d : report.diagnostics) {
    ++report.rule_hits[d.rule_id];
  }

  // Worst templates by diagnostic count (ties broken by instance count).
  std::map<std::string, size_t> template_diagnostics;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.query_index < contexts.size()) {
      ++template_diagnostics[contexts[d.query_index].fingerprint];
    }
  }
  for (const TemplateGroup& g : templates) {
    auto it = template_diagnostics.find(g.fingerprint);
    if (it == template_diagnostics.end() || it->second == 0) continue;
    TemplateLint t;
    t.fingerprint = g.fingerprint;
    t.instances = g.query_indices.size();
    t.diagnostics = it->second;
    t.example_query = g.query_indices.front();
    report.top_templates.push_back(std::move(t));
  }
  std::stable_sort(report.top_templates.begin(), report.top_templates.end(),
                   [](const TemplateLint& a, const TemplateLint& b) {
                     if (a.diagnostics != b.diagnostics) {
                       return a.diagnostics > b.diagnostics;
                     }
                     return a.instances > b.instances;
                   });
  if (report.top_templates.size() > options_.top_templates) {
    report.top_templates.resize(options_.top_templates);
  }
  return report;
}

}  // namespace querc::sql::lint
