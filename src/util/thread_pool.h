#ifndef QUERC_UTIL_THREAD_POOL_H_
#define QUERC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace querc::util {

/// Fixed-size worker pool used by the training module for parallel model
/// training/evaluation. Tasks are void() closures; `WaitIdle` blocks until
/// every submitted task has finished.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// The callable is shared by all workers; it must be thread-safe.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace querc::util

#endif  // QUERC_UTIL_THREAD_POOL_H_
