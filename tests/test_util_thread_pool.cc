#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace querc::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(500, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyQueueReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

// Regression: the old implementation waited on global pool idleness, so a
// ParallelFor issued from *inside* a pool worker blocked a worker that was
// itself needed to drain the queue — a deadlock for any nested parallel
// path (e.g. training jobs reaching the summarizer's parallel loops). The
// caller now participates in its own batch, so nesting always completes.
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&pool, &inner_total](size_t) {
    pool.ParallelFor(8, [&inner_total](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPoolTest, NestedParallelForOnSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(3, [&pool, &inner_total](size_t) {
    pool.ParallelFor(5, [&inner_total](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 3 * 5);
}

TEST(ThreadPoolTest, ParallelForFromSubmittedTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.Submit([&pool, &total] {
    pool.ParallelFor(16, [&total](size_t) { total.fetch_add(1); });
  });
  pool.WaitIdle();
  EXPECT_EQ(total.load(), 16);
}

// Regression: WaitIdle-based batches could return while *their own* tasks
// were still running if another thread's batch kept the pool non-idle in
// a lucky interleaving — or block on the other batch's work. Each batch
// now has a private completion latch: when ParallelFor returns, exactly
// its n calls have finished, regardless of concurrent batches.
TEST(ThreadPoolTest, ConcurrentBatchesFromTwoThreadsAreIndependent) {
  ThreadPool pool(3);
  constexpr int kPerBatch = 400;
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  int a_at_return = -1;
  int b_at_return = -1;
  std::thread ta([&] {
    pool.ParallelFor(kPerBatch, [&a](size_t) { a.fetch_add(1); });
    a_at_return = a.load();
  });
  std::thread tb([&] {
    pool.ParallelFor(kPerBatch, [&b](size_t) { b.fetch_add(1); });
    b_at_return = b.load();
  });
  ta.join();
  tb.join();
  // Each caller observed its own batch fully drained at return time.
  EXPECT_EQ(a_at_return, kPerBatch);
  EXPECT_EQ(b_at_return, kPerBatch);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstTaskException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.ParallelFor(64, [&ran](size_t i) {
      ran.fetch_add(1);
      if (i == 7) throw std::runtime_error("task 7 failed");
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7 failed");
  }
  // The batch still drained: every index ran despite the exception.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitTaskExceptionDoesNotKillWorker) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  // Previously an escaping exception left WorkerLoop via std::terminate.
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForMoreShardsThanIndices) {
  ThreadPool pool(8);
  std::atomic<int> ran{0};
  pool.ParallelFor(2, [&ran](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, PublishesTelemetryToGlobalRegistry) {
  auto& registry = obs::MetricsRegistry::Global();
  uint64_t tasks_before =
      registry.GetCounter("querc_threadpool_tasks_total").value();
  uint64_t recorded_before =
      registry.GetHistogram("querc_threadpool_task_ms").Snapshot().count;

  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 25; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();

  EXPECT_EQ(counter.load(), 25);
  EXPECT_EQ(registry.GetCounter("querc_threadpool_tasks_total").value(),
            tasks_before + 25);
  EXPECT_EQ(
      registry.GetHistogram("querc_threadpool_task_ms").Snapshot().count,
      recorded_before + 25);
  // Nothing queued any more, so the depth gauge has drained back.
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("querc_threadpool_queue_depth").value(), 0.0);
}

}  // namespace
}  // namespace querc::util
