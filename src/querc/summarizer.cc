#include "querc/summarizer.h"

#include <algorithm>

namespace querc::core {

WorkloadSummarizer::Summary WorkloadSummarizer::Summarize(
    const workload::Workload& workload) const {
  return SummarizeVectors(
      workload,
      embed::EmbedWorkload(*embedder_, workload, options_.thread_pool));
}

WorkloadSummarizer::Summary WorkloadSummarizer::SummarizeVectors(
    const workload::Workload& workload,
    const std::vector<nn::Vec>& vectors) const {
  Summary summary;
  if (workload.empty()) return summary;

  // Template histogram of the input workload (concurrent aggregation;
  // chunk-parallel when a pool is configured). Callers read shape
  // diversity off the summary instead of re-normalizing the workload.
  summary.template_histogram =
      workload.TemplateHistogram(options_.thread_pool);

  size_t k = options_.fixed_k;
  if (k == 0) {
    ml::ElbowOptions elbow = options_.elbow;
    elbow.kmeans = options_.kmeans;
    k = ml::ElbowMethod(vectors, elbow).chosen_k;
    if (k == 0) k = std::min<size_t>(8, workload.size());
  }

  ml::KMeansResult km = ml::KMeans(vectors, k, options_.kmeans);
  summary.chosen_k = km.centroids.size();
  summary.inertia = km.inertia;
  summary.witness_indices = ml::NearestPointToCentroids(vectors, km);

  // Dedup witnesses (empty clusters can fall back to the same point).
  std::sort(summary.witness_indices.begin(), summary.witness_indices.end());
  summary.witness_indices.erase(
      std::unique(summary.witness_indices.begin(),
                  summary.witness_indices.end()),
      summary.witness_indices.end());
  for (size_t i : summary.witness_indices) summary.queries.Add(workload[i]);
  return summary;
}

}  // namespace querc::core
