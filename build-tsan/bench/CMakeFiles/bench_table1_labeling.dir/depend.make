# Empty dependencies file for bench_table1_labeling.
# This may be replaced when dependencies are built.
