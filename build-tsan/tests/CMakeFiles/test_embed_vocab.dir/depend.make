# Empty dependencies file for test_embed_vocab.
# This may be replaced when dependencies are built.
