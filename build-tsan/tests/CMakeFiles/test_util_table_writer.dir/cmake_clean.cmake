file(REMOVE_RECURSE
  "CMakeFiles/test_util_table_writer.dir/test_util_table_writer.cc.o"
  "CMakeFiles/test_util_table_writer.dir/test_util_table_writer.cc.o.d"
  "test_util_table_writer"
  "test_util_table_writer.pdb"
  "test_util_table_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_table_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
