# Empty dependencies file for querc_core.
# This may be replaced when dependencies are built.
