file(REMOVE_RECURSE
  "CMakeFiles/query_routing.dir/query_routing.cpp.o"
  "CMakeFiles/query_routing.dir/query_routing.cpp.o.d"
  "query_routing"
  "query_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
