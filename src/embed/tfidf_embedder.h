#ifndef QUERC_EMBED_TFIDF_EMBEDDER_H_
#define QUERC_EMBED_TFIDF_EMBEDDER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "util/statusor.h"

namespace querc::embed {

/// Hashed TF-IDF bag-of-words embedder — one of the non-neural
/// alternatives the paper's §6 defers to future work ("non-negative
/// matrix factorization (NMF), bag-of-words representations, and LDA
/// have been shown to be less effective than neural-network-based
/// methods"). Tokens hash into a fixed number of buckets; bucket values
/// are term frequency x inverse document frequency, L2-normalized.
///
/// Serves as a stronger classical baseline than FeatureEmbedder (it sees
/// the full vocabulary, not hand-picked counters) while sharing its
/// blindness to token order.
class TfidfEmbedder : public Embedder {
 public:
  struct Options {
    size_t buckets = 64;
    /// Sub-linear term frequency: tf = 1 + log(count).
    bool sublinear_tf = true;
  };

  explicit TfidfEmbedder(const Options& options);

  /// Fits document frequencies on the corpus.
  util::Status Train(
      const std::vector<std::vector<std::string>>& docs) override;

  nn::Vec Embed(const std::vector<std::string>& words) const override;

  size_t dim() const override { return options_.buckets; }
  std::string name() const override { return "tfidf"; }

  util::Status Save(std::ostream& out) const;
  static util::StatusOr<TfidfEmbedder> Load(std::istream& in);

 private:
  size_t Bucket(const std::string& word) const;

  Options options_;
  /// Per-bucket inverse document frequency; 1.0 before training.
  nn::Vec idf_;
  bool trained_ = false;
};

}  // namespace querc::embed

#endif  // QUERC_EMBED_TFIDF_EMBEDDER_H_
