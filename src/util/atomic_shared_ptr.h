#ifndef QUERC_UTIL_ATOMIC_SHARED_PTR_H_
#define QUERC_UTIL_ATOMIC_SHARED_PTR_H_

#include <memory>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace querc::util {

/// Atomically swappable shared_ptr slot for publish/subscribe snapshots
/// (copy-on-write: writers build a new immutable object and `store` it;
/// readers `load` a reference that stays valid however long they hold it).
///
/// Implemented as a mutex-guarded shared_ptr rather than
/// std::atomic<std::shared_ptr<T>>: libstdc++ 12's _Sp_atomic lock-bit
/// protocol unlocks the read path with memory_order_relaxed, which
/// ThreadSanitizer reports as a data race against the writer's pointer
/// swap — with this wrapper the whole concurrency layer builds TSan-clean.
/// The critical sections are two pointer copies, so the lock is a few
/// nanoseconds and never held across user code.
template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;
  explicit AtomicSharedPtr(std::shared_ptr<T> initial)
      : ptr_(std::move(initial)) {}

  AtomicSharedPtr(const AtomicSharedPtr&) = delete;
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

  /// Snapshot read; the returned pointer keeps the object alive even if a
  /// store replaces it concurrently.
  std::shared_ptr<T> load() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return ptr_;
  }

  /// Publishes `next`. The displaced object is released *outside* the
  /// lock so arbitrary destructors never run in the critical section.
  void store(std::shared_ptr<T> next) EXCLUDES(mu_) {
    std::shared_ptr<T> displaced;
    {
      MutexLock lock(&mu_);
      displaced = std::exchange(ptr_, std::move(next));
    }
  }

 private:
  mutable Mutex mu_{LockRank::kAtomicSharedPtr, "atomic_shared_ptr.mu"};
  std::shared_ptr<T> ptr_ GUARDED_BY(mu_);
};

}  // namespace querc::util

#endif  // QUERC_UTIL_ATOMIC_SHARED_PTR_H_
