
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/crossval.cc" "src/ml/CMakeFiles/querc_ml.dir/crossval.cc.o" "gcc" "src/ml/CMakeFiles/querc_ml.dir/crossval.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/querc_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/querc_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/querc_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/querc_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/kmedoids.cc" "src/ml/CMakeFiles/querc_ml.dir/kmedoids.cc.o" "gcc" "src/ml/CMakeFiles/querc_ml.dir/kmedoids.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/querc_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/querc_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/querc_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/querc_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/querc_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/querc_ml.dir/random_forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/nn/CMakeFiles/querc_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/querc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
