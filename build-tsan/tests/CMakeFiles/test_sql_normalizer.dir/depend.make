# Empty dependencies file for test_sql_normalizer.
# This may be replaced when dependencies are built.
