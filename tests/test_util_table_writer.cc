#include "util/table_writer.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace querc::util {
namespace {

TEST(TableWriterTest, AsciiAlignsColumns) {
  TableWriter t({"method", "runtime"});
  t.AddRow({"full", "1223.4"});
  t.AddRow({"lstmTPCH", "930.6"});
  std::string out = t.ToAscii();
  EXPECT_NE(out.find("| method   |"), std::string::npos);
  EXPECT_NE(out.find("| lstmTPCH |"), std::string::npos);
  // Header, 2 rows, 3 rules = 6 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(TableWriterTest, CsvEscapesSpecials) {
  TableWriter t({"a", "b"});
  t.AddRow({"with,comma", "with\"quote"});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableWriterTest, NumFormatsPrecision) {
  EXPECT_EQ(TableWriter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::Num(3.14159, 0), "3");
  EXPECT_EQ(TableWriter::Num(100.0, 1), "100.0");
}

TEST(TableWriterTest, WriteCsvRoundTrips) {
  TableWriter t({"k", "v"});
  t.AddRow({"x", "1"});
  std::string path = testing::TempDir() + "/querc_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "x,1");
  std::remove(path.c_str());
}

TEST(TableWriterTest, WriteCsvBadPathFails) {
  TableWriter t({"a"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent_dir_xyz/f.csv").ok());
}

TEST(TableWriterTest, NumRows) {
  TableWriter t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace querc::util
