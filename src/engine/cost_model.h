#ifndef QUERC_ENGINE_COST_MODEL_H_
#define QUERC_ENGINE_COST_MODEL_H_

#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/index.h"
#include "sql/analyzer.h"

namespace querc::engine {

/// Tunable cost constants (simulated seconds). Defaults are calibrated so
/// the TPC-H SF=1 workload of §5.1 runs ~1200 simulated seconds without
/// indexes, matching the paper's Figure 3 baseline.
struct CostModelOptions {
  double seconds_per_scanned_row = 1.6e-7;
  double seconds_per_seek = 2e-3;         // B-tree descend
  double seconds_per_fetched_row = 2.2e-7;  // row fetch via index
                                            // (clustered-ish: partially
                                            // sequential)
  double seconds_per_joined_row = 3e-8;   // hash join build+probe, per row
  double sort_coefficient = 1.2e-8;       // n log2 n
  double seconds_per_aggregated_row = 2e-8;
  /// Multiplier applied to the ACTUAL cost of a plan that used an index
  /// driven by a misestimated HAVING-aggregate predicate (the Q18 bad-plan
  /// effect: the optimizer expects few rows, the engine re-aggregates the
  /// whole table through random accesses).
  double bad_plan_penalty = 8.0;
  /// Estimated selectivity the optimizer (wrongly) assigns to a
  /// HAVING-aggregate predicate treated as a plain column predicate.
  double having_misestimate_selectivity = 1e-4;
  /// Selectivity assumed for predicates whose literals are unparseable.
  double default_selectivity = 1.0 / 3.0;
  double like_prefix_selectivity = 0.05;
  double like_contains_selectivity = 0.02;
  double semi_join_selectivity = 0.3;
};

/// How one table is accessed in the chosen plan.
struct TableAccess {
  std::string table;
  bool used_index = false;
  Index index;                 // valid when used_index
  double estimated_rows = 0.0; // optimizer's cardinality estimate out
  double actual_rows = 0.0;    // "true" cardinality out
  double estimated_cost = 0.0;
  double actual_cost = 0.0;
  bool misestimated = false;   // index chosen off a HAVING-aggregate pattern
};

/// Cost breakdown for one query under one index configuration.
struct QueryCost {
  std::vector<TableAccess> accesses;
  double estimated_seconds = 0.0;  // what the optimizer believed
  double actual_seconds = 0.0;     // what the engine "measures"
  bool used_bad_plan = false;
};

/// The simulated engine's optimizer + cost model. Given a query's
/// structural shape and an index configuration it (a) picks an access path
/// per table by ESTIMATED cost and (b) reports the ACTUAL cost of that
/// choice. Estimated == actual except for flagged misestimation patterns —
/// which is exactly how low-quality index choices end up hurting runtime.
class CostModel {
 public:
  CostModel(const Catalog* catalog, const CostModelOptions& options = {});

  /// Costs `shape` (including subqueries) under `config`.
  QueryCost Cost(const sql::QueryShape& shape,
                 const IndexConfig& config) const;

  /// Convenience: analyze `text` then Cost().
  QueryCost CostText(const std::string& text, const IndexConfig& config,
                     sql::Dialect dialect = sql::Dialect::kSqlServer) const;

  const CostModelOptions& options() const { return options_; }
  const Catalog& catalog() const { return *catalog_; }

  /// Selectivity of `pred` against column stats (nullptr stats => default).
  /// `estimated` selects the optimizer's (flawed) estimate vs ground truth.
  double Selectivity(const sql::Predicate& pred, const ColumnStats* stats,
                     bool estimated) const;

 private:
  /// Costs one query level (no recursion); subquery handling in Cost().
  void CostLevel(const sql::QueryShape& shape, const IndexConfig& config,
                 QueryCost& out) const;

  const Catalog* catalog_;
  CostModelOptions options_;
};

/// Total ACTUAL runtime of `texts` under `config` plus per-query times.
struct WorkloadRuntime {
  double total_seconds = 0.0;
  std::vector<double> per_query_seconds;
};

WorkloadRuntime RunWorkload(const CostModel& model,
                            const std::vector<std::string>& texts,
                            const IndexConfig& config,
                            sql::Dialect dialect = sql::Dialect::kSqlServer);

}  // namespace querc::engine

#endif  // QUERC_ENGINE_COST_MODEL_H_
