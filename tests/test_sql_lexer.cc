#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace querc::sql {
namespace {

TokenList MustLex(std::string_view text, Dialect dialect = Dialect::kGeneric,
                  bool keep_comments = false) {
  LexOptions options;
  options.dialect = dialect;
  options.keep_comments = keep_comments;
  auto result = Lex(text, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : TokenList{};
}

TEST(LexerTest, BasicSelect) {
  TokenList t = MustLex("SELECT a, b FROM t WHERE a = 1");
  ASSERT_EQ(t.size(), 10u);
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_EQ(t[1].text, "a");
  EXPECT_TRUE(t[2].IsPunct(','));
  EXPECT_TRUE(t[4].IsKeyword("FROM"));
  EXPECT_TRUE(t[6].IsKeyword("WHERE"));
  EXPECT_TRUE(t[8].IsOperator("="));
  EXPECT_EQ(t[9].type, TokenType::kNumber);
}

TEST(LexerTest, KeywordsAreCaseInsensitiveAndUppercased) {
  TokenList t = MustLex("select FrOm wHeRe");
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].text, "FROM");
  EXPECT_EQ(t[2].text, "WHERE");
}

TEST(LexerTest, IdentifiersKeepCase) {
  TokenList t = MustLex("SELECT MyColumn FROM MyTable");
  EXPECT_EQ(t[1].text, "MyColumn");
  EXPECT_EQ(t[3].text, "MyTable");
}

TEST(LexerTest, StringLiteralWithEscape) {
  TokenList t = MustLex("SELECT 'it''s a test'");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1].type, TokenType::kString);
  EXPECT_EQ(t[1].text, "it's a test");
}

TEST(LexerTest, UnterminatedStringIsErrorInStrictMode) {
  auto result = Lex("SELECT 'oops");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(LexerTest, LenientClosesUnterminatedString) {
  TokenList t = LexLenient("SELECT 'oops");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1].text, "oops");
}

TEST(LexerTest, Numbers) {
  TokenList t = MustLex("SELECT 42, 3.14, 1e5, 2.5e-3, .5");
  EXPECT_EQ(t[1].text, "42");
  EXPECT_EQ(t[3].text, "3.14");
  EXPECT_EQ(t[5].text, "1e5");
  EXPECT_EQ(t[7].text, "2.5e-3");
  EXPECT_EQ(t[9].text, ".5");
  for (size_t i = 1; i < t.size(); i += 2) {
    EXPECT_EQ(t[i].type, TokenType::kNumber) << i;
  }
}

TEST(LexerTest, NumberFollowedByIdentifierLetterE) {
  TokenList t = MustLex("SELECT 5 edge");
  EXPECT_EQ(t[1].text, "5");
  EXPECT_EQ(t[2].text, "edge");
}

TEST(LexerTest, MultiCharOperators) {
  TokenList t = MustLex("a <= b >= c <> d != e || f :: g");
  EXPECT_TRUE(t[1].IsOperator("<="));
  EXPECT_TRUE(t[3].IsOperator(">="));
  EXPECT_TRUE(t[5].IsOperator("<>"));
  EXPECT_TRUE(t[7].IsOperator("!="));
  EXPECT_TRUE(t[9].IsOperator("||"));
  EXPECT_TRUE(t[11].IsOperator("::"));
}

TEST(LexerTest, LineCommentsDroppedByDefault) {
  TokenList t = MustLex("SELECT 1 -- trailing comment\n, 2");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[3].text, "2");
}

TEST(LexerTest, BlockCommentsKeptWhenRequested) {
  TokenList t =
      MustLex("SELECT /* hint */ 1", Dialect::kGeneric, /*keep=*/true);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1].type, TokenType::kComment);
  EXPECT_EQ(t[1].text, "/* hint */");
}

TEST(LexerTest, UnterminatedBlockCommentStrictFails) {
  EXPECT_FALSE(Lex("SELECT 1 /* oops").ok());
}

TEST(LexerTest, QuotedIdentifierAnsi) {
  TokenList t = MustLex("SELECT \"My Col\" FROM \"T\"");
  EXPECT_EQ(t[1].type, TokenType::kQuotedIdentifier);
  EXPECT_EQ(t[1].text, "My Col");
}

TEST(LexerTest, SqlServerBracketQuoting) {
  TokenList t = MustLex("SELECT [Order Details] FROM [T]",
                        Dialect::kSqlServer);
  EXPECT_EQ(t[1].type, TokenType::kQuotedIdentifier);
  EXPECT_EQ(t[1].text, "Order Details");
}

TEST(LexerTest, BracketsNotQuotesInGenericDialect) {
  // '[' has no lexical rule in the generic dialect: strict mode rejects it.
  EXPECT_FALSE(Lex("SELECT [x]").ok());
  // Lenient mode skips it.
  TokenList t = LexLenient("SELECT [x]");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1].text, "x");
}

TEST(LexerTest, SqlServerKeywords) {
  TokenList t = MustLex("SELECT TOP 5 a FROM t", Dialect::kSqlServer);
  EXPECT_TRUE(t[1].IsKeyword("TOP"));
  // TOP is an identifier in the generic dialect.
  TokenList g = MustLex("SELECT TOP 5 a FROM t", Dialect::kGeneric);
  EXPECT_EQ(g[1].type, TokenType::kIdentifier);
}

TEST(LexerTest, SnowflakeKeywordsAndParams) {
  TokenList t = MustLex("SELECT a FROM t WHERE a ILIKE 'x' QUALIFY b = $1",
                        Dialect::kSnowflake);
  bool saw_ilike = false;
  bool saw_qualify = false;
  bool saw_param = false;
  for (const Token& tok : t) {
    saw_ilike |= tok.IsKeyword("ILIKE");
    saw_qualify |= tok.IsKeyword("QUALIFY");
    saw_param |= tok.type == TokenType::kParameter && tok.text == "$1";
  }
  EXPECT_TRUE(saw_ilike);
  EXPECT_TRUE(saw_qualify);
  EXPECT_TRUE(saw_param);
}

TEST(LexerTest, AtParametersSqlServer) {
  TokenList t = MustLex("SELECT @UserId", Dialect::kSqlServer);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1].type, TokenType::kParameter);
  EXPECT_EQ(t[1].text, "@UserId");
}

TEST(LexerTest, QuestionMarkParameter) {
  TokenList t = MustLex("WHERE a = ?");
  EXPECT_EQ(t.back().type, TokenType::kParameter);
}

TEST(LexerTest, OffsetsPointIntoInput) {
  std::string text = "SELECT abc";
  TokenList t = MustLex(text);
  EXPECT_EQ(t[0].offset, 0u);
  EXPECT_EQ(t[1].offset, 7u);
}

TEST(LexerTest, EmptyInputGivesNoTokens) {
  EXPECT_TRUE(MustLex("").empty());
  EXPECT_TRUE(MustLex("   \n\t ").empty());
}

TEST(LexerTest, UnknownByteStrictFails) {
  auto result = Lex("SELECT \x01");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruption);
}

// The lexer must cleanly tokenize arbitrary garbage in lenient mode — it
// sits in front of the embedding pipeline which must never crash on log
// noise.
class LenientFuzzTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LenientFuzzTest, NeverFailsOnGarbage) {
  TokenList t = LexLenient(GetParam());
  (void)t;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Garbage, LenientFuzzTest,
    ::testing::Values("", "'", "\"", "/*", "--", "[[[", "'''",
                      "SELECT 'a /* b -- c", "\x01\x02\xff",
                      "((((((((((", "1e", "@@@@", "$$$", "::::"));

}  // namespace
}  // namespace querc::sql
