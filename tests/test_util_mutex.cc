// Tests for util::Mutex / util::MutexLock / util::CondVar and the
// runtime lock-rank detector (DESIGN.md §15). The inversion death tests
// prove the detector actually fires — they are compiled against
// QUERC_LOCK_RANK_CHECKS and skip in release builds where the checks are
// compiled out.

#include "util/mutex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace querc::util {
namespace {

TEST(MutexTest, MutexLockSerializesIncrements) {
  Mutex mu;
  int total = 0;
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(&mu);
        ++total;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(total, 8000);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  std::thread contender([&] { EXPECT_FALSE(mu.TryLock()); });
  contender.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, NameAndRankAccessors) {
  Mutex unranked;
  EXPECT_EQ(unranked.rank(), LockRank::kUnranked);
  Mutex ranked(LockRank::kBreaker, "test.breaker");
  EXPECT_EQ(ranked.rank(), LockRank::kBreaker);
  EXPECT_STREQ(ranked.name(), "test.breaker");
}

TEST(MutexTest, RankedAcquisitionInIncreasingOrderIsLegal) {
  Mutex low(LockRank::kStatsReporter, "test.low");
  Mutex mid(LockRank::kBreaker, "test.mid");
  Mutex high(LockRank::kMetricsRegistry, "test.high");
  for (int i = 0; i < 3; ++i) {
    MutexLock a(&low);
    MutexLock b(&mid);
    MutexLock c(&high);
  }
  // Non-LIFO unlock order is legal too: lock low+high, drop low first.
  low.Lock();
  high.Lock();
  low.Unlock();
  high.Unlock();
}

TEST(MutexTest, UnrankedMutexesAreExemptFromOrdering) {
  // The rank detector compares ranks, not identities, so the behavior
  // under test is "acquiring unranked while holding unranked never
  // aborts, in either order". Two disjoint pairs cover both orders;
  // reversing one pair would build a real A->B->A cycle that TSan's
  // own deadlock detector (rightly) reports.
  Mutex a;
  Mutex b;
  Mutex c;
  Mutex d;
  {
    MutexLock first(&a);
    MutexLock second(&b);
  }
  {
    MutexLock first(&d);
    MutexLock second(&c);
  }
}

TEST(MutexTest, AssertHeldPassesWhileHolding) {
  Mutex mu(LockRank::kBreaker, "test.assert");
  MutexLock lock(&mu);
  mu.AssertHeld();
}

TEST(MutexRankTest, HeldStateIsPerThread) {
  // Thread A holding a high-rank mutex must not poison thread B's
  // acquisitions: the held stack is thread-local.
  Mutex low(LockRank::kStatsReporter, "test.low");
  Mutex high(LockRank::kMetricsRegistry, "test.high");
  MutexLock hold_high(&high);
  std::thread other([&] {
    MutexLock lock(&low);  // would abort if the stack were global
  });
  other.join();
}

TEST(MutexRankTest, TryLockIsExemptFromOrderCheck) {
  // TryLock cannot deadlock, so taking a lower rank via TryLock while
  // holding a higher one is allowed (and must not abort).
  Mutex low(LockRank::kStatsReporter, "test.low");
  Mutex high(LockRank::kMetricsRegistry, "test.high");
  MutexLock hold_high(&high);
  ASSERT_TRUE(low.TryLock());
  low.Unlock();
}

TEST(CondVarTest, PredicateWaitSeesNotification) {
  Mutex mu(LockRank::kBreaker, "test.cv");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      MutexLock lock(&mu);
      ready = true;
    }
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    cv.Wait(mu, [&]() REQUIRES(mu) {
      mu.AssertHeld();
      return ready;
    });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutNotification) {
  Mutex mu;
  CondVar cv;
  bool never = false;
  MutexLock lock(&mu);
  bool result = cv.WaitFor(mu, std::chrono::milliseconds(5),
                           [&]() REQUIRES(mu) {
                             mu.AssertHeld();
                             return never;
                           });
  EXPECT_FALSE(result);
}

TEST(CondVarTest, WaitForReturnsEarlyOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool done = false;
  std::thread producer([&] {
    {
      MutexLock lock(&mu);
      done = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    bool result = cv.WaitFor(mu, std::chrono::seconds(30),
                             [&]() REQUIRES(mu) {
                               mu.AssertHeld();
                               return done;
                             });
    EXPECT_TRUE(result);
  }
  producer.join();
}

TEST(CondVarTest, WaitKeepsHeldStackTruthful) {
  // While a waiter sleeps the mutex is released underneath it; after the
  // wait returns the held stack must be balanced again so a fresh
  // ordered acquisition pair is still legal (PreWait/PostWait
  // bookkeeping — meaningful under QUERC_LOCK_RANK_CHECKS, harmless
  // otherwise).
  Mutex low(LockRank::kStatsReporter, "test.low");
  CondVar cv;
  bool done = false;
  std::thread producer([&] {
    {
      MutexLock lock(&low);
      done = true;
    }
    cv.NotifyAll();
  });
  {
    MutexLock lock(&low);
    cv.Wait(low, [&]() REQUIRES(low) {
      low.AssertHeld();
      return done;
    });
  }
  producer.join();
  Mutex high(LockRank::kMetricsRegistry, "test.high");
  MutexLock a(&low);
  MutexLock b(&high);
}

#if defined(QUERC_LOCK_RANK_CHECKS)

TEST(MutexDeathTest, InversionAbortsWithBothLockNames) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex low(LockRank::kStatsReporter, "test.low");
  Mutex high(LockRank::kMetricsRegistry, "test.high");
  EXPECT_DEATH(
      {
        high.Lock();
        low.Lock();
      },
      "lock-rank violation.*\"test\\.low\".*\"test\\.high\"");
}

TEST(MutexDeathTest, EqualRankAbortsToo) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex a(LockRank::kBreaker, "test.breaker_a");
  Mutex b(LockRank::kBreaker, "test.breaker_b");
  EXPECT_DEATH(
      {
        a.Lock();
        b.Lock();
      },
      "lock-rank violation.*\"test\\.breaker_b\".*\"test\\.breaker_a\"");
}

TEST(MutexDeathTest, SelfRelockAbortsInsteadOfDeadlocking) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex mu(LockRank::kBreaker, "test.self");
  EXPECT_DEATH(
      {
        mu.Lock();
        mu.Lock();
      },
      "lock-rank violation.*\"test\\.self\".*\"test\\.self\"");
}

TEST(MutexDeathTest, AssertHeldAbortsWhenNotHolding) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex mu(LockRank::kBreaker, "test.unheld");
  EXPECT_DEATH(mu.AssertHeld(),
               "AssertHeld\\(\"test\\.unheld\"\\) failed");
}

#else  // !QUERC_LOCK_RANK_CHECKS

TEST(MutexDeathTest, SkippedWithoutLockRankChecks) {
  GTEST_SKIP() << "lock-rank checks compiled out (release build); run a "
                  "Debug/sanitizer/-DQUERC_LOCK_RANK=ON configuration";
}

#endif  // QUERC_LOCK_RANK_CHECKS

}  // namespace
}  // namespace querc::util
