#ifndef QUERC_QUERC_CHAOS_H_
#define QUERC_QUERC_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "querc/qworker_pool.h"

namespace querc::core {

/// One self-contained chaos soak: a sharded QWorkerPool with classifiers
/// deployed (plus a fallback for one task) is driven through three phases
/// — warmup (healthy), fault (failpoints arm a database-sink outage and a
/// classifier outage while oversized batches force load shedding), and
/// recovery (faults exhaust; the driver keeps sending traffic until every
/// circuit breaker re-closes). The report proves the service degraded
/// instead of failing: every submitted query is accounted for, breakers
/// re-close, and tail latency under fault is measured.
///
/// Deterministic by construction: faults come from counted failpoints
/// (`*N` specs), shedding from a fixed admission bound with fixed batch
/// shapes, and the synthetic stream from a seeded generator. Only the
/// breaker cooldown consults the real clock.
struct ChaosOptions {
  size_t num_shards = 2;
  /// Per-phase query counts (individually processed, latency-sampled).
  size_t warmup_queries = 100;
  size_t fault_queries = 300;
  size_t recovery_queries = 400;
  /// Database-sink failpoint hit budget as a fraction of fault_queries
  /// (>= 0.1 satisfies the "at least 10% sink failures" drill).
  double sink_failure_rate = 0.2;
  /// Arm a full classifier-task outage during the fault phase.
  bool classifier_outage = true;
  /// Admission bound; every `shed_burst_every` fault queries an oversized
  /// batch (3x the bound) is submitted to force deterministic shedding.
  size_t max_in_flight = 8;
  size_t shed_burst_every = 50;
  /// Breaker cooldown for the soak (short, so recovery is fast).
  double breaker_open_ms = 25.0;
  /// Per-Process deadline for the soak pool; 0 = unlimited.
  double deadline_ms = 0.0;
  uint64_t seed = 42;
  /// Attach a flight-recorder TraceCollector to the soak: every injected
  /// sink failure, classifier outage hit, and load shed must reconcile
  /// with a journal event, and the slowest reassembled traces are
  /// returned as evidence. Adds `flightrec_ok` to ok().
  bool flightrec = false;
};

/// Machine-readable outcome of one soak (also `BENCH_chaos.json`).
struct ChaosReport {
  // Accounting: every query submitted in any phase lands in exactly one
  // returned ProcessedQuery; `silent_drops` counts the ones that did not.
  size_t submitted = 0;
  size_t returned = 0;
  size_t silent_drops = 0;
  size_t shed = 0;
  size_t sink_errors = 0;       ///< non-OK database/training statuses
  size_t degraded = 0;          ///< fallback-answered task predictions
  size_t skipped = 0;           ///< tasks skipped with no prediction
  size_t deadline_exceeded = 0;
  double shed_rate = 0.0;       ///< shed / submitted
  /// Milliseconds from the start of the recovery phase until every
  /// breaker reported closed; < 0 when they never did.
  double recovery_ms = -1.0;
  bool breakers_reclosed = false;
  /// Breakers that left closed state during the fault phase (the drill
  /// must actually trip something to prove anything).
  size_t breakers_tripped = 0;
  // Latency percentiles of individually-processed queries, per phase.
  double p50_warmup_ms = 0.0;
  double p99_warmup_ms = 0.0;
  double p50_fault_ms = 0.0;
  double p99_fault_ms = 0.0;
  double p99_recovery_ms = 0.0;

  // Flight-recorder reconciliation (populated when options.flightrec):
  // every resilience action the soak injected must have a journal twin.
  bool flightrec_enabled = false;
  uint64_t journal_sink_failpoints = 0;   ///< kFailpoint "qworker.sink_database"
  uint64_t journal_classifier_failpoints = 0;
  uint64_t journal_sheds = 0;             ///< kShed events
  uint64_t journal_breaker_transitions = 0;
  uint64_t failpoint_hits_sink = 0;       ///< failpoint hit counters (ground truth)
  uint64_t failpoint_hits_classifier = 0;
  /// Journal counts match the injected ground truth exactly.
  bool flightrec_ok = true;
  /// One-line renderings of the slowest reassembled traces (evidence for
  /// the anomaly dump; not part of the JSON).
  std::vector<std::string> slow_traces;

  /// The drill passed: something tripped, everything re-closed, nothing
  /// was silently dropped, shedding actually engaged — and, with the
  /// flight recorder attached, every injected fault has journal evidence.
  bool ok() const {
    return breakers_tripped > 0 && breakers_reclosed && silent_drops == 0 &&
           shed > 0 && (!flightrec_enabled || flightrec_ok);
  }

  std::string ToJson() const;
};

/// Runs the soak described by `options`. Arms and disarms its own
/// failpoints (restoring a clean registry on exit).
ChaosReport RunChaosSoak(const ChaosOptions& options);

}  // namespace querc::core

#endif  // QUERC_QUERC_CHAOS_H_
