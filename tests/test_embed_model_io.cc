#include "embed/model_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "embed/doc2vec.h"
#include "embed/feature_embedder.h"
#include "embed/lstm_autoencoder.h"
#include "embed/tfidf_embedder.h"
#include "nn/serialize.h"

namespace querc::embed {
namespace {

std::vector<std::vector<std::string>> Corpus() {
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 20; ++i) {
    docs.push_back({"SELECT", "a", "FROM", "t", "WHERE", "b", "=", "<num>"});
    docs.push_back({"SELECT", "c", "FROM", "u"});
  }
  return docs;
}

/// The round-trip golden every embedder must satisfy: a model reloaded
/// from its serialized form embeds BIT-IDENTICALLY to the instance that
/// was saved (no drifted option, no truncated weight).
void ExpectRoundTripGolden(const Embedder& original) {
  std::stringstream ss;
  ASSERT_TRUE(SaveEmbedder(original, ss).ok()) << original.name();
  auto loaded = LoadEmbedder(ss);
  ASSERT_TRUE(loaded.ok()) << original.name() << ": "
                           << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), original.name());
  EXPECT_EQ((*loaded)->dim(), original.dim());
  const std::vector<std::vector<std::string>> probes = {
      {"SELECT", "a", "FROM", "t"},
      {"SELECT", "c", "FROM", "u", "WHERE", "b", "=", "<num>"},
      {"never", "seen", "tokens"},
  };
  for (const auto& doc : probes) {
    EXPECT_EQ((*loaded)->Embed(doc), original.Embed(doc))
        << original.name() << " diverged after save/load";
  }
}

TEST(ModelIoTest, RoundTripsDoc2Vec) {
  Doc2VecEmbedder::Options options;
  options.dim = 12;
  options.epochs = 4;
  options.min_count = 1;
  Doc2VecEmbedder embedder(options);
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  ExpectRoundTripGolden(embedder);
}

TEST(ModelIoTest, RoundTripPreservesDoc2VecMinLearningRate) {
  // Regression: Save used to drop min_learning_rate, so a reloaded model
  // ran a different inference LR schedule and embedded differently.
  Doc2VecEmbedder::Options options;
  options.dim = 12;
  options.epochs = 4;
  options.min_count = 1;
  options.min_learning_rate = 0.031;  // far from the 1e-4 default
  Doc2VecEmbedder embedder(options);
  ASSERT_TRUE(embedder.Train(Corpus()).ok());

  // The field must actually matter for this probe: an identically trained
  // model with the default min LR embeds differently.
  Doc2VecEmbedder::Options defaults = options;
  defaults.min_learning_rate = Doc2VecEmbedder::Options{}.min_learning_rate;
  Doc2VecEmbedder control(defaults);
  ASSERT_TRUE(control.Train(Corpus()).ok());
  std::vector<std::string> doc = {"SELECT", "a", "FROM", "t"};
  ASSERT_NE(embedder.Embed(doc), control.Embed(doc));

  ExpectRoundTripGolden(embedder);
}

TEST(ModelIoTest, RoundTripsLstm) {
  LstmAutoencoderEmbedder::Options options;
  options.hidden_dim = 10;
  options.token_dim = 8;
  options.epochs = 2;
  options.min_count = 1;
  LstmAutoencoderEmbedder embedder(options);
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  ExpectRoundTripGolden(embedder);
}

TEST(ModelIoTest, RoundTripsTfidf) {
  TfidfEmbedder embedder{TfidfEmbedder::Options{}};
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  ExpectRoundTripGolden(embedder);
}

TEST(ModelIoTest, RoundTripsFeatureEmbedder) {
  FeatureEmbedder embedder{FeatureEmbedder::Options{}};
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  ExpectRoundTripGolden(embedder);
}

TEST(ModelIoTest, LoadRejectsUnknownMagic) {
  std::stringstream ss("garbage that is at least eight bytes long");
  auto loaded = LoadEmbedder(ss);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kCorruption);
}

TEST(ModelIoTest, LoadRejectsLegacyDoc2VecV1Magic) {
  // v1 files lack min_learning_rate; loading one must fail loudly (the
  // reloaded model would not reproduce the saving process's embeddings),
  // not silently infer with a default.
  std::stringstream ss;
  ASSERT_TRUE(nn::WriteU64(ss, 0x51444f4332564543ULL).ok());  // "QDOC2VEC"
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(nn::WriteU64(ss, 1).ok());
  auto loaded = LoadEmbedder(ss);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("min_learning_rate"),
            std::string::npos);
}

/// Serializes a trained Doc2Vec model, then rewrites one u64 header field
/// (fields: magic, dim, mode, window, negative, infer_epochs) and expects
/// Load to report Corruption rather than building degenerate tensors.
void ExpectDoc2VecHeaderRejected(size_t field_index, uint64_t value) {
  Doc2VecEmbedder::Options options;
  options.dim = 8;
  options.epochs = 2;
  options.min_count = 1;
  Doc2VecEmbedder embedder(options);
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  std::stringstream ss;
  ASSERT_TRUE(embedder.Save(ss).ok());
  std::string bytes = ss.str();
  ASSERT_GE(bytes.size(), (field_index + 1) * sizeof(uint64_t));
  std::stringstream patched_field;
  ASSERT_TRUE(nn::WriteU64(patched_field, value).ok());
  bytes.replace(field_index * sizeof(uint64_t), sizeof(uint64_t),
                patched_field.str());
  std::stringstream corrupted(bytes);
  auto loaded = Doc2VecEmbedder::Load(corrupted);
  ASSERT_FALSE(loaded.ok()) << "field " << field_index << " = " << value;
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kCorruption);
}

TEST(ModelIoTest, Doc2VecLoadRejectsDegenerateHeaders) {
  ExpectDoc2VecHeaderRejected(1, 0);            // dim = 0
  ExpectDoc2VecHeaderRejected(1, 1u << 20);     // absurd dim
  ExpectDoc2VecHeaderRejected(2, 7);            // mode out of range
  ExpectDoc2VecHeaderRejected(3, 0);            // window = 0
  ExpectDoc2VecHeaderRejected(4, 0);            // negative = 0
  ExpectDoc2VecHeaderRejected(4, 1u << 30);     // huge negative
  ExpectDoc2VecHeaderRejected(5, 0);            // infer_epochs = 0
}

TEST(ModelIoTest, Doc2VecLoadRejectsTruncatedStream) {
  Doc2VecEmbedder::Options options;
  options.dim = 8;
  options.epochs = 2;
  options.min_count = 1;
  Doc2VecEmbedder embedder(options);
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  std::stringstream ss;
  ASSERT_TRUE(embedder.Save(ss).ok());
  std::string bytes = ss.str();
  // Cut the stream at several depths: mid-header, mid-vocab, mid-tensor.
  for (size_t keep : {bytes.size() / 8, bytes.size() / 2, bytes.size() - 9}) {
    std::stringstream truncated(bytes.substr(0, keep));
    auto loaded = Doc2VecEmbedder::Load(truncated);
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " of " << bytes.size();
  }
}

TEST(ModelIoTest, LstmLoadRejectsDegenerateHeaders) {
  LstmAutoencoderEmbedder::Options options;
  options.hidden_dim = 10;
  options.token_dim = 8;
  options.epochs = 1;
  options.min_count = 1;
  LstmAutoencoderEmbedder embedder(options);
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  std::stringstream ss;
  ASSERT_TRUE(embedder.Save(ss).ok());
  std::string bytes = ss.str();
  // Zero the hidden_dim field (second u64).
  std::stringstream zero;
  ASSERT_TRUE(nn::WriteU64(zero, 0).ok());
  bytes.replace(sizeof(uint64_t), sizeof(uint64_t), zero.str());
  std::stringstream corrupted(bytes);
  auto loaded = LstmAutoencoderEmbedder::Load(corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kCorruption);
}

TEST(ModelIoTest, FileHelpersReportIoErrors) {
  FeatureEmbedder embedder{FeatureEmbedder::Options{}};
  EXPECT_FALSE(SaveEmbedderFile(embedder, "/no/such/dir/m.bin").ok());
  EXPECT_FALSE(LoadEmbedderFile("/no/such/file.bin").ok());
}

}  // namespace
}  // namespace querc::embed
