#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace querc::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotFound("missing file").message(), "missing file");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
  EXPECT_EQ(Status(StatusCode::kInternal, "").ToString(), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  QUERC_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(5).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(0), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-7), -7);
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(9);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 9);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  QUERC_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace querc::util
