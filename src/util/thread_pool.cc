#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/topology.h"

namespace querc::util {

namespace {

size_t LaneIndex(Lane lane) { return static_cast<size_t>(lane); }

/// Shared by every pool in the process. Each family exists both unlabeled
/// (pool-wide, the pre-lane series scrapers already watch) and per lane
/// ({lane="interactive"|"normal"|"batch"}). All lookups are function-local
/// statics so the hot path never touches the registry mutex; resolving
/// them while holding a pool's mu_ is rank-legal (kThreadPool <
/// kMetricsRegistry).
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge = obs::MetricsRegistry::Global().GetGauge(
      "querc_threadpool_queue_depth", {},
      "Tasks submitted to ThreadPools but not yet running");
  return gauge;
}

obs::Histogram& TaskHistogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "querc_threadpool_task_ms", {},
      "Execution time of ThreadPool task bodies in milliseconds");
  return hist;
}

obs::Counter& TaskCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_threadpool_tasks_total", {}, "Tasks executed by ThreadPools");
  return counter;
}

obs::Gauge& LaneDepthGauge(Lane lane) {
  static const std::array<obs::Gauge*, kNumLanes> gauges = [] {
    std::array<obs::Gauge*, kNumLanes> out{};
    for (size_t i = 0; i < kNumLanes; ++i) {
      out[i] = &obs::MetricsRegistry::Global().GetGauge(
          "querc_threadpool_queue_depth",
          {{"lane", LaneName(static_cast<Lane>(i))}},
          "Tasks submitted to ThreadPools but not yet running");
    }
    return out;
  }();
  return *gauges[LaneIndex(lane)];
}

obs::Histogram& LaneTaskHistogram(Lane lane) {
  static const std::array<obs::Histogram*, kNumLanes> hists = [] {
    std::array<obs::Histogram*, kNumLanes> out{};
    for (size_t i = 0; i < kNumLanes; ++i) {
      out[i] = &obs::MetricsRegistry::Global().GetHistogram(
          "querc_threadpool_task_ms",
          {{"lane", LaneName(static_cast<Lane>(i))}},
          "Execution time of ThreadPool task bodies in milliseconds");
    }
    return out;
  }();
  return *hists[LaneIndex(lane)];
}

obs::Counter& LaneTaskCounter(Lane lane) {
  static const std::array<obs::Counter*, kNumLanes> counters = [] {
    std::array<obs::Counter*, kNumLanes> out{};
    for (size_t i = 0; i < kNumLanes; ++i) {
      out[i] = &obs::MetricsRegistry::Global().GetCounter(
          "querc_threadpool_tasks_total",
          {{"lane", LaneName(static_cast<Lane>(i))}},
          "Tasks executed by ThreadPools");
    }
    return out;
  }();
  return *counters[LaneIndex(lane)];
}

obs::Counter& LaneOverflowCounter(Lane lane) {
  static const std::array<obs::Counter*, kNumLanes> counters = [] {
    std::array<obs::Counter*, kNumLanes> out{};
    for (size_t i = 0; i < kNumLanes; ++i) {
      out[i] = &obs::MetricsRegistry::Global().GetCounter(
          "querc_threadpool_lane_overflow_total",
          {{"lane", LaneName(static_cast<Lane>(i))}},
          "Submits that ran inline on the caller because the lane was full");
    }
    return out;
  }();
  return *counters[LaneIndex(lane)];
}

obs::Counter& EscalationCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_threadpool_escalations_total", {},
      "Dispatches where a near-deadline task jumped the lane order");
  return counter;
}

/// Runs a task body with the same accounting a pool worker applies:
/// timing into the unlabeled + per-lane histograms, counters, and the
/// worker's catch-and-log contract for escaping exceptions.
void RunTaskBody(const std::function<void()>& fn, Lane lane) {
  auto start = std::chrono::steady_clock::now();
  try {
    fn();
  } catch (...) {
    // A throwing Submit() task previously escaped into std::terminate.
    // ParallelFor batches capture and rethrow their own exceptions; a
    // bare Submit has no one to rethrow to, so log and keep the worker.
    QUERC_LOG(Error) << "ThreadPool task threw an exception; dropped";
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  TaskHistogram().Record(ms);
  LaneTaskHistogram(lane).Record(ms);
  TaskCounter().Increment();
  LaneTaskCounter(lane).Increment();
}

/// Shared state of one ParallelFor batch. Heap-allocated and owned via
/// shared_ptr by every shard task *and* the caller, so a worker that
/// wakes up after the batch already drained (its `next` fetch returns
/// >= n) still touches valid memory.
struct Batch {
  explicit Batch(size_t total, const std::function<void(size_t)>& f)
      : n(total), fn(f), ctx(obs::CurrentContext()) {}

  const size_t n;
  /// The caller blocks until the batch drains, so the reference stays
  /// valid for exactly as long as any shard can dereference it.
  const std::function<void(size_t)>& fn;
  /// The caller's trace context at batch creation; every shard adopts it
  /// so spans recorded inside `fn` carry the caller's trace id even when
  /// they run on pool threads.
  const obs::TraceContext ctx;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  Mutex mu{LockRank::kThreadPoolBatch, "threadpool.batch_mu"};
  CondVar cv;
  std::exception_ptr error GUARDED_BY(mu);  // first exception wins

  /// Claims indices until the batch is exhausted. Returns true if this
  /// call finished the batch (done hit n).
  bool RunShard() EXCLUDES(mu) {
    obs::ScopedTraceContext adopt(ctx);
    bool finished = false;
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(&mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        finished = true;
      }
    }
    return finished;
  }

  void NotifyDone() EXCLUDES(mu) {
    // Empty critical section: pairs with the caller's wait so the
    // notification cannot fire between its predicate check and sleep.
    { MutexLock lock(&mu); }
    cv.NotifyAll();
  }
};

}  // namespace

namespace {
ThreadPool::Options LegacyOptions(size_t num_threads) {
  ThreadPool::Options options;
  options.num_threads = num_threads == 0 ? 1 : num_threads;
  return options;
}
ThreadPool::TaskOptions LaneOnly(Lane lane) {
  ThreadPool::TaskOptions opts;
  opts.lane = lane;
  return opts;
}
}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : ThreadPool(LegacyOptions(num_threads)) {}

ThreadPool::ThreadPool(const Options& options) : options_(options) {
  size_t n = options_.num_threads != 0 ? options_.num_threads
                                       : DefaultThreadCount();
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.push_back(SpawnThread("querc-pool", [this, i] { WorkerLoop(i); }));
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

int64_t ThreadPool::NowUs() const {
  if (options_.clock) return options_.clock();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(TaskOptions{}, std::move(task));
}

void ThreadPool::Submit(Lane lane, std::function<void()> task) {
  Submit(LaneOnly(lane), std::move(task));
}

void ThreadPool::Submit(const TaskOptions& opts, std::function<void()> task) {
  // Capture the submitter's trace context and re-install it around the
  // task body, so work handed to the pool stays attributed to the query
  // that submitted it.
  obs::TraceContext ctx = obs::CurrentContext();
  if (ctx.valid()) {
    task = [ctx, inner = std::move(task)] {
      obs::ScopedTraceContext adopt(ctx);
      inner();
    };
  }
  QueuedTask queued;
  queued.fn = std::move(task);
  queued.lane = opts.lane;
  queued.deadline_us = opts.deadline_us;
  SubmitTask(std::move(queued));
}

void ThreadPool::SubmitTask(QueuedTask task) {
  Lane lane = task.lane;
  {
    MutexLock lock(&mu_);
    if (options_.lane_capacity == 0 ||
        queues_[LaneIndex(lane)].size() < options_.lane_capacity) {
      PushTaskLocked(std::move(task));
      work_cv_.NotifyOne();
      return;
    }
  }
  // Lane full: caller-runs backpressure. The submitting thread absorbs
  // the work instead of the queue growing without bound.
  LaneOverflowCounter(lane).Increment();
  RunTaskBody(task.fn, lane);
}

void ThreadPool::PushTaskLocked(QueuedTask task) {
  if (task.deadline_us != kNoDeadline) ++deadlined_;
  // Gauges move in the same critical section as the queue itself, so a
  // concurrent scrape can never see the depth negative or overshot.
  QueueDepthGauge().Add(1.0);
  LaneDepthGauge(task.lane).Add(1.0);
  queues_[LaneIndex(task.lane)].push_back(std::move(task));
  ++queued_total_;
}

void ThreadPool::PopAccountingLocked(const QueuedTask& task) {
  if (task.deadline_us != kNoDeadline) --deadlined_;
  QueueDepthGauge().Add(-1.0);
  LaneDepthGauge(task.lane).Add(-1.0);
  --queued_total_;
}

size_t ThreadPool::PickLaneLocked() {
  size_t highest = 0;
  while (queues_[highest].empty()) ++highest;
  size_t lowest = kNumLanes - 1;
  while (queues_[lowest].empty()) --lowest;

  size_t pick = highest;
  // Deadline escalation: the most urgent head task within the window
  // outranks the lane order. Only lane heads are examined — dispatch
  // stays O(lanes) — so ordering within one lane remains FIFO.
  if (deadlined_ > 0) {
    int64_t now = NowUs();
    int64_t window = static_cast<int64_t>(options_.escalation_ms * 1000.0);
    int64_t best_deadline = kNoDeadline;
    size_t best = kNumLanes;
    for (size_t lane = 0; lane < kNumLanes; ++lane) {
      if (queues_[lane].empty()) continue;
      int64_t d = queues_[lane].front().deadline_us;
      if (d == kNoDeadline || d - now > window) continue;
      if (d < best_deadline) {
        best_deadline = d;
        best = lane;
      }
    }
    if (best != kNumLanes && best != highest) {
      EscalationCounter().Increment();
      pick = best;
    }
  }
  // Starvation bound: after starvation_limit consecutive dispatches that
  // bypassed a waiting lower-lane task, force one lowest-lane dispatch.
  if (pick == highest && highest != lowest &&
      starve_skips_ >= options_.starvation_limit) {
    pick = lowest;
  }
  if (pick == lowest) {
    starve_skips_ = 0;
  } else {
    ++starve_skips_;
  }
  return pick;
}

size_t ThreadPool::queue_depth(Lane lane) const {
  MutexLock lock(&mu_);
  return queues_[LaneIndex(lane)].size();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(&mu_);
  idle_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
    mu_.AssertHeld();
    return queued_total_ == 0 && active_ == 0;
  });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelFor(TaskOptions{}, n, fn);
}

void ThreadPool::ParallelFor(Lane lane, size_t n,
                             const std::function<void(size_t)>& fn) {
  ParallelFor(LaneOnly(lane), n, fn);
}

void ThreadPool::ParallelFor(const TaskOptions& opts, size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  auto batch = std::make_shared<Batch>(n, fn);
  // One helper per pool thread beyond the caller; never more than n - 1
  // since the caller takes a share of the loop itself. The batch adopts
  // the caller's trace context itself, so helpers bypass Submit's wrap.
  size_t helpers = std::min(n - 1, threads_.size());
  for (size_t s = 0; s < helpers; ++s) {
    QueuedTask task;
    task.fn = [batch] {
      if (batch->RunShard()) batch->NotifyDone();
    };
    task.lane = opts.lane;
    task.deadline_us = opts.deadline_us;
    task.batch_tag = batch.get();
    task.batch_claimed = &batch->next;
    task.batch_n = n;
    SubmitTask(std::move(task));
  }
  // The calling thread participates: if it is itself a pool worker (a
  // nested ParallelFor) or every worker is busy elsewhere, it can drain
  // the entire batch alone — no deadlock.
  if (batch->RunShard()) batch->NotifyDone();
  {
    MutexLock lock(&batch->mu);
    batch->cv.Wait(batch->mu, [&]() REQUIRES(batch->mu) {
      batch->mu.AssertHeld();
      return batch->done.load(std::memory_order_acquire) == n;
    });
  }
  // The batch has drained; helpers still queued are pure no-ops. Pull
  // them out now (batch->mu released first — it ranks above mu_) so a
  // caller-drained batch leaves the queues exactly as it found them
  // instead of delaying unrelated tasks behind stale closures.
  PurgeBatch(batch.get());
  {
    MutexLock lock(&batch->mu);
    if (batch->error) std::rethrow_exception(batch->error);
  }
}

void ThreadPool::PurgeBatch(const void* tag) {
  MutexLock lock(&mu_);
  for (auto& queue : queues_) {
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->batch_tag == tag) {
        PopAccountingLocked(*it);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (queued_total_ == 0 && active_ == 0) idle_cv_.NotifyAll();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  if (options_.pin_threads) {
    const Topology& topo =
        options_.topology != nullptr ? *options_.topology : Topology::System();
    // Best-effort: a restricted container just leaves the worker unpinned.
    PinCurrentThreadToCpu(topo.cpus[worker_index % topo.num_cpus()].id);
  }
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(&mu_);
      work_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
        mu_.AssertHeld();
        return stop_ || queued_total_ > 0;
      });
      if (stop_ && queued_total_ == 0) return;
      size_t lane = PickLaneLocked();
      task = std::move(queues_[lane].front());
      queues_[lane].pop_front();
      PopAccountingLocked(task);
      ++active_;
    }
    // Stale-helper fast path: a ParallelFor helper whose batch already
    // claimed every index would run as a no-op; skip the call entirely
    // (the shared_ptr in task.fn still releases its batch reference).
    bool stale = task.batch_claimed != nullptr &&
                 task.batch_claimed->load(std::memory_order_acquire) >=
                     task.batch_n;
    if (!stale) RunTaskBody(task.fn, task.lane);
    {
      MutexLock lock(&mu_);
      --active_;
      if (queued_total_ == 0 && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace querc::util
