file(REMOVE_RECURSE
  "libquerc_ml.a"
)
