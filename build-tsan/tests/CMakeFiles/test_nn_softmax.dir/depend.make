# Empty dependencies file for test_nn_softmax.
# This may be replaced when dependencies are built.
