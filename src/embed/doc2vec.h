#ifndef QUERC_EMBED_DOC2VEC_H_
#define QUERC_EMBED_DOC2VEC_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "util/statusor.h"
#include "embed/vocab.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace querc::embed {

/// Paragraph-vector embedder (Le & Mikolov), the paper's "Doc2Vec" method:
/// each query is a "paragraph" whose learned vector must help predict the
/// tokens inside it. Trained with negative sampling.
///
/// Two training modes:
///  - PV-DM: the paragraph vector is averaged with the window's word
///    vectors to predict the center word (captures local order/context).
///  - PV-DBOW: the paragraph vector alone predicts each sampled word.
///
/// Unseen queries are embedded by *inference*: a fresh paragraph vector is
/// trained against frozen word/output tables. This is how transfer works —
/// the tables carry the cross-workload knowledge.
class Doc2VecEmbedder : public Embedder {
 public:
  enum class Mode { kDm, kDbow };

  struct Options {
    size_t dim = 32;
    Mode mode = Mode::kDm;
    int window = 4;       // context tokens on each side (PV-DM)
    int negative = 6;     // negative samples per positive
    int epochs = 12;
    int infer_epochs = 24;
    double learning_rate = 0.05;
    double min_learning_rate = 1e-4;
    size_t min_count = 2;
    uint64_t seed = 7;
  };

  explicit Doc2VecEmbedder(const Options& options) : options_(options) {}

  util::Status Train(
      const std::vector<std::vector<std::string>>& docs) override;

  nn::Vec Embed(const std::vector<std::string>& words) const override;

  size_t dim() const override { return options_.dim; }
  std::string name() const override {
    return options_.mode == Mode::kDm ? "doc2vec-dm" : "doc2vec-dbow";
  }

  /// Paragraph vector learned for training document `i` (valid post-Train).
  const nn::Vec TrainedDocVector(size_t i) const;
  size_t num_train_docs() const { return num_train_docs_; }
  const Vocabulary& vocabulary() const { return vocab_; }

  util::Status Save(std::ostream& out) const;
  static util::StatusOr<Doc2VecEmbedder> Load(std::istream& in);

 private:
  /// One negative-sampling pass over `doc` updating `doc_vec` (and, when
  /// `update_tables`, the word/output tables). Returns summed loss.
  double TrainDocument(const std::vector<size_t>& ids, double* doc_vec,
                       double lr, bool update_tables, util::Rng& rng);

  Options options_;
  Vocabulary vocab_;
  nn::Tensor word_in_;   // V x D input word vectors (PV-DM)
  nn::Tensor doc_vecs_;  // N x D trained paragraph vectors
  nn::Tensor out_;       // V x D output (context) vectors
  size_t num_train_docs_ = 0;
  bool trained_ = false;
};

}  // namespace querc::embed

#endif  // QUERC_EMBED_DOC2VEC_H_
