#ifndef QUERC_SQL_LEXER_H_
#define QUERC_SQL_LEXER_H_

#include <string_view>

#include "sql/dialect.h"
#include "sql/token.h"
#include "util/statusor.h"

namespace querc::sql {

/// Options controlling tokenization.
struct LexOptions {
  Dialect dialect = Dialect::kGeneric;
  /// Emit kComment tokens instead of dropping comments.
  bool keep_comments = false;
};

/// Tokenizes `text`. Never fails on well-formed SQL of any supported
/// dialect; returns InvalidArgument for unterminated strings/comments and
/// Corruption for bytes no rule matches. The final kEnd sentinel is NOT
/// included in the result.
util::StatusOr<TokenList> Lex(std::string_view text,
                              const LexOptions& options = {});

/// Lenient variant used by the embedding pipeline: unterminated constructs
/// are closed at end-of-input and unknown bytes are skipped, so arbitrary
/// log lines always produce a token stream.
TokenList LexLenient(std::string_view text, const LexOptions& options = {});

}  // namespace querc::sql

#endif  // QUERC_SQL_LEXER_H_
