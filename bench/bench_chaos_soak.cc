// Chaos soak benchmark: drives the fault-tolerant service layer through
// the warmup / fault / recovery drill in querc/chaos.h and writes the
// machine-readable report to BENCH_chaos.json (recovery time, shed rate,
// p99 under fault). Exits nonzero when the drill fails — a service that
// crashes, loses queries, or whose breakers never re-close is a
// regression, so CI can gate on this binary directly.
//
// Usage: bench_chaos_soak [faults] [seed]

#include <cstdio>
#include <cstdlib>

#include "querc/chaos.h"

int main(int argc, char** argv) {
  querc::core::ChaosOptions options;
  options.num_shards = 2;
  options.warmup_queries = 100;
  options.fault_queries = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  options.recovery_queries = 400;
  options.sink_failure_rate = 0.2;
  options.classifier_outage = true;
  options.max_in_flight = 8;
  options.seed = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 42;

  querc::core::ChaosReport report = querc::core::RunChaosSoak(options);
  std::string json = report.ToJson();
  std::printf("%s\n", json.c_str());

  const char* path = "BENCH_chaos.json";
  std::FILE* f = std::fopen(path, "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path);
  }

  if (!report.ok()) {
    std::fprintf(stderr,
                 "chaos soak FAILED: tripped=%zu reclosed=%d shed=%zu "
                 "silent_drops=%zu\n",
                 report.breakers_tripped, report.breakers_reclosed ? 1 : 0,
                 report.shed, report.silent_drops);
    return 1;
  }
  std::fprintf(stderr,
               "chaos soak OK: recovery %.1f ms, shed rate %.2f%%, p99 "
               "under fault %.3f ms\n",
               report.recovery_ms, 100.0 * report.shed_rate,
               report.p99_fault_ms);
  return 0;
}
