#include "nn/optimizer.h"

#include <cmath>

namespace querc::nn {

void ClipGradients(const std::vector<Tensor*>& tensors, double clip_norm) {
  if (clip_norm <= 0.0) return;
  double total = 0.0;
  for (const Tensor* t : tensors) {
    for (double g : t->grad()) total += g * g;
  }
  total = std::sqrt(total);
  if (total <= clip_norm || total == 0.0) return;
  double scale = clip_norm / total;
  for (Tensor* t : tensors) {
    for (double& g : t->grad()) g *= scale;
  }
}

void SgdOptimizer::Step() {
  ClipGradients(tensors_, options_.clip_norm);
  for (Tensor* t : tensors_) {
    Axpy(-options_.learning_rate, t->grad(), t->value());
    t->ZeroGrad();
  }
}

void AdamOptimizer::Register(Tensor* tensor) {
  Slot slot;
  slot.tensor = tensor;
  slot.m.assign(tensor->size(), 0.0);
  slot.v.assign(tensor->size(), 0.0);
  slots_.push_back(std::move(slot));
}

void AdamOptimizer::Step() {
  std::vector<Tensor*> tensors;
  tensors.reserve(slots_.size());
  for (auto& s : slots_) tensors.push_back(s.tensor);
  ClipGradients(tensors, options_.clip_norm);

  ++step_;
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(step_));
  for (auto& slot : slots_) {
    Vec& value = slot.tensor->value();
    Vec& grad = slot.tensor->grad();
    for (size_t i = 0; i < value.size(); ++i) {
      slot.m[i] = options_.beta1 * slot.m[i] + (1.0 - options_.beta1) * grad[i];
      slot.v[i] =
          options_.beta2 * slot.v[i] + (1.0 - options_.beta2) * grad[i] * grad[i];
      double m_hat = slot.m[i] / bc1;
      double v_hat = slot.v[i] / bc2;
      value[i] -=
          options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
    slot.tensor->ZeroGrad();
  }
}

}  // namespace querc::nn
