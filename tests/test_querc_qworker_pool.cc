#include "querc/qworker_pool.h"

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "embed/feature_embedder.h"
#include "ml/knn.h"
#include "obs/metrics.h"
#include "querc/classifier.h"
#include "querc/training_module.h"
#include "util/failpoint.h"
#include "workload/workload.h"

namespace querc::core {
namespace {

workload::LabeledQuery Query(const std::string& text,
                             const std::string& user = "u1",
                             const std::string& account = "acct1") {
  workload::LabeledQuery q;
  q.text = text;
  q.user = user;
  q.account = account;
  return q;
}

std::shared_ptr<Classifier> TrainedUserClassifier() {
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  auto classifier = std::make_shared<Classifier>(
      "user", embedder,
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{.k = 1}));
  workload::Workload history;
  for (int i = 0; i < 10; ++i) {
    history.Add(Query("SELECT a FROM t WHERE x = 1", "alice"));
    history.Add(Query("SELECT b, c, d FROM u, v WHERE u.k = v.k", "bob"));
  }
  EXPECT_TRUE(classifier->Train(history, workload::UserOf).ok());
  return classifier;
}

/// A classifier whose every prediction is the fixed string `version` —
/// the probe used by the hot-swap consistency tests below.
std::shared_ptr<const Classifier> VersionedClassifier(
    const std::string& task, const std::string& version) {
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  auto classifier = std::make_shared<Classifier>(
      task, embedder,
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{.k = 1}));
  workload::Workload history;
  for (int i = 0; i < 4; ++i) {
    history.Add(Query("SELECT x FROM t WHERE id = " + std::to_string(i)));
  }
  EXPECT_TRUE(
      classifier
          ->Train(history,
                  [version](const workload::LabeledQuery&) { return version; })
          .ok());
  return classifier;
}

TEST(QWorkerPoolTest, AccountShardingIsDeterministicAndAffine) {
  QWorkerPool::Options options;
  options.application = "appX";
  options.num_shards = 4;
  options.partition = QWorkerPool::Partition::kByAccount;
  QWorkerPool pool(options);
  EXPECT_EQ(pool.num_shards(), 4u);

  size_t first = pool.ShardOf(Query("SELECT 1", "u1", "tenantA"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(pool.ShardOf(Query("SELECT other", "u9", "tenantA")), first)
        << "same account must always route to the same shard";
  }
}

TEST(QWorkerPoolTest, RoundRobinSpreadsUniformly) {
  QWorkerPool::Options options;
  options.application = "appX";
  options.num_shards = 4;
  options.partition = QWorkerPool::Partition::kRoundRobin;
  QWorkerPool pool(options);
  pool.Deploy(TrainedUserClassifier());

  workload::Workload batch;
  for (int i = 0; i < 40; ++i) batch.Add(Query("SELECT a FROM t WHERE x = 1"));
  auto out = pool.ProcessBatch(batch);
  ASSERT_EQ(out.size(), 40u);
  for (const auto& s : pool.Stats()) {
    EXPECT_EQ(s.processed, 10u);
    EXPECT_EQ(s.num_classifiers, 1u);
    EXPECT_GT(s.latency.max_ms, 0.0);
    EXPECT_EQ(s.latency.count, 10u);
  }
  EXPECT_EQ(pool.processed_count(), 40u);
}

TEST(QWorkerPoolTest, StatsReportPercentilesFromHistograms) {
  // Regression: ShardStats must carry real histogram percentiles, and the
  // pooled view must merge every shard's samples.
  QWorkerPool::Options options;
  options.application = "appX";
  options.num_shards = 4;
  options.partition = QWorkerPool::Partition::kRoundRobin;
  QWorkerPool pool(options);
  pool.Deploy(TrainedUserClassifier());

  workload::Workload batch;
  for (int i = 0; i < 80; ++i) batch.Add(Query("SELECT a FROM t WHERE x = 1"));
  pool.ProcessBatch(batch);

  uint64_t total = 0;
  for (const auto& s : pool.Stats()) {
    EXPECT_EQ(s.histogram.count, 20u);
    EXPECT_GT(s.p99_ms, 0.0);
    EXPECT_LE(s.p50_ms, s.p90_ms);
    EXPECT_LE(s.p90_ms, s.p99_ms);
    EXPECT_LE(s.p99_ms, s.histogram.max);
    // The thin LatencyStats view must agree with the histogram it wraps.
    EXPECT_EQ(s.latency.count, s.histogram.count);
    EXPECT_DOUBLE_EQ(s.latency.max_ms, s.histogram.max);
    total += s.histogram.count;
  }
  obs::HistogramSnapshot pooled = pool.MergedLatency();
  EXPECT_EQ(pooled.count, total);
  EXPECT_EQ(pooled.count, 80u);
  EXPECT_GT(pooled.p99(), 0.0);
  EXPECT_GE(pooled.p99(), pooled.p50());
}

TEST(QWorkerPoolTest, ProcessBatchPreservesInputOrder) {
  QWorkerPool::Options options;
  options.application = "appX";
  options.num_shards = 3;
  options.partition = QWorkerPool::Partition::kByUser;
  QWorkerPool pool(options);
  pool.Deploy(TrainedUserClassifier());

  workload::Workload batch;
  for (int i = 0; i < 60; ++i) {
    bool alice = i % 2 == 0;
    batch.Add(Query(alice ? "SELECT a FROM t WHERE x = 1"
                          : "SELECT b, c, d FROM u, v WHERE u.k = v.k",
                    "user" + std::to_string(i % 7)));
  }
  auto out = pool.ProcessBatch(batch);
  ASSERT_EQ(out.size(), batch.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].query.text, batch[i].text) << "result order torn at " << i;
    EXPECT_EQ(out[i].predictions.at("user"), i % 2 == 0 ? "alice" : "bob");
  }
}

TEST(QWorkerPoolTest, PoolMatchesSingleWorkerPredictions) {
  auto classifier = TrainedUserClassifier();
  QWorker worker({.application = "solo"});
  worker.Deploy(classifier);

  QWorkerPool::Options options;
  options.application = "sharded";
  options.num_shards = 4;
  options.partition = QWorkerPool::Partition::kByAccount;
  QWorkerPool pool(options);
  pool.Deploy(classifier);

  workload::Workload batch;
  for (int i = 0; i < 30; ++i) {
    batch.Add(Query(i % 3 == 0 ? "SELECT a FROM t WHERE x = 1"
                               : "SELECT b, c, d FROM u, v WHERE u.k = v.k",
                    "u" + std::to_string(i % 5),
                    "acct" + std::to_string(i % 6)));
  }
  auto solo = worker.ProcessBatch(batch);
  auto sharded = pool.ProcessBatch(batch);
  ASSERT_EQ(solo.size(), sharded.size());
  for (size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(solo[i].predictions, sharded[i].predictions);
  }
}

TEST(QWorkerPoolTest, UndeployRemovesFromEveryShard) {
  QWorkerPool::Options options;
  options.application = "appX";
  options.num_shards = 3;
  QWorkerPool pool(options);
  pool.Deploy(TrainedUserClassifier());
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    EXPECT_EQ(pool.shard(s).num_classifiers(), 1u);
  }
  EXPECT_TRUE(pool.Undeploy("user"));
  EXPECT_FALSE(pool.Undeploy("user"));
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    EXPECT_EQ(pool.shard(s).num_classifiers(), 0u);
  }
}

TEST(QWorkerPoolTest, SharedExternalThreadPool) {
  util::ThreadPool shared(2);
  QWorkerPool::Options options;
  options.application = "appX";
  options.num_shards = 4;
  options.partition = QWorkerPool::Partition::kRoundRobin;
  QWorkerPool pool(options, &shared);
  pool.Deploy(TrainedUserClassifier());
  workload::Workload batch;
  for (int i = 0; i < 20; ++i) batch.Add(Query("SELECT a FROM t WHERE x = 1"));
  auto out = pool.ProcessBatch(batch);
  ASSERT_EQ(out.size(), 20u);
  EXPECT_EQ(pool.processed_count(), 20u);
}

TEST(QWorkerPoolTest, PinnedShardsProcessBatchCorrectly) {
  // pin_shards routes the owned pool's workers onto distinct cpus via
  // util/topology. Pinning is best-effort (restricted containers may
  // reject the affinity syscall), so the contract under test is purely
  // functional: results identical to an unpinned pool.
  QWorkerPool::Options options;
  options.application = "appPin";
  options.num_shards = 2;
  options.threads = 2;
  options.pin_shards = true;
  options.partition = QWorkerPool::Partition::kRoundRobin;
  QWorkerPool pool(options);
  pool.Deploy(TrainedUserClassifier());
  workload::Workload batch;
  for (int i = 0; i < 30; ++i) {
    batch.Add(Query(i % 2 == 0 ? "SELECT a FROM t WHERE x = 1"
                               : "SELECT b, c, d FROM u, v WHERE u.k = v.k"));
  }
  auto out = pool.ProcessBatch(batch);
  ASSERT_EQ(out.size(), 30u);
  EXPECT_EQ(pool.processed_count(), 30u);
  for (const auto& processed : out) EXPECT_FALSE(processed.predictions.empty());
}

TEST(QWorkerPoolTest, TrainingSinkReceivesEveryQuery) {
  QWorkerPool::Options options;
  options.application = "appX";
  options.num_shards = 4;
  options.partition = QWorkerPool::Partition::kRoundRobin;
  options.worker.forward_to_database = false;
  QWorkerPool pool(options);
  pool.Deploy(TrainedUserClassifier());
  std::atomic<int> teed{0};
  pool.set_training_sink(
      [&teed](const ProcessedQuery&) { teed.fetch_add(1); });
  workload::Workload batch;
  for (int i = 0; i < 25; ++i) batch.Add(Query("SELECT a FROM t WHERE x = 1"));
  (void)pool.ProcessBatch(batch);
  EXPECT_EQ(teed.load(), 25);
}

// The acceptance-criterion test: Deploy of retrained classifiers races an
// in-flight stream of Process calls. Two tasks ("t1", "t2") are always
// retrained and deployed *together* via DeployAll as matching versions;
// because deployment swaps one immutable snapshot, every processed query
// must observe t1 and t2 at the SAME version — a torn read (t1 of one
// generation, t2 of another) fails the test.
TEST(QWorkerPoolTest, HotSwapDuringInFlightProcessingIsAtomic) {
  auto t1_v1 = VersionedClassifier("t1", "v1");
  auto t2_v1 = VersionedClassifier("t2", "v1");
  auto t1_v2 = VersionedClassifier("t1", "v2");
  auto t2_v2 = VersionedClassifier("t2", "v2");

  QWorkerPool::Options options;
  options.application = "appX";
  options.num_shards = 2;
  options.partition = QWorkerPool::Partition::kRoundRobin;
  options.worker.forward_to_database = false;
  QWorkerPool pool(options);
  pool.DeployAll({t1_v1, t2_v1});

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> processed{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      workload::LabeledQuery q = Query("SELECT x FROM t WHERE id = 3");
      while (!stop.load(std::memory_order_relaxed)) {
        ProcessedQuery out = pool.Process(q);
        const std::string& a = out.predictions.at("t1");
        const std::string& b = out.predictions.at("t2");
        if (a != b) torn.fetch_add(1);
        processed.fetch_add(1);
      }
    });
  }

  // Writer: hot-swap the full classifier set back and forth while the
  // readers hammer Process. Keep swapping until the readers have labeled
  // a few thousand queries so swaps genuinely overlap in-flight work.
  int swap = 0;
  while (processed.load() < 2000 && swap < 1000000) {
    if (swap % 2 == 0) {
      pool.DeployAll({t1_v2, t2_v2});
    } else {
      pool.DeployAll({t1_v1, t2_v1});
    }
    ++swap;
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0)
      << "a query observed classifiers from two different deployments";
  EXPECT_GT(processed.load(), 0);
  // After the final swap, new queries see the last-deployed generation.
  auto out = pool.Process(Query("SELECT x FROM t WHERE id = 3"));
  EXPECT_EQ(out.predictions.at("t1"), out.predictions.at("t2"));
}

// Deploy/Undeploy racing Process must never crash or tear: each query
// either sees the task (with a live classifier) or does not see it.
TEST(QWorkerPoolTest, ConcurrentDeployUndeployRacingProcess) {
  auto classifier = TrainedUserClassifier();
  QWorkerPool::Options options;
  options.application = "appX";
  options.num_shards = 2;
  options.partition = QWorkerPool::Partition::kRoundRobin;
  options.worker.forward_to_database = false;
  QWorkerPool pool(options);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      pool.Deploy(classifier);
      pool.Undeploy("user");
    }
  });

  workload::Workload batch;
  for (int i = 0; i < 50; ++i) batch.Add(Query("SELECT a FROM t WHERE x = 1"));
  for (int round = 0; round < 30; ++round) {
    auto out = pool.ProcessBatch(batch);
    for (const auto& pq : out) {
      auto it = pq.predictions.find("user");
      if (it != pq.predictions.end()) {
        EXPECT_EQ(it->second, "alice");
      }
    }
  }
  stop.store(true);
  writer.join();
}

TEST(QWorkerPoolTest, TrainingModuleDeploysToEveryShard) {
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  workload::Workload history;
  for (int i = 0; i < 10; ++i) {
    history.Add(Query("SELECT a FROM t WHERE x = 1", "alice"));
    history.Add(Query("SELECT b, c, d FROM u, v WHERE u.k = v.k", "bob"));
  }

  TrainingModule module({});
  module.RegisterEmbedder("E", embedder);
  module.ImportLogs("X", history);

  TrainingModule::TrainJob job;
  job.task_name = "user";
  job.application = "X";
  job.embedder_name = "E";
  job.label_of = workload::UserOf;
  job.labeler_factory = [] {
    return std::make_unique<ml::KnnClassifier>(
        ml::KnnClassifier::Options{.k = 1});
  };

  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 3;
  QWorkerPool pool(options);
  ASSERT_TRUE(module.TrainAndDeploy({job}, pool).ok());
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    EXPECT_EQ(pool.shard(s).num_classifiers(), 1u);
  }
  auto out = pool.Process(Query("SELECT a FROM t WHERE x = 2"));
  EXPECT_EQ(out.predictions.at("user"), "alice");
}

// ---------------------------------------------------------------------------
// Fault tolerance: admission control, shedding, fan-out isolation
// ---------------------------------------------------------------------------

class QWorkerPoolFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { util::Failpoints::Global().DisarmAll(); }
  void TearDown() override { util::Failpoints::Global().DisarmAll(); }
};

workload::Workload NumberedBatch(size_t n) {
  workload::Workload batch;
  for (size_t i = 0; i < n; ++i) {
    batch.Add(Query("SELECT " + std::to_string(i), "u1",
                    "acct" + std::to_string(i)));
  }
  return batch;
}

TEST_F(QWorkerPoolFaultTest, RejectNewShedsTailDeterministically) {
  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 2;
  options.max_in_flight = 4;
  options.shed_policy = QWorkerPool::ShedPolicy::kRejectNew;
  QWorkerPool pool(options);

  auto results = pool.ProcessBatch(NumberedBatch(10));
  ASSERT_EQ(results.size(), 10u);
  // A 10-query batch against a 4-slot bound: the first 4 are admitted,
  // the newest 6 are shed — in place, in order, never dropped.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(results[i].shed) << i;
    EXPECT_TRUE(results[i].status.ok()) << i;
  }
  for (size_t i = 4; i < 10; ++i) {
    EXPECT_TRUE(results[i].shed) << i;
    EXPECT_EQ(results[i].status.code(),
              util::StatusCode::kResourceExhausted);
    EXPECT_EQ(results[i].query.text, "SELECT " + std::to_string(i));
  }
  EXPECT_EQ(pool.shed_count(), 6u);
  EXPECT_EQ(pool.in_flight(), 0u);  // slots released after the batch

  // The next batch has the slots back.
  results = pool.ProcessBatch(NumberedBatch(4));
  for (const auto& r : results) EXPECT_FALSE(r.shed);
}

TEST_F(QWorkerPoolFaultTest, DropOldestShedsHead) {
  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 2;
  options.max_in_flight = 3;
  options.shed_policy = QWorkerPool::ShedPolicy::kDropOldest;
  QWorkerPool pool(options);

  auto results = pool.ProcessBatch(NumberedBatch(5));
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].shed);
  EXPECT_TRUE(results[1].shed);
  for (size_t i = 2; i < 5; ++i) EXPECT_FALSE(results[i].shed) << i;
}

TEST_F(QWorkerPoolFaultTest, DropOldestMarkersCarryTheOldestQueries) {
  // Marker-placement audit (PR 9): a kDropOldest shed marker must sit at
  // the shed query's ORIGINAL batch position and carry THAT query — not a
  // reordered survivor. Flags alone can't catch a placement bug, so this
  // checks the texts.
  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 2;
  options.max_in_flight = 3;
  options.shed_policy = QWorkerPool::ShedPolicy::kDropOldest;
  QWorkerPool pool(options);

  auto results = pool.ProcessBatch(NumberedBatch(5));
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(results[i].query.text, "SELECT " + std::to_string(i))
        << "result " << i << " carries a different query's text";
    EXPECT_EQ(results[i].shed, i < 2) << i;
    if (i < 2) {
      EXPECT_EQ(results[i].status.code(),
                util::StatusCode::kResourceExhausted);
    }
  }
}

TEST_F(QWorkerPoolFaultTest, AdmissionMidBatchShedMarkersStayInPlace) {
  // With the tenant controller on, sheds land mid-batch (one tenant's
  // quota tail interleaves another's admitted head). Every position must
  // still carry its own query.
  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 2;
  options.shed_policy = QWorkerPool::ShedPolicy::kDropOldest;
  options.enable_tenant_admission = true;
  options.admission.default_quota.burst = 1.0;  // one query per tenant
  QWorkerPool pool(options);

  workload::Workload batch;
  const char* accounts[] = {"a", "b", "a", "b", "a"};
  for (size_t i = 0; i < 5; ++i) {
    batch.Add(Query("SELECT " + std::to_string(i), "u1", accounts[i]));
  }
  auto results = pool.ProcessBatch(batch);
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(results[i].query.text, "SELECT " + std::to_string(i)) << i;
    // Each tenant's first query survives its 1-token bucket; positions
    // 2..4 are that tenant's second/third arrivals.
    EXPECT_EQ(results[i].shed, i >= 2) << i;
  }
  EXPECT_EQ(pool.admission()->shed_for(ShedReason::kQuota), 3u);
}

TEST_F(QWorkerPoolFaultTest, ConcurrentBatchesNeverMisplaceMarkers) {
  // Admission + kDropOldest + racing batches: whatever the interleaving
  // decides to shed (including reason=global when the CAS reservation
  // loses a race), every result index must hold its own query and nothing
  // may be silently dropped.
  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 2;
  options.max_in_flight = 3;
  options.shed_policy = QWorkerPool::ShedPolicy::kDropOldest;
  options.enable_tenant_admission = true;
  options.admission.default_quota.burst = 4.0;
  options.admission.default_quota.rate_per_sec = 1e6;
  QWorkerPool pool(options);

  constexpr int kThreads = 4;
  constexpr int kBatches = 25;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int b = 0; b < kBatches; ++b) {
        workload::Workload batch;
        for (int i = 0; i < 6; ++i) {
          batch.Add(Query("SELECT " + std::to_string(t * 1000 + i), "u1",
                          "acct" + std::to_string(t)));
        }
        auto results = pool.ProcessBatch(batch);
        if (results.size() != batch.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < results.size(); ++i) {
          if (results[i].query.text != batch[i].text) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);
  // Full accounting: every submitted query was either processed or shed,
  // and the pool's shed tally agrees with the controller's.
  EXPECT_EQ(pool.processed_count() + pool.shed_count(),
            static_cast<size_t>(kThreads * kBatches * 6));
  EXPECT_EQ(pool.shed_count(),
            static_cast<size_t>(pool.admission()->shed_total()));
}

TEST_F(QWorkerPoolFaultTest, UnboundedPoolNeverSheds) {
  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 2;
  QWorkerPool pool(options);
  auto results = pool.ProcessBatch(NumberedBatch(64));
  for (const auto& r : results) EXPECT_FALSE(r.shed);
  EXPECT_EQ(pool.shed_count(), 0u);
}

TEST_F(QWorkerPoolFaultTest, FanOutFailpointMarksQueriesNotDrops) {
  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 2;
  QWorkerPool pool(options);
  // Fail exactly one shard task; the whole batch must still come back,
  // with the failed shard's queries carrying the status.
  util::FailpointSpec spec;
  spec.code = util::StatusCode::kUnavailable;
  spec.count = 1;
  util::Failpoints::Global().Arm("pool.fan_out", spec);

  auto results = pool.ProcessBatch(NumberedBatch(8));
  ASSERT_EQ(results.size(), 8u);
  size_t failed = 0;
  for (const auto& r : results) {
    if (!r.status.ok()) {
      EXPECT_EQ(r.status.code(), util::StatusCode::kUnavailable);
      EXPECT_FALSE(r.query.text.empty());  // the query rode along
      ++failed;
    }
  }
  EXPECT_GT(failed, 0u);
  EXPECT_LT(failed, 8u);  // the other shard's task was unaffected
}

TEST_F(QWorkerPoolFaultTest, PoisonedQueryDoesNotLoseBatch) {
  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 2;
  options.worker.sink_retry.max_attempts = 1;
  QWorkerPool pool(options);
  // A sink that throws on one specific query: every other query in the
  // batch must process normally and the poisoned one must carry its
  // sink error instead of taking the batch down.
  pool.set_database_sink([](const workload::LabeledQuery& q) {
    if (q.text == "SELECT 3") throw std::runtime_error("poison");
  });
  auto results = pool.ProcessBatch(NumberedBatch(8));
  ASSERT_EQ(results.size(), 8u);
  size_t poisoned = 0;
  for (const auto& r : results) {
    EXPECT_TRUE(r.status.ok());
    if (!r.database_status.ok()) {
      EXPECT_EQ(r.query.text, "SELECT 3");
      ++poisoned;
    }
  }
  EXPECT_EQ(poisoned, 1u);
  EXPECT_EQ(pool.processed_count(), 8u);
}

TEST_F(QWorkerPoolFaultTest, FallbackDeploysToEveryShard) {
  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 3;
  QWorkerPool pool(options);
  pool.Deploy(TrainedUserClassifier());
  pool.DeployFallback(TrainedUserClassifier());
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    EXPECT_EQ(pool.shard(s).fallbacks()->count("user"), 1u);
  }
  EXPECT_TRUE(pool.UndeployFallback("user"));
  EXPECT_FALSE(pool.UndeployFallback("user"));
}

TEST_F(QWorkerPoolFaultTest, BreakerStatesCoverEveryShard) {
  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 2;
  QWorkerPool pool(options);
  pool.Deploy(TrainedUserClassifier());
  auto states = pool.BreakerStates();
  // Per shard: database sink, training sink, one task.
  EXPECT_EQ(states.size(), 6u);
  std::set<std::string> names;
  for (const auto& [name, state] : states) {
    names.insert(name);
    EXPECT_EQ(state, CircuitBreaker::State::kClosed);
  }
  EXPECT_TRUE(names.count("X/0:sink_database"));
  EXPECT_TRUE(names.count("X/1:task_user"));
}

TEST_F(QWorkerPoolFaultTest, StatsOnIdlePoolHasNoFakeZeroMin) {
  QWorkerPool::Options options;
  options.application = "X";
  options.num_shards = 2;
  QWorkerPool pool(options);
  for (const auto& s : pool.Stats()) {
    EXPECT_EQ(s.latency.count, 0u);
    // Regression: idle shards used to report min_ms = 0 from the empty
    // histogram snapshot; the sentinel (+inf) plus min() guard fix it.
    EXPECT_TRUE(std::isinf(s.latency.min_ms));
    EXPECT_DOUBLE_EQ(s.latency.min(), 0.0);
  }
  // Merging an idle shard's stats into a busy one keeps the real min.
  pool.Process(Query("SELECT 1"));
  auto stats = pool.Stats();
  LatencyStats merged;
  for (const auto& s : stats) merged.Merge(s.latency);
  EXPECT_EQ(merged.count, 1u);
  EXPECT_TRUE(std::isfinite(merged.min_ms));
  EXPECT_GT(merged.min_ms, 0.0);
}

// count==0 sentinel audit: both merge directions and an all-empty fold.
TEST(LatencyStatsMerge, EmptySidesContributeNothing) {
  LatencyStats busy;
  busy.count = 2;
  busy.min_ms = 1.5;
  busy.max_ms = 4.0;
  busy.total_ms = 5.5;

  LatencyStats idle;
  busy.Merge(idle);  // no-op: idle's +inf sentinel must not leak
  EXPECT_EQ(busy.count, 2u);
  EXPECT_DOUBLE_EQ(busy.min_ms, 1.5);
  EXPECT_DOUBLE_EQ(busy.max_ms, 4.0);

  LatencyStats adopted;
  adopted.Merge(busy);  // adopts the real extrema
  EXPECT_DOUBLE_EQ(adopted.min_ms, 1.5);
  EXPECT_DOUBLE_EQ(adopted.max_ms, 4.0);
  EXPECT_DOUBLE_EQ(adopted.mean_ms(), 2.75);

  LatencyStats all_idle;
  all_idle.Merge(LatencyStats{});
  all_idle.Merge(LatencyStats{});
  EXPECT_EQ(all_idle.count, 0u);
  EXPECT_DOUBLE_EQ(all_idle.min(), 0.0);  // display guard, not the sentinel
}

}  // namespace
}  // namespace querc::core
