#ifndef QUERC_QUERC_SUMMARIZER_H_
#define QUERC_QUERC_SUMMARIZER_H_

#include <memory>
#include <vector>

#include "embed/embedder.h"
#include "ml/kmeans.h"
#include "workload/workload.h"

namespace querc::core {

/// Workload summarization for index recommendation (§5.1): embed every
/// query, K-means the vectors (K from the elbow method unless fixed), and
/// keep the query nearest each centroid as the cluster's witness. The
/// summary replaces the full workload as tuning-advisor input.
class WorkloadSummarizer {
 public:
  struct Options {
    /// 0 => choose K with the elbow method; otherwise use this K.
    size_t fixed_k = 0;
    ml::ElbowOptions elbow;
    ml::KMeansOptions kmeans;
    /// When non-null, Summarize() embeds the workload batch-parallel on
    /// this pool (not owned; must outlive the summarizer).
    util::ThreadPool* thread_pool = nullptr;
  };

  struct Summary {
    /// Indices into the input workload, one witness per cluster.
    std::vector<size_t> witness_indices;
    workload::Workload queries;
    size_t chosen_k = 0;
    double inertia = 0.0;
    /// Template histogram of the *input* workload (most frequent first),
    /// built via the lock-free concurrent aggregator — when a thread pool
    /// is configured, counting runs chunk-parallel alongside nothing else
    /// (it replaces the old serial mutexed-map pass). distinct size = how
    /// much shape diversity the summary had to cover.
    std::vector<workload::TemplateCount> template_histogram;
  };

  WorkloadSummarizer(std::shared_ptr<const embed::Embedder> embedder,
                     const Options& options)
      : embedder_(std::move(embedder)), options_(options) {}

  /// Summarizes `workload`. This is an offline task (no real-time
  /// labeling); the embedder may have been trained on a completely
  /// different workload or dialect (transfer learning).
  Summary Summarize(const workload::Workload& workload) const;

  /// Summary from pre-computed vectors (lets callers reuse embeddings).
  Summary SummarizeVectors(const workload::Workload& workload,
                           const std::vector<nn::Vec>& vectors) const;

 private:
  std::shared_ptr<const embed::Embedder> embedder_;
  Options options_;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_SUMMARIZER_H_
