file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dimension.dir/bench_ablation_dimension.cc.o"
  "CMakeFiles/bench_ablation_dimension.dir/bench_ablation_dimension.cc.o.d"
  "bench_ablation_dimension"
  "bench_ablation_dimension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dimension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
