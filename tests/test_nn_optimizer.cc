#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace querc::nn {
namespace {

TEST(SgdTest, SingleStepMovesAgainstGradient) {
  Tensor t(1, 2);
  t.at(0, 0) = 1.0;
  t.at(0, 1) = -1.0;
  t.grad_at(0, 0) = 0.5;
  t.grad_at(0, 1) = -0.5;
  SgdOptimizer::Options options;
  options.learning_rate = 0.1;
  options.clip_norm = 0.0;  // disabled
  SgdOptimizer opt(options);
  opt.Register(&t);
  opt.Step();
  EXPECT_NEAR(t.at(0, 0), 0.95, 1e-12);
  EXPECT_NEAR(t.at(0, 1), -0.95, 1e-12);
  // Gradients zeroed after the step.
  EXPECT_EQ(t.grad_at(0, 0), 0.0);
}

TEST(ClipTest, ScalesWhenAboveNorm) {
  Tensor t(1, 2);
  t.grad_at(0, 0) = 3.0;
  t.grad_at(0, 1) = 4.0;  // norm 5
  ClipGradients({&t}, 1.0);
  EXPECT_NEAR(t.grad_at(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(t.grad_at(0, 1), 0.8, 1e-12);
}

TEST(ClipTest, NoopWhenBelowNormOrDisabled) {
  Tensor t(1, 1);
  t.grad_at(0, 0) = 0.5;
  ClipGradients({&t}, 1.0);
  EXPECT_EQ(t.grad_at(0, 0), 0.5);
  t.grad_at(0, 0) = 100.0;
  ClipGradients({&t}, 0.0);
  EXPECT_EQ(t.grad_at(0, 0), 100.0);
}

// Minimize f(x) = (x - 3)^2 with each optimizer; both must converge.
template <typename Opt>
double Minimize(Opt& opt, Tensor& x, int steps) {
  for (int i = 0; i < steps; ++i) {
    x.grad_at(0, 0) = 2.0 * (x.at(0, 0) - 3.0);
    opt.Step();
  }
  return x.at(0, 0);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x(1, 1);
  SgdOptimizer::Options options;
  options.learning_rate = 0.1;
  SgdOptimizer opt(options);
  opt.Register(&x);
  EXPECT_NEAR(Minimize(opt, x, 200), 3.0, 1e-6);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x(1, 1);
  AdamOptimizer::Options options;
  options.learning_rate = 0.1;
  AdamOptimizer opt(options);
  opt.Register(&x);
  EXPECT_NEAR(Minimize(opt, x, 500), 3.0, 1e-4);
  EXPECT_EQ(opt.step_count(), 500);
}

TEST(AdamTest, BiasCorrectionMakesFirstStepLearningRateSized) {
  Tensor x(1, 1);
  AdamOptimizer::Options options;
  options.learning_rate = 0.01;
  AdamOptimizer opt(options);
  opt.Register(&x);
  x.grad_at(0, 0) = 12345.0;  // any positive gradient
  opt.Step();
  // With bias correction, the first update is ~ -lr regardless of scale
  // (clip_norm rescales the gradient but not its sign/direction).
  EXPECT_NEAR(x.at(0, 0), -0.01, 1e-6);
}

TEST(AdamTest, MultipleTensors) {
  Tensor a(1, 1);
  Tensor b(1, 1);
  AdamOptimizer opt(AdamOptimizer::Options{});
  opt.Register(&a);
  opt.Register(&b);
  a.grad_at(0, 0) = 1.0;
  b.grad_at(0, 0) = -1.0;
  opt.Step();
  EXPECT_LT(a.at(0, 0), 0.0);
  EXPECT_GT(b.at(0, 0), 0.0);
}

}  // namespace
}  // namespace querc::nn
