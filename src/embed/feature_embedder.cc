#include "embed/feature_embedder.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "nn/serialize.h"
#include "sql/analyzer.h"
#include "sql/normalizer.h"
#include "util/string_util.h"

namespace querc::embed {

namespace {

constexpr uint64_t kMagic = 0x5146454154454d31ULL;  // "QFEATEM1"

/// Number of fixed (non-hashed) feature slots; see FixedFeatureNames().
constexpr size_t kFixedFeatures = 18;

/// Reconstitutes a TokenList from the normalized word stream the Embedder
/// interface supplies (keywords are upper-case, identifiers lower-case,
/// literals are placeholder words).
sql::TokenList TokensFromWords(const std::vector<std::string>& words,
                               sql::Dialect dialect) {
  const sql::DialectTraits& traits = sql::GetDialectTraits(dialect);
  sql::TokenList tokens;
  tokens.reserve(words.size());
  size_t offset = 0;
  for (const std::string& w : words) {
    sql::Token t;
    t.offset = offset;
    offset += w.size() + 1;
    if (w == sql::kNumberPlaceholder) {
      t.type = sql::TokenType::kNumber;
      t.text = "0";
    } else if (w == sql::kStringPlaceholder) {
      t.type = sql::TokenType::kString;
      t.text = "";
    } else if (w == sql::kParamPlaceholder) {
      t.type = sql::TokenType::kParameter;
      t.text = "?";
    } else if (w.size() <= 2 && !w.empty() &&
               std::string("=<>!+-*/%.|:").find(w[0]) != std::string::npos) {
      t.type = sql::TokenType::kOperator;
      t.text = w;
    } else if (w == "(" || w == ")" || w == "," || w == ";") {
      t.type = sql::TokenType::kPunct;
      t.text = w;
    } else if (traits.is_keyword(w)) {
      t.type = sql::TokenType::kKeyword;
      t.text = w;
    } else {
      t.type = sql::TokenType::kIdentifier;
      t.text = w;
    }
    tokens.push_back(std::move(t));
  }
  return tokens;
}

void AccumulateShape(const sql::QueryShape& shape, nn::Vec& f,
                     const FeatureEmbedder::Options& options) {
  f[0] += static_cast<double>(shape.tables.size());
  f[1] += static_cast<double>(shape.joins.size());
  f[2] += static_cast<double>(shape.group_by_columns.size());
  f[3] += static_cast<double>(shape.order_by_columns.size());
  f[4] += static_cast<double>(shape.aggregate_functions.size());
  f[5] += static_cast<double>(shape.select_columns.size());
  f[6] += shape.has_distinct ? 1.0 : 0.0;
  f[7] += shape.has_having ? 1.0 : 0.0;
  f[8] += shape.has_limit_or_top ? 1.0 : 0.0;
  f[9] += static_cast<double>(shape.set_operation_count);
  for (const sql::Predicate& p : shape.filters) {
    if (p.op == "=") {
      f[10] += 1.0;
    } else if (p.op == "<" || p.op == ">" || p.op == "<=" || p.op == ">=" ||
               p.op == "BETWEEN") {
      f[11] += 1.0;
    } else if (p.op == "LIKE" || p.op == "NOT LIKE") {
      f[12] += 1.0;
    } else if (p.op == "IN") {
      f[13] += 1.0;
    } else if (p.op == "IN_SUBQUERY" || p.op == "EXISTS_SUBQUERY") {
      f[14] += 1.0;
    } else {
      f[15] += 1.0;
    }
  }

  const size_t tb = options.table_hash_buckets;
  const size_t cb = options.column_hash_buckets;
  for (const std::string& table : shape.tables) {
    f[kFixedFeatures + util::Fnv1a64(table) % tb] += 1.0;
  }
  auto column_bucket = [&](const std::string& col) {
    f[kFixedFeatures + tb + util::Fnv1a64(col) % cb] += 1.0;
  };
  for (const sql::Predicate& p : shape.filters) {
    if (!p.column.empty()) column_bucket(p.column);
  }
  for (const std::string& col : shape.group_by_columns) column_bucket(col);

  for (const sql::QueryShape& sub : shape.subqueries) {
    AccumulateShape(sub, f, options);
  }
}

}  // namespace

FeatureEmbedder::FeatureEmbedder(const Options& options)
    : options_(options), scale_(dim(), 1.0) {}

size_t FeatureEmbedder::dim() const {
  return kFixedFeatures + options_.table_hash_buckets +
         options_.column_hash_buckets;
}

std::vector<std::string> FeatureEmbedder::FixedFeatureNames() {
  return {"tables",        "joins",        "group_by_cols", "order_by_cols",
          "aggregates",    "select_cols",  "distinct",      "having",
          "limit",         "set_ops",      "eq_filters",    "range_filters",
          "like_filters",  "in_filters",   "subq_filters",  "other_filters",
          "subquery_depth", "token_count"};
}

nn::Vec FeatureEmbedder::RawFeatures(
    const std::vector<std::string>& words) const {
  nn::Vec f(dim(), 0.0);
  sql::TokenList tokens = TokensFromWords(words, options_.dialect);
  sql::QueryShape shape = sql::Analyze(tokens);
  AccumulateShape(shape, f, options_);
  f[16] = static_cast<double>(shape.Depth());
  f[17] = static_cast<double>(words.size());
  return f;
}

util::Status FeatureEmbedder::Train(
    const std::vector<std::vector<std::string>>& docs) {
  if (docs.empty()) {
    return util::Status::InvalidArgument("features: empty corpus");
  }
  // Fit per-dimension inverse standard deviation so Euclidean distances
  // weight features comparably.
  const size_t d = dim();
  nn::Vec mean(d, 0.0);
  nn::Vec m2(d, 0.0);
  for (const auto& doc : docs) {
    nn::Vec f = RawFeatures(doc);
    for (size_t i = 0; i < d; ++i) {
      mean[i] += f[i];
      m2[i] += f[i] * f[i];
    }
  }
  double n = static_cast<double>(docs.size());
  for (size_t i = 0; i < d; ++i) {
    double mu = mean[i] / n;
    double var = m2[i] / n - mu * mu;
    scale_[i] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
  }
  return util::Status::OK();
}

nn::Vec FeatureEmbedder::Embed(const std::vector<std::string>& words) const {
  nn::Vec f = RawFeatures(words);
  for (size_t i = 0; i < f.size(); ++i) f[i] *= scale_[i];
  return f;
}

util::Status FeatureEmbedder::Save(std::ostream& out) const {
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, kMagic));
  QUERC_RETURN_IF_ERROR(
      nn::WriteU64(out, static_cast<uint64_t>(options_.dialect)));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, options_.table_hash_buckets));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, options_.column_hash_buckets));
  for (double x : scale_) QUERC_RETURN_IF_ERROR(nn::WriteF64(out, x));
  return util::Status::OK();
}

util::StatusOr<FeatureEmbedder> FeatureEmbedder::Load(std::istream& in) {
  uint64_t magic = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, magic));
  if (magic != kMagic) {
    return util::Status::Corruption("features: bad magic");
  }
  uint64_t dialect = 0, table_buckets = 0, column_buckets = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, dialect));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, table_buckets));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, column_buckets));
  if (dialect > static_cast<uint64_t>(sql::Dialect::kSnowflake)) {
    return util::Status::Corruption("features: corrupt header (dialect)");
  }
  if (table_buckets == 0 || table_buckets > (1ULL << 20) ||
      column_buckets == 0 || column_buckets > (1ULL << 20)) {
    return util::Status::Corruption("features: corrupt header (buckets)");
  }
  Options options;
  options.dialect = static_cast<sql::Dialect>(dialect);
  options.table_hash_buckets = table_buckets;
  options.column_hash_buckets = column_buckets;
  FeatureEmbedder embedder(options);
  for (size_t i = 0; i < embedder.scale_.size(); ++i) {
    QUERC_RETURN_IF_ERROR(nn::ReadF64(in, embedder.scale_[i]));
    if (!std::isfinite(embedder.scale_[i])) {
      return util::Status::Corruption("features: non-finite scale value");
    }
  }
  return embedder;
}

}  // namespace querc::embed
