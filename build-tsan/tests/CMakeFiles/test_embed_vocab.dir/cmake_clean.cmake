file(REMOVE_RECURSE
  "CMakeFiles/test_embed_vocab.dir/test_embed_vocab.cc.o"
  "CMakeFiles/test_embed_vocab.dir/test_embed_vocab.cc.o.d"
  "test_embed_vocab"
  "test_embed_vocab.pdb"
  "test_embed_vocab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embed_vocab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
