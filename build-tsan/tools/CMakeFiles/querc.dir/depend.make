# Empty dependencies file for querc.
# This may be replaced when dependencies are built.
