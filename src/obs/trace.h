#ifndef QUERC_OBS_TRACE_H_
#define QUERC_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace querc::obs {

/// The histogram `querc_stage_ms{stage=<stage>}` in the global registry —
/// one time series per pipeline stage (lex, normalize, embed, classify,
/// sink_database, sink_training, ...). Takes the registry mutex; hot call
/// sites should cache the reference in a function-local static.
Histogram& StageHistogram(const std::string& stage);

class Trace;

/// Stage timings with small-buffer storage: the first kInlineCapacity
/// entries live inside the object, so a typical lex → normalize → embed →
/// classify → sink trace records without touching the heap; deeper traces
/// spill into a vector. Append-only; read via size()/operator[]/range-for.
class StageList {
 public:
  using value_type = std::pair<const char*, double>;
  static constexpr size_t kInlineCapacity = 8;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const value_type& operator[](size_t i) const {
    return i < kInlineCapacity ? inline_[i] : spill_[i - kInlineCapacity];
  }

  void push_back(const value_type& v) {
    if (size_ < kInlineCapacity) {
      inline_[size_] = v;
    } else {
      spill_.push_back(v);
    }
    ++size_;
  }

  class const_iterator {
   public:
    const_iterator(const StageList* list, size_t i) : list_(list), i_(i) {}
    const value_type& operator*() const { return (*list_)[i_]; }
    const value_type* operator->() const { return &(*list_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const StageList* list_;
    size_t i_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

 private:
  size_t size_ = 0;
  value_type inline_[kInlineCapacity] = {};
  std::vector<value_type> spill_;
};

/// Scoped stage timer: records its elapsed milliseconds into `hist` when
/// it ends (destruction or End()). When constructed with a stage name and
/// a Trace is active on this thread, the (stage, ms) pair is also appended
/// to that trace's per-query breakdown and a span event carrying the
/// thread's TraceContext is written to the flight recorder. `stage` must
/// outlive the trace — pass a string literal. The record path touches only
/// the histogram's atomics and this thread's journal ring: no mutex.
class Span {
 public:
  explicit Span(Histogram* hist, const char* stage = nullptr)
      : hist_(hist), stage_(stage), start_(Clock::now()) {}
  ~Span() { End(); }

  Span(Span&& other) noexcept
      : hist_(other.hist_), stage_(other.stage_), start_(other.start_) {
    other.hist_ = nullptr;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span& operator=(Span&&) = delete;

  /// Records once; further calls (and destruction) are no-ops.
  void End();

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* hist_;
  const char* stage_;
  Clock::time_point start_;
};

/// Per-request trace: marks this thread as "inside request `name`" for its
/// scope, collects the stage spans recorded on the way (lex → normalize →
/// embed → classify → sink), and optionally records the total duration
/// into `total_hist`. Traces nest (the previous trace is restored on
/// destruction); the stage breakdown is confined to the thread that
/// created it.
///
/// Each Trace also manages this thread's TraceContext: if a context is
/// already installed (e.g. adopted from the thread that fanned this work
/// out), the trace *joins* it — same trace id, fresh span id; otherwise it
/// *owns* a new trace id. On destruction it writes its span to the flight
/// recorder — flagged as the root span when it owns the trace, which is
/// what tells the trace collector the per-query trace is complete.
class Trace {
 public:
  explicit Trace(const char* name, Histogram* total_hist = nullptr);
  ~Trace();

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// The innermost live trace on this thread, or nullptr.
  static Trace* Current();

  const char* name() const { return name_; }
  double ElapsedMs() const;

  /// The flight-recorder identity of this trace (always valid).
  const TraceContext& context() const { return ctx_; }
  /// True when this trace created the trace id (vs. joining an adopted
  /// context) — its closing span is the root span.
  bool owns_trace() const { return owns_trace_; }

  /// Stage timings recorded so far, in completion order.
  const StageList& stages() const { return stages_; }
  void AddStage(const char* stage, double ms) {
    stages_.push_back({stage, ms});
  }

  /// One-line rendering: "name total_ms stage=ms stage=ms ...".
  std::string Summary() const;

 private:
  using Clock = std::chrono::steady_clock;
  const char* name_;
  Histogram* total_hist_;
  Trace* parent_;
  TraceContext ctx_;
  TraceContext prev_ctx_;
  bool owns_trace_;
  Clock::time_point start_;
  StageList stages_;
};

}  // namespace querc::obs

#endif  // QUERC_OBS_TRACE_H_
