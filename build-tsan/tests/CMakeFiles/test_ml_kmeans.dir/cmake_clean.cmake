file(REMOVE_RECURSE
  "CMakeFiles/test_ml_kmeans.dir/test_ml_kmeans.cc.o"
  "CMakeFiles/test_ml_kmeans.dir/test_ml_kmeans.cc.o.d"
  "test_ml_kmeans"
  "test_ml_kmeans.pdb"
  "test_ml_kmeans[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
