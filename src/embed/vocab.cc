#include "embed/vocab.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>

#include "nn/serialize.h"

namespace querc::embed {

Vocabulary Vocabulary::Build(const std::vector<std::vector<std::string>>& docs,
                             size_t min_count) {
  std::map<std::string, uint64_t> raw_counts;
  uint64_t total = 0;
  for (const auto& doc : docs) {
    for (const auto& w : doc) {
      ++raw_counts[w];
      ++total;
    }
  }

  Vocabulary vocab;
  vocab.total_tokens_ = total;
  vocab.words_ = {kUnknown, kStartOfSequence, kEndOfSequence};
  vocab.counts_ = {0, 0, 0};
  for (const auto& [word, count] : raw_counts) {
    if (count >= min_count) {
      vocab.words_.push_back(word);
      vocab.counts_.push_back(count);
    } else {
      vocab.counts_[0] += count;  // folded into <unk>
    }
  }
  for (size_t i = 0; i < vocab.words_.size(); ++i) {
    vocab.index_[vocab.words_[i]] = i;
  }
  vocab.BuildSamplingTable();
  return vocab;
}

size_t Vocabulary::Id(const std::string& word) const {
  auto it = index_.find(word);
  return it == index_.end() ? UnknownId() : it->second;
}

std::vector<size_t> Vocabulary::Encode(
    const std::vector<std::string>& words) const {
  std::vector<size_t> ids;
  ids.reserve(words.size());
  for (const auto& w : words) ids.push_back(Id(w));
  return ids;
}

void Vocabulary::BuildSamplingTable() {
  sampling_cdf_.assign(words_.size(), 0.0);
  double acc = 0.0;
  for (size_t i = 0; i < words_.size(); ++i) {
    // Special tokens and <unk> participate with their (possibly zero)
    // counts; pow(0, 0.75) == 0, so they are never drawn unless folded.
    acc += std::pow(static_cast<double>(counts_[i]), 0.75);
    sampling_cdf_[i] = acc;
  }
  if (acc > 0.0) {
    for (double& v : sampling_cdf_) v /= acc;
  }
}

size_t Vocabulary::SampleNegative(util::Rng& rng) const {
  if (sampling_cdf_.empty() || sampling_cdf_.back() <= 0.0) return UnknownId();
  double u = rng.UniformDouble();
  auto it = std::lower_bound(sampling_cdf_.begin(), sampling_cdf_.end(), u);
  return static_cast<size_t>(std::distance(sampling_cdf_.begin(), it));
}

util::Status Vocabulary::Save(std::ostream& out) const {
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, words_.size()));
  QUERC_RETURN_IF_ERROR(nn::WriteU64(out, total_tokens_));
  for (size_t i = 0; i < words_.size(); ++i) {
    QUERC_RETURN_IF_ERROR(nn::WriteString(out, words_[i]));
    QUERC_RETURN_IF_ERROR(nn::WriteU64(out, counts_[i]));
  }
  return util::Status::OK();
}

util::Status Vocabulary::Load(std::istream& in, Vocabulary* vocab) {
  uint64_t n = 0;
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, n));
  QUERC_RETURN_IF_ERROR(nn::ReadU64(in, vocab->total_tokens_));
  if (n < 3 || n > (1ULL << 28)) {
    return util::Status::Corruption("vocabulary size implausible");
  }
  vocab->words_.resize(n);
  vocab->counts_.resize(n);
  vocab->index_.clear();
  for (size_t i = 0; i < n; ++i) {
    QUERC_RETURN_IF_ERROR(nn::ReadString(in, vocab->words_[i]));
    uint64_t c = 0;
    QUERC_RETURN_IF_ERROR(nn::ReadU64(in, c));
    vocab->counts_[i] = c;
    vocab->index_[vocab->words_[i]] = i;
  }
  vocab->BuildSamplingTable();
  return util::Status::OK();
}

}  // namespace querc::embed
