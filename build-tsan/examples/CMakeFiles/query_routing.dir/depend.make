# Empty dependencies file for query_routing.
# This may be replaced when dependencies are built.
