#include "embed/tfidf_embedder.h"

#include <gtest/gtest.h>

namespace querc::embed {
namespace {

std::vector<std::vector<std::string>> Corpus() {
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 20; ++i) {
    docs.push_back({"SELECT", "revenue", "FROM", "sales"});
    docs.push_back({"SELECT", "clicks", "FROM", "events"});
  }
  docs.push_back({"DROP", "TABLE", "rare_table"});
  return docs;
}

TEST(TfidfTest, EmbedsToUnitNorm) {
  TfidfEmbedder embedder{TfidfEmbedder::Options{}};
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  nn::Vec v = embedder.Embed({"SELECT", "revenue", "FROM", "sales"});
  EXPECT_EQ(v.size(), embedder.dim());
  EXPECT_NEAR(nn::L2Norm(v), 1.0, 1e-9);
}

TEST(TfidfTest, OrderInvariant) {
  TfidfEmbedder embedder{TfidfEmbedder::Options{}};
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  EXPECT_EQ(embedder.Embed({"a", "b", "c"}), embedder.Embed({"c", "a", "b"}));
}

TEST(TfidfTest, RareTokensWeighHeavier) {
  TfidfEmbedder::Options options;
  options.buckets = 256;  // few collisions on this tiny vocabulary
  TfidfEmbedder embedder(options);
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  // "rare_table" appears in 1/41 docs, "SELECT" in 40/41: the rare doc's
  // vector should be closer to itself than to the common docs, and a
  // common-vs-rare pair must be farther apart than two common docs.
  nn::Vec common1 = embedder.Embed({"SELECT", "revenue", "FROM", "sales"});
  nn::Vec common2 = embedder.Embed({"SELECT", "clicks", "FROM", "events"});
  nn::Vec rare = embedder.Embed({"DROP", "TABLE", "rare_table"});
  EXPECT_GT(nn::CosineSimilarity(common1, common2),
            nn::CosineSimilarity(common1, rare));
}

TEST(TfidfTest, SimilarQueriesCloser) {
  TfidfEmbedder embedder{TfidfEmbedder::Options{}};
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  nn::Vec a = embedder.Embed({"SELECT", "revenue", "FROM", "sales"});
  nn::Vec b = embedder.Embed({"SELECT", "revenue", "FROM", "sales",
                              "WHERE", "x"});
  nn::Vec c = embedder.Embed({"DROP", "TABLE", "rare_table"});
  EXPECT_GT(nn::CosineSimilarity(a, b), nn::CosineSimilarity(a, c));
}

TEST(TfidfTest, UntrainedEmbedsToZeroVector) {
  // Uniform untrained policy across embedders (see Embedder::Embed): an
  // untrained model returns zeros, never a silently tf-only vector.
  TfidfEmbedder embedder{TfidfEmbedder::Options{}};
  nn::Vec v = embedder.Embed({"SELECT", "a"});
  EXPECT_EQ(v.size(), embedder.dim());
  EXPECT_EQ(nn::L2Norm(v), 0.0);
}

TEST(TfidfTest, EmptyInputIsZeroVector) {
  TfidfEmbedder embedder{TfidfEmbedder::Options{}};
  ASSERT_TRUE(embedder.Train(Corpus()).ok());
  nn::Vec v = embedder.Embed({});
  EXPECT_EQ(nn::L2Norm(v), 0.0);
}

TEST(TfidfTest, EmptyCorpusFails) {
  TfidfEmbedder embedder{TfidfEmbedder::Options{}};
  EXPECT_FALSE(embedder.Train({}).ok());
}

}  // namespace
}  // namespace querc::embed
