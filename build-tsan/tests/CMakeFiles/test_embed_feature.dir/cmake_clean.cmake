file(REMOVE_RECURSE
  "CMakeFiles/test_embed_feature.dir/test_embed_feature.cc.o"
  "CMakeFiles/test_embed_feature.dir/test_embed_feature.cc.o.d"
  "test_embed_feature"
  "test_embed_feature.pdb"
  "test_embed_feature[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embed_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
