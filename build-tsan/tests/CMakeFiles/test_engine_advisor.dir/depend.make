# Empty dependencies file for test_engine_advisor.
# This may be replaced when dependencies are built.
