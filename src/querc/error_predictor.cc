#include "querc/error_predictor.h"

namespace querc::core {

util::Status ErrorPredictor::Train(const workload::Workload& history) {
  if (history.empty()) {
    return util::Status::InvalidArgument("error predictor: empty history");
  }
  // Ensure "" (no error) is class 0 regardless of log order.
  codes_.FitId("");
  ml::Dataset data;
  for (const auto& q : history) {
    data.x.push_back(embedder_->EmbedQuery(q.text, q.dialect));
    data.y.push_back(codes_.FitId(q.error_code));
  }
  forest_.Fit(data);
  trained_ = true;
  return util::Status::OK();
}

std::string ErrorPredictor::PredictError(
    const workload::LabeledQuery& query) const {
  if (!trained_) return "";
  int id = forest_.Predict(embedder_->EmbedQuery(query.text, query.dialect));
  return codes_.Label(id);
}

double ErrorPredictor::FailureProbability(
    const workload::LabeledQuery& query) const {
  if (!trained_) return 0.0;
  std::vector<double> proba =
      forest_.PredictProba(embedder_->EmbedQuery(query.text, query.dialect));
  // Class 0 is "no error"; everything else is some failure.
  return proba.empty() ? 0.0 : 1.0 - proba[0];
}

}  // namespace querc::core
