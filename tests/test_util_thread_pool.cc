#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace querc::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(500, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyQueueReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

// Regression: the old implementation waited on global pool idleness, so a
// ParallelFor issued from *inside* a pool worker blocked a worker that was
// itself needed to drain the queue — a deadlock for any nested parallel
// path (e.g. training jobs reaching the summarizer's parallel loops). The
// caller now participates in its own batch, so nesting always completes.
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&pool, &inner_total](size_t) {
    pool.ParallelFor(8, [&inner_total](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPoolTest, NestedParallelForOnSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(3, [&pool, &inner_total](size_t) {
    pool.ParallelFor(5, [&inner_total](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 3 * 5);
}

TEST(ThreadPoolTest, ParallelForFromSubmittedTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.Submit([&pool, &total] {
    pool.ParallelFor(16, [&total](size_t) { total.fetch_add(1); });
  });
  pool.WaitIdle();
  EXPECT_EQ(total.load(), 16);
}

// Regression: WaitIdle-based batches could return while *their own* tasks
// were still running if another thread's batch kept the pool non-idle in
// a lucky interleaving — or block on the other batch's work. Each batch
// now has a private completion latch: when ParallelFor returns, exactly
// its n calls have finished, regardless of concurrent batches.
TEST(ThreadPoolTest, ConcurrentBatchesFromTwoThreadsAreIndependent) {
  ThreadPool pool(3);
  constexpr int kPerBatch = 400;
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  int a_at_return = -1;
  int b_at_return = -1;
  std::thread ta([&] {
    pool.ParallelFor(kPerBatch, [&a](size_t) { a.fetch_add(1); });
    a_at_return = a.load();
  });
  std::thread tb([&] {
    pool.ParallelFor(kPerBatch, [&b](size_t) { b.fetch_add(1); });
    b_at_return = b.load();
  });
  ta.join();
  tb.join();
  // Each caller observed its own batch fully drained at return time.
  EXPECT_EQ(a_at_return, kPerBatch);
  EXPECT_EQ(b_at_return, kPerBatch);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstTaskException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.ParallelFor(64, [&ran](size_t i) {
      ran.fetch_add(1);
      if (i == 7) throw std::runtime_error("task 7 failed");
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7 failed");
  }
  // The batch still drained: every index ran despite the exception.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitTaskExceptionDoesNotKillWorker) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  // Previously an escaping exception left WorkerLoop via std::terminate.
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForMoreShardsThanIndices) {
  ThreadPool pool(8);
  std::atomic<int> ran{0};
  pool.ParallelFor(2, [&ran](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, PublishesTelemetryToGlobalRegistry) {
  auto& registry = obs::MetricsRegistry::Global();
  uint64_t tasks_before =
      registry.GetCounter("querc_threadpool_tasks_total").value();
  uint64_t recorded_before =
      registry.GetHistogram("querc_threadpool_task_ms").Snapshot().count;

  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 25; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();

  EXPECT_EQ(counter.load(), 25);
  EXPECT_EQ(registry.GetCounter("querc_threadpool_tasks_total").value(),
            tasks_before + 25);
  EXPECT_EQ(
      registry.GetHistogram("querc_threadpool_task_ms").Snapshot().count,
      recorded_before + 25);
  // Nothing queued any more, so the depth gauge has drained back.
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("querc_threadpool_queue_depth").value(), 0.0);
}

// ---------------------------------------------------------------------
// Lane scheduling (DESIGN.md §17). The gate pattern: a blocker task per
// worker pins the pool busy so subsequent submissions queue up, making
// dispatch order fully deterministic once the gate opens.

class Gate {
 public:
  explicit Gate(ThreadPool* pool, size_t workers) {
    for (size_t i = 0; i < workers; ++i) {
      pool->Submit([this] {
        blocked_.fetch_add(1, std::memory_order_release);
        while (!release_.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      });
    }
    while (blocked_.load(std::memory_order_acquire) < workers) {
      std::this_thread::yield();
    }
  }

  void Open() { release_.store(true, std::memory_order_release); }

 private:
  std::atomic<bool> release_{false};
  std::atomic<size_t> blocked_{0};
};

TEST(ThreadPoolLaneTest, InteractiveRunsBeforeQueuedBatch) {
  ThreadPool pool(1);
  Gate gate(&pool, 1);
  std::atomic<int> seq{0};
  int batch_pos = -1;
  int interactive_pos = -1;
  // Batch is submitted FIRST; strict lane priority must still run the
  // interactive task ahead of it.
  pool.Submit(Lane::kBatch, [&] { batch_pos = seq.fetch_add(1); });
  pool.Submit(Lane::kInteractive, [&] { interactive_pos = seq.fetch_add(1); });
  gate.Open();
  pool.WaitIdle();
  EXPECT_EQ(interactive_pos, 0);
  EXPECT_EQ(batch_pos, 1);
}

TEST(ThreadPoolLaneTest, NormalRunsBeforeQueuedBatch) {
  ThreadPool pool(1);
  Gate gate(&pool, 1);
  std::atomic<int> seq{0};
  int batch_pos = -1;
  int normal_pos = -1;
  pool.Submit(Lane::kBatch, [&] { batch_pos = seq.fetch_add(1); });
  pool.Submit([&] { normal_pos = seq.fetch_add(1); });
  gate.Open();
  pool.WaitIdle();
  EXPECT_EQ(normal_pos, 0);
  EXPECT_EQ(batch_pos, 1);
}

TEST(ThreadPoolLaneTest, BatchLaneStarvationBound) {
  ThreadPool::Options options;
  options.num_threads = 1;
  options.starvation_limit = 4;
  ThreadPool pool(options);
  Gate gate(&pool, 1);
  std::atomic<int> seq{0};
  int batch_pos = -1;
  pool.Submit(Lane::kBatch, [&] { batch_pos = seq.fetch_add(1); });
  for (int i = 0; i < 20; ++i) {
    pool.Submit(Lane::kInteractive, [&] { seq.fetch_add(1); });
  }
  gate.Open();
  pool.WaitIdle();
  // Priority holds (the batch task is bypassed at least once), but after
  // starvation_limit consecutive bypasses the scheduler forces the batch
  // dispatch — it cannot sit behind all 20 interactive tasks.
  EXPECT_GT(batch_pos, 0);
  EXPECT_LE(batch_pos, 5);  // starvation_limit bypasses + the forced run
}

TEST(ThreadPoolLaneTest, DeadlineEscalationPromotesUrgentBatch) {
  std::atomic<int64_t> fake_now{1000};
  ThreadPool::Options options;
  options.num_threads = 1;
  options.escalation_ms = 1.0;
  options.clock = [&fake_now] { return fake_now.load(); };
  ThreadPool pool(options);
  Gate gate(&pool, 1);
  std::atomic<int> seq{0};
  int batch_pos = -1;
  int interactive_pos = -1;
  // The batch task's deadline is 500us away — inside the 1 ms escalation
  // window — so it must jump ahead of the queued interactive task.
  ThreadPool::TaskOptions urgent;
  urgent.lane = Lane::kBatch;
  urgent.deadline_us = 1500;
  pool.Submit(Lane::kInteractive, [&] { interactive_pos = seq.fetch_add(1); });
  pool.Submit(urgent, [&] { batch_pos = seq.fetch_add(1); });
  gate.Open();
  pool.WaitIdle();
  EXPECT_EQ(batch_pos, 0);
  EXPECT_EQ(interactive_pos, 1);
}

TEST(ThreadPoolLaneTest, DistantDeadlineDoesNotEscalate) {
  std::atomic<int64_t> fake_now{1000};
  ThreadPool::Options options;
  options.num_threads = 1;
  options.escalation_ms = 1.0;
  options.clock = [&fake_now] { return fake_now.load(); };
  ThreadPool pool(options);
  Gate gate(&pool, 1);
  std::atomic<int> seq{0};
  int batch_pos = -1;
  int interactive_pos = -1;
  ThreadPool::TaskOptions relaxed;
  relaxed.lane = Lane::kBatch;
  relaxed.deadline_us = 1000 * 1000;  // ~1s away: lane order stands
  pool.Submit(relaxed, [&] { batch_pos = seq.fetch_add(1); });
  pool.Submit(Lane::kInteractive, [&] { interactive_pos = seq.fetch_add(1); });
  gate.Open();
  pool.WaitIdle();
  EXPECT_EQ(interactive_pos, 0);
  EXPECT_EQ(batch_pos, 1);
}

// Regression: caller-drained ParallelFor batches used to leave up to
// num_threads stale no-op helper closures in the queue, delaying every
// subsequent task (and poisoning lane ordering). The batch now purges
// its still-queued helpers before ParallelFor returns.
TEST(ThreadPoolLaneTest, CallerDrainedParallelForLeavesNoStaleHelpers) {
  ThreadPool pool(2);
  Gate gate(&pool, 2);  // both workers pinned: the caller drains alone
  std::atomic<int> ran{0};
  pool.ParallelFor(8, [&ran](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
  // Immediately after return — before any worker frees up — the queue
  // must be empty: the helpers were purged, not left as stale no-ops.
  EXPECT_EQ(pool.queue_depth(Lane::kNormal), 0u);
  EXPECT_EQ(pool.queue_depth(Lane::kInteractive), 0u);
  EXPECT_EQ(pool.queue_depth(Lane::kBatch), 0u);
  gate.Open();
  pool.WaitIdle();
}

// Regression: the queue-depth gauge used to be updated outside mu_ (after
// push / after pop), so a concurrent scrape could observe a transiently
// negative or overshot depth. Updates now share the queue's critical
// section; a scraper hammering the gauge must never see < 0.
TEST(ThreadPoolLaneTest, QueueDepthGaugeNeverNegativeUnderContention) {
  auto& gauge =
      obs::MetricsRegistry::Global().GetGauge("querc_threadpool_queue_depth");
  ThreadPool pool(4);
  std::atomic<bool> done{false};
  double min_seen = 0.0;
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      min_seen = std::min(min_seen, gauge.value());
    }
  });
  constexpr int kSubmitters = 4;
  constexpr int kTasksPer = 2000;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&pool] {
      for (int i = 0; i < kTasksPer; ++i) {
        pool.Submit(static_cast<Lane>(i % kNumLanes), [] {});
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.WaitIdle();
  done.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_GE(min_seen, 0.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(ThreadPoolLaneTest, NestedParallelForAcrossLanes) {
  // Interactive batches spawning batch-lane sub-batches (and the
  // reverse) must complete without deadlock — the caller participates in
  // its own batch, and the lock-rank detector (debug/sanitizer builds)
  // checks the mu_ -> batch_mu ordering on every acquisition.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(Lane::kInteractive, 4, [&pool, &total](size_t) {
    pool.ParallelFor(Lane::kBatch, 6, [&total](size_t) {
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 4 * 6);
  pool.ParallelFor(Lane::kBatch, 3, [&pool, &total](size_t) {
    pool.ParallelFor(Lane::kInteractive, 5,
                     [&total](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 4 * 6 + 3 * 5);
}

TEST(ThreadPoolLaneTest, BoundedLaneRunsOverflowInlineOnCaller) {
  auto& overflow = obs::MetricsRegistry::Global().GetCounter(
      "querc_threadpool_lane_overflow_total", {{"lane", "batch"}});
  uint64_t overflow_before = overflow.value();
  ThreadPool::Options options;
  options.num_threads = 1;
  options.lane_capacity = 2;
  ThreadPool pool(options);
  Gate gate(&pool, 1);
  for (int i = 0; i < 2; ++i) pool.Submit(Lane::kBatch, [] {});
  EXPECT_EQ(pool.queue_depth(Lane::kBatch), 2u);
  // The lane is full: the third submit must run inline on this thread,
  // synchronously, before Submit returns — backpressure, not growth.
  std::thread::id caller = std::this_thread::get_id();
  bool ran_on_caller = false;
  pool.Submit(Lane::kBatch, [&] {
    ran_on_caller = std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(ran_on_caller);
  EXPECT_EQ(pool.queue_depth(Lane::kBatch), 2u);
  EXPECT_EQ(overflow.value(), overflow_before + 1);
  gate.Open();
  pool.WaitIdle();
}

TEST(ThreadPoolLaneTest, PublishesPerLaneTelemetry) {
  auto& registry = obs::MetricsRegistry::Global();
  auto& interactive_tasks = registry.GetCounter(
      "querc_threadpool_tasks_total", {{"lane", "interactive"}});
  auto& batch_tasks =
      registry.GetCounter("querc_threadpool_tasks_total", {{"lane", "batch"}});
  uint64_t interactive_before = interactive_tasks.value();
  uint64_t batch_before = batch_tasks.value();

  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) pool.Submit(Lane::kInteractive, [] {});
  for (int i = 0; i < 7; ++i) pool.Submit(Lane::kBatch, [] {});
  pool.WaitIdle();

  EXPECT_EQ(interactive_tasks.value(), interactive_before + 10);
  EXPECT_EQ(batch_tasks.value(), batch_before + 7);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("querc_threadpool_queue_depth", {{"lane", "batch"}})
          .value(),
      0.0);
  EXPECT_DOUBLE_EQ(registry
                       .GetGauge("querc_threadpool_queue_depth",
                                 {{"lane", "interactive"}})
                       .value(),
                   0.0);
  EXPECT_GE(registry
                .GetHistogram("querc_threadpool_task_ms", {{"lane", "batch"}})
                .Snapshot()
                .count,
            7u);
}

// TSan stress: mixed-lane submissions and nested cross-lane batches from
// several threads at once exercise every queue/gauge/latch path under
// the race detector.
TEST(ThreadPoolLaneTest, MixedLaneStress) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> drivers;
  drivers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&pool, &total, t] {
      for (int round = 0; round < 30; ++round) {
        pool.Submit(static_cast<Lane>(round % kNumLanes),
                    [&total] { total.fetch_add(1); });
        if (round % 3 == t % 3) {
          pool.ParallelFor(static_cast<Lane>((round + t) % kNumLanes), 8,
                           [&total](size_t) { total.fetch_add(1); });
        }
      }
    });
  }
  for (auto& d : drivers) d.join();
  pool.WaitIdle();
  EXPECT_EQ(total.load(), 4 * 30 + 4 * 10 * 8);
}

}  // namespace
}  // namespace querc::util
