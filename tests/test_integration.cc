// End-to-end integration tests: miniature versions of the paper's two
// experiments wired through the real pipeline (generators -> embedders ->
// labelers / summarizer -> advisor -> engine).

#include <memory>

#include <gtest/gtest.h>

#include "embed/doc2vec.h"
#include "embed/lstm_autoencoder.h"
#include "engine/advisor.h"
#include "engine/cost_model.h"
#include "ml/crossval.h"
#include "ml/random_forest.h"
#include "querc/summarizer.h"
#include "workload/snowflake_gen.h"
#include "workload/tpch_gen.h"

namespace querc {
namespace {

using workload::Workload;

// ---------- §5.2-style labeling ----------

Workload SmallSnowflake() {
  workload::SnowflakeGenerator::Options options;
  options.seed = 5;
  options.accounts = workload::SnowflakeGenerator::UniformAccounts(
      /*num_accounts=*/4, /*queries_per_account=*/150, /*users_per_account=*/3);
  return workload::SnowflakeGenerator(options).Generate();
}

double AccountLabelAccuracy(const embed::Embedder& embedder,
                            const Workload& wl) {
  ml::Dataset data;
  ml::LabelEncoder accounts;
  data.x = embed::EmbedWorkload(embedder, wl);
  for (const auto& q : wl) data.y.push_back(accounts.FitId(q.account));
  auto cv = ml::StratifiedKFold(data, 3, [] {
    return std::make_unique<ml::RandomForestClassifier>(
        ml::RandomForestClassifier::Options{.num_trees = 20});
  });
  return cv.MeanAccuracy();
}

TEST(IntegrationLabeling, Doc2VecAccountPredictionBeatsMajority) {
  Workload wl = SmallSnowflake();
  embed::Doc2VecEmbedder::Options options;
  options.dim = 16;
  options.epochs = 6;
  options.min_count = 1;
  embed::Doc2VecEmbedder embedder(options);
  ASSERT_TRUE(embed::TrainOnWorkload(embedder, wl).ok());
  double acc = AccountLabelAccuracy(embedder, wl);
  // 4 balanced accounts: majority baseline = 0.25. Schemas are private per
  // account, so learned features should make this nearly trivial.
  EXPECT_GT(acc, 0.7) << "doc2vec account labeling accuracy " << acc;
}

TEST(IntegrationLabeling, LstmAccountPredictionBeatsMajority) {
  Workload wl = SmallSnowflake();
  embed::LstmAutoencoderEmbedder::Options options;
  options.hidden_dim = 16;
  options.token_dim = 12;
  options.epochs = 3;
  options.min_count = 1;
  embed::LstmAutoencoderEmbedder embedder(options);
  ASSERT_TRUE(embed::TrainOnWorkload(embedder, wl).ok());
  double acc = AccountLabelAccuracy(embedder, wl);
  EXPECT_GT(acc, 0.7) << "lstm account labeling accuracy " << acc;
}

// ---------- §5.1-style summarization for index selection ----------

TEST(IntegrationSummarization, SummaryBeatsNativeAdvisorAtTightBudget) {
  workload::TpchGenerator::Options gen_options;
  gen_options.instances_per_template = 20;  // 440 queries
  workload::TpchGenerator gen(gen_options);
  Workload wl = gen.Generate();
  std::vector<std::string> texts;
  for (const auto& q : wl) texts.push_back(q.text);

  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);

  // Train a small Doc2Vec on this workload and summarize.
  auto embedder = std::make_shared<embed::Doc2VecEmbedder>([&] {
    embed::Doc2VecEmbedder::Options options;
    options.dim = 16;
    options.epochs = 6;
    options.min_count = 1;
    return options;
  }());
  ASSERT_TRUE(embed::TrainOnWorkload(*embedder, wl).ok());

  core::WorkloadSummarizer::Options sum_options;
  sum_options.elbow.k_min = 4;
  sum_options.elbow.k_max = 40;
  sum_options.elbow.k_step = 4;
  core::WorkloadSummarizer summarizer(embedder, sum_options);
  auto summary = summarizer.Summarize(wl);
  ASSERT_GT(summary.queries.size(), 3u);
  ASSERT_LT(summary.queries.size(), wl.size() / 4);

  std::vector<std::string> summary_texts;
  for (const auto& q : summary.queries) summary_texts.push_back(q.text);

  engine::AdvisorOptions tight;
  tight.budget_minutes = 3.0;
  engine::TuningAdvisor advisor(&model, tight);
  auto native = advisor.Recommend(texts);
  auto summarized = advisor.Recommend(summary_texts);

  double baseline = engine::RunWorkload(model, texts, {}).total_seconds;
  double native_rt =
      engine::RunWorkload(model, texts, native.config).total_seconds;
  double summary_rt =
      engine::RunWorkload(model, texts, summarized.config).total_seconds;

  // The summary reaches a refined (pruned) recommendation at 3 minutes and
  // beats both the baseline and the native advisor's 3-minute config.
  EXPECT_TRUE(summarized.completed_refinement);
  EXPECT_LT(summary_rt, baseline);
  EXPECT_LT(summary_rt, native_rt);
}

// ---------- transfer learning ----------

TEST(IntegrationTransfer, SnowflakeTrainedEmbedderStillSummarizesTpch) {
  // Embedder trained on a completely unrelated workload / dialect must
  // still produce a summary whose advisor output helps TPC-H (Figure 3's
  // lstm-Snowflake / doc2vec-Snowflake lines).
  Workload snowflake = SmallSnowflake();
  auto embedder = std::make_shared<embed::Doc2VecEmbedder>([&] {
    embed::Doc2VecEmbedder::Options options;
    options.dim = 16;
    options.epochs = 6;
    options.min_count = 1;
    return options;
  }());
  ASSERT_TRUE(embed::TrainOnWorkload(*embedder, snowflake).ok());

  workload::TpchGenerator::Options gen_options;
  gen_options.instances_per_template = 15;
  Workload tpch = workload::TpchGenerator(gen_options).Generate();
  std::vector<std::string> texts;
  for (const auto& q : tpch) texts.push_back(q.text);

  core::WorkloadSummarizer::Options sum_options;
  sum_options.fixed_k = 26;
  core::WorkloadSummarizer summarizer(embedder, sum_options);
  auto summary = summarizer.Summarize(tpch);
  ASSERT_GE(summary.queries.size(), 8u);

  std::vector<std::string> summary_texts;
  for (const auto& q : summary.queries) summary_texts.push_back(q.text);

  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  engine::AdvisorOptions tight;
  tight.budget_minutes = 3.0;
  engine::TuningAdvisor advisor(&model, tight);
  auto rec = advisor.Recommend(summary_texts);

  double baseline = engine::RunWorkload(model, texts, {}).total_seconds;
  double transfer_rt =
      engine::RunWorkload(model, texts, rec.config).total_seconds;
  EXPECT_LT(transfer_rt, baseline);
}

}  // namespace
}  // namespace querc
