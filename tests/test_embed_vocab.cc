#include "embed/vocab.h"

#include <map>
#include <sstream>

#include <gtest/gtest.h>

namespace querc::embed {
namespace {

std::vector<std::vector<std::string>> Corpus() {
  return {{"select", "a", "from", "t"},
          {"select", "b", "from", "t"},
          {"select", "a", "from", "u"}};
}

TEST(VocabTest, BuildAssignsSpecialsFirst) {
  Vocabulary v = Vocabulary::Build(Corpus());
  EXPECT_EQ(v.Word(v.UnknownId()), Vocabulary::kUnknown);
  EXPECT_EQ(v.Word(v.SosId()), Vocabulary::kStartOfSequence);
  EXPECT_EQ(v.Word(v.EosId()), Vocabulary::kEndOfSequence);
  EXPECT_EQ(v.size(), 3u + 6u);  // specials + {select,a,from,t,b,u}
  EXPECT_EQ(v.total_tokens(), 12u);
}

TEST(VocabTest, IdRoundTrip) {
  Vocabulary v = Vocabulary::Build(Corpus());
  size_t id = v.Id("select");
  EXPECT_GE(id, 3u);
  EXPECT_EQ(v.Word(id), "select");
  EXPECT_EQ(v.Count(id), 3u);
}

TEST(VocabTest, UnknownWordsMapToUnk) {
  Vocabulary v = Vocabulary::Build(Corpus());
  EXPECT_EQ(v.Id("nonexistent"), v.UnknownId());
}

TEST(VocabTest, MinCountFoldsRareWords) {
  Vocabulary v = Vocabulary::Build(Corpus(), /*min_count=*/2);
  // b and u occur once -> folded into <unk>.
  EXPECT_EQ(v.Id("b"), v.UnknownId());
  EXPECT_EQ(v.Id("u"), v.UnknownId());
  EXPECT_NE(v.Id("select"), v.UnknownId());
  EXPECT_EQ(v.Count(v.UnknownId()), 2u);
}

TEST(VocabTest, EncodeSequence) {
  Vocabulary v = Vocabulary::Build(Corpus());
  auto ids = v.Encode({"select", "zzz", "t"});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], v.Id("select"));
  EXPECT_EQ(ids[1], v.UnknownId());
  EXPECT_EQ(ids[2], v.Id("t"));
}

TEST(VocabTest, NegativeSamplingFollowsPowerLaw) {
  // One dominant word and one rare word: the dominant word must be drawn
  // far more often, but sub-proportionally (0.75 exponent).
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 81; ++i) corpus.push_back({"common"});
  corpus.push_back({"rare"});
  Vocabulary v = Vocabulary::Build(corpus);
  util::Rng rng(3);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[v.SampleNegative(rng)];
  double ratio = static_cast<double>(counts[v.Id("common")]) /
                 std::max(1, counts[v.Id("rare")]);
  // 81^0.75 = 27; allow generous noise.
  EXPECT_GT(ratio, 15.0);
  EXPECT_LT(ratio, 50.0);
}

TEST(VocabTest, SamplingNeverReturnsZeroCountSpecials) {
  Vocabulary v = Vocabulary::Build(Corpus());
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    size_t id = v.SampleNegative(rng);
    EXPECT_GE(id, 3u);  // specials have zero counts here
  }
}

TEST(VocabTest, SaveLoadRoundTrip) {
  Vocabulary v = Vocabulary::Build(Corpus(), 2);
  std::stringstream ss;
  ASSERT_TRUE(v.Save(ss).ok());
  Vocabulary loaded;
  ASSERT_TRUE(Vocabulary::Load(ss, &loaded).ok());
  EXPECT_EQ(loaded.size(), v.size());
  EXPECT_EQ(loaded.Id("select"), v.Id("select"));
  EXPECT_EQ(loaded.Count(loaded.Id("from")), 3u);
  EXPECT_EQ(loaded.total_tokens(), v.total_tokens());
}

TEST(VocabTest, LoadRejectsGarbage) {
  std::stringstream ss("not a vocab");
  Vocabulary v;
  EXPECT_FALSE(Vocabulary::Load(ss, &v).ok());
}

}  // namespace
}  // namespace querc::embed
