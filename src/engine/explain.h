#ifndef QUERC_ENGINE_EXPLAIN_H_
#define QUERC_ENGINE_EXPLAIN_H_

#include <string>

#include "engine/cost_model.h"

namespace querc::engine {

/// Renders a human-readable plan/cost explanation for `text` under
/// `config`: one line per table access (scan or index, cardinalities,
/// est/actual cost), join/aggregate/sort surcharges implied by the totals,
/// and a warning when the optimizer walked into a misestimated plan.
std::string ExplainQuery(const CostModel& model, const std::string& text,
                         const IndexConfig& config,
                         sql::Dialect dialect = sql::Dialect::kSqlServer);

}  // namespace querc::engine

#endif  // QUERC_ENGINE_EXPLAIN_H_
