#include "nn/lstm.h"

#include <cmath>

#include <gtest/gtest.h>

namespace querc::nn {
namespace {

// Scalar loss used for gradient checking: L = sum over steps of
// dot(h_t, probe_t) with fixed pseudo-random probes.
double ForwardLoss(LstmLayer& lstm, const std::vector<Vec>& inputs,
                   const std::vector<Vec>& probes) {
  lstm.Reset();
  double loss = 0.0;
  for (size_t t = 0; t < inputs.size(); ++t) {
    const Vec& h = lstm.Forward(inputs[t]);
    loss += Dot(h, probes[t]);
  }
  return loss;
}

TEST(LstmTest, ForwardDeterministicAndStateful) {
  util::Rng rng(3);
  LstmLayer lstm(4, 5, "t", rng);
  Vec x = {0.1, -0.2, 0.3, 0.4};
  lstm.Reset();
  Vec h1 = lstm.Forward(x);
  Vec h2 = lstm.Forward(x);  // second step sees nonzero state
  EXPECT_NE(h1, h2);
  lstm.Reset();
  EXPECT_EQ(lstm.Forward(x), h1);  // deterministic restart
  EXPECT_EQ(lstm.steps(), 1u);
}

TEST(LstmTest, HiddenBounded) {
  util::Rng rng(5);
  LstmLayer lstm(3, 8, "t", rng);
  lstm.Reset();
  for (int i = 0; i < 50; ++i) {
    const Vec& h = lstm.Forward({10.0, -10.0, 10.0});
    for (double v : h) {
      EXPECT_LT(std::abs(v), 1.0);  // |h| = |o * tanh(c)| < 1
    }
  }
}

TEST(LstmTest, InferSequenceMatchesForward) {
  util::Rng rng(7);
  LstmLayer lstm(3, 4, "t", rng);
  std::vector<Vec> xs = {{0.1, 0.2, 0.3}, {-0.1, 0.0, 0.5}, {0.4, 0.4, 0.4}};
  lstm.Reset();
  for (const Vec& x : xs) lstm.Forward(x);
  Vec h;
  Vec c;
  lstm.InferSequence(xs, &h, &c);
  for (size_t i = 0; i < h.size(); ++i) {
    EXPECT_NEAR(h[i], lstm.hidden()[i], 1e-12);
    EXPECT_NEAR(c[i], lstm.cell()[i], 1e-12);
  }
}

TEST(LstmTest, SetStateSeedsDecoder) {
  util::Rng rng(9);
  LstmLayer lstm(2, 3, "t", rng);
  Vec h0 = {0.5, -0.5, 0.25};
  Vec c0 = {1.0, 0.0, -1.0};
  lstm.Reset();
  lstm.SetState(h0, c0);
  EXPECT_EQ(lstm.hidden(), h0);
  EXPECT_EQ(lstm.cell(), c0);
  Vec h_seeded = lstm.Forward({0.1, 0.1});
  lstm.Reset();
  Vec h_zero = lstm.Forward({0.1, 0.1});
  EXPECT_NE(h_seeded, h_zero);
}

// Finite-difference gradient check of full BPTT: parameter, input, and
// initial-state gradients must all match central differences.
TEST(LstmTest, GradientCheck) {
  util::Rng rng(11);
  const size_t in_dim = 3;
  const size_t hid = 4;
  const size_t steps = 5;
  LstmLayer lstm(in_dim, hid, "gc", rng);

  std::vector<Vec> inputs(steps);
  std::vector<Vec> probes(steps);
  for (size_t t = 0; t < steps; ++t) {
    inputs[t].resize(in_dim);
    probes[t].resize(hid);
    for (auto& v : inputs[t]) v = rng.UniformDouble(-1, 1);
    for (auto& v : probes[t]) v = rng.UniformDouble(-1, 1);
  }

  // Analytic gradients.
  ForwardLoss(lstm, inputs, probes);
  auto result = lstm.Backward(probes);

  const double eps = 1e-6;
  // Parameter gradients.
  for (Tensor* param : lstm.Params()) {
    for (size_t i = 0; i < param->size(); i += 7) {  // sample every 7th
      double saved = param->value()[i];
      param->value()[i] = saved + eps;
      double up = ForwardLoss(lstm, inputs, probes);
      param->value()[i] = saved - eps;
      double down = ForwardLoss(lstm, inputs, probes);
      param->value()[i] = saved;
      double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(param->grad()[i], numeric, 1e-5)
          << param->name() << "[" << i << "]";
    }
  }
  // Input gradients.
  for (size_t t = 0; t < steps; ++t) {
    for (size_t i = 0; i < in_dim; ++i) {
      double saved = inputs[t][i];
      inputs[t][i] = saved + eps;
      double up = ForwardLoss(lstm, inputs, probes);
      inputs[t][i] = saved - eps;
      double down = ForwardLoss(lstm, inputs, probes);
      inputs[t][i] = saved;
      double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(result.dx[t][i], numeric, 1e-5) << "dx[" << t << "]";
    }
  }
}

// Gradient w.r.t. the initial state (the path the decoder uses to reach
// the encoder).
TEST(LstmTest, InitialStateGradientCheck) {
  util::Rng rng(13);
  const size_t dim = 2;
  const size_t hid = 3;
  LstmLayer lstm(dim, hid, "gc2", rng);
  std::vector<Vec> inputs = {{0.2, -0.1}, {0.1, 0.4}};
  std::vector<Vec> probes = {{0.3, 0.3, -0.2}, {0.1, -0.5, 0.2}};
  Vec h0 = {0.1, -0.2, 0.3};
  Vec c0 = {0.4, 0.0, -0.3};

  auto loss_from = [&](const Vec& h, const Vec& c) {
    lstm.Reset();
    lstm.SetState(h, c);
    double loss = 0.0;
    for (size_t t = 0; t < inputs.size(); ++t) {
      loss += Dot(lstm.Forward(inputs[t]), probes[t]);
    }
    return loss;
  };

  loss_from(h0, c0);
  auto result = lstm.Backward(probes);
  for (Tensor* p : lstm.Params()) p->ZeroGrad();

  const double eps = 1e-6;
  for (size_t i = 0; i < hid; ++i) {
    Vec hp = h0;
    hp[i] += eps;
    Vec hm = h0;
    hm[i] -= eps;
    double numeric = (loss_from(hp, c0) - loss_from(hm, c0)) / (2 * eps);
    EXPECT_NEAR(result.dh_init[i], numeric, 1e-5) << "dh_init[" << i << "]";

    Vec cp = c0;
    cp[i] += eps;
    Vec cm = c0;
    cm[i] -= eps;
    numeric = (loss_from(h0, cp) - loss_from(h0, cm)) / (2 * eps);
    EXPECT_NEAR(result.dc_init[i], numeric, 1e-5) << "dc_init[" << i << "]";
  }
}

TEST(LstmTest, BackwardWithFinalStateInjection) {
  util::Rng rng(17);
  LstmLayer lstm(2, 3, "t", rng);
  lstm.Reset();
  lstm.Forward({0.1, 0.2});
  Vec dh_final = {1.0, 0.0, 0.0};
  auto result = lstm.Backward({}, dh_final);
  // Some gradient must flow to the input.
  double mag = 0.0;
  for (double v : result.dx[0]) mag += std::abs(v);
  EXPECT_GT(mag, 0.0);
}

TEST(LstmTest, ForgetBiasInitializedToOne) {
  util::Rng rng(19);
  LstmLayer lstm(2, 4, "t", rng);
  Tensor* b = lstm.Params()[2];
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(b->at(4 + j, 0), 1.0);  // forget block is rows [H, 2H)
    EXPECT_EQ(b->at(j, 0), 0.0);
  }
}

}  // namespace
}  // namespace querc::nn
