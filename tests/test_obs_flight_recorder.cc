#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "embed/feature_embedder.h"
#include "ml/knn.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "querc/classifier.h"
#include "querc/qworker_pool.h"
#include "querc/resilience.h"
#include "util/failpoint.h"
#include "workload/workload.h"

namespace querc::obs {
namespace {

FlightRecorder& Recorder() { return FlightRecorder::Global(); }

/// Flushes everything buffered so each test reasons in clean deltas.
void DrainAll() {
  std::vector<FlightEvent> sink;
  Recorder().Drain(&sink);
}

FlightEvent SpanEvent(const TraceContext& ctx, int64_t ts, int64_t dur,
                      const char* label) {
  FlightEvent ev;
  ev.trace_id = ctx.trace_id;
  ev.span_id = ctx.span_id;
  ev.ts_us = ts;
  ev.dur_us = dur;
  ev.kind = static_cast<uint8_t>(EventKind::kSpan);
  ev.SetLabel(label);
  return ev;
}

// ---------------------------------------------------------------------------
// Event layout
// ---------------------------------------------------------------------------

TEST(FlightEventTest, IsOneCacheLineWithBoundedLabel) {
  static_assert(sizeof(FlightEvent) == 64, "events must stay one cache line");
  FlightEvent ev;
  ev.SetLabel("short");
  EXPECT_STREQ(ev.label, "short");
  // Longer than the 24-char capacity: truncated, always NUL-terminated.
  ev.SetLabel("qworker.classifier_predict");
  EXPECT_EQ(std::strlen(ev.label), FlightEvent::kLabelSize - 1);
  EXPECT_STREQ(ev.label, "qworker.classifier_predi");
}

// ---------------------------------------------------------------------------
// Record / drain
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, RecordDrainRoundTrip) {
  DrainAll();
  TraceContext ctx{NewTraceId(), NewSpanId()};
  Recorder().Record(SpanEvent(ctx, 100, 5, "stage_a"));
  Recorder().RecordInstant(EventKind::kRetry, "sink_database", 2);

  std::vector<FlightEvent> out;
  Recorder().Drain(&out);
  std::vector<const FlightEvent*> mine;
  for (const FlightEvent& ev : out) {
    if (ev.trace_id == ctx.trace_id || ev.event_kind() == EventKind::kRetry) {
      mine.push_back(&ev);
    }
  }
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0]->event_kind(), EventKind::kSpan);
  EXPECT_EQ(mine[0]->span_id, ctx.span_id);
  EXPECT_EQ(mine[0]->dur_us, 5);
  EXPECT_STREQ(mine[0]->label, "stage_a");
  EXPECT_NE(mine[0]->tid, 0u);  // lane ids start at 1
  EXPECT_EQ(mine[1]->event_kind(), EventKind::kRetry);
  EXPECT_EQ(mine[1]->detail, 2);
  EXPECT_EQ(Recorder().stats().buffered(), 0u);
}

TEST(FlightRecorderTest, DisabledRecorderIsInert) {
  DrainAll();
  FlightRecorder::Stats before = Recorder().stats();
  Recorder().set_enabled(false);
  TraceContext ctx{NewTraceId(), NewSpanId()};
  Recorder().Record(SpanEvent(ctx, 1, 1, "ignored"));
  Recorder().RecordInstant(EventKind::kShed, "ignored");
  Recorder().set_enabled(true);
  FlightRecorder::Stats after = Recorder().stats();
  EXPECT_EQ(after.recorded, before.recorded);
  EXPECT_EQ(after.buffered(), 0u);
}

TEST(FlightRecorderTest, RingFullDropsAreCountedExactly) {
  DrainAll();
  FlightRecorder::Stats before = Recorder().stats();
  constexpr size_t kCap = FlightRecorder::kRingCapacity;
  // A dedicated thread gets a ring with a known-empty [tail, head) window;
  // writing 3x capacity with no reader must keep exactly `capacity` events
  // and count exactly 2x capacity as dropped — nothing silent.
  std::thread writer([] {
    TraceContext ctx{NewTraceId(), NewSpanId()};
    for (size_t i = 0; i < 3 * kCap; ++i) {
      Recorder().Record(SpanEvent(ctx, static_cast<int64_t>(i), 1, "flood"));
    }
  });
  writer.join();
  FlightRecorder::Stats mid = Recorder().stats();
  EXPECT_EQ(mid.recorded - before.recorded, 3 * kCap);
  EXPECT_EQ(mid.dropped - before.dropped, 2 * kCap);
  std::vector<FlightEvent> out;
  size_t drained = Recorder().Drain(&out);
  EXPECT_GE(drained, kCap);
  FlightRecorder::Stats after = Recorder().stats();
  EXPECT_EQ(after.recorded, after.drained + after.dropped);
  EXPECT_EQ(after.buffered(), 0u);
}

// The TSan headline test: N writers race a concurrent drainer and every
// event is accounted for — recorded == drained + dropped, and everything
// the drainer collected is exactly what the stats say was drained.
TEST(FlightRecorderTest, ConservationUnderConcurrentWritersAndDrains) {
  DrainAll();
  FlightRecorder::Stats before = Recorder().stats();
  constexpr size_t kWriters = 4;
  constexpr size_t kPerWriter = 20000;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> collected{0};
  std::thread drainer([&] {
    std::vector<FlightEvent> sink;
    while (!done.load(std::memory_order_acquire)) {
      sink.clear();
      Recorder().Drain(&sink);
      collected.fetch_add(sink.size(), std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([t] {
      TraceContext ctx{NewTraceId(), NewSpanId()};
      for (size_t i = 0; i < kPerWriter; ++i) {
        Recorder().Record(
            SpanEvent(ctx, static_cast<int64_t>(t * kPerWriter + i), 1, "w"));
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  drainer.join();
  std::vector<FlightEvent> tail;
  Recorder().Drain(&tail);
  collected.fetch_add(tail.size(), std::memory_order_relaxed);

  FlightRecorder::Stats after = Recorder().stats();
  EXPECT_EQ(after.recorded - before.recorded, kWriters * kPerWriter);
  EXPECT_EQ(after.drained - before.drained, collected.load());
  EXPECT_EQ(after.recorded, after.drained + after.dropped);
  EXPECT_EQ(after.buffered(), 0u);
}

// ---------------------------------------------------------------------------
// Trace reassembly
// ---------------------------------------------------------------------------

TEST(TraceCollectorTest, CrossThreadSpansReassembleIntoOneTrace) {
  DrainAll();
  TraceContext ctx{NewTraceId(), NewSpanId()};
  constexpr size_t kThreads = 3;
  constexpr size_t kPerThread = 40;
  // Rings are lane-recycled at thread exit; hold every worker alive until
  // all have claimed theirs so the spans really land on distinct lanes.
  std::atomic<size_t> claimed{0};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ctx, &claimed] {
      Recorder().RecordSpan(ctx, Recorder().NowUs(), 1, "worker_span");
      claimed.fetch_add(1);
      while (claimed.load() < kThreads) std::this_thread::yield();
      for (size_t i = 1; i < kPerThread; ++i) {
        Recorder().RecordSpan(ctx, Recorder().NowUs(), 1, "worker_span");
      }
    });
  }
  for (auto& w : workers) w.join();
  // Root written last, from this thread — the collector must still fold
  // in the worker spans that landed in rings scanned before this one.
  Recorder().RecordSpan(ctx, Recorder().NowUs(), 1000, "batch_root",
                        /*root_span=*/true);

  TraceCollector collector;
  collector.Poll();
  EXPECT_EQ(collector.completed_traces(), 1u);
  std::vector<FlightTrace> slow = collector.Slowest(4);
  ASSERT_EQ(slow.size(), 1u);
  const FlightTrace& trace = slow[0];
  EXPECT_EQ(trace.trace_id, ctx.trace_id);
  EXPECT_EQ(trace.root_label, "batch_root");
  EXPECT_EQ(trace.events.size(), kThreads * kPerThread + 1);
  EXPECT_GE(trace.num_threads(), 2u);
  // Events are time-ordered within the reassembled trace.
  for (size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].ts_us, trace.events[i].ts_us);
  }
}

TEST(TraceCollectorTest, ReservoirKeepsSlowestAndCountsEvictions) {
  DrainAll();
  TraceCollector::Options options;
  options.reservoir_capacity = 2;
  TraceCollector collector(options);
  // Four root-only traces with durations 10, 40, 20, 30 ms.
  const int64_t durs[] = {10000, 40000, 20000, 30000};
  for (int64_t dur : durs) {
    TraceContext ctx{NewTraceId(), NewSpanId()};
    Recorder().RecordSpan(ctx, Recorder().NowUs(), dur, "q", true);
    collector.Poll();
  }
  EXPECT_EQ(collector.completed_traces(), 4u);
  EXPECT_EQ(collector.reservoir_evictions(), 2u);
  std::vector<FlightTrace> slow = collector.Slowest(10);
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].root_dur_us, 40000);
  EXPECT_EQ(slow[1].root_dur_us, 30000);
}

TEST(TraceCollectorTest, CountMatchesTruncatedJournalLabels) {
  DrainAll();
  TraceCollector collector;
  // 26 chars — longer than the event's 24-char label capacity. Count()
  // must still match when queried with the untruncated name.
  Recorder().RecordInstant(EventKind::kFailpoint,
                           "qworker.classifier_predict");
  Recorder().RecordInstant(EventKind::kFailpoint, "other.point");
  collector.Poll();
  EXPECT_EQ(collector.Count(EventKind::kFailpoint,
                            "qworker.classifier_predict"),
            1u);
  EXPECT_EQ(collector.Count(EventKind::kFailpoint), 2u);
  EXPECT_EQ(collector.untraced_events(), 2u);
}

// ---------------------------------------------------------------------------
// Perfetto / Chrome trace-event export
// ---------------------------------------------------------------------------

TEST(ExportTest, ChromeTraceEscapesLabelsAndSortsTimestamps) {
  FlightTrace trace;
  trace.trace_id = 0x1234;
  trace.root_label = "root";
  trace.root_ts_us = 100;
  trace.root_dur_us = 300;
  TraceContext ctx{0x1234, 0x1};
  FlightEvent weird = SpanEvent(ctx, 300, 4, "x");
  // Raw quote, backslash, newline, and a control byte — all must come out
  // as valid JSON escapes.
  std::memcpy(weird.label, "a\"b\\c\nd\x01", 9);
  trace.events.push_back(SpanEvent(ctx, 200, 2, "mid"));
  trace.events.push_back(weird);
  trace.events.push_back(SpanEvent(ctx, 100, 300, "root"));
  trace.events.back().flags |= FlightEvent::kRootSpan;
  FlightEvent instant;
  instant.trace_id = 0x1234;
  instant.ts_us = 250;
  instant.kind = static_cast<uint8_t>(EventKind::kShed);
  instant.SetLabel("reject_new");
  trace.events.push_back(instant);

  std::string json = ExportChromeTrace({trace});
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"root\":true"), std::string::npos);
  EXPECT_NE(json.find("0x0000000000001234"), std::string::npos);
  // Events sorted by timestamp regardless of insertion order.
  size_t p100 = json.find("\"ts\":100");
  size_t p200 = json.find("\"ts\":200");
  size_t p250 = json.find("\"ts\":250");
  size_t p300 = json.find("\"ts\":300");
  ASSERT_NE(p100, std::string::npos);
  ASSERT_NE(p300, std::string::npos);
  EXPECT_LT(p100, p200);
  EXPECT_LT(p200, p250);
  EXPECT_LT(p250, p300);
  // Structural sanity: every brace/bracket closed, no raw control bytes.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  for (char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
}

TEST(ExportTest, FlightTraceLineSummarizesSpansAndInstants) {
  FlightTrace trace;
  trace.trace_id = 0xabc;
  trace.root_label = "pool_process_batch";
  trace.root_ts_us = 0;
  trace.root_dur_us = 12500;
  TraceContext ctx{0xabc, 0x2};
  trace.events.push_back(SpanEvent(ctx, 10, 2000, "embed"));
  FlightEvent shed;
  shed.trace_id = 0xabc;
  shed.kind = static_cast<uint8_t>(EventKind::kShed);
  shed.SetLabel("reject_new");
  trace.events.push_back(shed);

  std::string line = FlightTraceLine(trace);
  EXPECT_NE(line.find("pool_process_batch"), std::string::npos);
  EXPECT_NE(line.find("12.5"), std::string::npos);
  EXPECT_NE(line.find("embed"), std::string::npos);
  EXPECT_NE(line.find("shed:reject_new"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metric/journal reconciliation: at quiescence, the Prometheus counters
// and the journal agree event-for-event.
// ---------------------------------------------------------------------------

uint64_t BreakerTransitionCounters(const std::string& breaker) {
  auto& registry = MetricsRegistry::Global();
  uint64_t total = 0;
  for (const char* to : {"closed", "open", "half-open"}) {
    total += registry
                 .GetCounter("querc_breaker_transitions_total",
                             {{"breaker", breaker}, {"to", to}},
                             "Circuit-breaker state transitions")
                 .value();
  }
  return total;
}

TEST(ReconcileTest, BreakerTransitionsMatchJournal) {
  DrainAll();
  TraceCollector collector;
  const std::string name = "flightrec_test_breaker";
  uint64_t counters_before = BreakerTransitionCounters(name);

  core::CircuitBreakerOptions options;
  options.window = 4;
  options.min_samples = 2;
  options.failure_ratio = 0.5;
  options.open_ms = 5.0;
  options.half_open_probes = 1;
  core::CircuitBreaker breaker(name, options);
  breaker.RecordFailure();
  breaker.RecordFailure();  // -> open
  ASSERT_EQ(breaker.state(), core::CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(breaker.Allow());  // -> half-open, probe admitted
  breaker.RecordSuccess();       // -> closed
  ASSERT_EQ(breaker.state(), core::CircuitBreaker::State::kClosed);

  collector.Poll();
  uint64_t counter_delta = BreakerTransitionCounters(name) - counters_before;
  EXPECT_EQ(counter_delta, 3u);
  EXPECT_EQ(collector.Count(EventKind::kBreakerTransition, name),
            counter_delta);
}

TEST(ReconcileTest, ShedCounterMatchesJournal) {
  DrainAll();
  TraceCollector collector;
  auto& counter = MetricsRegistry::Global().GetCounter(
      "querc_shed_total", {{"policy", "reject_new"}},
      "Queries shed at pool admission, per shed policy");
  uint64_t before = counter.value();

  core::QWorkerPool::Options options;
  options.application = "flightrec_shed";
  options.num_shards = 2;
  options.max_in_flight = 4;
  options.shed_policy = core::QWorkerPool::ShedPolicy::kRejectNew;
  core::QWorkerPool pool(options);
  workload::Workload batch;
  for (int i = 0; i < 10; ++i) {
    workload::LabeledQuery q;
    q.text = "SELECT " + std::to_string(i);
    q.account = "acct" + std::to_string(i);
    batch.Add(q);
  }
  auto results = pool.ProcessBatch(batch);
  size_t shed = 0;
  for (const auto& r : results) shed += r.shed ? 1 : 0;
  ASSERT_EQ(shed, 6u);  // 10 queries, 4 slots: deterministic tail shed

  collector.Poll();
  EXPECT_EQ(counter.value() - before, 6u);
  EXPECT_EQ(collector.Count(EventKind::kShed, "reject_new"), 6u);
}

TEST(ReconcileTest, FailpointTriggersMatchJournal) {
  util::Failpoints::Global().DisarmAll();
  DrainAll();
  TraceCollector collector;
  const std::string point = "flightrec.test_point";
  auto& counter = MetricsRegistry::Global().GetCounter(
      "querc_failpoint_triggers_total", {{"point", point}},
      "Times an armed failpoint's action fired");
  uint64_t before = counter.value();

  util::FailpointSpec spec;
  spec.action = util::FailAction::kError;
  util::Failpoints::Global().Arm(point, spec);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(util::Failpoints::Global().Evaluate(point).ok());
  }
  EXPECT_EQ(util::Failpoints::Global().hits(point), 3u);
  util::Failpoints::Global().DisarmAll();

  collector.Poll();
  EXPECT_EQ(counter.value() - before, 3u);
  EXPECT_EQ(collector.Count(EventKind::kFailpoint, point), 3u);
}

// ---------------------------------------------------------------------------
// End to end: a batch through a sharded pool reassembles into one trace
// with spans from at least two threads.
// ---------------------------------------------------------------------------

TEST(PoolIntegrationTest, ProcessBatchTraceSpansMultipleThreads) {
  DrainAll();
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  auto classifier = std::make_shared<core::Classifier>(
      "user", embedder,
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{.k = 1}));
  workload::Workload history;
  for (int i = 0; i < 8; ++i) {
    workload::LabeledQuery q;
    q.text = i % 2 == 0 ? "SELECT a FROM t WHERE x = 1"
                        : "SELECT b, c FROM u, v WHERE u.k = v.k";
    q.user = i % 2 == 0 ? "alice" : "bob";
    q.account = "acct1";
    history.Add(q);
  }
  ASSERT_TRUE(classifier->Train(history, workload::UserOf).ok());

  core::QWorkerPool::Options options;
  options.application = "flightrec_e2e";
  options.num_shards = 2;
  options.partition = core::QWorkerPool::Partition::kRoundRobin;
  core::QWorkerPool pool(options);
  pool.Deploy(classifier);
  // The batch is tiny, so one pool worker could drain both shard tasks
  // before the other wakes. Hold each shard's first query in the sink
  // until two distinct threads have checked in, forcing the fan-out the
  // test is about (bounded wait: a 1-thread schedule fails, not hangs).
  std::mutex mu;
  std::condition_variable cv;
  std::set<std::thread::id> sink_threads;
  pool.set_database_sink([&](const workload::LabeledQuery&) {
    std::unique_lock<std::mutex> lock(mu);
    sink_threads.insert(std::this_thread::get_id());
    cv.notify_all();
    cv.wait_for(lock, std::chrono::seconds(5),
                [&] { return sink_threads.size() >= 2; });
  });

  workload::Workload batch;
  for (int i = 0; i < 12; ++i) {
    workload::LabeledQuery q;
    q.text = "SELECT a FROM t WHERE x = " + std::to_string(i);
    q.account = "acct" + std::to_string(i % 3);
    batch.Add(q);
  }
  auto results = pool.ProcessBatch(batch);
  ASSERT_EQ(results.size(), 12u);

  TraceCollector collector;
  collector.Poll();
  std::vector<FlightTrace> slow = collector.Slowest(16);
  const FlightTrace* batch_trace = nullptr;
  for (const FlightTrace& t : slow) {
    if (t.root_label == "pool_process_batch") batch_trace = &t;
  }
  ASSERT_NE(batch_trace, nullptr)
      << "ProcessBatch must complete a pool_process_batch trace";
  // Spans from both shard workers (distinct rings) joined the one trace.
  EXPECT_GE(batch_trace->num_threads(), 2u);
  size_t process_spans = 0;
  for (const FlightEvent& ev : batch_trace->events) {
    if (std::strcmp(ev.label, "qworker_process") == 0) ++process_spans;
  }
  EXPECT_EQ(process_spans, 12u)
      << "every per-query span must fold into the batch trace";
}

}  // namespace
}  // namespace querc::obs
