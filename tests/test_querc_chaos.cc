#include "querc/chaos.h"

#include <gtest/gtest.h>

#include "util/failpoint.h"

namespace querc::core {
namespace {

TEST(ChaosSoakTest, SmallSoakDegradesGracefully) {
  ChaosOptions options;
  options.num_shards = 2;
  options.warmup_queries = 40;
  options.fault_queries = 120;
  options.recovery_queries = 200;
  options.sink_failure_rate = 0.2;
  options.classifier_outage = true;
  options.max_in_flight = 4;
  options.shed_burst_every = 30;
  options.breaker_open_ms = 10.0;

  ChaosReport report = RunChaosSoak(options);
  // The drill's contract: faults actually tripped breakers, the service
  // shed instead of queueing unboundedly, nothing was silently dropped,
  // and every breaker re-closed once the faults cleared.
  EXPECT_GT(report.breakers_tripped, 0u);
  EXPECT_TRUE(report.breakers_reclosed);
  EXPECT_GE(report.recovery_ms, 0.0);
  EXPECT_EQ(report.silent_drops, 0u);
  EXPECT_GT(report.shed, 0u);
  EXPECT_GT(report.sink_errors, 0u);
  EXPECT_EQ(report.submitted, report.returned);
  EXPECT_TRUE(report.ok());

  // The soak cleans up after itself: no failpoint left armed.
  EXPECT_FALSE(util::Failpoints::AnyArmed());

  // The report is consumable as JSON by the bench/CI tooling.
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"recovery_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_fault_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"shed_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST(ChaosSoakTest, SameSeedSameAccounting) {
  ChaosOptions options;
  options.num_shards = 1;
  options.warmup_queries = 20;
  options.fault_queries = 60;
  options.recovery_queries = 100;
  options.max_in_flight = 4;
  options.shed_burst_every = 20;
  options.breaker_open_ms = 5.0;
  options.seed = 7;

  ChaosReport a = RunChaosSoak(options);
  ChaosReport b = RunChaosSoak(options);
  // Latencies, recovery time, and the number of recovery-phase queries
  // are wall-clock-dependent, but the fault schedule and the admission
  // arithmetic (bursts of 3x the bound against a drained pool) are
  // deterministic: same seed, same shed count, nothing lost either run.
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_GT(a.shed, 0u);
  EXPECT_EQ(a.silent_drops, 0u);
  EXPECT_EQ(b.silent_drops, 0u);
}

}  // namespace
}  // namespace querc::core
