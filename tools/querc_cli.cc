// querc — command-line front end for the Querc workload-management
// library. Workloads travel as CSV (workload/io.h), trained embedders as
// binary model files (embed/model_io.h).
//
//   querc generate   --kind tpch|snowflake [--seed N] [--accounts N]
//                    [--queries N] [--users N] --out workload.csv
//   querc train      --embedder doc2vec|dbow|lstm --workload w.csv
//                    --model m.bin [--dim N] [--epochs N]
//   querc summarize  --model m.bin --workload w.csv [--k N]
//                    [--out summary.csv]
//   querc tune       --workload w.csv [--budget MIN] [--merge]
//                    [--storage MB]
//   querc audit      --model m.bin --history h.csv --batch b.csv
//                    [--confidence F]
//   querc label      --model m.bin --history h.csv --batch b.csv
//                    --task user|account|cluster
//   querc pool       --model m.bin --history h.csv --batch b.csv
//                    [--task t] [--shards N] [--threads N]
//                    [--partition account|user|rr] [--embed-cache N]
//   querc stats      [--model m.bin --history h.csv --batch b.csv]
//                    [--task t] [--shards N] [--threads N]
//                    [--partition account|user|rr]
//                    [--repeat N] [--format text|prom|json] [--out file]
//                    [--report-ms N] [--embed-cache N]
//   querc lint       --workload w.csv | --stdin [--dialect d]
//                    [--format text|json|sarif] [--advise] [--fail-on sev]
//   querc chaos      [--shards N] [--faults N] [--sink-failure-rate F]
//                    [--max-in-flight N] [--out report.json] [--flightrec]
//   querc trace      [--queries N] [--shards N] [--threads N] [--slowest N]
//                    [--out trace.json]
//   querc info       --model m.bin

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "embed/model_io.h"
#include "engine/advisor.h"
#include "engine/explain.h"
#include "engine/cost_model.h"
#include "engine/lint_advisor.h"
#include "sql/lexer.h"
#include "sql/lint/export.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/stats_reporter.h"
#include "querc/querc.h"
#include "querc/drift.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/topology.h"
#include "workload/io.h"

namespace querc::cli {
namespace {

/// Minimal --flag value parser: flags are "--name value"; bare "--name"
/// is a boolean.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool GetBool(const std::string& key) const {
    return values_.count(key) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Shared sizing flags (DESIGN.md §17). `--shards` defaults to one
/// QWorker shard per cpu via the topology module, capped per command so
/// demo output stays readable; `--threads` sizes the pool's workers
/// (0 = the pool decides from the same topology).
size_t ShardsFlag(const Args& args, size_t cap) {
  int v = args.GetInt("shards", 0);
  if (v > 0) return static_cast<size_t>(v);
  return std::min(util::DefaultThreadCount(), cap);
}

size_t ThreadsFlag(const Args& args) {
  return static_cast<size_t>(std::max(0, args.GetInt("threads", 0)));
}

util::StatusOr<workload::Workload> LoadWorkload(const Args& args,
                                                const std::string& flag) {
  std::string path = args.Get(flag);
  if (path.empty()) {
    return util::Status::InvalidArgument("missing --" + flag);
  }
  return workload::ReadWorkloadCsvFile(path);
}

int CmdGenerate(const Args& args) {
  std::string kind = args.Get("kind", "snowflake");
  std::string out = args.Get("out");
  if (out.empty()) return Fail(util::Status::InvalidArgument("missing --out"));
  workload::Workload wl;
  if (kind == "tpch") {
    workload::TpchGenerator::Options options;
    options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
    options.instances_per_template = args.GetInt("instances", 38);
    wl = workload::TpchGenerator(options).Generate();
  } else if (kind == "snowflake") {
    workload::SnowflakeGenerator::Options options;
    options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
    options.accounts = workload::SnowflakeGenerator::UniformAccounts(
        args.GetInt("accounts", 5), args.GetInt("queries", 500),
        args.GetInt("users", 5));
    options.account_skew = args.GetDouble("account-skew", 0.0);
    wl = workload::SnowflakeGenerator(options).Generate();
  } else if (kind == "table2") {
    workload::SnowflakeGenerator::Options options;
    options.seed = static_cast<uint64_t>(args.GetInt("seed", 77));
    options.accounts = workload::SnowflakeGenerator::Table2Accounts();
    options.account_skew = args.GetDouble("account-skew", 0.0);
    wl = workload::SnowflakeGenerator(options).Generate();
  } else {
    return Fail(util::Status::InvalidArgument("unknown --kind " + kind));
  }
  util::Status status = workload::WriteWorkloadCsvFile(wl, out);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu queries (%zu distinct shapes) to %s\n", wl.size(),
              wl.DistinctShapes(), out.c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  auto wl = LoadWorkload(args, "workload");
  if (!wl.ok()) return Fail(wl.status());
  std::string model_path = args.Get("model");
  if (model_path.empty()) {
    return Fail(util::Status::InvalidArgument("missing --model"));
  }
  std::string kind = args.Get("embedder", "lstm");
  std::unique_ptr<embed::Embedder> embedder;
  if (kind == "doc2vec" || kind == "dbow") {
    embed::Doc2VecEmbedder::Options options;
    options.dim = static_cast<size_t>(args.GetInt("dim", 24));
    options.epochs = args.GetInt("epochs", 10);
    options.mode = kind == "dbow" ? embed::Doc2VecEmbedder::Mode::kDbow
                                  : embed::Doc2VecEmbedder::Mode::kDm;
    embedder = std::make_unique<embed::Doc2VecEmbedder>(options);
  } else if (kind == "lstm") {
    embed::LstmAutoencoderEmbedder::Options options;
    options.hidden_dim = static_cast<size_t>(args.GetInt("dim", 32));
    options.epochs = args.GetInt("epochs", 8);
    embedder = std::make_unique<embed::LstmAutoencoderEmbedder>(options);
  } else {
    return Fail(util::Status::InvalidArgument("unknown --embedder " + kind));
  }
  std::printf("training %s on %zu queries...\n", embedder->name().c_str(),
              wl->size());
  util::Status status = embed::TrainOnWorkload(*embedder, *wl);
  if (!status.ok()) return Fail(status);
  status = embed::SaveEmbedderFile(*embedder, model_path);
  if (!status.ok()) return Fail(status);
  std::printf("saved %s (dim=%zu) to %s\n", embedder->name().c_str(),
              embedder->dim(), model_path.c_str());
  return 0;
}

int CmdInfo(const Args& args) {
  auto embedder = embed::LoadEmbedderFile(args.Get("model"));
  if (!embedder.ok()) return Fail(embedder.status());
  std::printf("model: %s, dim=%zu\n", (*embedder)->name().c_str(),
              (*embedder)->dim());
  return 0;
}

int CmdSummarize(const Args& args) {
  auto embedder = embed::LoadEmbedderFile(args.Get("model"));
  if (!embedder.ok()) return Fail(embedder.status());
  auto wl = LoadWorkload(args, "workload");
  if (!wl.ok()) return Fail(wl.status());

  core::WorkloadSummarizer::Options options;
  options.fixed_k = static_cast<size_t>(args.GetInt("k", 0));
  std::shared_ptr<const embed::Embedder> shared(std::move(*embedder));
  core::WorkloadSummarizer summarizer(shared, options);
  auto summary = summarizer.Summarize(*wl);
  std::printf("summary: K=%zu witnesses from %zu queries\n",
              summary.queries.size(), wl->size());
  std::string out = args.Get("out");
  if (!out.empty()) {
    util::Status status = workload::WriteWorkloadCsvFile(summary.queries, out);
    if (!status.ok()) return Fail(status);
    std::printf("wrote witnesses to %s\n", out.c_str());
  } else {
    for (const auto& q : summary.queries) {
      std::printf("  %.100s%s\n", q.text.c_str(),
                  q.text.size() > 100 ? "..." : "");
    }
  }
  return 0;
}

int CmdTune(const Args& args) {
  auto wl = LoadWorkload(args, "workload");
  if (!wl.ok()) return Fail(wl.status());
  std::vector<std::string> texts;
  for (const auto& q : *wl) texts.push_back(q.text);

  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  engine::AdvisorOptions options;
  options.budget_minutes = args.GetDouble("budget", 10.0);
  options.max_storage_mb = args.GetDouble("storage", 0.0);
  options.enable_index_merging = args.GetBool("merge");
  engine::TuningAdvisor advisor(&model, options);
  auto rec = advisor.Recommend(texts);

  double baseline = engine::RunWorkload(model, texts, {}).total_seconds;
  double tuned = engine::RunWorkload(model, texts, rec.config).total_seconds;
  std::printf("recommendation: %s\n", engine::ConfigToString(rec.config).c_str());
  std::printf("storage: %.1f MB, refined: %s\n", rec.storage_mb,
              rec.completed_refinement ? "yes" : "no");
  std::printf("workload runtime: %.1fs -> %.1fs (%.0f%%)\n", baseline, tuned,
              100.0 * tuned / std::max(baseline, 1e-9));
  for (const auto& line : rec.log) std::printf("  %s\n", line.c_str());
  return 0;
}

int CmdAudit(const Args& args) {
  auto embedder = embed::LoadEmbedderFile(args.Get("model"));
  if (!embedder.ok()) return Fail(embedder.status());
  auto history = LoadWorkload(args, "history");
  if (!history.ok()) return Fail(history.status());
  auto batch = LoadWorkload(args, "batch");
  if (!batch.ok()) return Fail(batch.status());

  core::SecurityAuditor::Options options;
  options.min_confidence = args.GetDouble("confidence", 0.6);
  std::shared_ptr<const embed::Embedder> shared(std::move(*embedder));
  core::SecurityAuditor auditor(shared, options);
  util::Status status = auditor.Train(*history);
  if (!status.ok()) return Fail(status);
  auto flags = auditor.Audit(*batch);
  std::printf("%zu of %zu queries flagged for audit\n", flags.size(),
              batch->size());
  for (const auto& flag : flags) {
    std::printf("  #%zu recorded=%s predicted=%s confidence=%.2f\n",
                flag.query_index, flag.actual_user.c_str(),
                flag.predicted_user.c_str(), flag.confidence);
  }
  return 0;
}

int CmdLabel(const Args& args) {
  auto embedder = embed::LoadEmbedderFile(args.Get("model"));
  if (!embedder.ok()) return Fail(embedder.status());
  auto history = LoadWorkload(args, "history");
  if (!history.ok()) return Fail(history.status());
  auto batch = LoadWorkload(args, "batch");
  if (!batch.ok()) return Fail(batch.status());

  std::string task = args.Get("task", "user");
  core::LabelExtractor extractor;
  if (task == "user") {
    extractor = workload::UserOf;
  } else if (task == "account") {
    extractor = workload::AccountOf;
  } else if (task == "cluster") {
    extractor = workload::ClusterOf;
  } else {
    return Fail(util::Status::InvalidArgument("unknown --task " + task));
  }

  std::shared_ptr<const embed::Embedder> shared(std::move(*embedder));
  core::Classifier classifier(
      task, shared,
      std::make_unique<ml::RandomForestClassifier>(
          ml::RandomForestClassifier::Options{}));
  util::Status status = classifier.Train(*history, extractor);
  if (!status.ok()) return Fail(status);

  size_t correct = 0;
  for (const auto& q : *batch) {
    std::string predicted = classifier.Predict(q);
    if (predicted == extractor(q)) ++correct;
  }
  std::printf("%s labeling: %zu/%zu correct (%.1f%%) on the batch\n",
              task.c_str(), correct, batch->size(),
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(std::max<size_t>(1, batch->size())));
  return 0;
}

/// Trains a classifier like `label`, then runs the batch through a
/// sharded QWorkerPool and reports per-shard throughput/latency — a
/// command-line view of the parallel service layer.
/// Tenant-isolation flags shared by `pool` and `stats`:
///   --quota BURST[:RATE]          per-account token bucket (default for
///                                 every tenant; RATE in queries/sec)
///   --tenant-weight a=W,b=W2,...  weighted-fair shares under contention
/// Either flag switches the pool onto the tenant admission pipeline
/// (quota -> fairness -> global slots; DESIGN.md §16).
util::Status ApplyTenantFlags(const Args& args,
                              core::QWorkerPool::Options* options) {
  std::string quota = args.Get("quota");
  if (!quota.empty()) {
    std::vector<std::string> parts = util::Split(quota, ':');
    if (parts.size() > 2 || parts[0].empty()) {
      return util::Status::InvalidArgument(
          "--quota wants BURST[:RATE], got " + quota);
    }
    options->enable_tenant_admission = true;
    options->admission.default_quota.burst = std::atof(parts[0].c_str());
    if (parts.size() == 2) {
      options->admission.default_quota.rate_per_sec =
          std::atof(parts[1].c_str());
    }
  }
  std::string weights = args.Get("tenant-weight");
  if (!weights.empty()) {
    options->enable_tenant_admission = true;
    for (const std::string& entry : util::Split(weights, ',')) {
      std::vector<std::string> kv = util::Split(entry, '=');
      if (kv.size() != 2 || kv[0].empty()) {
        return util::Status::InvalidArgument(
            "--tenant-weight wants acct=W[,acct=W...], got " + entry);
      }
      core::TenantQuota& tenant = options->admission.tenants[kv[0]];
      tenant = options->admission.default_quota;
      tenant.weight = std::atof(kv[1].c_str());
    }
  }
  return util::Status::OK();
}

int CmdPool(const Args& args) {
  auto embedder = embed::LoadEmbedderFile(args.Get("model"));
  if (!embedder.ok()) return Fail(embedder.status());
  auto history = LoadWorkload(args, "history");
  if (!history.ok()) return Fail(history.status());
  auto batch = LoadWorkload(args, "batch");
  if (!batch.ok()) return Fail(batch.status());

  std::string task = args.Get("task", "user");
  core::LabelExtractor extractor;
  if (task == "user") {
    extractor = workload::UserOf;
  } else if (task == "account") {
    extractor = workload::AccountOf;
  } else if (task == "cluster") {
    extractor = workload::ClusterOf;
  } else {
    return Fail(util::Status::InvalidArgument("unknown --task " + task));
  }

  std::shared_ptr<const embed::Embedder> shared(std::move(*embedder));
  auto classifier = std::make_shared<core::Classifier>(
      task, shared,
      std::make_unique<ml::RandomForestClassifier>(
          ml::RandomForestClassifier::Options{}));
  util::Status status = classifier->Train(*history, extractor);
  if (!status.ok()) return Fail(status);

  core::QWorkerPool::Options options;
  options.application = "cli";
  options.num_shards = ShardsFlag(args, 8);
  options.threads = ThreadsFlag(args);
  options.max_in_flight = static_cast<size_t>(args.GetInt("max-in-flight", 0));
  options.worker.embed_cache_capacity =
      static_cast<size_t>(args.GetInt("embed-cache", 4096));
  util::Status tenant_status = ApplyTenantFlags(args, &options);
  if (!tenant_status.ok()) return Fail(tenant_status);
  std::string partition = args.Get("partition", "account");
  if (partition == "account") {
    options.partition = core::QWorkerPool::Partition::kByAccount;
  } else if (partition == "user") {
    options.partition = core::QWorkerPool::Partition::kByUser;
  } else if (partition == "rr") {
    options.partition = core::QWorkerPool::Partition::kRoundRobin;
  } else {
    return Fail(
        util::Status::InvalidArgument("unknown --partition " + partition));
  }
  core::QWorkerPool pool(options);
  pool.Deploy(classifier);

  util::Stopwatch timer;
  auto outputs = pool.ProcessBatch(*batch);
  double seconds = timer.ElapsedSeconds();

  size_t correct = 0;
  size_t shed = 0;
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].shed) {
      ++shed;
      continue;
    }
    if (outputs[i].predictions.at(task) == extractor((*batch)[i])) ++correct;
  }
  std::printf("%s labeling via %zu-shard pool (%s partition): %zu/%zu "
              "correct (%.1f%%), %.0f queries/sec\n",
              task.c_str(), pool.num_shards(), partition.c_str(), correct,
              batch->size(),
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(std::max<size_t>(1, batch->size())),
              static_cast<double>(batch->size()) / std::max(seconds, 1e-9));
  for (const auto& s : pool.Stats()) {
    std::printf("  shard %zu: %zu queries, latency min/mean/max "
                "%.3f/%.3f/%.3f ms, p50/p99 %.3f/%.3f ms\n",
                s.shard, s.processed, s.latency.min(), s.latency.mean_ms(),
                s.latency.max_ms, s.p50_ms, s.p99_ms);
  }
  embed::EmbedCacheStats cache = pool.MergedEmbedCacheStats();
  if (cache.capacity > 0) {
    std::printf("embed cache: %llu hits / %llu misses (%.1f%% hit ratio), "
                "%llu evictions, %zu/%zu entries across shards\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                100.0 * cache.hit_ratio(),
                static_cast<unsigned long long>(cache.evictions), cache.size,
                cache.capacity);
  }
  if (pool.admission() != nullptr) {
    std::printf("tenant admission: %zu shed (quota=%llu fairness=%llu "
                "global=%llu) across %zu tracked tenants\n",
                shed,
                (unsigned long long)pool.admission()->shed_for(
                    core::ShedReason::kQuota),
                (unsigned long long)pool.admission()->shed_for(
                    core::ShedReason::kFairness),
                (unsigned long long)pool.admission()->shed_for(
                    core::ShedReason::kGlobal),
                pool.admission()->tracked_tenants());
  }
  return 0;
}

/// One-stop observability demo. Runs a batch through a sharded
/// QWorkerPool and dumps the telemetry: per-shard latency percentiles,
/// the pooled histogram, per-stage span histograms, and optionally the
/// whole registry as Prometheus exposition text or JSON. With no flags
/// it is self-contained — it generates a snowflake workload and trains
/// a small dbow embedder in-process; pass --model/--history/--batch to
/// measure real inputs instead.
int CmdStats(const Args& args) {
  workload::Workload history;
  workload::Workload batch;
  std::shared_ptr<const embed::Embedder> shared;
  if (!args.Get("model").empty()) {
    auto embedder = embed::LoadEmbedderFile(args.Get("model"));
    if (!embedder.ok()) return Fail(embedder.status());
    auto h = LoadWorkload(args, "history");
    if (!h.ok()) return Fail(h.status());
    auto b = LoadWorkload(args, "batch");
    if (!b.ok()) return Fail(b.status());
    history = *std::move(h);
    batch = *std::move(b);
    shared = std::shared_ptr<const embed::Embedder>(std::move(*embedder));
  } else {
    workload::SnowflakeGenerator::Options options;
    options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
    options.accounts = workload::SnowflakeGenerator::UniformAccounts(
        args.GetInt("accounts", 4), args.GetInt("queries", 240),
        args.GetInt("users", 3));
    history = workload::SnowflakeGenerator(options).Generate();
    batch = history;
    embed::Doc2VecEmbedder::Options eopt;
    eopt.dim = static_cast<size_t>(args.GetInt("dim", 16));
    eopt.epochs = args.GetInt("epochs", 5);
    eopt.mode = embed::Doc2VecEmbedder::Mode::kDbow;
    auto trained = std::make_shared<embed::Doc2VecEmbedder>(eopt);
    util::Status status = embed::TrainOnWorkload(*trained, history);
    if (!status.ok()) return Fail(status);
    shared = trained;
  }

  std::string task = args.Get("task", "user");
  core::LabelExtractor extractor;
  if (task == "user") {
    extractor = workload::UserOf;
  } else if (task == "account") {
    extractor = workload::AccountOf;
  } else if (task == "cluster") {
    extractor = workload::ClusterOf;
  } else {
    return Fail(util::Status::InvalidArgument("unknown --task " + task));
  }

  auto classifier = std::make_shared<core::Classifier>(
      task, shared,
      std::make_unique<ml::RandomForestClassifier>(
          ml::RandomForestClassifier::Options{}));
  util::Status status = classifier->Train(history, extractor);
  if (!status.ok()) return Fail(status);

  core::QWorkerPool::Options options;
  options.application = "cli";
  options.num_shards = ShardsFlag(args, 8);
  options.threads = ThreadsFlag(args);
  options.max_in_flight = static_cast<size_t>(args.GetInt("max-in-flight", 0));
  options.worker.deadline_ms = args.GetDouble("deadline-ms", 0.0);
  options.worker.embed_cache_capacity =
      static_cast<size_t>(args.GetInt("embed-cache", 4096));
  util::Status tenant_status = ApplyTenantFlags(args, &options);
  if (!tenant_status.ok()) return Fail(tenant_status);
  std::string partition = args.Get("partition", "account");
  if (partition == "account") {
    options.partition = core::QWorkerPool::Partition::kByAccount;
  } else if (partition == "user") {
    options.partition = core::QWorkerPool::Partition::kByUser;
  } else if (partition == "rr") {
    options.partition = core::QWorkerPool::Partition::kRoundRobin;
  } else {
    return Fail(
        util::Status::InvalidArgument("unknown --partition " + partition));
  }
  core::QWorkerPool pool(options);
  pool.Deploy(classifier);
  // No-op sinks so the full pipeline — including the sink retry/breaker
  // machinery and the qworker.sink_* failpoints — is exercised end to end.
  pool.set_database_sink([](const workload::LabeledQuery&) {});
  pool.set_training_sink([](const core::ProcessedQuery&) {});

  obs::StatsReporter::Options ropt;
  int report_ms = args.GetInt("report-ms", 0);
  if (report_ms > 0) {
    ropt.interval = std::chrono::milliseconds(report_ms);
  }
  obs::StatsReporter periodic(ropt);
  if (report_ms > 0) periodic.Start();

  int repeat = std::max(1, args.GetInt("repeat", 1));
  util::Stopwatch timer;
  for (int round = 0; round < repeat; ++round) {
    pool.ProcessBatch(batch);
  }
  double total_ms = timer.ElapsedSeconds() * 1000.0;
  if (report_ms > 0) periodic.Stop();

  std::string format = args.Get("format", "text");
  std::string export_text;
  if (format == "prom") {
    export_text = obs::ExportPrometheus();
  } else if (format == "json") {
    export_text = obs::ExportJson();
  } else if (format != "text") {
    return Fail(util::Status::InvalidArgument("unknown --format " + format));
  }
  if (!export_text.empty()) {
    std::string out = args.Get("out");
    if (out.empty()) {
      std::fputs(export_text.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(out.c_str(), "w");
      if (f == nullptr) {
        return Fail(util::Status::Internal("cannot open --out " + out));
      }
      std::fputs(export_text.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s metrics to %s\n", format.c_str(), out.c_str());
    }
    return 0;
  }

  std::printf("processed %zu queries x %d batch(es) across %zu shards "
              "(%s partition) in %.1f ms\n",
              batch.size(), repeat, pool.num_shards(), partition.c_str(),
              total_ms);
  std::printf("per-shard latency (ms):\n");
  std::printf("  %5s %8s %8s %8s %8s %8s\n", "shard", "count", "p50", "p90",
              "p99", "max");
  for (const auto& s : pool.Stats()) {
    std::printf("  %5zu %8llu %8.3f %8.3f %8.3f %8.3f\n", s.shard,
                static_cast<unsigned long long>(s.histogram.count), s.p50_ms,
                s.p90_ms, s.p99_ms, s.histogram.max);
  }
  obs::HistogramSnapshot pooled = pool.MergedLatency();
  std::printf("pooled: count=%llu p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
              static_cast<unsigned long long>(pooled.count), pooled.p50(),
              pooled.p90(), pooled.p99(), pooled.max);

  embed::EmbedCacheStats cache = pool.MergedEmbedCacheStats();
  if (cache.capacity > 0) {
    std::printf("embed cache: %llu hits / %llu misses (%.1f%% hit ratio), "
                "%llu evictions, %zu/%zu entries across shards\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                100.0 * cache.hit_ratio(),
                static_cast<unsigned long long>(cache.evictions), cache.size,
                cache.capacity);
  } else {
    std::printf("embed cache: disabled (--embed-cache 0)\n");
  }

  std::printf("pipeline stages (ms):\n");
  std::printf("  %-14s %8s %8s %8s %8s\n", "stage", "count", "p50", "p99",
              "max");
  auto snap = obs::MetricsRegistry::Global().Collect("querc_stage_ms");
  for (const auto& sample : snap.histograms) {
    std::string stage = "?";
    for (const auto& [key, value] : sample.labels) {
      if (key == "stage") stage = value;
    }
    std::printf("  %-14s %8llu %8.3f %8.3f %8.3f\n", stage.c_str(),
                static_cast<unsigned long long>(sample.snapshot.count),
                sample.snapshot.p50(), sample.snapshot.p99(),
                sample.snapshot.max);
  }

  auto lint_snap =
      obs::MetricsRegistry::Global().Collect("querc_lint_hits_total");
  std::printf("lint: %zu diagnostics across shards, %zu offender "
              "templates dropped by the bounded trackers\n",
              pool.lint_diagnostic_count(), pool.lint_templates_dropped());
  std::printf("lint rule hits:\n");
  for (const auto& sample : lint_snap.counters) {
    if (sample.value == 0) continue;
    std::string rule = "?";
    for (const auto& [key, value] : sample.labels) {
      if (key == "rule") rule = value;
    }
    std::printf("  %-28s %llu\n", rule.c_str(),
                static_cast<unsigned long long>(sample.value));
  }
  for (const auto& t : pool.TopOffendingTemplates(3)) {
    std::printf("  offender: %zu diagnostics over %zu instances: %.80s%s\n",
                t.diagnostics, t.instances, t.example_text.c_str(),
                t.example_text.size() > 80 ? "..." : "");
  }

  // Resilience: breaker states plus the fault-handling counters (all also
  // exported via --format prom|json).
  auto counter_total = [](const std::string& name) {
    unsigned long long total = 0;
    for (const auto& sample :
         obs::MetricsRegistry::Global().Collect(name).counters) {
      total += sample.value;
    }
    return total;
  };
  std::printf("resilience:\n");
  std::printf("  breakers:\n");
  for (const auto& [name, state] : pool.BreakerStates()) {
    std::printf("    %-32s %s\n", name.c_str(),
                std::string(core::CircuitBreaker::StateName(state)).c_str());
  }
  std::printf("  shed=%llu retries=%llu retry_budget_exhausted=%llu "
              "deadline_exceeded=%llu sink_errors=%llu fallbacks=%llu "
              "skipped=%llu\n",
              counter_total("querc_shed_total"),
              counter_total("querc_retries_total"),
              counter_total("querc_retry_budget_exhausted_total"),
              counter_total("querc_deadline_exceeded_total"),
              counter_total("querc_sink_errors_total"),
              counter_total("querc_fallback_predictions_total"),
              counter_total("querc_classifier_skipped_total"));
  if (const core::TenantAdmissionController* admission = pool.admission()) {
    // Per-tenant isolation table: the top-N tenants by shed count (from
    // the controller's bounded aggregator) joined with their live
    // in-flight counts and any per-account breaker state.
    std::map<std::string, core::TenantAdmissionStats> rows;
    for (const auto& row : admission->Stats()) rows[row.account] = row;
    auto breaker_states = pool.BreakerStates();
    std::printf("  tenants (top %d by sheds, %zu tracked, %llu state "
                "evictions):\n",
                5, admission->tracked_tenants(),
                (unsigned long long)admission->evicted_tenants());
    std::printf("    %-20s %10s %10s %10s %10s %9s  %s\n", "account",
                "sheds", "quota", "fairness", "global", "in_flight",
                "breakers");
    for (const auto& top : admission->TopSheds(5)) {
      const core::TenantAdmissionStats* row = nullptr;
      auto it = rows.find(top.key);
      if (it != rows.end()) row = &it->second;
      std::string breakers;
      for (const auto& [name, state] : breaker_states) {
        if (name.find(":" + top.key) == std::string::npos) continue;
        if (!breakers.empty()) breakers += " ";
        breakers += std::string(core::CircuitBreaker::StateName(state));
      }
      if (breakers.empty()) breakers = "-";
      std::printf("    %-20s %10llu %10llu %10llu %10llu %9zu  %s\n",
                  top.key.c_str(), (unsigned long long)top.count,
                  (unsigned long long)(row ? row->shed_quota : 0),
                  (unsigned long long)(row ? row->shed_fairness : 0),
                  (unsigned long long)(row ? row->shed_global : 0),
                  row ? row->in_flight : 0, breakers.c_str());
    }
    if (admission->shed_total() == 0) {
      std::printf("    (no sheds; quotas held)\n");
    }
  }
  return 0;
}

/// `querc chaos`: the deterministic fault-injection soak (see
/// querc/chaos.h). Drives a sharded pool through warmup / fault /
/// recovery phases with failpoints armed, prints the machine-readable
/// report, and exits nonzero unless the service degraded gracefully
/// (breakers tripped AND re-closed, shedding engaged, no silent drops) —
/// so CI can gate on it.
/// `querc chaos --noisy-neighbor`: the tenant-isolation drill (see
/// querc/chaos.h). One tenant floods a quota'd pool at a multiple of its
/// sustained rate while its backend fails; exits nonzero unless isolation
/// held (victims never shed, bounded victim p99, only aggressor breakers
/// tripped and re-closed, per-account shed reconciliation).
int CmdChaosNoisyNeighbor(const Args& args) {
  core::NoisyNeighborOptions options;
  options.num_shards = ShardsFlag(args, 2);
  options.num_victims = static_cast<size_t>(args.GetInt("victims", 3));
  options.overload_factor = args.GetDouble("overload-factor", 10.0);
  options.warmup_rounds = static_cast<size_t>(args.GetInt("warmup", 10));
  options.flood_rounds = static_cast<size_t>(args.GetInt("flood", 30));
  options.recovery_rounds =
      static_cast<size_t>(args.GetInt("recovery", 200));
  options.quota_burst = args.GetDouble("quota-burst", 16.0);
  options.quota_rate_per_sec = args.GetDouble("quota-rate", 1000.0);
  options.max_in_flight =
      static_cast<size_t>(args.GetInt("max-in-flight", 16));
  options.breaker_open_ms = args.GetDouble("breaker-open-ms", 25.0);
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  core::NoisyNeighborReport report = core::RunNoisyNeighborDrill(options);
  std::string json = report.ToJson();
  std::string out = args.Get("out");
  if (out.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      return Fail(util::Status::Internal("cannot open --out " + out));
    }
    std::fputs(json.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
    std::printf("wrote noisy-neighbor report to %s\n", out.c_str());
  }
  if (!report.ok()) {
    std::fprintf(stderr,
                 "chaos --noisy-neighbor: FAILED (victim_shed=%zu "
                 "aggressor_shed_rate=%.3f overload_fraction=%.3f "
                 "aggressor_breakers=%zu victim_breakers=%zu reclosed=%s "
                 "victim_p99=%.3fms bound=%.3fms reconciled=%s "
                 "silent_drops=%zu)\n",
                 report.victim_shed, report.aggressor_shed_rate,
                 report.overload_fraction, report.aggressor_breakers_tripped,
                 report.victim_breakers_tripped,
                 report.breakers_reclosed ? "true" : "false",
                 report.victim_p99_flood_ms, report.victim_p99_bound_ms,
                 report.sheds_reconciled ? "true" : "false",
                 report.silent_drops);
    return 1;
  }
  std::printf("chaos --noisy-neighbor: OK (aggressor shed %.1f%% >= %.1f%% "
              "floor, victim shed 0, victim p99 %.3f ms <= %.3f ms, "
              "%zu aggressor breakers tripped and re-closed in %zu rounds, "
              "sheds reconciled per account)\n",
              100.0 * report.aggressor_shed_rate,
              100.0 * report.overload_fraction, report.victim_p99_flood_ms,
              report.victim_p99_bound_ms, report.aggressor_breakers_tripped,
              report.recovery_rounds_used);
  return 0;
}

int CmdChaos(const Args& args) {
  if (args.GetBool("noisy-neighbor")) return CmdChaosNoisyNeighbor(args);
  core::ChaosOptions options;
  options.num_shards = ShardsFlag(args, 2);
  options.warmup_queries = static_cast<size_t>(args.GetInt("warmup", 100));
  options.fault_queries = static_cast<size_t>(args.GetInt("faults", 300));
  options.recovery_queries =
      static_cast<size_t>(args.GetInt("recovery", 400));
  options.sink_failure_rate = args.GetDouble("sink-failure-rate", 0.2);
  options.classifier_outage = !args.GetBool("no-classifier-outage");
  options.max_in_flight =
      static_cast<size_t>(args.GetInt("max-in-flight", 8));
  options.breaker_open_ms = args.GetDouble("breaker-open-ms", 25.0);
  options.deadline_ms = args.GetDouble("deadline-ms", 0.0);
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  options.flightrec = args.GetBool("flightrec");

  core::ChaosReport report = core::RunChaosSoak(options);
  std::string json = report.ToJson();
  std::string out = args.Get("out");
  if (out.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      return Fail(util::Status::Internal("cannot open --out " + out));
    }
    std::fputs(json.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
    std::printf("wrote chaos report to %s\n", out.c_str());
  }
  if (report.flightrec_enabled) {
    // Dump-on-anomaly evidence: the journal attribution summary plus the
    // slowest reassembled traces the soak produced.
    std::printf("flightrec: sink_failpoints=%llu/%llu "
                "classifier_failpoints=%llu/%llu sheds=%llu/%zu "
                "breaker_transitions=%llu %s\n",
                (unsigned long long)report.journal_sink_failpoints,
                (unsigned long long)report.failpoint_hits_sink,
                (unsigned long long)report.journal_classifier_failpoints,
                (unsigned long long)report.failpoint_hits_classifier,
                (unsigned long long)report.journal_sheds, report.shed,
                (unsigned long long)report.journal_breaker_transitions,
                report.flightrec_ok ? "reconciled" : "MISMATCH");
    for (const std::string& line : report.slow_traces) {
      std::printf("  %s\n", line.c_str());
    }
  }
  if (!report.ok()) {
    std::fprintf(stderr,
                 "chaos: FAILED (tripped=%zu reclosed=%s shed=%zu "
                 "silent_drops=%zu flightrec_ok=%s)\n",
                 report.breakers_tripped,
                 report.breakers_reclosed ? "true" : "false", report.shed,
                 report.silent_drops, report.flightrec_ok ? "true" : "false");
    return 1;
  }
  std::printf("chaos: OK (recovery %.1f ms, shed rate %.1f%%, p99 under "
              "fault %.3f ms)\n",
              report.recovery_ms, 100.0 * report.shed_rate,
              report.p99_fault_ms);
  return 0;
}

/// `querc trace`: drives a synthetic workload through a sharded pool with
/// the flight recorder reassembling one trace per query, then dumps the N
/// slowest — one-line text to stdout and Chrome trace-event / Perfetto
/// JSON to --out (loadable at ui.perfetto.dev or chrome://tracing).
int CmdTrace(const Args& args) {
  workload::SnowflakeGenerator::Options gopt;
  gopt.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  gopt.accounts = workload::SnowflakeGenerator::UniformAccounts(
      args.GetInt("accounts", 4), args.GetInt("queries", 240),
      args.GetInt("users", 3));
  workload::Workload wl = workload::SnowflakeGenerator(gopt).Generate();

  embed::Doc2VecEmbedder::Options eopt;
  eopt.dim = static_cast<size_t>(args.GetInt("dim", 16));
  eopt.epochs = args.GetInt("epochs", 3);
  eopt.mode = embed::Doc2VecEmbedder::Mode::kDbow;
  auto embedder = std::make_shared<embed::Doc2VecEmbedder>(eopt);
  util::Status status = embed::TrainOnWorkload(*embedder, wl);
  if (!status.ok()) return Fail(status);

  auto classifier = std::make_shared<core::Classifier>(
      "user", embedder,
      std::make_unique<ml::RandomForestClassifier>(
          ml::RandomForestClassifier::Options{}));
  status = classifier->Train(wl, workload::UserOf);
  if (!status.ok()) return Fail(status);

  core::QWorkerPool::Options options;
  options.application = "trace";
  options.num_shards = ShardsFlag(args, 8);
  options.threads = ThreadsFlag(args);
  options.worker.deadline_ms = args.GetDouble("deadline-ms", 0.0);
  options.worker.embed_cache_capacity =
      static_cast<size_t>(args.GetInt("embed-cache", 4096));
  core::QWorkerPool pool(options);
  pool.Deploy(classifier);
  pool.set_database_sink([](const workload::LabeledQuery&) {});
  pool.set_training_sink([](const core::ProcessedQuery&) {});

  size_t slowest = static_cast<size_t>(std::max(1, args.GetInt("slowest", 5)));
  obs::TraceCollector::Options copts;
  copts.reservoir_capacity = slowest;
  obs::TraceCollector collector(copts);
  {
    // Anything earlier work in this process journaled is not ours.
    std::vector<obs::FlightEvent> discard;
    obs::FlightRecorder::Global().Drain(&discard);
  }
  // One Process call per query = one root trace per query, so "the N
  // slowest traces" literally means the N slowest queries.
  for (const auto& q : wl) {
    pool.Process(q);
    collector.Poll();
  }
  collector.Poll();

  std::vector<obs::FlightTrace> slow = collector.Slowest(slowest);
  std::printf("traced %zu queries, %llu traces reassembled; %zu slowest:\n",
              wl.size(), (unsigned long long)collector.completed_traces(),
              slow.size());
  size_t events = 0;
  for (const obs::FlightTrace& t : slow) {
    events += t.events.size();
    std::printf("  %s\n", obs::FlightTraceLine(t).c_str());
  }
  obs::FlightRecorder::Stats stats = obs::FlightRecorder::Global().stats();
  std::printf("journal: recorded=%llu drained=%llu dropped=%llu lanes=%zu\n",
              (unsigned long long)stats.recorded,
              (unsigned long long)stats.drained,
              (unsigned long long)stats.dropped,
              obs::FlightRecorder::Global().num_lanes());

  std::string out = args.Get("out", "trace.json");
  std::string json = obs::ExportChromeTrace(slow);
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    return Fail(util::Status::Internal("cannot open --out " + out));
  }
  std::fputs(json.c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::printf("wrote Perfetto trace (%zu events) to %s\n", events,
              out.c_str());
  return 0;
}

bool ParseDialect(const std::string& name, sql::Dialect* out) {
  if (name == "generic") {
    *out = sql::Dialect::kGeneric;
  } else if (name == "sqlserver") {
    *out = sql::Dialect::kSqlServer;
  } else if (name == "snowflake") {
    *out = sql::Dialect::kSnowflake;
  } else {
    return false;
  }
  return true;
}

/// Splits raw SQL input on top-level `;` statement separators using the
/// lenient lexer (so semicolons inside string literals and comments do not
/// split). Blank statements are dropped.
std::vector<std::string> SplitStatements(const std::string& input,
                                         sql::Dialect dialect) {
  sql::LexOptions lex;
  lex.dialect = dialect;
  sql::TokenList tokens = sql::LexLenient(input, lex);
  std::vector<std::string> statements;
  size_t start = 0;
  auto flush = [&](size_t end) {
    std::string_view stmt = util::Trim(
        std::string_view(input).substr(start, end - start));
    if (!stmt.empty()) statements.emplace_back(stmt);
  };
  for (const sql::Token& t : tokens) {
    if (t.IsPunct(';')) {
      flush(t.offset);
      start = t.offset + 1;
    }
  }
  flush(input.size());
  return statements;
}

/// `querc lint`: static analysis over a workload file or raw SQL on stdin.
/// Exit code 1 when any diagnostic reaches the --fail-on severity floor
/// (default error), so it slots into CI pipelines; 2 on usage errors.
int CmdLint(const Args& args) {
  sql::Dialect dialect = sql::Dialect::kGeneric;
  if (!ParseDialect(args.Get("dialect", "generic"), &dialect)) {
    return Fail(util::Status::InvalidArgument("unknown --dialect " +
                                              args.Get("dialect")));
  }

  std::vector<std::string> texts;
  if (args.GetBool("stdin")) {
    std::string input;
    char buffer[4096];
    size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), stdin)) > 0) {
      input.append(buffer, n);
    }
    texts = SplitStatements(input, dialect);
  } else if (!args.Get("workload").empty()) {
    auto wl = LoadWorkload(args, "workload");
    if (!wl.ok()) return Fail(wl.status());
    for (const auto& q : *wl) texts.push_back(q.text);
  } else {
    return Fail(util::Status::InvalidArgument(
        "missing input: pass --workload w.csv or --stdin"));
  }

  sql::lint::LintOptions lint_options;
  lint_options.dialect = dialect;
  lint_options.hot_template_threshold =
      static_cast<size_t>(args.GetInt("hot-threshold", 8));
  lint_options.top_templates = static_cast<size_t>(args.GetInt("top", 5));

  std::string catalog_kind = args.Get("catalog", "tpch");
  if (catalog_kind != "tpch" && catalog_kind != "none") {
    return Fail(
        util::Status::InvalidArgument("unknown --catalog " + catalog_kind));
  }
  engine::Catalog catalog = engine::TpchCatalog();
  engine::CatalogSchemaProvider schema(&catalog);

  sql::lint::LintReport report;
  std::string advisor_note;
  if (args.GetBool("advise")) {
    engine::CostModel model(&catalog);
    engine::AdvisorLintOptions advisor_options;
    advisor_options.lint = lint_options;
    advisor_options.advisor.budget_minutes = args.GetDouble("budget", 10.0);
    auto result = engine::LintWorkloadWithAdvisor(texts, model,
                                                  advisor_options);
    report = std::move(result.report);
    advisor_note = "advisor recommendation: " +
                   engine::ConfigToString(result.advisor.config) + "\n";
  } else {
    sql::lint::LintEngine engine(
        lint_options, catalog_kind == "none" ? nullptr : &schema);
    report = engine.LintTexts(texts);
  }

  // Mirror per-rule hits into the global registry so `querc stats` and the
  // Prometheus/JSON exporters see them alongside the QWorker counters.
  for (const auto& [rule, hits] : report.rule_hits) {
    obs::MetricsRegistry::Global()
        .GetCounter("querc_lint_hits_total", {{"rule", rule}},
                    "Lint diagnostics emitted per rule, all workers")
        .Increment(hits);
  }

  std::string format = args.Get("format", "text");
  std::string rendered;
  if (format == "text") {
    rendered = advisor_note + sql::lint::FormatText(report);
  } else if (format == "json") {
    rendered = sql::lint::FormatJson(report);
  } else if (format == "sarif") {
    sql::lint::RuleRegistry registry = sql::lint::RuleRegistry::Builtin();
    rendered = sql::lint::FormatSarif(report, registry);
  } else {
    return Fail(util::Status::InvalidArgument("unknown --format " + format));
  }

  std::string out = args.Get("out");
  if (out.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      return Fail(util::Status::Internal("cannot open --out " + out));
    }
    std::fputs(rendered.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s lint report to %s\n", format.c_str(), out.c_str());
  }

  std::string fail_on = args.Get("fail-on", "error");
  if (fail_on == "never") return 0;
  sql::lint::Severity floor = sql::lint::Severity::kError;
  if (!sql::lint::ParseSeverity(fail_on, &floor)) {
    return Fail(
        util::Status::InvalidArgument("unknown --fail-on " + fail_on));
  }
  return report.CountAtLeast(floor) > 0 ? 1 : 0;
}

int CmdExplain(const Args& args) {
  auto wl = LoadWorkload(args, "workload");
  if (!wl.ok()) return Fail(wl.status());
  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  engine::IndexConfig config;
  // --index table:col1[,col2] may repeat via comma-separated list in one
  // flag: "--indexes lineitem:l_shipdate;orders:o_orderdate".
  std::string spec = args.Get("indexes");
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string one = spec.substr(pos, end - pos);
    pos = end + 1;
    size_t colon = one.find(':');
    if (colon == std::string::npos) continue;
    engine::Index index;
    index.table = one.substr(0, colon);
    for (const std::string& col :
         util::Split(one.substr(colon + 1), ',')) {
      if (!col.empty()) index.key_columns.push_back(col);
    }
    config.push_back(std::move(index));
  }
  size_t limit = static_cast<size_t>(args.GetInt("limit", 5));
  for (size_t i = 0; i < wl->size() && i < limit; ++i) {
    std::printf("%s\n",
                engine::ExplainQuery(model, (*wl)[i].text, config).c_str());
  }
  return 0;
}

int CmdDrift(const Args& args) {
  auto embedder = embed::LoadEmbedderFile(args.Get("model"));
  if (!embedder.ok()) return Fail(embedder.status());
  auto reference = LoadWorkload(args, "reference");
  if (!reference.ok()) return Fail(reference.status());
  auto recent = LoadWorkload(args, "recent");
  if (!recent.ok()) return Fail(recent.status());

  std::shared_ptr<const embed::Embedder> shared(std::move(*embedder));
  core::DriftDetector detector(shared, {});
  util::Status status = detector.SetReference(*reference);
  if (!status.ok()) return Fail(status);
  auto report = detector.Check(*recent);
  std::printf("reference=%zu recent=%zu\n", report.reference_size,
              report.recent_size);
  std::printf("centroid_shift=%.3f novelty=%.3f -> retrain %s\n",
              report.centroid_shift, report.novelty,
              report.retrain_recommended ? "RECOMMENDED" : "not needed");
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: querc <command> [flags]\n"
      "  generate   --kind tpch|snowflake|table2 --out w.csv [--seed N]\n"
      "             [--account-skew F]   (Zipf volume skew, rank 0 heaviest)\n"
      "  train      --embedder doc2vec|dbow|lstm --workload w.csv --model m.bin\n"
      "  info       --model m.bin\n"
      "  summarize  --model m.bin --workload w.csv [--k N] [--out s.csv]\n"
      "  tune       --workload w.csv [--budget MIN] [--merge] [--storage MB]\n"
      "  audit      --model m.bin --history h.csv --batch b.csv\n"
      "  label      --model m.bin --history h.csv --batch b.csv --task t\n"
      "  pool       --model m.bin --history h.csv --batch b.csv [--task t]\n"
      "             [--shards N] [--threads N] [--partition account|user|rr]\n"
      "             (shards/threads default to the machine topology)\n"
      "             [--embed-cache N]   (template cache entries; 0 disables)\n"
      "             [--max-in-flight N] [--quota BURST[:RATE]]\n"
      "             [--tenant-weight acct=W,...]   (tenant admission)\n"
      "  stats      [--model m.bin --history h.csv --batch b.csv] [--task t]\n"
      "             [--shards N] [--threads N] [--partition account|user|rr]\n"
      "             [--repeat N]\n"
      "             [--format text|prom|json] [--out f] [--report-ms N]\n"
      "             [--embed-cache N]   (template cache entries; 0 disables)\n"
      "             [--quota BURST[:RATE]] [--tenant-weight acct=W,...]\n"
      "  chaos      [--shards N] [--warmup N] [--faults N] [--recovery N]\n"
      "             [--sink-failure-rate F] [--no-classifier-outage]\n"
      "             [--max-in-flight N] [--breaker-open-ms F] [--out f]\n"
      "             [--flightrec]   (journal attribution + slowest traces)\n"
      "             [--noisy-neighbor]   (tenant-isolation drill; also\n"
      "             [--victims N] [--overload-factor F] [--flood N]\n"
      "             [--quota-burst F] [--quota-rate F])\n"
      "  trace      [--queries N] [--shards N] [--threads N] [--slowest N]\n"
      "             [--seed N]\n"
      "             [--out trace.json]   (Perfetto JSON for slowest queries)\n"
      "  explain    --workload w.csv [--indexes t:c1,c2;t2:c] [--limit N]\n"
      "  drift      --model m.bin --reference r.csv --recent n.csv\n"
      "  lint       --workload w.csv | --stdin [--dialect d]\n"
      "             [--format text|json|sarif] [--out f] [--catalog tpch|none]\n"
      "             [--advise] [--budget MIN] [--fail-on error|warning|info|never]\n"
      "             [--hot-threshold N] [--top N]\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args(argc, argv);
  if (command == "generate") return CmdGenerate(args);
  if (command == "train") return CmdTrain(args);
  if (command == "info") return CmdInfo(args);
  if (command == "summarize") return CmdSummarize(args);
  if (command == "tune") return CmdTune(args);
  if (command == "audit") return CmdAudit(args);
  if (command == "label") return CmdLabel(args);
  if (command == "pool") return CmdPool(args);
  if (command == "stats") return CmdStats(args);
  if (command == "chaos") return CmdChaos(args);
  if (command == "trace") return CmdTrace(args);
  if (command == "explain") return CmdExplain(args);
  if (command == "drift") return CmdDrift(args);
  if (command == "lint") return CmdLint(args);
  return Usage();
}

}  // namespace
}  // namespace querc::cli

int main(int argc, char** argv) { return querc::cli::Main(argc, argv); }
