file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_labeling.dir/bench_table1_labeling.cc.o"
  "CMakeFiles/bench_table1_labeling.dir/bench_table1_labeling.cc.o.d"
  "bench_table1_labeling"
  "bench_table1_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
