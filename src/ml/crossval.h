#ifndef QUERC_ML_CROSSVAL_H_
#define QUERC_ML_CROSSVAL_H_

#include <functional>
#include <memory>
#include <vector>

#include "ml/dataset.h"

namespace querc::ml {

/// Result of a k-fold cross-validation run.
struct CrossValResult {
  std::vector<double> fold_accuracies;
  /// Out-of-fold prediction for every sample (index-aligned with the
  /// dataset), enabling per-group breakdowns like the paper's Table 2.
  std::vector<int> oof_predictions;

  double MeanAccuracy() const;
};

/// Stratified k-fold cross-validation: folds preserve class proportions.
/// `factory` builds a fresh untrained classifier per fold.
CrossValResult StratifiedKFold(
    const Dataset& data, int folds,
    const std::function<std::unique_ptr<VectorClassifier>()>& factory,
    uint64_t seed = 17);

}  // namespace querc::ml

#endif  // QUERC_ML_CROSSVAL_H_
