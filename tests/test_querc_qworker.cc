#include "querc/qworker.h"

#include <gtest/gtest.h>

#include "embed/feature_embedder.h"
#include "ml/knn.h"
#include "querc/classifier.h"
#include "workload/workload.h"

namespace querc::core {
namespace {

workload::LabeledQuery Query(const std::string& text,
                             const std::string& user = "u1") {
  workload::LabeledQuery q;
  q.text = text;
  q.user = user;
  return q;
}

std::shared_ptr<Classifier> TrainedUserClassifier() {
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  auto classifier = std::make_shared<Classifier>(
      "user", embedder,
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{.k = 1}));
  workload::Workload history;
  for (int i = 0; i < 10; ++i) {
    history.Add(Query("SELECT a FROM t WHERE x = 1", "alice"));
    history.Add(Query("SELECT b, c, d FROM u, v WHERE u.k = v.k", "bob"));
  }
  EXPECT_TRUE(classifier->Train(history, workload::UserOf).ok());
  return classifier;
}

TEST(ClassifierTest, TrainPredictRoundTrip) {
  auto classifier = TrainedUserClassifier();
  EXPECT_TRUE(classifier->trained());
  EXPECT_EQ(classifier->Predict(Query("SELECT a FROM t WHERE x = 9")),
            "alice");
  EXPECT_EQ(
      classifier->Predict(Query("SELECT b, c, d FROM u, v WHERE u.k = v.k")),
      "bob");
  EXPECT_EQ(classifier->task_name(), "user");
  EXPECT_EQ(classifier->labels().num_classes(), 2u);
}

TEST(ClassifierTest, EmptyCorpusFails) {
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  Classifier classifier(
      "t", embedder,
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{}));
  EXPECT_FALSE(classifier.Train({}, workload::UserOf).ok());
  EXPECT_EQ(classifier.PredictId(Query("SELECT 1")), -1);
  EXPECT_EQ(classifier.Predict(Query("SELECT 1")), "");
}

TEST(QWorkerTest, ProcessRunsAllClassifiersAndSinks) {
  QWorker::Options options;
  options.application = "appX";
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());

  std::vector<std::string> to_db;
  std::vector<std::string> to_training;
  worker.set_database_sink([&](const workload::LabeledQuery& q) {
    to_db.push_back(q.text);
  });
  worker.set_training_sink([&](const ProcessedQuery& pq) {
    to_training.push_back(pq.predictions.at("user"));
  });

  ProcessedQuery out = worker.Process(Query("SELECT a FROM t WHERE x = 3"));
  EXPECT_EQ(out.predictions.at("user"), "alice");
  ASSERT_EQ(to_db.size(), 1u);
  ASSERT_EQ(to_training.size(), 1u);
  EXPECT_EQ(to_training[0], "alice");
  EXPECT_EQ(worker.processed_count(), 1u);
  EXPECT_EQ(worker.num_classifiers(), 1u);
}

TEST(QWorkerTest, ForkedModeSkipsDatabase) {
  QWorker::Options options;
  options.application = "appX";
  options.forward_to_database = false;  // "forked" deployment (§2)
  QWorker worker(options);
  int db_calls = 0;
  int training_calls = 0;
  worker.set_database_sink(
      [&](const workload::LabeledQuery&) { ++db_calls; });
  worker.set_training_sink([&](const ProcessedQuery&) { ++training_calls; });
  worker.Process(Query("SELECT 1"));
  EXPECT_EQ(db_calls, 0);
  EXPECT_EQ(training_calls, 1);
}

TEST(QWorkerTest, WindowIsBounded) {
  QWorker::Options options;
  options.application = "appX";
  options.window_size = 3;
  QWorker worker(options);
  for (int i = 0; i < 10; ++i) {
    worker.Process(Query("SELECT " + std::to_string(i)));
  }
  ASSERT_EQ(worker.window().size(), 3u);
  EXPECT_EQ(worker.window().back().text, "SELECT 9");
  EXPECT_EQ(worker.window().front().text, "SELECT 7");
}

TEST(QWorkerTest, DeployReplacesAndUndeployRemoves) {
  QWorker::Options options;
  options.application = "appX";
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());
  worker.Deploy(TrainedUserClassifier());  // same task name: replace
  EXPECT_EQ(worker.num_classifiers(), 1u);
  EXPECT_TRUE(worker.Undeploy("user"));
  EXPECT_FALSE(worker.Undeploy("user"));
  EXPECT_EQ(worker.num_classifiers(), 0u);
}

TEST(QWorkerTest, ProcessBatch) {
  QWorker::Options options;
  options.application = "appX";
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());
  workload::Workload batch;
  batch.Add(Query("SELECT a FROM t WHERE x = 1"));
  batch.Add(Query("SELECT b, c, d FROM u, v WHERE u.k = v.k"));
  auto results = worker.ProcessBatch(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].predictions.at("user"), "alice");
  EXPECT_EQ(results[1].predictions.at("user"), "bob");
}

}  // namespace
}  // namespace querc::core
