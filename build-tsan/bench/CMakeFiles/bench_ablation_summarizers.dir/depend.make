# Empty dependencies file for bench_ablation_summarizers.
# This may be replaced when dependencies are built.
