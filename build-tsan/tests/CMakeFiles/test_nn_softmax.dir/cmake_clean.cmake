file(REMOVE_RECURSE
  "CMakeFiles/test_nn_softmax.dir/test_nn_softmax.cc.o"
  "CMakeFiles/test_nn_softmax.dir/test_nn_softmax.cc.o.d"
  "test_nn_softmax"
  "test_nn_softmax.pdb"
  "test_nn_softmax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_softmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
