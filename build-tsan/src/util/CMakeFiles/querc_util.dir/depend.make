# Empty dependencies file for querc_util.
# This may be replaced when dependencies are built.
