#include "engine/cost_model.h"

#include <gtest/gtest.h>

#include "workload/tpch_gen.h"

namespace querc::engine {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : catalog_(TpchCatalog()), model_(&catalog_) {}
  Catalog catalog_;
  CostModel model_;
};

TEST_F(CostModelTest, EqualitySelectivityIsOneOverNdv) {
  sql::Predicate p;
  p.op = "=";
  p.column = "c_mktsegment";
  p.literals = {"BUILDING"};
  const ColumnStats* stats =
      catalog_.Table("customer")->Column("c_mktsegment");
  EXPECT_DOUBLE_EQ(model_.Selectivity(p, stats, false), 0.2);
  EXPECT_DOUBLE_EQ(model_.Selectivity(p, stats, true), 0.2);
}

TEST_F(CostModelTest, RangeSelectivityFromDateDomain) {
  sql::Predicate p;
  p.op = ">=";
  p.column = "l_shipdate";
  p.literals = {"1998-01-01"};  // ~1 year of a 7-year domain
  const ColumnStats* stats = catalog_.Table("lineitem")->Column("l_shipdate");
  double sel = model_.Selectivity(p, stats, false);
  EXPECT_NEAR(sel, 1.0 / 7.0, 0.02);
  p.op = "<";
  sel = model_.Selectivity(p, stats, false);
  EXPECT_NEAR(sel, 6.0 / 7.0, 0.02);
}

TEST_F(CostModelTest, BetweenSelectivity) {
  sql::Predicate p;
  p.op = "BETWEEN";
  p.column = "l_shipdate";
  p.literals = {"1995-01-01", "1996-12-31"};
  const ColumnStats* stats = catalog_.Table("lineitem")->Column("l_shipdate");
  EXPECT_NEAR(model_.Selectivity(p, stats, false), 2.0 / 7.0, 0.02);
}

TEST_F(CostModelTest, UnparseableLiteralFallsBack) {
  sql::Predicate p;
  p.op = ">";
  p.column = "l_quantity";
  p.literals = {"not_a_number"};
  const ColumnStats* stats = catalog_.Table("lineitem")->Column("l_quantity");
  EXPECT_DOUBLE_EQ(model_.Selectivity(p, stats, false),
                   model_.options().default_selectivity);
}

TEST_F(CostModelTest, HavingPredicateMisestimated) {
  sql::Predicate p;
  p.op = "HAVING_>";
  p.column = "l_quantity";
  p.literals = {"312"};
  const ColumnStats* stats = catalog_.Table("lineitem")->Column("l_quantity");
  EXPECT_DOUBLE_EQ(model_.Selectivity(p, stats, true),
                   model_.options().having_misestimate_selectivity);
  EXPECT_DOUBLE_EQ(model_.Selectivity(p, stats, false), 1.0);
}

TEST_F(CostModelTest, InListSelectivity) {
  sql::Predicate p;
  p.op = "IN";
  p.column = "l_shipmode";
  p.literals = {"AIR", "RAIL"};
  const ColumnStats* stats = catalog_.Table("lineitem")->Column("l_shipmode");
  EXPECT_NEAR(model_.Selectivity(p, stats, false), 2.0 / 7.0, 1e-9);
}

TEST_F(CostModelTest, ScanCostProportionalToRows) {
  QueryCost lineitem = model_.CostText("SELECT * FROM lineitem", {});
  QueryCost nation = model_.CostText("SELECT * FROM nation", {});
  EXPECT_GT(lineitem.actual_seconds, 100 * nation.actual_seconds);
  EXPECT_DOUBLE_EQ(lineitem.actual_seconds, lineitem.estimated_seconds);
}

TEST_F(CostModelTest, SelectiveIndexChosenAndCheaper) {
  IndexConfig config = {{"lineitem", {"l_shipdate"}}};
  std::string query =
      "SELECT * FROM lineitem WHERE l_shipdate >= '1998-06-01' AND "
      "l_shipdate < '1998-08-01'";
  QueryCost without = model_.CostText(query, {});
  QueryCost with = model_.CostText(query, config);
  EXPECT_LT(with.actual_seconds, without.actual_seconds / 3);
  ASSERT_EQ(with.accesses.size(), 1u);
  EXPECT_TRUE(with.accesses[0].used_index);
  EXPECT_FALSE(with.used_bad_plan);
}

TEST_F(CostModelTest, UnselectiveFilterPrefersScan) {
  IndexConfig config = {{"lineitem", {"l_shipdate"}}};
  // ~97% of the domain matches: scanning is cheaper; optimizer must agree.
  QueryCost cost = model_.CostText(
      "SELECT * FROM lineitem WHERE l_shipdate <= '1998-09-02'", config);
  ASSERT_EQ(cost.accesses.size(), 1u);
  EXPECT_FALSE(cost.accesses[0].used_index);
}

TEST_F(CostModelTest, IrrelevantIndexIgnored) {
  IndexConfig config = {{"orders", {"o_orderdate"}}};
  QueryCost cost = model_.CostText(
      "SELECT * FROM lineitem WHERE l_quantity < 10", config);
  EXPECT_FALSE(cost.accesses[0].used_index);
}

TEST_F(CostModelTest, BadPlanFromHavingMisestimation) {
  // The Q18 pattern: a HAVING-aggregate predicate lures the optimizer
  // onto an index whose ACTUAL cost exceeds the scan.
  IndexConfig config = {{"lineitem", {"l_quantity"}}};
  std::string q18ish =
      "SELECT l_orderkey FROM lineitem GROUP BY l_orderkey "
      "HAVING SUM(l_quantity) > 312";
  QueryCost without = model_.CostText(q18ish, {});
  QueryCost with = model_.CostText(q18ish, config);
  EXPECT_TRUE(with.used_bad_plan);
  // Estimated looks great, actual is much worse than the scan.
  EXPECT_LT(with.estimated_seconds, without.estimated_seconds);
  EXPECT_GT(with.actual_seconds, 2.0 * without.actual_seconds);
}

TEST_F(CostModelTest, CombinedRangePredicatesOnLeadColumn) {
  // Both bounds of a range must combine for index costing (Q6 pattern).
  IndexConfig config = {{"lineitem", {"l_shipdate"}}};
  QueryCost one_year = model_.CostText(
      "SELECT * FROM lineitem WHERE l_shipdate >= '1994-01-01' AND "
      "l_shipdate < '1995-01-01'",
      config);
  ASSERT_TRUE(one_year.accesses[0].used_index);
  QueryCost one_bound = model_.CostText(
      "SELECT * FROM lineitem WHERE l_shipdate >= '1994-01-01'", config);
  EXPECT_LT(one_year.actual_seconds, one_bound.actual_seconds);
}

TEST_F(CostModelTest, JoinsAndAggregatesAddCost) {
  QueryCost flat = model_.CostText("SELECT * FROM orders", {});
  QueryCost join = model_.CostText(
      "SELECT * FROM orders, customer WHERE o_custkey = c_custkey", {});
  EXPECT_GT(join.actual_seconds, flat.actual_seconds);
  QueryCost agg = model_.CostText(
      "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey "
      "ORDER BY o_custkey",
      {});
  EXPECT_GT(agg.actual_seconds, flat.actual_seconds);
}

TEST_F(CostModelTest, SubqueriesCosted) {
  QueryCost outer_only = model_.CostText("SELECT * FROM orders", {});
  QueryCost with_sub = model_.CostText(
      "SELECT * FROM orders WHERE o_orderkey IN (SELECT l_orderkey FROM "
      "lineitem)",
      {});
  // The subquery adds (at least) the lineitem scan.
  QueryCost lineitem = model_.CostText("SELECT * FROM lineitem", {});
  EXPECT_GT(with_sub.actual_seconds,
            outer_only.actual_seconds + 0.9 * lineitem.actual_seconds);
}

TEST_F(CostModelTest, UnknownTablesIgnoredGracefully) {
  QueryCost cost = model_.CostText("SELECT * FROM made_up_table", {});
  EXPECT_EQ(cost.actual_seconds, 0.0);
  EXPECT_TRUE(cost.accesses.empty());
}

TEST_F(CostModelTest, RunWorkloadAccumulates) {
  std::vector<std::string> texts = {"SELECT * FROM nation",
                                    "SELECT * FROM region"};
  WorkloadRuntime rt = RunWorkload(model_, texts, {});
  ASSERT_EQ(rt.per_query_seconds.size(), 2u);
  EXPECT_NEAR(rt.total_seconds,
              rt.per_query_seconds[0] + rt.per_query_seconds[1], 1e-12);
}

TEST_F(CostModelTest, TpchBaselineNearPaperScale) {
  // The calibrated no-index runtime for the paper's workload sits near the
  // 1200-second Figure 3 baseline.
  workload::TpchGenerator gen({});
  auto wl = gen.Generate();
  std::vector<std::string> texts;
  for (const auto& q : wl) texts.push_back(q.text);
  WorkloadRuntime rt = RunWorkload(model_, texts, {});
  EXPECT_GT(rt.total_seconds, 1000.0);
  EXPECT_LT(rt.total_seconds, 1500.0);
}

}  // namespace
}  // namespace querc::engine
