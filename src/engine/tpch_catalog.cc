#include "engine/catalog.h"
#include "workload/tpch_gen.h"  // DaysFromCivil

namespace querc::engine {

namespace {

using workload::DaysFromCivil;

ColumnStats Int(const std::string& name, double lo, double hi, uint64_t ndv,
                double width = 8) {
  return {name, ColumnType::kInt, lo, hi, ndv, width};
}

ColumnStats Float(const std::string& name, double lo, double hi, uint64_t ndv,
                  double width = 8) {
  return {name, ColumnType::kFloat, lo, hi, ndv, width};
}

ColumnStats Str(const std::string& name, uint64_t ndv, double width) {
  return {name, ColumnType::kString, 0, 0, ndv, width};
}

ColumnStats Date(const std::string& name, int y0, int y1, double width = 8) {
  double lo = static_cast<double>(DaysFromCivil(y0, 1, 1));
  double hi = static_cast<double>(DaysFromCivil(y1, 12, 31));
  return {name, ColumnType::kDate, lo, hi,
          static_cast<uint64_t>(hi - lo + 1), width};
}

}  // namespace

Catalog TpchCatalog() {
  Catalog catalog;

  TableStats region;
  region.name = "region";
  region.row_count = 5;
  region.columns = {Int("r_regionkey", 0, 4, 5), Str("r_name", 5, 12),
                    Str("r_comment", 5, 80)};
  (void)catalog.AddTable(std::move(region));

  TableStats nation;
  nation.name = "nation";
  nation.row_count = 25;
  nation.columns = {Int("n_nationkey", 0, 24, 25), Str("n_name", 25, 16),
                    Int("n_regionkey", 0, 4, 5), Str("n_comment", 25, 80)};
  (void)catalog.AddTable(std::move(nation));

  TableStats supplier;
  supplier.name = "supplier";
  supplier.row_count = 10000;
  supplier.columns = {Int("s_suppkey", 1, 10000, 10000),
                      Str("s_name", 10000, 18),
                      Str("s_address", 10000, 25),
                      Int("s_nationkey", 0, 24, 25),
                      Str("s_phone", 10000, 15),
                      Float("s_acctbal", -999.99, 9999.99, 9956),
                      Str("s_comment", 10000, 70)};
  (void)catalog.AddTable(std::move(supplier));

  TableStats customer;
  customer.name = "customer";
  customer.row_count = 150000;
  customer.columns = {Int("c_custkey", 1, 150000, 150000),
                      Str("c_name", 150000, 18),
                      Str("c_address", 150000, 25),
                      Int("c_nationkey", 0, 24, 25),
                      Str("c_phone", 150000, 15),
                      Float("c_acctbal", -999.99, 9999.99, 140187),
                      Str("c_mktsegment", 5, 10),
                      Str("c_comment", 150000, 73)};
  (void)catalog.AddTable(std::move(customer));

  TableStats part;
  part.name = "part";
  part.row_count = 200000;
  part.columns = {Int("p_partkey", 1, 200000, 200000),
                  Str("p_name", 199997, 33),
                  Str("p_mfgr", 5, 25),
                  Str("p_brand", 25, 10),
                  Str("p_type", 150, 21),
                  Int("p_size", 1, 50, 50),
                  Str("p_container", 40, 10),
                  Float("p_retailprice", 901.0, 2098.99, 20899),
                  Str("p_comment", 131753, 14)};
  (void)catalog.AddTable(std::move(part));

  TableStats partsupp;
  partsupp.name = "partsupp";
  partsupp.row_count = 800000;
  partsupp.columns = {Int("ps_partkey", 1, 200000, 200000),
                      Int("ps_suppkey", 1, 10000, 10000),
                      Int("ps_availqty", 1, 9999, 9999),
                      Float("ps_supplycost", 1.0, 1000.0, 99865),
                      Str("ps_comment", 799124, 124)};
  (void)catalog.AddTable(std::move(partsupp));

  TableStats orders;
  orders.name = "orders";
  orders.row_count = 1500000;
  orders.columns = {Int("o_orderkey", 1, 6000000, 1500000),
                    Int("o_custkey", 1, 150000, 99996),
                    Str("o_orderstatus", 3, 1),
                    Float("o_totalprice", 857.71, 555285.16, 1464556),
                    Date("o_orderdate", 1992, 1998),
                    Str("o_orderpriority", 5, 15),
                    Str("o_clerk", 1000, 15),
                    Int("o_shippriority", 0, 0, 1),
                    Str("o_comment", 1482071, 49)};
  (void)catalog.AddTable(std::move(orders));

  TableStats lineitem;
  lineitem.name = "lineitem";
  lineitem.row_count = 6001215;
  lineitem.columns = {Int("l_orderkey", 1, 6000000, 1500000),
                      Int("l_partkey", 1, 200000, 200000),
                      Int("l_suppkey", 1, 10000, 10000),
                      Int("l_linenumber", 1, 7, 7),
                      Float("l_quantity", 1, 50, 50),
                      Float("l_extendedprice", 901.0, 104949.5, 933900),
                      Float("l_discount", 0.0, 0.10, 11),
                      Float("l_tax", 0.0, 0.08, 9),
                      Str("l_returnflag", 3, 1),
                      Str("l_linestatus", 2, 1),
                      Date("l_shipdate", 1992, 1998),
                      Date("l_commitdate", 1992, 1998),
                      Date("l_receiptdate", 1992, 1998),
                      Str("l_shipinstruct", 4, 25),
                      Str("l_shipmode", 7, 10),
                      Str("l_comment", 4580667, 27)};
  (void)catalog.AddTable(std::move(lineitem));

  return catalog;
}

}  // namespace querc::engine
