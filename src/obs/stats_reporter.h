#ifndef QUERC_OBS_STATS_REPORTER_H_
#define QUERC_OBS_STATS_REPORTER_H_

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace querc::obs {

/// Periodic one-line stats logger: every `interval` it snapshots the
/// registry and emits a single summary line (counters and gauges as
/// name=value, histograms as name[n= p50= p99= max=]) through `sink`.
/// Stop() — and destruction — flushes one final line so short runs still
/// report. The reporter thread only reads metric atomics; it never blocks
/// the hot paths it observes.
class StatsReporter {
 public:
  struct Options {
    std::chrono::milliseconds interval{10000};
    /// Only metrics whose name starts with this appear in the line.
    std::string prefix = "querc_";
    /// Destination for each summary line; defaults to stderr.
    std::function<void(const std::string&)> sink;
    /// Registry to observe; defaults to MetricsRegistry::Global().
    MetricsRegistry* registry = nullptr;
  };

  StatsReporter();  // all-default Options
  explicit StatsReporter(const Options& options);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// Launches the reporter thread; no-op if already running.
  void Start() EXCLUDES(mu_);

  /// Emits a final summary line and joins the thread; no-op if stopped.
  /// Safe to call from several threads at once (exactly one performs the
  /// join; the rest return immediately).
  void Stop() EXCLUDES(mu_);

  /// The summary line for the current metric values (also used by each
  /// periodic tick); exposed for tests and one-shot callers.
  std::string SummaryLine() const;

 private:
  void Loop() EXCLUDES(mu_);

  /// Immutable after the constructor (the reporter thread reads it).
  Options options_;
  util::Mutex mu_{util::LockRank::kStatsReporter, "stats_reporter.mu"};
  util::CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_ GUARDED_BY(mu_);
};

}  // namespace querc::obs

#endif  // QUERC_OBS_STATS_REPORTER_H_
