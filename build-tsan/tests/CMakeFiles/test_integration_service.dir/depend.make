# Empty dependencies file for test_integration_service.
# This may be replaced when dependencies are built.
