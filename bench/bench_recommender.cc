// Evaluation of the query-recommendation application (§4, "Query
// recommendation"): predict a user's next query from their history.
// Metric: hit-rate@k on held-out (query -> next query) transitions —
// a recommendation "hits" when the true next query's TEMPLATE appears
// among the top-k suggestions. Compared against a global-popularity
// baseline (always recommend the most common next queries).

#include <algorithm>
#include <map>
#include <memory>

#include "bench/bench_common.h"
#include "querc/recommender.h"

namespace querc::bench {
namespace {

/// Template fingerprint: normalized text (literals folded).
std::string Fingerprint(const workload::LabeledQuery& q) {
  auto words = embed::TokenizeForEmbedding(q.text, q.dialect);
  std::string fp;
  for (const auto& w : words) {
    fp += w;
    fp += ' ';
  }
  return fp;
}

int Main() {
  std::printf("=== Query recommendation: next-query hit rate ===\n");
  workload::SnowflakeGenerator::Options options;
  options.seed = 2025;
  options.accounts = workload::SnowflakeGenerator::UniformAccounts(
      /*num_accounts=*/4, /*queries_per_account=*/800,
      /*users_per_account=*/5);
  workload::Workload all = workload::SnowflakeGenerator(options).Generate();

  // Chronological split: first 80% is history, last 20% is evaluation.
  size_t split = all.size() * 4 / 5;
  workload::Workload history(
      {all.queries().begin(), all.queries().begin() + static_cast<long>(split)});
  workload::Workload tail(
      {all.queries().begin() + static_cast<long>(split), all.queries().end()});

  auto embedder = std::make_shared<embed::Doc2VecEmbedder>(Doc2VecBenchOptions());
  TrainEmbedder(*embedder, history, "doc2vec");

  core::QueryRecommender::Options rec_options;
  rec_options.neighbors = 12;
  rec_options.max_recommendations = 3;
  core::QueryRecommender recommender(embedder, rec_options);
  util::Status status = recommender.Train(history);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Evaluation transitions: per user, consecutive queries in the tail.
  struct Transition {
    const workload::LabeledQuery* current;
    std::string next_fingerprint;
  };
  std::map<std::string, std::vector<size_t>> by_user;
  for (size_t i = 0; i < tail.size(); ++i) by_user[tail[i].user].push_back(i);
  std::vector<Transition> transitions;
  for (auto& [user, indices] : by_user) {
    (void)user;
    std::sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      return tail[a].timestamp < tail[b].timestamp;
    });
    for (size_t k = 0; k + 1 < indices.size(); ++k) {
      transitions.push_back(
          {&tail[indices[k]], Fingerprint(tail[indices[k + 1]])});
    }
  }
  std::printf("evaluating %zu held-out transitions\n", transitions.size());

  // Global-popularity baseline: top-3 most frequent templates overall.
  std::map<std::string, int> popularity;
  for (const auto& q : history) ++popularity[Fingerprint(q)];
  std::vector<std::pair<int, std::string>> ranked;
  for (const auto& [fp, c] : popularity) ranked.emplace_back(c, fp);
  std::sort(ranked.rbegin(), ranked.rend());
  std::vector<std::string> top3;
  for (size_t i = 0; i < 3 && i < ranked.size(); ++i) {
    top3.push_back(ranked[i].second);
  }

  size_t hits = 0;
  size_t baseline_hits = 0;
  for (const Transition& t : transitions) {
    auto recs = recommender.Recommend(*t.current);
    for (const auto& r : recs) {
      workload::LabeledQuery rq;
      rq.text = r.text;
      rq.dialect = t.current->dialect;
      if (Fingerprint(rq) == t.next_fingerprint) {
        ++hits;
        break;
      }
    }
    if (std::find(top3.begin(), top3.end(), t.next_fingerprint) !=
        top3.end()) {
      ++baseline_hits;
    }
  }

  util::TableWriter table({"method", "hit_rate_at_3"});
  table.AddRow({"querc-recommender",
                util::TableWriter::Num(
                    100.0 * static_cast<double>(hits) /
                        static_cast<double>(transitions.size()),
                    1) + "%"});
  table.AddRow({"global-popularity",
                util::TableWriter::Num(
                    100.0 * static_cast<double>(baseline_hits) /
                        static_cast<double>(transitions.size()),
                    1) + "%"});
  EmitTable(table, "Query recommendation — next-template hit rate @3",
            "recommender.csv");
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main() { return querc::bench::Main(); }
