#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace querc::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(500, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyQueueReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace querc::util
