file(REMOVE_RECURSE
  "CMakeFiles/test_sql_dialect.dir/test_sql_dialect.cc.o"
  "CMakeFiles/test_sql_dialect.dir/test_sql_dialect.cc.o.d"
  "test_sql_dialect"
  "test_sql_dialect.pdb"
  "test_sql_dialect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql_dialect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
