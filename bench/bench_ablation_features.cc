// Ablation A1 — the paper's central hypothesis: learned embeddings can
// outperform hand-engineered syntactic features. Re-runs the Table 1
// labeling tasks with the Chaudhuri-style FeatureEmbedder baseline
// alongside the two learned embedders.
//
// Expected: the feature baseline does respectably on account labeling
// (schema names are hashed into its buckets) but loses ground on the user
// task, where the signal is compositional/order-based and invisible to
// fixed syntactic counters.

#include <memory>

#include "bench/bench_common.h"
#include "ml/crossval.h"
#include "embed/tfidf_embedder.h"
#include "ml/random_forest.h"

namespace querc::bench {
namespace {

double TaskAccuracy(const embed::Embedder& embedder,
                    const workload::Workload& labeled,
                    const std::string& (*label_of)(
                        const workload::LabeledQuery&),
                    uint64_t seed) {
  ml::Dataset data;
  data.x = embed::EmbedWorkload(embedder, labeled);
  ml::LabelEncoder enc;
  for (const auto& q : labeled) data.y.push_back(enc.FitId(label_of(q)));
  return ml::StratifiedKFold(
             data, 5,
             [] {
               return std::make_unique<ml::RandomForestClassifier>(
                   ml::RandomForestClassifier::Options{.num_trees = 40});
             },
             seed)
      .MeanAccuracy();
}

int Main() {
  std::printf("=== Ablation: learned embeddings vs hand-engineered "
              "features ===\n");
  workload::Workload pretrain = SnowflakePretrainCorpus();
  workload::Workload labeled = SnowflakeLabeledWorkload();
  workload::Workload corpus = pretrain;
  corpus.Append(labeled);

  embed::FeatureEmbedder::Options feature_options;
  feature_options.dialect = sql::Dialect::kSnowflake;
  embed::FeatureEmbedder features(feature_options);
  embed::TfidfEmbedder tfidf{embed::TfidfEmbedder::Options{}};
  embed::Doc2VecEmbedder doc2vec(Doc2VecBenchOptions());
  embed::LstmAutoencoderEmbedder lstm(LstmBenchOptions());
  TrainEmbedder(features, corpus, "features");
  TrainEmbedder(tfidf, corpus, "tfidf");
  TrainEmbedder(doc2vec, corpus, "doc2vec");
  TrainEmbedder(lstm, corpus, "lstm-autoencoder");

  util::TableWriter table({"embedder", "dims", "account", "user"});
  const embed::Embedder* embedders[] = {&features, &tfidf, &doc2vec, &lstm};
  for (const embed::Embedder* e : embedders) {
    util::Stopwatch watch;
    double account = TaskAccuracy(*e, labeled, workload::AccountOf, 301);
    double user = TaskAccuracy(*e, labeled, workload::UserOf, 302);
    table.AddRow({e->name(), std::to_string(e->dim()),
                  util::TableWriter::Num(100.0 * account, 1) + "%",
                  util::TableWriter::Num(100.0 * user, 1) + "%"});
    std::printf("  %-18s evaluated in %.1fs\n", e->name().c_str(),
                watch.ElapsedSeconds());
  }
  EmitTable(table,
            "Ablation A1 — labeling accuracy (5-fold CV) per representation",
            "ablation_features.csv");
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main() { return querc::bench::Main(); }
