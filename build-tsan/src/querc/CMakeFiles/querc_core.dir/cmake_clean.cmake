file(REMOVE_RECURSE
  "CMakeFiles/querc_core.dir/classifier.cc.o"
  "CMakeFiles/querc_core.dir/classifier.cc.o.d"
  "CMakeFiles/querc_core.dir/drift.cc.o"
  "CMakeFiles/querc_core.dir/drift.cc.o.d"
  "CMakeFiles/querc_core.dir/error_predictor.cc.o"
  "CMakeFiles/querc_core.dir/error_predictor.cc.o.d"
  "CMakeFiles/querc_core.dir/qworker.cc.o"
  "CMakeFiles/querc_core.dir/qworker.cc.o.d"
  "CMakeFiles/querc_core.dir/qworker_pool.cc.o"
  "CMakeFiles/querc_core.dir/qworker_pool.cc.o.d"
  "CMakeFiles/querc_core.dir/recommender.cc.o"
  "CMakeFiles/querc_core.dir/recommender.cc.o.d"
  "CMakeFiles/querc_core.dir/resource_allocator.cc.o"
  "CMakeFiles/querc_core.dir/resource_allocator.cc.o.d"
  "CMakeFiles/querc_core.dir/routing.cc.o"
  "CMakeFiles/querc_core.dir/routing.cc.o.d"
  "CMakeFiles/querc_core.dir/security_audit.cc.o"
  "CMakeFiles/querc_core.dir/security_audit.cc.o.d"
  "CMakeFiles/querc_core.dir/summarizer.cc.o"
  "CMakeFiles/querc_core.dir/summarizer.cc.o.d"
  "CMakeFiles/querc_core.dir/training_module.cc.o"
  "CMakeFiles/querc_core.dir/training_module.cc.o.d"
  "libquerc_core.a"
  "libquerc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
