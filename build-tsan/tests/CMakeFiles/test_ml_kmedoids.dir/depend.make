# Empty dependencies file for test_ml_kmedoids.
# This may be replaced when dependencies are built.
