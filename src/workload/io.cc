#include "workload/io.h"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace querc::workload {

namespace {

constexpr const char* kHeader =
    "text,dialect,timestamp,user,account,cluster,error_code,"
    "runtime_seconds,memory_mb,template_id";

std::string Escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// RFC-4180 record reader: handles quoted fields with embedded commas,
/// doubled quotes, and newlines. Returns false at end-of-stream.
bool ReadRecord(std::istream& in, std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  bool any = false;
  int c;
  while ((c = in.get()) != EOF) {
    any = true;
    char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          field += '"';
          in.get();
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
      continue;
    }
    if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields->push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      fields->push_back(std::move(field));
      return true;
    } else if (ch == '\r') {
      // swallow (handles \r\n)
    } else {
      field += ch;
    }
  }
  if (!any) return false;
  fields->push_back(std::move(field));
  return true;
}

}  // namespace

util::StatusOr<sql::Dialect> ParseDialect(const std::string& name) {
  if (name == "generic") return sql::Dialect::kGeneric;
  if (name == "sqlserver") return sql::Dialect::kSqlServer;
  if (name == "snowflake") return sql::Dialect::kSnowflake;
  return util::Status::InvalidArgument("unknown dialect: " + name);
}

util::Status WriteWorkloadCsv(const Workload& workload, std::ostream& out) {
  out << kHeader << "\n";
  for (const auto& q : workload) {
    out << Escape(q.text) << ',' << sql::DialectName(q.dialect) << ','
        << q.timestamp << ',' << Escape(q.user) << ',' << Escape(q.account)
        << ',' << Escape(q.cluster) << ',' << Escape(q.error_code) << ','
        << util::StrFormat("%.6g", q.runtime_seconds) << ','
        << util::StrFormat("%.6g", q.memory_mb) << ',' << q.template_id
        << "\n";
  }
  if (!out) return util::Status::IoError("workload csv write failed");
  return util::Status::OK();
}

util::Status WriteWorkloadCsvFile(const Workload& workload,
                                  const std::string& path) {
  std::ofstream f(path);
  if (!f) return util::Status::IoError("cannot open " + path);
  return WriteWorkloadCsv(workload, f);
}

util::StatusOr<Workload> ReadWorkloadCsv(std::istream& in) {
  std::vector<std::string> fields;
  if (!ReadRecord(in, &fields)) {
    return util::Status::InvalidArgument("workload csv: empty input");
  }
  if (fields.empty() || fields[0] != "text") {
    return util::Status::Corruption(
        "workload csv: missing/invalid header row");
  }
  Workload workload;
  size_t line = 1;
  while (ReadRecord(in, &fields)) {
    ++line;
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != 10) {
      return util::Status::Corruption(util::StrFormat(
          "workload csv: row %zu has %zu fields, expected 10", line,
          fields.size()));
    }
    LabeledQuery q;
    q.text = fields[0];
    QUERC_ASSIGN_OR_RETURN(q.dialect, ParseDialect(fields[1]));
    q.timestamp = std::strtoll(fields[2].c_str(), nullptr, 10);
    q.user = fields[3];
    q.account = fields[4];
    q.cluster = fields[5];
    q.error_code = fields[6];
    q.runtime_seconds = std::strtod(fields[7].c_str(), nullptr);
    q.memory_mb = std::strtod(fields[8].c_str(), nullptr);
    q.template_id = static_cast<int>(std::strtol(fields[9].c_str(), nullptr,
                                                 10));
    workload.Add(std::move(q));
  }
  return workload;
}

util::StatusOr<Workload> ReadWorkloadCsvFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return util::Status::IoError("cannot open " + path);
  return ReadWorkloadCsv(f);
}

}  // namespace querc::workload
