#include "querc/qworker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "embed/feature_embedder.h"
#include "ml/knn.h"
#include "querc/classifier.h"
#include "util/failpoint.h"
#include "workload/workload.h"

namespace querc::core {
namespace {

workload::LabeledQuery Query(const std::string& text,
                             const std::string& user = "u1") {
  workload::LabeledQuery q;
  q.text = text;
  q.user = user;
  return q;
}

std::shared_ptr<Classifier> TrainedUserClassifier() {
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  auto classifier = std::make_shared<Classifier>(
      "user", embedder,
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{.k = 1}));
  workload::Workload history;
  for (int i = 0; i < 10; ++i) {
    history.Add(Query("SELECT a FROM t WHERE x = 1", "alice"));
    history.Add(Query("SELECT b, c, d FROM u, v WHERE u.k = v.k", "bob"));
  }
  EXPECT_TRUE(classifier->Train(history, workload::UserOf).ok());
  return classifier;
}

TEST(ClassifierTest, TrainPredictRoundTrip) {
  auto classifier = TrainedUserClassifier();
  EXPECT_TRUE(classifier->trained());
  EXPECT_EQ(classifier->Predict(Query("SELECT a FROM t WHERE x = 9")),
            "alice");
  EXPECT_EQ(
      classifier->Predict(Query("SELECT b, c, d FROM u, v WHERE u.k = v.k")),
      "bob");
  EXPECT_EQ(classifier->task_name(), "user");
  EXPECT_EQ(classifier->labels().num_classes(), 2u);
}

TEST(ClassifierTest, EmptyCorpusFails) {
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  Classifier classifier(
      "t", embedder,
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{}));
  EXPECT_FALSE(classifier.Train({}, workload::UserOf).ok());
  EXPECT_EQ(classifier.PredictId(Query("SELECT 1")), -1);
  EXPECT_EQ(classifier.Predict(Query("SELECT 1")), "");
}

TEST(QWorkerTest, ProcessRunsAllClassifiersAndSinks) {
  QWorker::Options options;
  options.application = "appX";
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());

  std::vector<std::string> to_db;
  std::vector<std::string> to_training;
  worker.set_database_sink([&](const workload::LabeledQuery& q) {
    to_db.push_back(q.text);
  });
  worker.set_training_sink([&](const ProcessedQuery& pq) {
    to_training.push_back(pq.predictions.at("user"));
  });

  ProcessedQuery out = worker.Process(Query("SELECT a FROM t WHERE x = 3"));
  EXPECT_EQ(out.predictions.at("user"), "alice");
  ASSERT_EQ(to_db.size(), 1u);
  ASSERT_EQ(to_training.size(), 1u);
  EXPECT_EQ(to_training[0], "alice");
  EXPECT_EQ(worker.processed_count(), 1u);
  EXPECT_EQ(worker.num_classifiers(), 1u);
}

TEST(QWorkerTest, ForkedModeSkipsDatabase) {
  QWorker::Options options;
  options.application = "appX";
  options.forward_to_database = false;  // "forked" deployment (§2)
  QWorker worker(options);
  int db_calls = 0;
  int training_calls = 0;
  worker.set_database_sink(
      [&](const workload::LabeledQuery&) { ++db_calls; });
  worker.set_training_sink([&](const ProcessedQuery&) { ++training_calls; });
  worker.Process(Query("SELECT 1"));
  EXPECT_EQ(db_calls, 0);
  EXPECT_EQ(training_calls, 1);
}

TEST(QWorkerTest, WindowIsBounded) {
  QWorker::Options options;
  options.application = "appX";
  options.window_size = 3;
  QWorker worker(options);
  for (int i = 0; i < 10; ++i) {
    worker.Process(Query("SELECT " + std::to_string(i)));
  }
  ASSERT_EQ(worker.window().size(), 3u);
  EXPECT_EQ(worker.window().back().text, "SELECT 9");
  EXPECT_EQ(worker.window().front().text, "SELECT 7");
}

TEST(QWorkerTest, DeployReplacesAndUndeployRemoves) {
  QWorker::Options options;
  options.application = "appX";
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());
  worker.Deploy(TrainedUserClassifier());  // same task name: replace
  EXPECT_EQ(worker.num_classifiers(), 1u);
  EXPECT_TRUE(worker.Undeploy("user"));
  EXPECT_FALSE(worker.Undeploy("user"));
  EXPECT_EQ(worker.num_classifiers(), 0u);
}

TEST(QWorkerTest, ProcessBatch) {
  QWorker::Options options;
  options.application = "appX";
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());
  workload::Workload batch;
  batch.Add(Query("SELECT a FROM t WHERE x = 1"));
  batch.Add(Query("SELECT b, c, d FROM u, v WHERE u.k = v.k"));
  auto results = worker.ProcessBatch(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].predictions.at("user"), "alice");
  EXPECT_EQ(results[1].predictions.at("user"), "bob");
  EXPECT_TRUE(results[0].clean());
  EXPECT_TRUE(results[1].clean());
}

// ---------------------------------------------------------------------------
// Fault tolerance
// ---------------------------------------------------------------------------

/// Arms/disarms around each test so a leaked failpoint can't poison the
/// rest of the binary.
class QWorkerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { util::Failpoints::Global().DisarmAll(); }
  void TearDown() override { util::Failpoints::Global().DisarmAll(); }
};

TEST_F(QWorkerFaultTest, ThrowingDatabaseSinkBecomesStatus) {
  QWorker::Options options;
  options.application = "appX";
  options.sink_retry.max_attempts = 1;  // no retries: observe the raw fault
  QWorker worker(options);
  worker.set_database_sink([](const workload::LabeledQuery&) {
    throw std::runtime_error("db down");
  });
  ProcessedQuery out = worker.Process(Query("SELECT 1"));
  EXPECT_EQ(out.database_status.code(), util::StatusCode::kInternal);
  EXPECT_NE(out.database_status.message().find("db down"), std::string::npos);
  EXPECT_TRUE(out.training_status.ok());
  EXPECT_TRUE(out.status.ok());  // the query itself still flowed
  EXPECT_FALSE(out.clean());
  EXPECT_EQ(worker.processed_count(), 1u);
}

TEST_F(QWorkerFaultTest, DatabaseFailpointYieldsTypedStatus) {
  QWorker::Options options;
  options.application = "appX";
  options.sink_retry.max_attempts = 1;
  QWorker worker(options);
  int db_calls = 0;
  worker.set_database_sink(
      [&](const workload::LabeledQuery&) { ++db_calls; });
  util::FailpointSpec spec;
  spec.code = util::StatusCode::kUnavailable;
  spec.count = 1;
  util::Failpoints::Global().Arm("qworker.sink_database", spec);

  ProcessedQuery out = worker.Process(Query("SELECT 1"));
  EXPECT_EQ(out.database_status.code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(db_calls, 0);  // fault injected before the sink ran

  out = worker.Process(Query("SELECT 2"));  // failpoint budget spent
  EXPECT_TRUE(out.database_status.ok());
  EXPECT_EQ(db_calls, 1);
}

TEST_F(QWorkerFaultTest, TrainingFailpointYieldsTypedStatus) {
  QWorker::Options options;
  options.application = "appX";
  options.sink_retry.max_attempts = 1;
  QWorker worker(options);
  worker.set_training_sink([](const ProcessedQuery&) {});
  util::FailpointSpec spec;
  spec.code = util::StatusCode::kUnavailable;
  util::Failpoints::Global().Arm("qworker.sink_training", spec);
  ProcessedQuery out = worker.Process(Query("SELECT 1"));
  EXPECT_EQ(out.training_status.code(), util::StatusCode::kUnavailable);
  EXPECT_TRUE(out.database_status.ok());
}

TEST_F(QWorkerFaultTest, SinkRetriesRecoverTransientFault) {
  QWorker::Options options;
  options.application = "appX";
  options.sink_retry.max_attempts = 3;
  options.sink_retry.initial_backoff_ms = 0.0;  // no sleeping in tests
  QWorker worker(options);
  int db_calls = 0;
  worker.set_database_sink(
      [&](const workload::LabeledQuery&) { ++db_calls; });
  util::FailpointSpec spec;
  spec.count = 2;  // first two attempts fail, third succeeds
  util::Failpoints::Global().Arm("qworker.sink_database", spec);

  ProcessedQuery out = worker.Process(Query("SELECT 1"));
  EXPECT_TRUE(out.database_status.ok());
  EXPECT_EQ(db_calls, 1);
  EXPECT_EQ(util::Failpoints::Global().hits("qworker.sink_database"), 2u);
}

TEST_F(QWorkerFaultTest, ClassifierFailpointFallsBackToFallback) {
  QWorker::Options options;
  options.application = "appX";
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());
  worker.DeployFallback(TrainedUserClassifier());
  util::FailpointSpec spec;
  spec.count = 1;
  util::Failpoints::Global().Arm("qworker.classifier_predict", spec);

  ProcessedQuery out = worker.Process(Query("SELECT a FROM t WHERE x = 1"));
  // The fallback answered, and the degradation is recorded.
  EXPECT_EQ(out.predictions.at("user"), "alice");
  ASSERT_EQ(out.degraded_tasks.size(), 1u);
  EXPECT_EQ(out.degraded_tasks[0], "user");
  EXPECT_TRUE(out.skipped_tasks.empty());

  out = worker.Process(Query("SELECT a FROM t WHERE x = 1"));
  EXPECT_TRUE(out.degraded_tasks.empty());  // fault gone: primary answers
}

TEST_F(QWorkerFaultTest, ClassifierFailpointWithoutFallbackSkipsTask) {
  QWorker::Options options;
  options.application = "appX";
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());
  util::FailpointSpec spec;
  spec.count = 1;
  util::Failpoints::Global().Arm("qworker.classifier_predict", spec);

  ProcessedQuery out = worker.Process(Query("SELECT a FROM t WHERE x = 1"));
  EXPECT_EQ(out.predictions.count("user"), 0u);
  ASSERT_EQ(out.skipped_tasks.size(), 1u);
  EXPECT_EQ(out.skipped_tasks[0], "user");
}

TEST_F(QWorkerFaultTest, OpenBreakerDegradesWithoutCallingPrimary) {
  QWorker::Options options;
  options.application = "appX";
  options.breaker.window = 8;
  options.breaker.min_samples = 2;
  options.breaker.failure_ratio = 0.5;
  options.breaker.open_ms = 60000.0;  // stays open for the whole test
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());
  worker.DeployFallback(TrainedUserClassifier());

  // Two injected failures trip the task breaker...
  util::FailpointSpec spec;
  spec.count = 2;
  util::Failpoints::Global().Arm("qworker.classifier_predict", spec);
  worker.Process(Query("SELECT 1"));
  worker.Process(Query("SELECT 1"));
  bool task_open = false;
  for (const auto& [name, state] : worker.BreakerStates()) {
    if (name == "appX:task_user") {
      task_open = state == CircuitBreaker::State::kOpen;
    }
  }
  EXPECT_TRUE(task_open);

  // ...after which the fallback serves without the failpoint firing
  // (breaker refuses before the injection site).
  ProcessedQuery out = worker.Process(Query("SELECT a FROM t WHERE x = 1"));
  EXPECT_EQ(out.predictions.at("user"), "alice");
  EXPECT_EQ(out.degraded_tasks.size(), 1u);
  EXPECT_EQ(util::Failpoints::Global().hits("qworker.classifier_predict"),
            2u);
}

TEST_F(QWorkerFaultTest, LintFailpointDoesNotLoseQuery) {
  QWorker::Options options;
  options.application = "appX";
  options.enable_lint = true;
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());
  util::FailpointSpec spec;
  spec.code = util::StatusCode::kInternal;
  util::Failpoints::Global().Arm("qworker.lint", spec);
  ProcessedQuery out = worker.Process(Query("SELECT a FROM t WHERE x = 1"));
  EXPECT_EQ(out.predictions.at("user"), "alice");
  EXPECT_TRUE(out.diagnostics.empty());
  EXPECT_TRUE(out.status.ok());
}

TEST_F(QWorkerFaultTest, DeadlineForwardsPartialPredictions) {
  QWorker::Options options;
  options.application = "appX";
  options.deadline_ms = 5.0;
  options.enable_lint = true;
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());
  // A 20ms injected delay on the classifier burns the whole 5ms budget;
  // after the first task the deadline is up (here there is only one task,
  // so the *lint* stage observes the pressure and stands down).
  util::FailpointSpec spec;
  spec.action = util::FailAction::kDelay;
  spec.delay_ms = 20.0;
  util::Failpoints::Global().Arm("qworker.lint", spec);
  (void)worker.Process(Query("SELECT a FROM t WHERE x = 1"));

  util::Failpoints::Global().DisarmAll();
  util::FailpointSpec slow;
  slow.action = util::FailAction::kDelay;
  slow.delay_ms = 20.0;
  util::Failpoints::Global().Arm("qworker.classifier_predict", slow);
  // Deploy a second task so the deadline can expire between tasks.
  auto second = TrainedUserClassifier();
  worker.Deploy(second);
  auto third = std::make_shared<Classifier>(
      "zz_late",
      std::make_shared<embed::FeatureEmbedder>(
          embed::FeatureEmbedder::Options{}),
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{.k = 1}));
  workload::Workload history;
  for (int i = 0; i < 4; ++i) {
    history.Add(Query("SELECT a FROM t WHERE x = 1", "alice"));
    history.Add(Query("SELECT b, c, d FROM u, v WHERE u.k = v.k", "bob"));
  }
  ASSERT_TRUE(third->Train(history, workload::UserOf).ok());
  worker.Deploy(third);

  ProcessedQuery out = worker.Process(Query("SELECT a FROM t WHERE x = 1"));
  // The first task ("user", map order) ate the budget via the delay;
  // "zz_late" was never attempted.
  EXPECT_TRUE(out.deadline_exceeded);
  EXPECT_EQ(out.predictions.count("zz_late"), 0u);
  EXPECT_FALSE(out.clean());
}

TEST_F(QWorkerFaultTest, BreakerStatesListsSinksAndTasks) {
  QWorker::Options options;
  options.application = "appX";
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());
  auto states = worker.BreakerStates();
  std::vector<std::string> names;
  names.reserve(states.size());
  for (const auto& [name, state] : states) {
    names.push_back(name);
    EXPECT_EQ(state, CircuitBreaker::State::kClosed);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "appX:sink_database"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "appX:sink_training"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "appX:task_user"),
            names.end());
  EXPECT_TRUE(worker.Undeploy("user"));
  EXPECT_EQ(worker.BreakerStates().size(), 2u);  // task breaker retired
}

TEST_F(QWorkerFaultTest, DisabledBreakersStillConvertExceptions) {
  QWorker::Options options;
  options.application = "appX";
  options.enable_breakers = false;
  options.sink_retry.max_attempts = 1;
  QWorker worker(options);
  worker.Deploy(TrainedUserClassifier());
  worker.set_database_sink(
      [](const workload::LabeledQuery&) { throw std::runtime_error("x"); });
  ProcessedQuery out = worker.Process(Query("SELECT 1"));
  EXPECT_EQ(out.database_status.code(), util::StatusCode::kInternal);
  EXPECT_TRUE(worker.BreakerStates().empty());
}

// ---------------------------------------------------------------------------
// LatencyStats (min_ms regression)
// ---------------------------------------------------------------------------

TEST(LatencyStatsTest, EmptyStatsReportZeroMinNotGarbage) {
  LatencyStats stats;
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);  // display-safe accessor
  EXPECT_TRUE(std::isinf(stats.min_ms));
  EXPECT_DOUBLE_EQ(stats.mean_ms(), 0.0);
}

TEST(LatencyStatsTest, WorkerLatencyEmptyThenPopulated) {
  QWorker::Options options;
  options.application = "appX";
  QWorker worker(options);
  LatencyStats empty = worker.latency();
  EXPECT_EQ(empty.count, 0u);
  // Regression: an idle worker's histogram snapshot reports min = 0; the
  // stats view must not present that as a real 0 ms minimum.
  EXPECT_TRUE(std::isinf(empty.min_ms));

  worker.Process(Query("SELECT 1"));
  LatencyStats one = worker.latency();
  EXPECT_EQ(one.count, 1u);
  EXPECT_GT(one.min_ms, 0.0);
  EXPECT_TRUE(std::isfinite(one.min_ms));
}

TEST(LatencyStatsTest, MergeIgnoresEmptySides) {
  LatencyStats a;
  LatencyStats b;
  b.count = 2;
  b.min_ms = 1.5;
  b.max_ms = 4.0;
  b.total_ms = 5.5;

  LatencyStats merged = a;
  merged.Merge(b);  // empty += populated
  EXPECT_EQ(merged.count, 2u);
  EXPECT_DOUBLE_EQ(merged.min_ms, 1.5);
  EXPECT_DOUBLE_EQ(merged.max_ms, 4.0);

  merged.Merge(a);  // populated += empty: unchanged
  EXPECT_EQ(merged.count, 2u);
  EXPECT_DOUBLE_EQ(merged.min_ms, 1.5);

  LatencyStats c;
  c.count = 1;
  c.min_ms = 0.5;
  c.max_ms = 0.5;
  c.total_ms = 0.5;
  merged.Merge(c);
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.min_ms, 0.5);
  EXPECT_DOUBLE_EQ(merged.max_ms, 4.0);
  EXPECT_DOUBLE_EQ(merged.total_ms, 6.0);
}

}  // namespace
}  // namespace querc::core
