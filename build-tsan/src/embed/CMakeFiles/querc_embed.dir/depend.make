# Empty dependencies file for querc_embed.
# This may be replaced when dependencies are built.
