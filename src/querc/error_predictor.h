#ifndef QUERC_QUERC_ERROR_PREDICTOR_H_
#define QUERC_QUERC_ERROR_PREDICTOR_H_

#include <memory>
#include <string>

#include "embed/embedder.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"
#include "util/status.h"
#include "workload/workload.h"

namespace querc::core {

/// Error prediction (§4): syntactic patterns correlate with resource
/// errors and engine bugs; predicting the likely error code from syntax
/// lets the router send the query to an instrumented / roomier / more
/// stable runtime preemptively. Label "" means "completes without error".
class ErrorPredictor {
 public:
  struct Options {
    /// Probability threshold above which a query is routed defensively.
    double risk_threshold = 0.5;
    ml::RandomForestClassifier::Options forest;
  };

  ErrorPredictor(std::shared_ptr<const embed::Embedder> embedder,
                 const Options& options)
      : embedder_(std::move(embedder)),
        options_(options),
        forest_(options.forest) {}

  /// Trains on logged queries (error_code from the query logs).
  util::Status Train(const workload::Workload& history);

  /// Most likely error code ("" = none expected).
  std::string PredictError(const workload::LabeledQuery& query) const;

  /// Probability the query fails with any error.
  double FailureProbability(const workload::LabeledQuery& query) const;

  /// True when the failure probability exceeds the risk threshold — the
  /// caller should route to the instrumented environment.
  bool ShouldRouteDefensively(const workload::LabeledQuery& query) const {
    return FailureProbability(query) >= options_.risk_threshold;
  }

 private:
  std::shared_ptr<const embed::Embedder> embedder_;
  Options options_;
  ml::RandomForestClassifier forest_;
  ml::LabelEncoder codes_;
  bool trained_ = false;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_ERROR_PREDICTOR_H_
