// Architecture-level integration test mirroring the paper's Figure 1:
// three applications X, Y, Z with separate query streams and databases.
// X and Y share EmbedderA trained on their combined workloads
// ("EmbedderA(X,Y)"); Z declines log sharing and uses its own EmbedderB(Z).
// Each application's QWorker runs classifiers deployed by the central
// training module; labeled queries tee back into the training sets.

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "embed/doc2vec.h"
#include "ml/knn.h"
#include "querc/qworker.h"
#include "querc/training_module.h"
#include "workload/snowflake_gen.h"

namespace querc::core {
namespace {

workload::Workload AppWorkload(const char* name, uint64_t seed) {
  workload::SnowflakeGenerator::Options options;
  options.seed = seed;
  workload::SnowflakeGenerator::AccountSpec spec;
  spec.name = name;
  spec.num_users = 4;
  spec.num_queries = 400;
  spec.shared_query_rate = 0.05;
  options.accounts = {spec};
  return workload::SnowflakeGenerator(options).Generate();
}

std::shared_ptr<embed::Doc2VecEmbedder> MakeEmbedder() {
  embed::Doc2VecEmbedder::Options options;
  options.dim = 16;
  options.epochs = 6;
  options.min_count = 1;
  return std::make_shared<embed::Doc2VecEmbedder>(options);
}

TEST(ServiceIntegrationTest, Figure1Topology) {
  // --- workloads ---
  workload::Workload x = AppWorkload("appx", 1001);
  workload::Workload y = AppWorkload("appy", 1002);
  workload::Workload z = AppWorkload("appz", 1003);

  // --- central training module ---
  TrainingModule module({});
  module.ImportLogs("X", x);
  module.ImportLogs("Y", y);
  module.ImportLogs("Z", z);

  // EmbedderA(X,Y): trained on the combined X+Y workload.
  auto embedder_a = MakeEmbedder();
  workload::Workload xy = x;
  xy.Append(y);
  ASSERT_TRUE(embed::TrainOnWorkload(*embedder_a, xy).ok());
  module.RegisterEmbedder("EmbedderA", embedder_a);

  // EmbedderB(Z): application Z does not permit log sharing.
  auto embedder_b = MakeEmbedder();
  ASSERT_TRUE(embed::TrainOnWorkload(*embedder_b, z).ok());
  module.RegisterEmbedder("EmbedderB", embedder_b);

  // --- per-application QWorkers with user classifiers ---
  auto make_job = [](const char* task, const char* app, const char* emb) {
    TrainingModule::TrainJob job;
    job.task_name = task;
    job.application = app;
    job.embedder_name = emb;
    job.label_of = workload::UserOf;
    job.labeler_factory = [] {
      return std::make_unique<ml::KnnClassifier>(
          ml::KnnClassifier::Options{.k = 3});
    };
    return job;
  };

  QWorker worker_x({.application = "X"});
  QWorker worker_y({.application = "Y"});
  QWorker worker_z({.application = "Z"});
  ASSERT_TRUE(
      module.TrainAndDeploy({make_job("user", "X", "EmbedderA")}, worker_x)
          .ok());
  // The shared embedder really is shared: X's model references EmbedderA
  // itself, not a copy. (The registry keys on task name, so read it before
  // Y/Z overwrite the "user" slot.)
  EXPECT_EQ(&module.Model("user")->embedder(), embedder_a.get());
  ASSERT_TRUE(
      module.TrainAndDeploy({make_job("user", "Y", "EmbedderA")}, worker_y)
          .ok());
  ASSERT_TRUE(
      module.TrainAndDeploy({make_job("user", "Z", "EmbedderB")}, worker_z)
          .ok());

  // Tee processed queries back into the module (the Figure 1 loop).
  worker_x.set_training_sink(
      [&](const ProcessedQuery& pq) { module.Collect("X", pq); });
  size_t before = module.TrainingSet("X").size();

  // --- stream fresh batches through each worker ---
  auto accuracy_on = [&](QWorker& worker, const workload::Workload& wl) {
    size_t correct = 0;
    size_t total = 0;
    for (size_t i = 0; i < wl.size() && i < 150; ++i) {
      ProcessedQuery out = worker.Process(wl[i]);
      correct += out.predictions.at("user") == wl[i].user ? 1 : 0;
      ++total;
    }
    return static_cast<double>(correct) / static_cast<double>(total);
  };
  // In-sample streams (the workers were trained on these applications).
  EXPECT_GT(accuracy_on(worker_x, x), 0.5);
  EXPECT_GT(accuracy_on(worker_y, y), 0.5);
  EXPECT_GT(accuracy_on(worker_z, z), 0.5);

  // The tee populated X's training set for the next batch job.
  EXPECT_EQ(module.TrainingSet("X").size(), before + 150);
}

TEST(ServiceIntegrationTest, RetrainingImprovesColdStartApplication) {
  // An application that starts with a model trained on ANOTHER
  // application's data (transfer bootstrap), then retrains once its own
  // logs accumulate — accuracy must improve.
  workload::Workload x = AppWorkload("appx", 2001);
  workload::Workload z = AppWorkload("appz", 2002);

  auto embedder = MakeEmbedder();
  workload::Workload both = x;
  both.Append(z);
  ASSERT_TRUE(embed::TrainOnWorkload(*embedder, both).ok());

  TrainingModule module({});
  module.RegisterEmbedder("shared", embedder);
  module.ImportLogs("Z", x);  // cold start: only X's logs available

  auto job = [&] {
    TrainingModule::TrainJob j;
    j.task_name = "user";
    j.application = "Z";
    j.embedder_name = "shared";
    j.label_of = workload::UserOf;
    j.labeler_factory = [] {
      return std::make_unique<ml::KnnClassifier>(
          ml::KnnClassifier::Options{.k = 3});
    };
    return j;
  }();

  QWorker worker({.application = "Z"});
  ASSERT_TRUE(module.TrainAndDeploy({job}, worker).ok());
  auto accuracy = [&](QWorker& w) {
    size_t correct = 0;
    for (size_t i = 0; i < 150; ++i) {
      correct +=
          w.Process(z[i]).predictions.at("user") == z[i].user ? 1 : 0;
    }
    return static_cast<double>(correct) / 150.0;
  };
  double cold = accuracy(worker);  // X's users are not Z's users: ~0

  // Z's own logs arrive; retrain and redeploy (model swap).
  module.ImportLogs("Z", z);
  ASSERT_TRUE(module.TrainAndDeploy({job}, worker).ok());
  double warm = accuracy(worker);
  EXPECT_GT(warm, cold + 0.3);
  EXPECT_GT(warm, 0.5);
}

}  // namespace
}  // namespace querc::core
