#include "ml/metrics.h"

#include <cassert>

namespace querc::ml {

double Accuracy(const std::vector<int>& actual,
                const std::vector<int>& predicted) {
  assert(actual.size() == predicted.size());
  if (actual.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == predicted[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(actual.size());
}

std::vector<std::vector<int>> ConfusionMatrix(const std::vector<int>& actual,
                                              const std::vector<int>& predicted,
                                              int num_classes) {
  assert(actual.size() == predicted.size());
  std::vector<std::vector<int>> counts(
      static_cast<size_t>(num_classes),
      std::vector<int>(static_cast<size_t>(num_classes), 0));
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] >= 0 && actual[i] < num_classes && predicted[i] >= 0 &&
        predicted[i] < num_classes) {
      ++counts[static_cast<size_t>(actual[i])]
              [static_cast<size_t>(predicted[i])];
    }
  }
  return counts;
}

std::vector<double> PerClassRecall(
    const std::vector<std::vector<int>>& confusion) {
  std::vector<double> recall(confusion.size(), 0.0);
  for (size_t c = 0; c < confusion.size(); ++c) {
    long total = 0;
    for (int v : confusion[c]) total += v;
    if (total > 0) {
      recall[c] = static_cast<double>(confusion[c][c]) /
                  static_cast<double>(total);
    }
  }
  return recall;
}

std::map<std::string, double> GroupedAccuracy(
    const std::vector<int>& actual, const std::vector<int>& predicted,
    const std::vector<std::string>& groups) {
  assert(actual.size() == predicted.size() && actual.size() == groups.size());
  std::map<std::string, std::pair<long, long>> tally;  // hits, total
  for (size_t i = 0; i < actual.size(); ++i) {
    auto& [hits, total] = tally[groups[i]];
    if (actual[i] == predicted[i]) ++hits;
    ++total;
  }
  std::map<std::string, double> out;
  for (const auto& [group, ht] : tally) {
    out[group] = ht.second > 0 ? static_cast<double>(ht.first) /
                                     static_cast<double>(ht.second)
                               : 0.0;
  }
  return out;
}

double MacroF1(const std::vector<int>& actual,
               const std::vector<int>& predicted, int num_classes) {
  auto cm = ConfusionMatrix(actual, predicted, num_classes);
  double f1_sum = 0.0;
  int classes_present = 0;
  for (int c = 0; c < num_classes; ++c) {
    long tp = cm[static_cast<size_t>(c)][static_cast<size_t>(c)];
    long actual_c = 0;
    long predicted_c = 0;
    for (int j = 0; j < num_classes; ++j) {
      actual_c += cm[static_cast<size_t>(c)][static_cast<size_t>(j)];
      predicted_c += cm[static_cast<size_t>(j)][static_cast<size_t>(c)];
    }
    if (actual_c == 0) continue;
    ++classes_present;
    double precision =
        predicted_c > 0
            ? static_cast<double>(tp) / static_cast<double>(predicted_c)
            : 0.0;
    double recall = static_cast<double>(tp) / static_cast<double>(actual_c);
    if (precision + recall > 0.0) {
      f1_sum += 2.0 * precision * recall / (precision + recall);
    }
  }
  return classes_present > 0 ? f1_sum / classes_present : 0.0;
}

}  // namespace querc::ml
