#include "workload/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "workload/snowflake_gen.h"
#include "workload/tpch_gen.h"

namespace querc::workload {
namespace {

LabeledQuery Make(const std::string& text) {
  LabeledQuery q;
  q.text = text;
  q.dialect = sql::Dialect::kSnowflake;
  q.timestamp = 1234567;
  q.user = "alice";
  q.account = "acme";
  q.cluster = "c0";
  q.error_code = "OOM";
  q.runtime_seconds = 1.5;
  q.memory_mb = 256.0;
  q.template_id = 7;
  return q;
}

TEST(WorkloadIoTest, RoundTripPreservesEverything) {
  Workload wl;
  wl.Add(Make("SELECT a FROM t WHERE x = 'it''s, tricky'"));
  wl.Add(Make("SELECT b\nFROM u -- embedded newline and \"quotes\""));
  std::stringstream ss;
  ASSERT_TRUE(WriteWorkloadCsv(wl, ss).ok());
  auto loaded = ReadWorkloadCsv(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  const LabeledQuery& q = (*loaded)[0];
  EXPECT_EQ(q.text, "SELECT a FROM t WHERE x = 'it''s, tricky'");
  EXPECT_EQ(q.dialect, sql::Dialect::kSnowflake);
  EXPECT_EQ(q.timestamp, 1234567);
  EXPECT_EQ(q.user, "alice");
  EXPECT_EQ(q.account, "acme");
  EXPECT_EQ(q.cluster, "c0");
  EXPECT_EQ(q.error_code, "OOM");
  EXPECT_DOUBLE_EQ(q.runtime_seconds, 1.5);
  EXPECT_DOUBLE_EQ(q.memory_mb, 256.0);
  EXPECT_EQ(q.template_id, 7);
  EXPECT_EQ((*loaded)[1].text,
            "SELECT b\nFROM u -- embedded newline and \"quotes\"");
}

TEST(WorkloadIoTest, GeneratedWorkloadRoundTrips) {
  SnowflakeGenerator::Options options;
  options.seed = 3;
  options.accounts = SnowflakeGenerator::UniformAccounts(2, 100, 3);
  Workload wl = SnowflakeGenerator(options).Generate();
  std::stringstream ss;
  ASSERT_TRUE(WriteWorkloadCsv(wl, ss).ok());
  auto loaded = ReadWorkloadCsv(ss);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), wl.size());
  for (size_t i = 0; i < wl.size(); ++i) {
    EXPECT_EQ((*loaded)[i].text, wl[i].text);
    EXPECT_EQ((*loaded)[i].user, wl[i].user);
    EXPECT_EQ((*loaded)[i].account, wl[i].account);
    EXPECT_EQ((*loaded)[i].error_code, wl[i].error_code);
  }
}

TEST(WorkloadIoTest, EmptyWorkloadRoundTrips) {
  std::stringstream ss;
  ASSERT_TRUE(WriteWorkloadCsv(Workload(), ss).ok());
  auto loaded = ReadWorkloadCsv(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(WorkloadIoTest, RejectsMissingHeader) {
  std::stringstream ss("not,a,workload\n1,2,3\n");
  EXPECT_FALSE(ReadWorkloadCsv(ss).ok());
}

TEST(WorkloadIoTest, RejectsWrongArity) {
  std::stringstream ss(
      "text,dialect,timestamp,user,account,cluster,error_code,"
      "runtime_seconds,memory_mb,template_id\nonly,three,fields\n");
  auto result = ReadWorkloadCsv(ss);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruption);
}

TEST(WorkloadIoTest, RejectsUnknownDialect) {
  std::stringstream ss(
      "text,dialect,timestamp,user,account,cluster,error_code,"
      "runtime_seconds,memory_mb,template_id\n"
      "SELECT 1,oracle,0,u,a,c,,0,0,-1\n");
  EXPECT_FALSE(ReadWorkloadCsv(ss).ok());
}

TEST(WorkloadIoTest, ParseDialectNames) {
  EXPECT_EQ(*ParseDialect("generic"), sql::Dialect::kGeneric);
  EXPECT_EQ(*ParseDialect("sqlserver"), sql::Dialect::kSqlServer);
  EXPECT_EQ(*ParseDialect("snowflake"), sql::Dialect::kSnowflake);
  EXPECT_FALSE(ParseDialect("mysql").ok());
}

TEST(WorkloadIoTest, FileRoundTrip) {
  Workload wl;
  wl.Add(Make("SELECT 1"));
  std::string path = testing::TempDir() + "/querc_workload_io_test.csv";
  ASSERT_TRUE(WriteWorkloadCsvFile(wl, path).ok());
  auto loaded = ReadWorkloadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadWorkloadCsvFile("/no/such/file.csv").ok());
}

}  // namespace
}  // namespace querc::workload
