#include "nn/serialize.h"

#include <istream>
#include <ostream>

namespace querc::nn {

util::Status WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  if (!out) return util::Status::IoError("write failed");
  return util::Status::OK();
}

util::Status ReadU64(std::istream& in, uint64_t& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) return util::Status::IoError("read failed (u64)");
  return util::Status::OK();
}

util::Status WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  if (!out) return util::Status::IoError("write failed");
  return util::Status::OK();
}

util::Status ReadF64(std::istream& in, double& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) return util::Status::IoError("read failed (f64)");
  return util::Status::OK();
}

util::Status WriteString(std::ostream& out, const std::string& s) {
  QUERC_RETURN_IF_ERROR(WriteU64(out, s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
  if (!out) return util::Status::IoError("write failed (string)");
  return util::Status::OK();
}

util::Status ReadString(std::istream& in, std::string& s) {
  uint64_t len = 0;
  QUERC_RETURN_IF_ERROR(ReadU64(in, len));
  if (len > (1ULL << 32)) {
    return util::Status::Corruption("string length implausible");
  }
  s.resize(len);
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) return util::Status::IoError("read failed (string body)");
  return util::Status::OK();
}

util::Status WriteTensor(std::ostream& out, const Tensor& tensor) {
  QUERC_RETURN_IF_ERROR(WriteU64(out, tensor.rows()));
  QUERC_RETURN_IF_ERROR(WriteU64(out, tensor.cols()));
  QUERC_RETURN_IF_ERROR(WriteString(out, tensor.name()));
  out.write(reinterpret_cast<const char*>(tensor.value().data()),
            static_cast<std::streamsize>(tensor.size() * sizeof(double)));
  if (!out) return util::Status::IoError("write failed (tensor values)");
  return util::Status::OK();
}

util::Status ReadTensor(std::istream& in, Tensor& tensor) {
  uint64_t rows = 0;
  uint64_t cols = 0;
  std::string name;
  QUERC_RETURN_IF_ERROR(ReadU64(in, rows));
  QUERC_RETURN_IF_ERROR(ReadU64(in, cols));
  QUERC_RETURN_IF_ERROR(ReadString(in, name));
  if (rows * cols > (1ULL << 31)) {
    return util::Status::Corruption("tensor size implausible");
  }
  tensor = Tensor(rows, cols, name);
  in.read(reinterpret_cast<char*>(tensor.value().data()),
          static_cast<std::streamsize>(tensor.size() * sizeof(double)));
  if (!in) return util::Status::IoError("read failed (tensor values)");
  return util::Status::OK();
}

}  // namespace querc::nn
