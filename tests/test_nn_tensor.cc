#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace querc::nn {
namespace {

TEST(TensorTest, ShapeAndAccess) {
  Tensor t(2, 3, "w");
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.name(), "w");
  t.at(1, 2) = 5.0;
  EXPECT_EQ(t.at(1, 2), 5.0);
  EXPECT_EQ(t.row(1)[2], 5.0);
}

TEST(TensorTest, ZeroGrad) {
  Tensor t(2, 2);
  t.grad_at(0, 0) = 3.0;
  t.ZeroGrad();
  for (double g : t.grad()) EXPECT_EQ(g, 0.0);
}

TEST(TensorTest, XavierInitWithinBounds) {
  util::Rng rng(5);
  Tensor t(64, 64);
  t.XavierInit(rng);
  double bound = std::sqrt(6.0 / 128.0);
  double sum = 0.0;
  for (double v : t.value()) {
    EXPECT_LE(std::abs(v), bound);
    sum += v;
  }
  EXPECT_NEAR(sum / static_cast<double>(t.size()), 0.0, 0.01);
}

TEST(VecOpsTest, Dot) {
  Vec a = {1, 2, 3};
  Vec b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
}

TEST(VecOpsTest, Axpy) {
  Vec x = {1, 2};
  Vec y = {10, 20};
  Axpy(2.0, x, y);
  EXPECT_EQ(y, (Vec{12, 24}));
}

TEST(VecOpsTest, MatVec) {
  Tensor w(2, 3);
  // [[1,2,3],[4,5,6]]
  double vals[] = {1, 2, 3, 4, 5, 6};
  std::copy(vals, vals + 6, w.value().begin());
  Vec x = {1, 1, 1};
  Vec out;
  MatVec(w, x, out);
  EXPECT_EQ(out, (Vec{6, 15}));
}

TEST(VecOpsTest, MatTVecAccumMatchesTranspose) {
  Tensor w(2, 3);
  double vals[] = {1, 2, 3, 4, 5, 6};
  std::copy(vals, vals + 6, w.value().begin());
  Vec dy = {1, 2};
  Vec out(3, 0.0);
  MatTVecAccum(w, dy, out);
  EXPECT_EQ(out, (Vec{9, 12, 15}));
}

TEST(VecOpsTest, OuterAccum) {
  Tensor w(2, 2);
  Vec dy = {1, 2};
  Vec x = {3, 4};
  OuterAccum(w, dy, x);
  EXPECT_EQ(w.grad(), (Vec{3, 4, 6, 8}));
}

TEST(VecOpsTest, CosineSimilarity) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {-1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 0}), 0.0);
}

TEST(VecOpsTest, SquaredDistance) {
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 2}, {4, 6}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {1, 1}), 0.0);
}

TEST(VecOpsTest, SigmoidStableAtExtremes) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-2.0) + Sigmoid(2.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace querc::nn
