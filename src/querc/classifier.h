#ifndef QUERC_QUERC_CLASSIFIER_H_
#define QUERC_QUERC_CLASSIFIER_H_

#include <functional>
#include <memory>
#include <string>

#include "embed/embedder.h"
#include "ml/dataset.h"
#include "util/statusor.h"
#include "workload/workload.h"

namespace querc::core {

/// Extracts the training label from a logged query (e.g. the user id).
using LabelExtractor = std::function<std::string(const workload::LabeledQuery&)>;

/// A Querc classifier is a pre-trained (embedder, labeler) pair (§2). The
/// embedder is shared (possibly across applications — it is expensive to
/// train and carries the cross-workload knowledge); the labeler is a cheap
/// per-task model over the embedding space.
class Classifier {
 public:
  /// `embedder` must already be trained; `labeler` is fitted by Train().
  Classifier(std::string task_name,
             std::shared_ptr<const embed::Embedder> embedder,
             std::unique_ptr<ml::VectorClassifier> labeler);

  /// Fits the labeler on `corpus` using `label_of` as ground truth. With a
  /// non-null `pool`, corpus embedding runs batch-parallel.
  util::Status Train(const workload::Workload& corpus,
                     const LabelExtractor& label_of,
                     util::ThreadPool* pool = nullptr);

  /// Predicts the label string for one query. Requires Train() succeeded.
  std::string Predict(const workload::LabeledQuery& query) const;

  /// Embeds and predicts, returning the class id (-1 before training).
  int PredictId(const workload::LabeledQuery& query) const;

  /// Predicts from an already-computed embedding of the query (as produced
  /// by this classifier's embedder) — the shared-embedding fast path:
  /// QWorker embeds once per query and fans the vector out to every
  /// deployed task on the same embedder.
  int PredictIdFromEmbedding(const nn::Vec& embedded) const;
  std::string PredictFromEmbedding(const nn::Vec& embedded) const;

  const std::string& task_name() const { return task_name_; }
  const embed::Embedder& embedder() const { return *embedder_; }
  const ml::LabelEncoder& labels() const { return labels_; }
  bool trained() const { return trained_; }

 private:
  std::string task_name_;
  std::shared_ptr<const embed::Embedder> embedder_;
  std::unique_ptr<ml::VectorClassifier> labeler_;
  ml::LabelEncoder labels_;
  bool trained_ = false;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_CLASSIFIER_H_
