#include "engine/catalog.h"

namespace querc::engine {

double TableStats::RowWidthBytes() const {
  double w = 0.0;
  for (const auto& c : columns) w += c.avg_width_bytes;
  return w;
}

const ColumnStats* TableStats::Column(const std::string& column_name) const {
  for (const auto& c : columns) {
    if (c.name == column_name) return &c;
  }
  return nullptr;
}

util::Status Catalog::AddTable(TableStats table) {
  if (Table(table.name) != nullptr) {
    return util::Status::AlreadyExists("table " + table.name);
  }
  tables_.push_back(std::move(table));
  return util::Status::OK();
}

const TableStats* Catalog::Table(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::string Catalog::TableOfColumn(const std::string& column_name) const {
  std::string owner;
  for (const auto& t : tables_) {
    if (t.Column(column_name) != nullptr) {
      if (!owner.empty()) return "";  // ambiguous
      owner = t.name;
    }
  }
  return owner;
}

}  // namespace querc::engine
