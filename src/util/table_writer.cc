#include "util/table_writer.h"

#include <cassert>
#include <cstdio>
#include <fstream>

#include "util/string_util.h"

namespace querc::util {

namespace {

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::Num(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string TableWriter::ToAscii() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    std::string s = "+";
    for (size_t w : widths) {
      s += std::string(w + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      s += ' ';
      s += row[c];
      s += std::string(widths[c] - row[c].size() + 1, ' ');
      s += '|';
    }
    s += '\n';
    return s;
  };
  std::string out = rule() + render_row(header_) + rule();
  for (const auto& row : rows_) out += render_row(row);
  out += rule();
  return out;
}

std::string TableWriter::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status TableWriter::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  f << ToCsv();
  if (!f) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace querc::util
