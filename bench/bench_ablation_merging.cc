// Ablation A5 — advisor extensions beyond the paper's setup: the
// DTA-style composite-index MERGE phase and the storage budget. Run at a
// generous time budget so search quality isn't the confound.

#include "bench/bench_common.h"
#include "engine/advisor.h"
#include "engine/cost_model.h"

namespace querc::bench {
namespace {

int Main() {
  std::printf("=== Ablation: index merging and storage budgets ===\n");
  workload::Workload tpch = TpchWorkload();
  std::vector<std::string> texts;
  for (const auto& q : tpch) texts.push_back(q.text);

  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  double baseline = engine::RunWorkload(model, texts, {}).total_seconds;

  util::TableWriter table({"configuration", "indexes", "storage_mb",
                           "runtime_s", "vs_no_index"});
  table.AddRow({"no-indexes", "0", "0.0",
                util::TableWriter::Num(baseline, 1), "1.00"});

  auto run = [&](const char* name, double storage_mb, bool merge) {
    engine::AdvisorOptions options;
    options.budget_minutes = 30.0;
    options.max_storage_mb = storage_mb;
    options.enable_index_merging = merge;
    engine::TuningAdvisor advisor(&model, options);
    auto rec = advisor.Recommend(texts);
    double runtime = engine::RunWorkload(model, texts, rec.config).total_seconds;
    table.AddRow({name, std::to_string(rec.config.size()),
                  util::TableWriter::Num(rec.storage_mb, 1),
                  util::TableWriter::Num(runtime, 1),
                  util::TableWriter::Num(runtime / baseline, 2)});
    std::printf("  %-28s -> %s\n", name,
                engine::ConfigToString(rec.config).c_str());
  };

  run("unlimited, no merging", 0.0, false);
  run("unlimited, with merging", 0.0, true);
  run("storage <= 400 MB", 400.0, false);
  run("storage <= 150 MB", 150.0, false);
  run("storage <= 150 MB + merging", 150.0, true);
  run("storage <= 20 MB", 20.0, false);

  EmitTable(table,
            "Ablation A5 — composite-index merging and storage budgets "
            "(30-minute advisor budget)",
            "ablation_merging.csv");
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main() { return querc::bench::Main(); }
