#include "util/concurrent_aggregator.h"

#include <algorithm>
#include <limits>

#include "util/string_util.h"

namespace querc::util {

namespace {

/// Probe window: how many consecutive slots a key examines before the
/// cold path engages. Eviction victims are chosen within this window so
/// the new key remains findable by the same probe sequence.
constexpr size_t kProbeWindow = 32;

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Bump(std::atomic<uint64_t>& count, std::atomic<uint64_t>& weight,
          uint64_t count_delta, uint64_t weight_delta) {
  count.fetch_add(count_delta, std::memory_order_relaxed);
  if (weight_delta != 0) {
    weight.fetch_add(weight_delta, std::memory_order_relaxed);
  }
}

}  // namespace

void AggregateEntry::Merge(const AggregateEntry& other) {
  count += other.count;
  weight += other.weight;
  if (key.empty()) key = other.key;
  if (tag.empty()) tag = other.tag;
}

ConcurrentAggregator::ConcurrentAggregator(const Options& options) {
  size_t capacity = options.capacity == 0 ? 1 : options.capacity;
  size_t num_shards = RoundUpPow2(options.shards == 0 ? 1 : options.shards);
  // Don't spread a tiny capacity over many near-empty shards.
  while (num_shards > 1 && capacity < num_shards) num_shards >>= 1;
  per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  // 2x capacity keeps the load factor <= 1/2, so in-capacity inserts
  // find an empty slot in a short probe and never need the cold path.
  slots_per_shard_ = RoundUpPow2(std::max<size_t>(2 * per_shard_capacity_, 8));
  slot_mask_ = slots_per_shard_ - 1;
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->slots = std::make_unique<Slot[]>(slots_per_shard_);
    shards_.push_back(std::move(shard));
  }
}

ConcurrentAggregator::~ConcurrentAggregator() {
  // Destruction requires quiescence; reclaim every published key record.
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < slots_per_shard_; ++i) {
      delete shard->slots[i].rec.load(std::memory_order_acquire);
    }
  }
}

uint64_t ConcurrentAggregator::KeyHash(std::string_view key) {
  uint64_t h = Fnv1a64(key);
  // 0 is the empty-slot sentinel; remap it to an arbitrary odd constant.
  return h == 0 ? 0x9e3779b97f4a7c15ULL : h;
}

ConcurrentAggregator::Outcome ConcurrentAggregator::Record(
    std::string_view key, uint64_t count_delta, uint64_t weight_delta,
    std::string_view tag) {
  const uint64_t h = KeyHash(key);
  Shard& shard = *shards_[h & shard_mask_];
  // Probe bits are taken above the shard bits so the two are independent.
  const size_t start = static_cast<size_t>(h >> 16) & slot_mask_;
  for (size_t i = 0; i < slots_per_shard_; ++i) {
    // A clustered window at capacity means an eviction is due; under
    // capacity the probe continues (an empty slot is guaranteed at load
    // factor <= 1/2, replacement never empties slots).
    if (i == kProbeWindow &&
        shard.size.load(std::memory_order_relaxed) >= per_shard_capacity_) {
      break;
    }
    Slot& slot = shard.slots[(start + i) & slot_mask_];
    uint64_t cur = slot.hash.load(std::memory_order_acquire);
    if (cur == h) {
      Bump(slot.count, slot.weight, count_delta, weight_delta);
      return Outcome::kUpdated;
    }
    if (cur == 0) {
      if (shard.size.load(std::memory_order_relaxed) >=
          per_shard_capacity_) {
        break;  // at capacity: go evict instead of claiming
      }
      uint64_t expected = 0;
      if (slot.hash.compare_exchange_strong(expected, h,
                                            std::memory_order_acq_rel)) {
        slot.rec.store(new KeyRec{std::string(key), std::string(tag)},
                       std::memory_order_release);
        shard.size.fetch_add(1, std::memory_order_relaxed);
        Bump(slot.count, slot.weight, count_delta, weight_delta);
        return Outcome::kInserted;
      }
      if (expected == h) {  // lost the race to ourselves-by-key
        Bump(slot.count, slot.weight, count_delta, weight_delta);
        return Outcome::kUpdated;
      }
      // Claimed by a different key while we looked; keep probing.
    }
  }
  return RecordSlow(shard, start, h, key, count_delta, weight_delta, tag);
}

ConcurrentAggregator::Outcome ConcurrentAggregator::RecordSlow(
    Shard& shard, size_t start, uint64_t hash, std::string_view key,
    uint64_t count_delta, uint64_t weight_delta, std::string_view tag) {
  MutexLock lock(&shard.evict_mu);
  const size_t window = std::min(kProbeWindow, slots_per_shard_);
  Slot* victim = nullptr;
  uint64_t victim_count = std::numeric_limits<uint64_t>::max();
  Slot* empty_slot = nullptr;
  for (size_t i = 0; i < window; ++i) {
    Slot& slot = shard.slots[(start + i) & slot_mask_];
    uint64_t cur = slot.hash.load(std::memory_order_acquire);
    if (cur == hash) {  // appeared while we waited for the lock
      Bump(slot.count, slot.weight, count_delta, weight_delta);
      return Outcome::kUpdated;
    }
    if (cur == 0) {
      if (empty_slot == nullptr) empty_slot = &slot;
      continue;
    }
    // A claimed slot whose record is still mid-publish belongs to a
    // racing inserter that will write `rec` without the lock — it must
    // not be victimized.
    if (slot.rec.load(std::memory_order_acquire) == nullptr) continue;
    uint64_t cnt = slot.count.load(std::memory_order_relaxed);
    if (cnt < victim_count) {
      victim_count = cnt;
      victim = &slot;
    }
  }
  // Under capacity (the fast path raced past its empties, or the window
  // was clustered): claim a free slot rather than evict.
  if (empty_slot != nullptr &&
      shard.size.load(std::memory_order_relaxed) < per_shard_capacity_) {
    uint64_t expected = 0;
    if (empty_slot->hash.compare_exchange_strong(
            expected, hash, std::memory_order_acq_rel)) {
      empty_slot->rec.store(new KeyRec{std::string(key), std::string(tag)},
                            std::memory_order_release);
      shard.size.fetch_add(1, std::memory_order_relaxed);
      Bump(empty_slot->count, empty_slot->weight, count_delta, weight_delta);
      return Outcome::kInserted;
    }
    if (expected == hash) {
      Bump(empty_slot->count, empty_slot->weight, count_delta, weight_delta);
      return Outcome::kUpdated;
    }
  }
  if (victim == nullptr) {
    // Nothing evictable in the window (all empty-at-capacity or
    // mid-publish): the arrival itself is dropped — but counted.
    shard.dropped_keys.fetch_add(1, std::memory_order_relaxed);
    shard.dropped_count.fetch_add(count_delta, std::memory_order_relaxed);
    shard.dropped_weight.fetch_add(weight_delta, std::memory_order_relaxed);
    return Outcome::kDropped;
  }
  // Evict-by-least-count: fold the victim's counters into the dropped
  // totals, then install the new key in its slot. Full slots are only
  // rewritten here (under the lock), so `old` is stable and no other
  // thread ever dereferences it — immediate delete is safe. A counter
  // increment racing this swap lands either in the dropped totals or on
  // the new key; never lost.
  KeyRec* old = victim->rec.load(std::memory_order_acquire);
  shard.dropped_keys.fetch_add(1, std::memory_order_relaxed);
  shard.dropped_count.fetch_add(
      victim->count.exchange(0, std::memory_order_relaxed),
      std::memory_order_relaxed);
  shard.dropped_weight.fetch_add(
      victim->weight.exchange(0, std::memory_order_relaxed),
      std::memory_order_relaxed);
  victim->rec.store(new KeyRec{std::string(key), std::string(tag)},
                    std::memory_order_release);
  victim->hash.store(hash, std::memory_order_release);
  delete old;
  Bump(victim->count, victim->weight, count_delta, weight_delta);
  return Outcome::kEvicted;
}

std::vector<AggregateEntry> ConcurrentAggregator::Snapshot() const {
  std::vector<AggregateEntry> out;
  out.reserve(size());
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->evict_mu);
    for (size_t i = 0; i < slots_per_shard_; ++i) {
      const Slot& slot = shard->slots[i];
      if (slot.hash.load(std::memory_order_acquire) == 0) continue;
      const KeyRec* rec = slot.rec.load(std::memory_order_acquire);
      if (rec == nullptr) continue;  // claim mid-publish; not visible yet
      AggregateEntry entry;
      entry.count = slot.count.load(std::memory_order_relaxed);
      entry.weight = slot.weight.load(std::memory_order_relaxed);
      // A freshly claimed slot whose first delta hasn't landed yet reads
      // as all-zero; it is indistinguishable from "not arrived".
      if (entry.count == 0 && entry.weight == 0) continue;
      entry.key = rec->key;
      entry.tag = rec->tag;
      out.push_back(std::move(entry));
    }
  }
  return out;
}

void ConcurrentAggregator::MergeInto(
    std::unordered_map<std::string, AggregateEntry>& central) const {
  for (AggregateEntry& entry : Snapshot()) {
    auto [it, inserted] = central.try_emplace(entry.key);
    if (inserted) {
      it->second = std::move(entry);
    } else {
      it->second.Merge(entry);
    }
  }
}

std::vector<AggregateEntry> ConcurrentAggregator::Top(size_t n) const {
  std::vector<AggregateEntry> entries = Snapshot();
  std::sort(entries.begin(), entries.end(),
            [](const AggregateEntry& a, const AggregateEntry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (entries.size() > n) entries.resize(n);
  return entries;
}

size_t ConcurrentAggregator::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->size.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t ConcurrentAggregator::dropped_keys() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->dropped_keys.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t ConcurrentAggregator::dropped_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->dropped_count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t ConcurrentAggregator::dropped_weight() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->dropped_weight.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace querc::util
