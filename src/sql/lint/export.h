#ifndef QUERC_SQL_LINT_EXPORT_H_
#define QUERC_SQL_LINT_EXPORT_H_

#include <string>

#include "sql/lint/engine.h"
#include "sql/lint/rule.h"

namespace querc::sql::lint {

/// Human-readable report: one line per diagnostic plus summary sections.
std::string FormatText(const LintReport& report);

/// Machine-readable JSON: {"total_queries", "diagnostics": [...],
/// "rule_hits": {...}, "top_templates": [...]}.
std::string FormatJson(const LintReport& report);

/// SARIF 2.1.0 log (the interchange format CI systems ingest). `registry`
/// supplies rule metadata for tool.driver.rules.
std::string FormatSarif(const LintReport& report,
                        const RuleRegistry& registry);

}  // namespace querc::sql::lint

#endif  // QUERC_SQL_LINT_EXPORT_H_
