#include "querc/security_audit.h"

namespace querc::core {

util::Status SecurityAuditor::Train(const workload::Workload& history) {
  if (history.empty()) {
    return util::Status::InvalidArgument("security audit: empty history");
  }
  ml::Dataset data;
  data.x.reserve(history.size());
  data.y.reserve(history.size());
  for (const auto& q : history) {
    data.x.push_back(embedder_->EmbedQuery(q.text, q.dialect));
    data.y.push_back(users_.FitId(q.user));
  }
  forest_.Fit(data);
  trained_ = true;
  return util::Status::OK();
}

std::string SecurityAuditor::PredictUser(
    const workload::LabeledQuery& query) const {
  if (!trained_) return "";
  int id = forest_.Predict(embedder_->EmbedQuery(query.text, query.dialect));
  return users_.Label(id);
}

std::vector<SecurityAuditor::Flag> SecurityAuditor::Audit(
    const workload::Workload& batch) const {
  std::vector<Flag> flags;
  if (!trained_) return flags;
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto& q = batch[i];
    nn::Vec v = embedder_->EmbedQuery(q.text, q.dialect);
    std::vector<double> proba = forest_.PredictProba(v);
    size_t best = 0;
    for (size_t c = 1; c < proba.size(); ++c) {
      if (proba[c] > proba[best]) best = c;
    }
    const std::string& predicted = users_.Label(static_cast<int>(best));
    if (predicted != q.user && proba[best] >= options_.min_confidence) {
      flags.push_back(
          {i, q.user, predicted, proba[best]});
    }
  }
  return flags;
}

}  // namespace querc::core
