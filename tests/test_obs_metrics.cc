#include "obs/metrics.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace querc::obs {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.Add(-5.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h;
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), 0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.Record(3.7);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 3.7);
  EXPECT_DOUBLE_EQ(snap.min, 3.7);
  EXPECT_DOUBLE_EQ(snap.max, 3.7);
  // Clamping to [min, max] makes every quantile the sample itself.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), 3.7);
  EXPECT_DOUBLE_EQ(snap.p50(), 3.7);
  EXPECT_DOUBLE_EQ(snap.p99(), 3.7);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 3.7);
}

TEST(Histogram, BucketBoundaryMath) {
  // Everything at or below kMinTracked — including junk — lands in the
  // underflow bucket 0.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinTracked / 2), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);

  // The first log bucket starts at kMinTracked; one full octave spans
  // kBucketsPerOctave buckets.
  size_t first = Histogram::BucketIndex(Histogram::kMinTracked * 1.0001);
  size_t octave_up = Histogram::BucketIndex(Histogram::kMinTracked * 2.0001);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(octave_up - first, Histogram::kBucketsPerOctave);

  // Huge values land in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);

  // Every value sits within its own bucket's [lower, upper] range, and
  // bounds are consistent between adjacent buckets.
  for (double v : {0.002, 0.1, 1.0, 7.3, 250.0, 9000.0}) {
    size_t i = Histogram::BucketIndex(v);
    EXPECT_GE(v, Histogram::BucketLowerBound(i)) << "value " << v;
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << "value " << v;
    EXPECT_DOUBLE_EQ(Histogram::BucketLowerBound(i + 1),
                     Histogram::BucketUpperBound(i));
  }
}

TEST(Histogram, PercentilesWithinBucketError) {
  // 100 samples 1..100 ms; log buckets guarantee ~19% relative error.
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  EXPECT_NEAR(snap.p50(), 50.0, 50.0 * 0.20);
  EXPECT_NEAR(snap.p90(), 90.0, 90.0 * 0.20);
  EXPECT_NEAR(snap.p99(), 99.0, 99.0 * 0.20);
  EXPECT_LE(snap.p50(), snap.p90());
  EXPECT_LE(snap.p90(), snap.p99());
  EXPECT_LE(snap.p99(), snap.max);
}

TEST(Histogram, ResetClearsState) {
  Histogram h;
  h.Record(5.0);
  h.Reset();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  h.Record(2.0);
  snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.min, 2.0);
}

TEST(HistogramSnapshot, MergeIsPointwise) {
  Histogram a;
  Histogram b;
  a.Record(1.0);
  a.Record(2.0);
  b.Record(100.0);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.sum, 103.0);
  EXPECT_DOUBLE_EQ(merged.min, 1.0);
  EXPECT_DOUBLE_EQ(merged.max, 100.0);

  HistogramSnapshot empty;
  empty.Merge(a.Snapshot());
  EXPECT_EQ(empty.count, 2u);
  EXPECT_DOUBLE_EQ(empty.min, 1.0);
}

// count==0 sentinel audit (pooled-stats paths): an empty side must never
// leak its zero-initialized min/max into a merged view, in either merge
// direction, no matter how many empty shards fold in.
TEST(HistogramSnapshot, MergeEmptySidesNeverPoisonMinMax) {
  Histogram recorded;
  recorded.Record(5.0);
  recorded.Record(9.0);
  HistogramSnapshot empty_shard;  // e.g. an idle QWorker shard

  // empty -> nonempty: a no-op, not min(5.0, 0.0).
  HistogramSnapshot merged = recorded.Snapshot();
  merged.Merge(empty_shard);
  EXPECT_EQ(merged.count, 2u);
  EXPECT_DOUBLE_EQ(merged.min, 5.0);
  EXPECT_DOUBLE_EQ(merged.max, 9.0);

  // nonempty -> empty: adopts the observed extrema wholesale.
  HistogramSnapshot adopted;
  adopted.Merge(recorded.Snapshot());
  EXPECT_DOUBLE_EQ(adopted.min, 5.0);
  EXPECT_DOUBLE_EQ(adopted.max, 9.0);

  // A fold over only-empty shards stays empty (and percentiles stay 0).
  HistogramSnapshot all_idle;
  for (int i = 0; i < 3; ++i) all_idle.Merge(HistogramSnapshot{});
  EXPECT_EQ(all_idle.count, 0u);
  EXPECT_DOUBLE_EQ(all_idle.min, 0.0);
  EXPECT_DOUBLE_EQ(all_idle.p99(), 0.0);

  // ...and folding real samples in afterwards still works.
  all_idle.Merge(recorded.Snapshot());
  EXPECT_EQ(all_idle.count, 2u);
  EXPECT_DOUBLE_EQ(all_idle.min, 5.0);
}

// Mismatched bucketings (e.g. a snapshot deserialized from an older
// binary) must not read out of bounds: the overlap merges, counts and
// sums stay total.
TEST(HistogramSnapshot, MergeHandlesMismatchedBucketVectors) {
  HistogramSnapshot wide;
  wide.count = 2;
  wide.sum = 6.0;
  wide.min = 1.0;
  wide.max = 5.0;
  wide.buckets = {1, 0, 1, 0};
  HistogramSnapshot narrow;
  narrow.count = 1;
  narrow.sum = 2.0;
  narrow.min = 2.0;
  narrow.max = 2.0;
  narrow.buckets = {0, 1};
  wide.Merge(narrow);
  EXPECT_EQ(wide.count, 3u);
  EXPECT_DOUBLE_EQ(wide.sum, 8.0);
  EXPECT_EQ(wide.buckets.size(), 4u);
  EXPECT_EQ(wide.buckets[1], 1u);
  EXPECT_DOUBLE_EQ(wide.min, 1.0);
  EXPECT_DOUBLE_EQ(wide.max, 5.0);
}

TEST(MetricsRegistry, SameKeyReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("requests_total");
  Counter& b = registry.GetCounter("requests_total");
  EXPECT_EQ(&a, &b);
  // Different labels are different series.
  Counter& c = registry.GetCounter("requests_total", {{"shard", "0"}});
  EXPECT_NE(&a, &c);
  // Label order does not matter: the registry canonicalizes.
  Counter& d =
      registry.GetCounter("multi", {{"b", "2"}, {"a", "1"}});
  Counter& e =
      registry.GetCounter("multi", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&d, &e);
}

TEST(MetricsRegistry, CollectFiltersByPrefix) {
  MetricsRegistry registry;
  registry.GetCounter("querc_a_total").Increment();
  registry.GetCounter("other_total").Increment(2);
  registry.GetGauge("querc_depth").Set(3.0);
  registry.GetHistogram("querc_lat_ms").Record(1.0);

  MetricsRegistry::Snapshot all = registry.Collect();
  EXPECT_EQ(all.counters.size(), 2u);

  MetricsRegistry::Snapshot querc = registry.Collect("querc_");
  ASSERT_EQ(querc.counters.size(), 1u);
  EXPECT_EQ(querc.counters[0].name, "querc_a_total");
  EXPECT_EQ(querc.counters[0].value, 1u);
  ASSERT_EQ(querc.gauges.size(), 1u);
  ASSERT_EQ(querc.histograms.size(), 1u);
  EXPECT_EQ(querc.histograms[0].snapshot.count, 1u);
}

TEST(MetricsRegistry, ResetAllZeroesWithoutInvalidating) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("n");
  Histogram& h = registry.GetHistogram("h");
  c.Increment(5);
  h.Record(1.0);
  registry.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.Snapshot().count, 0u);
  // The references stay live and usable.
  c.Increment();
  EXPECT_EQ(registry.GetCounter("n").value(), 1u);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreExact) {
  // 8 threads x 10k increments/records; totals must be exact. Run under
  // QUERC_SANITIZE=thread this also proves the record path is race-free.
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("concurrent_total");
  Histogram& hist = registry.GetHistogram("concurrent_ms");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        hist.Record(0.5 + t);  // spread across buckets
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 7.5);
}

TEST(MetricsRegistry, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 100; ++i) {
        registry.GetCounter("same_name", {{"i", std::to_string(i % 10)}})
            .Increment();
      }
    });
  }
  for (auto& th : threads) th.join();
  MetricsRegistry::Snapshot snap = registry.Collect();
  EXPECT_EQ(snap.counters.size(), 10u);
  uint64_t total = 0;
  for (const auto& sample : snap.counters) total += sample.value;
  EXPECT_EQ(total, 800u);
}

}  // namespace
}  // namespace querc::obs
