# Empty dependencies file for test_ml_knn_crossval_metrics.
# This may be replaced when dependencies are built.
