#include "querc/chaos.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "embed/feature_embedder.h"
#include "ml/knn.h"
#include "obs/flight_recorder.h"
#include "querc/classifier.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace querc::core {

namespace {

/// Percentile over a sample vector (nearest-rank); 0 when empty.
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  rank = std::min(std::max<size_t>(rank, 1), samples.size());
  return samples[rank - 1];
}

workload::LabeledQuery MakeQuery(util::Rng& rng, size_t i) {
  workload::LabeledQuery q;
  if (rng.Bernoulli(0.5)) {
    q.text = "SELECT a FROM t WHERE x = 1";
    q.user = "alice";
  } else {
    q.text = "SELECT b, c, d FROM u, v WHERE u.k = v.k";
    q.user = "bob";
  }
  q.account = "acct" + std::to_string(i % 8);
  return q;
}

std::shared_ptr<Classifier> TrainUserClassifier(const std::string& task) {
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  auto classifier = std::make_shared<Classifier>(
      task, embedder,
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{.k = 1}));
  workload::Workload history;
  for (int i = 0; i < 8; ++i) {
    workload::LabeledQuery a;
    a.text = "SELECT a FROM t WHERE x = 1";
    a.user = "alice";
    history.Add(a);
    workload::LabeledQuery b;
    b.text = "SELECT b, c, d FROM u, v WHERE u.k = v.k";
    b.user = "bob";
    history.Add(b);
  }
  if (!classifier->Train(history, workload::UserOf).ok()) return nullptr;
  return classifier;
}

/// Folds one returned query into the report's accounting.
void Account(const ProcessedQuery& pq, ChaosReport* report) {
  ++report->returned;
  if (pq.shed) ++report->shed;
  if (!pq.database_status.ok() || !pq.training_status.ok()) {
    ++report->sink_errors;
  }
  if (pq.deadline_exceeded) ++report->deadline_exceeded;
  report->degraded += pq.degraded_tasks.size();
  report->skipped += pq.skipped_tasks.size();
}

bool AllBreakersClosed(const QWorkerPool& pool) {
  for (const auto& [name, state] : pool.BreakerStates()) {
    if (state != CircuitBreaker::State::kClosed) return false;
  }
  return true;
}

}  // namespace

std::string ChaosReport::ToJson() const {
  std::string out = "{\n";
  out += util::StrFormat("  \"submitted\": %zu,\n", submitted);
  out += util::StrFormat("  \"returned\": %zu,\n", returned);
  out += util::StrFormat("  \"silent_drops\": %zu,\n", silent_drops);
  out += util::StrFormat("  \"shed\": %zu,\n", shed);
  out += util::StrFormat("  \"shed_rate\": %.4f,\n", shed_rate);
  out += util::StrFormat("  \"sink_errors\": %zu,\n", sink_errors);
  out += util::StrFormat("  \"degraded\": %zu,\n", degraded);
  out += util::StrFormat("  \"skipped\": %zu,\n", skipped);
  out += util::StrFormat("  \"deadline_exceeded\": %zu,\n", deadline_exceeded);
  out += util::StrFormat("  \"breakers_tripped\": %zu,\n", breakers_tripped);
  out += util::StrFormat("  \"breakers_reclosed\": %s,\n",
                         breakers_reclosed ? "true" : "false");
  out += util::StrFormat("  \"recovery_ms\": %.3f,\n", recovery_ms);
  out += util::StrFormat("  \"p50_warmup_ms\": %.4f,\n", p50_warmup_ms);
  out += util::StrFormat("  \"p99_warmup_ms\": %.4f,\n", p99_warmup_ms);
  out += util::StrFormat("  \"p50_fault_ms\": %.4f,\n", p50_fault_ms);
  out += util::StrFormat("  \"p99_fault_ms\": %.4f,\n", p99_fault_ms);
  out += util::StrFormat("  \"p99_recovery_ms\": %.4f,\n", p99_recovery_ms);
  if (flightrec_enabled) {
    out += util::StrFormat("  \"journal_sink_failpoints\": %llu,\n",
                           (unsigned long long)journal_sink_failpoints);
    out += util::StrFormat("  \"journal_classifier_failpoints\": %llu,\n",
                           (unsigned long long)journal_classifier_failpoints);
    out += util::StrFormat("  \"journal_sheds\": %llu,\n",
                           (unsigned long long)journal_sheds);
    out += util::StrFormat("  \"journal_breaker_transitions\": %llu,\n",
                           (unsigned long long)journal_breaker_transitions);
    out += util::StrFormat("  \"failpoint_hits_sink\": %llu,\n",
                           (unsigned long long)failpoint_hits_sink);
    out += util::StrFormat("  \"failpoint_hits_classifier\": %llu,\n",
                           (unsigned long long)failpoint_hits_classifier);
    out += util::StrFormat("  \"flightrec_ok\": %s,\n",
                           flightrec_ok ? "true" : "false");
  }
  out += util::StrFormat("  \"ok\": %s\n", ok() ? "true" : "false");
  out += "}";
  return out;
}

std::string NoisyNeighborReport::ToJson() const {
  std::string out = "{\n";
  out += util::StrFormat("  \"submitted\": %zu,\n", submitted);
  out += util::StrFormat("  \"returned\": %zu,\n", returned);
  out += util::StrFormat("  \"silent_drops\": %zu,\n", silent_drops);
  out += util::StrFormat("  \"aggressor_submitted\": %zu,\n",
                         aggressor_submitted);
  out += util::StrFormat("  \"aggressor_shed\": %zu,\n", aggressor_shed);
  out += util::StrFormat("  \"victim_submitted\": %zu,\n", victim_submitted);
  out += util::StrFormat("  \"victim_shed\": %zu,\n", victim_shed);
  out += util::StrFormat("  \"aggressor_shed_rate\": %.4f,\n",
                         aggressor_shed_rate);
  out += util::StrFormat("  \"overload_fraction\": %.4f,\n",
                         overload_fraction);
  out += util::StrFormat("  \"shed_quota\": %llu,\n",
                         (unsigned long long)shed_quota);
  out += util::StrFormat("  \"shed_fairness\": %llu,\n",
                         (unsigned long long)shed_fairness);
  out += util::StrFormat("  \"shed_global\": %llu,\n",
                         (unsigned long long)shed_global);
  out += util::StrFormat("  \"victim_p99_warmup_ms\": %.4f,\n",
                         victim_p99_warmup_ms);
  out += util::StrFormat("  \"victim_p99_flood_ms\": %.4f,\n",
                         victim_p99_flood_ms);
  out += util::StrFormat("  \"victim_p99_bound_ms\": %.4f,\n",
                         victim_p99_bound_ms);
  out += util::StrFormat("  \"aggressor_breakers_tripped\": %zu,\n",
                         aggressor_breakers_tripped);
  out += util::StrFormat("  \"victim_breakers_tripped\": %zu,\n",
                         victim_breakers_tripped);
  out += util::StrFormat("  \"breakers_reclosed\": %s,\n",
                         breakers_reclosed ? "true" : "false");
  out += util::StrFormat("  \"recovery_rounds_used\": %zu,\n",
                         recovery_rounds_used);
  out += util::StrFormat("  \"tenant_breakers\": %zu,\n", tenant_breakers);
  out += util::StrFormat("  \"sheds_reconciled\": %s,\n",
                         sheds_reconciled ? "true" : "false");
  out += util::StrFormat("  \"ok\": %s\n", ok() ? "true" : "false");
  out += "}";
  return out;
}

NoisyNeighborReport RunNoisyNeighborDrill(
    const NoisyNeighborOptions& options) {
  NoisyNeighborReport report;
  util::Rng rng(options.seed);

  const std::string kAggressor = "aggressor";
  std::vector<std::string> victims;
  for (size_t v = 0; v < std::max<size_t>(1, options.num_victims); ++v) {
    victims.push_back("victim" + std::to_string(v));
  }

  // Shared fake clock: admission refill AND breaker cooldowns advance
  // only when the drill says so, making every shed and breaker walk
  // deterministic.
  auto now_us = std::make_shared<std::atomic<int64_t>>(int64_t{1});
  ClockFn clock = [now_us] {
    return now_us->load(std::memory_order_relaxed);
  };
  const double tokens_per_round =
      options.quota_rate_per_sec * options.round_us * 1e-6;
  const size_t aggressor_per_round = static_cast<size_t>(
      std::ceil(options.overload_factor * tokens_per_round));
  const size_t victim_inline = 1;  // latency-sampled Process per round
  const size_t victim_in_batch =
      options.victim_queries_per_round > victim_inline
          ? options.victim_queries_per_round - victim_inline
          : 0;

  // Journal evidence trail: drain leftovers from earlier work in this
  // process so per-account kShed counts are absolute for the drill.
  {
    std::vector<obs::FlightEvent> discard;
    obs::FlightRecorder::Global().Drain(&discard);
  }
  obs::TraceCollector::Options copts;
  copts.reservoir_capacity = 8;
  obs::TraceCollector collector(copts);

  QWorkerPool::Options pool_options;
  pool_options.application = "noisy";
  pool_options.num_shards = std::max<size_t>(1, options.num_shards);
  pool_options.partition = QWorkerPool::Partition::kRoundRobin;
  pool_options.max_in_flight = options.max_in_flight;
  pool_options.shed_policy = QWorkerPool::ShedPolicy::kRejectNew;
  pool_options.enable_tenant_admission = true;
  pool_options.admission.default_quota.burst = options.quota_burst;
  pool_options.admission.default_quota.rate_per_sec =
      options.quota_rate_per_sec;
  pool_options.admission.clock = clock;
  pool_options.worker.enable_lint = false;
  pool_options.worker.per_tenant_sink_breakers = true;
  pool_options.worker.breaker.window = 16;
  pool_options.worker.breaker.min_samples = 4;
  pool_options.worker.breaker.failure_ratio = 0.5;
  pool_options.worker.breaker.open_ms = options.breaker_open_ms;
  pool_options.worker.breaker.half_open_probes = 2;
  pool_options.worker.breaker.clock = clock;
  pool_options.worker.sink_retry.max_attempts = 2;
  pool_options.worker.sink_retry.initial_backoff_ms = 0.05;
  pool_options.worker.sink_retry.max_backoff_ms = 0.5;
  QWorkerPool pool(pool_options);

  auto primary = TrainUserClassifier("user");
  if (primary == nullptr) return report;
  pool.DeployAll({primary});

  // The aggressor's backend fails for the whole flood; victims' sink
  // calls always succeed. With per-tenant sink breakers only the
  // aggressor's breakers may trip — that asymmetry IS the isolation
  // being proven.
  std::atomic<bool> flood_active{false};
  pool.set_database_sink([&](const workload::LabeledQuery& q) {
    if (flood_active.load(std::memory_order_relaxed) &&
        q.account == "aggressor") {
      throw std::runtime_error("aggressor backend overloaded");
    }
  });

  // Counter baselines per (account, reason): the registry is process-
  // global, so reconciliation diffs against the drill's start.
  std::vector<std::string> accounts = victims;
  accounts.push_back(kAggressor);
  auto shed_counter = [](const std::string& account, ShedReason reason)
      -> obs::Counter& {
    return obs::MetricsRegistry::Global().GetCounter(
        "querc_shed_total", {{"account", account},
                             {"policy", "reject_new"},
                             {"reason", ShedReasonName(reason)}});
  };
  std::map<std::string, uint64_t> counter_base;
  for (const std::string& account : accounts) {
    counter_base[account] = shed_counter(account, ShedReason::kQuota).value() +
                            shed_counter(account, ShedReason::kFairness).value() +
                            shed_counter(account, ShedReason::kGlobal).value();
  }

  auto make_query = [&](const std::string& account) {
    workload::LabeledQuery q = MakeQuery(rng, 0);
    q.account = account;
    return q;
  };
  auto account_result = [&](const ProcessedQuery& pq) {
    ++report.returned;
    if (pq.query.account == kAggressor) {
      if (pq.shed) ++report.aggressor_shed;
    } else if (pq.shed) {
      ++report.victim_shed;
    }
    collector.Poll();
  };
  // One round of traffic: per victim, one latency-sampled inline
  // Process plus its batch share; the aggressor contributes
  // `aggressor_n` queries at the HEAD of the mixed batch (its sheds
  // must land mid-batch, in place, while later victim positions flow).
  auto run_round = [&](size_t aggressor_n, std::vector<double>* latencies) {
    now_us->fetch_add(static_cast<int64_t>(options.round_us),
                      std::memory_order_relaxed);
    for (const std::string& victim : victims) {
      workload::LabeledQuery q = make_query(victim);
      ++report.submitted;
      ++report.victim_submitted;
      util::Stopwatch sw;
      ProcessedQuery pq = pool.Process(q);
      if (latencies != nullptr) latencies->push_back(sw.ElapsedMillis());
      account_result(pq);
    }
    workload::Workload batch;
    for (size_t j = 0; j < aggressor_n; ++j) {
      batch.Add(make_query(kAggressor));
    }
    for (const std::string& victim : victims) {
      for (size_t j = 0; j < victim_in_batch; ++j) {
        batch.Add(make_query(victim));
      }
    }
    report.submitted += batch.size();
    report.aggressor_submitted += aggressor_n;
    report.victim_submitted += victims.size() * victim_in_batch;
    for (const ProcessedQuery& pq : pool.ProcessBatch(batch)) {
      account_result(pq);
    }
  };

  // Phase 1: warmup — everyone nominal (aggressor at its sustainable
  // rate), establishing the victims' healthy p99.
  const size_t aggressor_nominal = static_cast<size_t>(tokens_per_round);
  std::vector<double> warmup_lat;
  for (size_t r = 0; r < options.warmup_rounds; ++r) {
    run_round(aggressor_nominal, &warmup_lat);
  }

  // Phase 2: flood — the aggressor sends overload_factor x its refill
  // per round while its backend fails.
  flood_active.store(true, std::memory_order_relaxed);
  size_t aggressor_flood_submitted = 0;
  std::vector<double> flood_lat;
  std::vector<std::string> tripped;
  for (size_t r = 0; r < options.flood_rounds; ++r) {
    run_round(aggressor_per_round, &flood_lat);
    aggressor_flood_submitted += aggressor_per_round;
    for (const auto& [name, state] : pool.BreakerStates()) {
      if (state != CircuitBreaker::State::kClosed &&
          std::find(tripped.begin(), tripped.end(), name) == tripped.end()) {
        tripped.push_back(name);
      }
    }
  }
  for (const std::string& name : tripped) {
    if (name.find(":aggressor") != std::string::npos) {
      ++report.aggressor_breakers_tripped;
    } else {
      ++report.victim_breakers_tripped;
    }
  }
  // What the aggressor's quota plus fair share could have admitted at
  // most during the flood: its bucket (burst + refills) and its
  // per-round fairness leftover are each hard caps, so the smaller sum
  // bounds admissions — everything past it MUST have been shed.
  const double burst_cap =
      options.quota_burst +
      static_cast<double>(options.flood_rounds) * tokens_per_round;
  const size_t victim_batch_demand = victims.size() * victim_in_batch;
  const double fair_leftover =
      options.max_in_flight > victim_batch_demand
          ? static_cast<double>(options.max_in_flight - victim_batch_demand)
          : 0.0;
  const double fair_cap =
      static_cast<double>(options.flood_rounds) * fair_leftover;
  const double admittable = std::min(burst_cap, fair_cap);
  report.overload_fraction =
      aggressor_flood_submitted == 0
          ? 0.0
          : std::max(0.0, 1.0 - admittable / static_cast<double>(
                                                aggressor_flood_submitted));
  report.aggressor_shed_rate =
      aggressor_flood_submitted == 0
          ? 0.0
          : static_cast<double>(report.aggressor_shed) /
                static_cast<double>(aggressor_flood_submitted);

  // Phase 3: recovery — the backend heals; keep everyone at nominal
  // rate (advancing the fake clock through the breaker cooldown) until
  // every breaker re-closes.
  flood_active.store(false, std::memory_order_relaxed);
  for (size_t r = 0; r < options.recovery_rounds; ++r) {
    run_round(aggressor_nominal, nullptr);
    ++report.recovery_rounds_used;
    if (AllBreakersClosed(pool)) {
      report.breakers_reclosed = true;
      break;
    }
  }

  // Reconciliation: per account, counter delta == controller total ==
  // journal kShed events carrying that account label.
  collector.Poll();
  const TenantAdmissionController* admission = pool.admission();
  std::map<std::string, uint64_t> controller_sheds;
  for (const TenantAdmissionStats& row : admission->Stats()) {
    controller_sheds[row.account] = row.shed_total();
  }
  report.shed_quota = admission->shed_for(ShedReason::kQuota);
  report.shed_fairness = admission->shed_for(ShedReason::kFairness);
  report.shed_global = admission->shed_for(ShedReason::kGlobal);
  report.sheds_reconciled = true;
  for (const std::string& account : accounts) {
    uint64_t counter_delta =
        shed_counter(account, ShedReason::kQuota).value() +
        shed_counter(account, ShedReason::kFairness).value() +
        shed_counter(account, ShedReason::kGlobal).value() -
        counter_base[account];
    uint64_t journal = collector.Count(obs::EventKind::kShed, account);
    uint64_t controller = 0;
    auto it = controller_sheds.find(account);
    if (it != controller_sheds.end()) controller = it->second;
    if (counter_delta != controller || journal != controller) {
      report.sheds_reconciled = false;
    }
  }
  uint64_t total_sheds = static_cast<uint64_t>(report.aggressor_shed) +
                         static_cast<uint64_t>(report.victim_shed);
  if (admission->shed_total() != total_sheds ||
      collector.Count(obs::EventKind::kShed) != total_sheds) {
    report.sheds_reconciled = false;
  }

  for (const auto& [name, state] : pool.BreakerStates()) {
    if (name.find(":sink_database:") != std::string::npos ||
        name.find(":sink_training:") != std::string::npos) {
      ++report.tenant_breakers;
    }
  }
  report.silent_drops = report.submitted - report.returned;
  report.victim_p99_warmup_ms = Percentile(warmup_lat, 0.99);
  report.victim_p99_flood_ms = Percentile(flood_lat, 0.99);
  report.victim_p99_bound_ms =
      std::max(options.victim_p99_factor * report.victim_p99_warmup_ms,
               options.victim_p99_floor_ms);
  return report;
}

ChaosReport RunChaosSoak(const ChaosOptions& options) {
  ChaosReport report;
  util::Rng rng(options.seed);

  // Flight-recorder evidence trail: discard whatever earlier work in this
  // process left in the rings, then poll the collector throughout so ring
  // capacity (4096 events/thread) is never the limit on attribution.
  std::unique_ptr<obs::TraceCollector> collector;
  if (options.flightrec) {
    report.flightrec_enabled = true;
    std::vector<obs::FlightEvent> discard;
    obs::FlightRecorder::Global().Drain(&discard);
    obs::TraceCollector::Options copts;
    copts.reservoir_capacity = 8;
    collector = std::make_unique<obs::TraceCollector>(copts);
  }
  auto poll = [&] {
    if (collector) collector->Poll();
  };

  QWorkerPool::Options pool_options;
  pool_options.application = "chaos";
  pool_options.num_shards = std::max<size_t>(1, options.num_shards);
  // Round-robin so every shard's breakers see traffic (hash partitioning
  // could starve a shard and stall its recovery).
  pool_options.partition = QWorkerPool::Partition::kRoundRobin;
  pool_options.max_in_flight = options.max_in_flight;
  pool_options.shed_policy = QWorkerPool::ShedPolicy::kRejectNew;
  pool_options.worker.enable_lint = true;
  pool_options.worker.deadline_ms = options.deadline_ms;
  // A soak-friendly breaker: trips on few samples, cools down quickly.
  pool_options.worker.breaker.window = 16;
  pool_options.worker.breaker.min_samples = 4;
  pool_options.worker.breaker.failure_ratio = 0.5;
  pool_options.worker.breaker.open_ms = options.breaker_open_ms;
  pool_options.worker.breaker.half_open_probes = 2;
  pool_options.worker.sink_retry.max_attempts = 2;
  pool_options.worker.sink_retry.initial_backoff_ms = 0.1;
  pool_options.worker.sink_retry.max_backoff_ms = 1.0;
  QWorkerPool pool(pool_options);

  auto primary = TrainUserClassifier("user");
  auto fallback = TrainUserClassifier("user");
  if (primary == nullptr || fallback == nullptr) return report;
  pool.DeployAll({primary});
  pool.DeployFallback(fallback);
  pool.set_database_sink([](const workload::LabeledQuery&) {});
  pool.set_training_sink([](const ProcessedQuery&) {});

  auto process_one = [&](size_t i, std::vector<double>* latencies) {
    workload::LabeledQuery q = MakeQuery(rng, i);
    ++report.submitted;
    util::Stopwatch sw;
    ProcessedQuery pq = pool.Process(q);
    if (latencies != nullptr) latencies->push_back(sw.ElapsedMillis());
    Account(pq, &report);
    poll();
  };

  // Phase 1: warmup — healthy baseline.
  std::vector<double> warmup_lat;
  warmup_lat.reserve(options.warmup_queries);
  for (size_t i = 0; i < options.warmup_queries; ++i) {
    process_one(i, &warmup_lat);
  }

  // Phase 2: fault — counted failpoints model a transient database-sink
  // outage (>= sink_failure_rate of the phase) and a classifier outage;
  // periodic oversized batches force the admission bound to shed.
  auto& failpoints = util::Failpoints::Global();
  {
    util::FailpointSpec sink_fault;
    sink_fault.action = util::FailAction::kError;
    sink_fault.code = util::StatusCode::kUnavailable;
    sink_fault.count = std::max<int64_t>(
        8, static_cast<int64_t>(options.sink_failure_rate *
                                static_cast<double>(options.fault_queries)));
    failpoints.Arm("qworker.sink_database", sink_fault);
    if (options.classifier_outage) {
      util::FailpointSpec task_fault;
      task_fault.action = util::FailAction::kError;
      task_fault.code = util::StatusCode::kUnavailable;
      task_fault.count =
          static_cast<int64_t>(options.fault_queries);  // whole phase
      failpoints.Arm("qworker.classifier_predict", task_fault);
    }
  }
  std::vector<double> fault_lat;
  fault_lat.reserve(options.fault_queries);
  std::vector<std::string> tripped;
  for (size_t i = 0; i < options.fault_queries; ++i) {
    process_one(i, &fault_lat);
    for (const auto& [name, state] : pool.BreakerStates()) {
      if (state != CircuitBreaker::State::kClosed &&
          std::find(tripped.begin(), tripped.end(), name) == tripped.end()) {
        tripped.push_back(name);
      }
    }
    if (options.max_in_flight > 0 && options.shed_burst_every > 0 &&
        i % options.shed_burst_every == options.shed_burst_every - 1) {
      workload::Workload burst;
      for (size_t j = 0; j < 3 * options.max_in_flight; ++j) {
        burst.Add(MakeQuery(rng, j));
      }
      report.submitted += burst.size();
      for (const ProcessedQuery& pq : pool.ProcessBatch(burst)) {
        Account(pq, &report);
      }
      poll();
    }
  }
  report.breakers_tripped = tripped.size();

  // Ground truth for reconciliation must be read *before* Disarm (a
  // disarmed point forgets its hit count).
  report.failpoint_hits_sink = failpoints.hits("qworker.sink_database");
  report.failpoint_hits_classifier =
      failpoints.hits("qworker.classifier_predict");

  // Phase 3: recovery — faults gone; drive traffic until every breaker
  // re-closes (pacing by the cooldown when one is still open).
  failpoints.Disarm("qworker.sink_database");
  failpoints.Disarm("qworker.classifier_predict");
  std::vector<double> recovery_lat;
  recovery_lat.reserve(options.recovery_queries);
  util::Stopwatch recovery_sw;
  for (size_t i = 0; i < options.recovery_queries; ++i) {
    process_one(i, &recovery_lat);
    if (AllBreakersClosed(pool)) {
      report.breakers_reclosed = true;
      report.recovery_ms = recovery_sw.ElapsedMillis();
      break;
    }
    // A breaker still open is waiting out its cooldown; give it time
    // instead of burning the query budget in microseconds.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  if (collector) {
    collector->Poll();  // final drain: nothing may be left buffered
    report.journal_sink_failpoints =
        collector->Count(obs::EventKind::kFailpoint, "qworker.sink_database");
    report.journal_classifier_failpoints = collector->Count(
        obs::EventKind::kFailpoint, "qworker.classifier_predict");
    report.journal_sheds = collector->Count(obs::EventKind::kShed);
    report.journal_breaker_transitions =
        collector->Count(obs::EventKind::kBreakerTransition);
    // Attribution contract: every injected sink/classifier fault and
    // every shed the pool reported has exactly one journal event.
    report.flightrec_ok =
        report.journal_sink_failpoints == report.failpoint_hits_sink &&
        report.journal_classifier_failpoints ==
            report.failpoint_hits_classifier &&
        report.journal_sheds == static_cast<uint64_t>(report.shed) &&
        report.journal_breaker_transitions > 0;
    for (const obs::FlightTrace& trace : collector->Slowest(3)) {
      report.slow_traces.push_back(obs::FlightTraceLine(trace));
    }
  }

  report.silent_drops = report.submitted - report.returned;
  report.shed_rate =
      report.submitted == 0
          ? 0.0
          : static_cast<double>(report.shed) /
                static_cast<double>(report.submitted);
  report.p50_warmup_ms = Percentile(warmup_lat, 0.50);
  report.p99_warmup_ms = Percentile(warmup_lat, 0.99);
  report.p50_fault_ms = Percentile(fault_lat, 0.50);
  report.p99_fault_ms = Percentile(fault_lat, 0.99);
  report.p99_recovery_ms = Percentile(recovery_lat, 0.99);
  return report;
}

}  // namespace querc::core
