// Ablation A2 — summarizer comparison at the paper's 3-minute advisor
// budget: K-means over learned embeddings (the paper's method) vs
// K-medoids with a hand-tuned feature distance (the Chaudhuri-style
// baseline) vs uniform random sampling vs the full workload.

#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "engine/advisor.h"
#include "engine/cost_model.h"
#include "ml/kmedoids.h"
#include "querc/summarizer.h"
#include "util/rng.h"

namespace querc::bench {
namespace {

std::vector<std::string> Texts(const workload::Workload& wl) {
  std::vector<std::string> texts;
  for (const auto& q : wl) texts.push_back(q.text);
  return texts;
}

int Main() {
  std::printf("=== Ablation: summarization strategies at a 3-minute "
              "advisor budget ===\n");
  workload::Workload tpch = TpchWorkload();
  std::vector<std::string> full = Texts(tpch);

  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  double baseline = engine::RunWorkload(model, full, {}).total_seconds;

  // --- method 1: K-means over learned embeddings (the paper's) ---
  auto embedder =
      std::make_shared<embed::Doc2VecEmbedder>(Doc2VecBenchOptions());
  TrainEmbedder(*embedder, tpch, "doc2vecTPCH");
  core::WorkloadSummarizer::Options sopt;
  sopt.elbow.k_min = 4;
  sopt.elbow.k_max = 48;
  sopt.elbow.k_step = 4;
  core::WorkloadSummarizer summarizer(embedder, sopt);
  auto learned_summary = summarizer.Summarize(tpch);
  size_t k = learned_summary.queries.size();

  // --- method 2: K-medoids with a hand-engineered feature distance ---
  embed::FeatureEmbedder::Options fopt;
  fopt.dialect = sql::Dialect::kSqlServer;
  embed::FeatureEmbedder features(fopt);
  (void)embed::TrainOnWorkload(features, tpch);
  std::vector<nn::Vec> fvecs = embed::EmbedWorkload(features, tpch);
  util::Stopwatch watch;
  auto medoids = ml::KMedoids(
      fvecs.size(),
      [&](size_t i, size_t j) {
        return std::sqrt(nn::SquaredDistance(fvecs[i], fvecs[j]));
      },
      k);
  std::printf("  kmedoids over %zu queries (K=%zu) in %.1fs\n", fvecs.size(),
              k, watch.ElapsedSeconds());
  std::vector<std::string> medoid_texts;
  for (size_t m : medoids.medoids) medoid_texts.push_back(full[m]);

  // --- method 3: uniform random sample of the same size ---
  util::Rng rng(404);
  std::vector<size_t> order(full.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<std::string> random_texts;
  for (size_t i = 0; i < k; ++i) random_texts.push_back(full[order[i]]);

  struct Method {
    const char* name;
    std::vector<std::string> input;
  };
  std::vector<Method> methods = {
      {"full-workload", full},
      {"kmeans-doc2vec (paper)", Texts(learned_summary.queries)},
      {"kmedoids-features (Chaudhuri)", medoid_texts},
      {"random-sample", random_texts},
  };

  util::TableWriter table(
      {"method", "advisor_input", "runtime_s", "vs_no_index"});
  table.AddRow({"no-indexes", "-", util::TableWriter::Num(baseline, 1),
                "1.00"});
  engine::AdvisorOptions aopt;
  aopt.budget_minutes = 3.0;
  engine::TuningAdvisor advisor(&model, aopt);
  for (const Method& m : methods) {
    auto rec = advisor.Recommend(m.input);
    double runtime = engine::RunWorkload(model, full, rec.config).total_seconds;
    table.AddRow({m.name, std::to_string(m.input.size()),
                  util::TableWriter::Num(runtime, 1),
                  util::TableWriter::Num(runtime / baseline, 2)});
  }
  EmitTable(table,
            "Ablation A2 — TPC-H runtime under each summarizer's 3-minute "
            "recommendation",
            "ablation_summarizers.csv");
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main() { return querc::bench::Main(); }
