file(REMOVE_RECURSE
  "libquerc_engine.a"
)
