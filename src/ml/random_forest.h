#ifndef QUERC_ML_RANDOM_FOREST_H_
#define QUERC_ML_RANDOM_FOREST_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace querc::ml {

/// A forest of randomized decision trees — the paper's labeler for the
/// §5.2 account/user prediction tasks ("randomized decision trees"). Uses
/// the extremely-randomized-trees scheme: at each node, `num_candidate_
/// features` features are sampled and each gets one uniform-random split
/// threshold; the candidate with the best Gini impurity reduction wins.
class RandomForestClassifier : public VectorClassifier {
 public:
  struct Options {
    int num_trees = 40;
    int max_depth = 16;
    int min_samples_split = 4;
    /// Features sampled per node; 0 => sqrt(dim).
    int num_candidate_features = 0;
    /// Fraction of the training set bootstrapped per tree (with
    /// replacement); 1.0 and bootstrap=false => full set.
    bool bootstrap = true;
    uint64_t seed = 53;
  };

  explicit RandomForestClassifier(const Options& options)
      : options_(options) {}

  void Fit(const Dataset& data) override;
  int Predict(const nn::Vec& v) const override;
  std::string name() const override { return "random-forest"; }

  /// Per-class vote fractions (valid after Fit).
  std::vector<double> PredictProba(const nn::Vec& v) const;

  int num_classes() const { return num_classes_; }

  /// Persists the fitted forest (binary; options are not persisted — a
  /// loaded forest predicts but is not refittable with original options).
  util::Status Save(std::ostream& out) const;
  static util::StatusOr<RandomForestClassifier> Load(std::istream& in);

 private:
  struct Node {
    int feature = -1;       // -1 => leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int label = 0;          // majority label at leaf
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int GrowNode(Tree& tree, const Dataset& data,
               const std::vector<size_t>& indices, int depth, util::Rng& rng);
  static int TreePredict(const Tree& tree, const nn::Vec& v);

  Options options_;
  std::vector<Tree> trees_;
  int num_classes_ = 0;
};

}  // namespace querc::ml

#endif  // QUERC_ML_RANDOM_FOREST_H_
